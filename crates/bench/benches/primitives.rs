//! Criterion microbenches for the CUDPP-equivalent primitives: wall-clock
//! cost of the simulator's building blocks (these dominate harness run
//! time, so regressions here matter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpmr_primitives::{exclusive_scan, extract_segments, histogram, sort_pairs};
use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};

fn pseudo_random(n: usize, seed: u64) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 16) as u32
        })
        .collect()
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan");
    for &n in &[64 * 1024usize, 1024 * 1024] {
        let input: Vec<u64> = (0..n as u64).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            let mut gpu = Gpu::new(GpuSpec::gt200());
            b.iter(|| exclusive_scan(&mut gpu, SimTime::ZERO, input).unwrap());
        });
    }
    group.finish();
}

fn bench_radix_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_sort_pairs");
    for &n in &[64 * 1024usize, 512 * 1024] {
        let keys = pseudo_random(n, 42);
        let vals: Vec<u32> = (0..n as u32).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut gpu = Gpu::new(GpuSpec::gt200());
            b.iter(|| sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap());
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let input = pseudo_random(1024 * 1024, 7);
    c.bench_function("histogram_1M_256bins", |b| {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        b.iter(|| {
            histogram(&mut gpu, SimTime::ZERO, &input, 256, |&v| {
                (v & 255) as usize
            })
            .unwrap()
        });
    });
}

fn bench_segments(c: &mut Criterion) {
    let mut keys = pseudo_random(512 * 1024, 9);
    for k in &mut keys {
        *k &= 0xffff;
    }
    keys.sort_unstable();
    c.bench_function("extract_segments_512k", |b| {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        b.iter(|| extract_segments(&mut gpu, SimTime::ZERO, &keys).unwrap());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scan, bench_radix_sort, bench_histogram, bench_segments
);
criterion_main!(benches);
