//! Hot-path microbenches for the execution backend and shuffle/sort
//! allocation work introduced by the persistent worker pool: kernel
//! launch overhead (pool vs spawn-per-launch), radix sort throughput,
//! the engine's bucket-split/combine shuffle path, and the cost of the
//! telemetry subsystem (disabled vs enabled) on a full engine run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpmr_core::helpers::{combine_pairs, split_buckets};
use gpmr_core::{run_job_instrumented, EngineTuning, KvSet};
use gpmr_primitives::sort_pairs;
use gpmr_sim_gpu::{set_exec_backend, ExecBackend, Gpu, GpuSpec, LaunchConfig, SimTime};
use gpmr_sim_net::Cluster;
use gpmr_telemetry::{AlertEngine, AlertRule, Telemetry, TimeSeriesStore};

fn pseudo_random(n: usize, seed: u64) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 16) as u32
        })
        .collect()
}

/// One cheap 64-block kernel: the real work is negligible, so the
/// measured time is dominated by handing blocks to host threads.
fn tiny_launch(gpu: &mut Gpu) -> usize {
    let cfg = LaunchConfig::for_items(4096, 64, 64);
    let (launch, _) = gpu
        .launch(SimTime::ZERO, &cfg, |ctx| {
            let r = ctx.item_range(4096);
            ctx.charge_flops(r.len() as u64);
            r.len()
        })
        .expect("launch");
    launch.outputs.into_iter().sum()
}

fn bench_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_overhead");
    for (name, backend) in [("pool", ExecBackend::Pool), ("spawn", ExecBackend::Spawn)] {
        group.bench_function(name, |b| {
            set_exec_backend(backend);
            let mut gpu = Gpu::new(GpuSpec::gt200());
            // Force the parallel path even on single-core CI runners so
            // the backends are actually compared.
            gpu.worker_threads = 4;
            b.iter(|| tiny_launch(&mut gpu));
            set_exec_backend(ExecBackend::Pool);
        });
    }
    group.finish();
}

fn bench_sort_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_throughput");
    for &n in &[256 * 1024usize, 1024 * 1024] {
        let keys = pseudo_random(n, 42);
        let vals: Vec<u32> = (0..n as u32).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut gpu = Gpu::new(GpuSpec::gt200());
            b.iter(|| sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap());
        });
    }
    group.finish();
}

fn bench_shuffle_throughput(c: &mut Criterion) {
    let n = 512 * 1024usize;
    let keys = pseudo_random(n, 9);
    let mut group = c.benchmark_group("shuffle_throughput");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("split_buckets_64", |b| {
        b.iter(|| {
            let pairs: KvSet<u32, u32> = KvSet::from_parts(keys.clone(), (0..n as u32).collect());
            split_buckets(pairs, 64, |k| k % 64)
        });
    });
    group.bench_function("combine_pairs", |b| {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        b.iter(|| {
            let pairs: KvSet<u32, u32> =
                KvSet::from_parts(keys.iter().map(|k| k % 4096).collect(), vec![1u32; n]);
            combine_pairs(&mut gpu, SimTime::ZERO, pairs, |a, b| a.wrapping_add(b)).unwrap()
        });
    });
    group.finish();
}

/// Full engine run of a small SIO job with telemetry disabled vs
/// enabled vs enabled-plus-continuous-observability. "disabled" is the
/// default `run_job` path and must stay within a few percent of the
/// pre-telemetry engine; "enabled" shows the full recording cost
/// (spans, counters, samples); "timeseries" adds the SLO observability layer
/// on top — a windowed collect plus an alert evaluation per iteration,
/// the per-event-boundary work the job service does — and must stay
/// within a few percent of plain "enabled".
fn bench_telemetry_overhead(c: &mut Criterion) {
    let n = 200_000usize;
    let data = gpmr_apps::sio::generate_integers(n, 7);
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(n as u64));
    for (name, enabled) in [("disabled", false), ("enabled", true), ("timeseries", true)] {
        group.bench_function(name, |b| {
            let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
            let observe = name == "timeseries";
            let mut store = TimeSeriesStore::new(1.0, 20);
            let mut alerts = AlertEngine::new(
                AlertRule::parse_list(
                    "dispatch: rate(engine.chunks_dispatched) > 1e12; \
                     stolen: sum(engine.chunks_stolen) > 1e12",
                )
                .expect("rules parse"),
            );
            let mut t = 0.0;
            b.iter(|| {
                let tel = if enabled {
                    Telemetry::enabled()
                } else {
                    Telemetry::disabled()
                };
                let chunks = gpmr_apps::sio::sio_chunks(&data, 64 * 1024);
                let out = run_job_instrumented(
                    &mut cluster,
                    &gpmr_apps::sio::SioJob::default(),
                    chunks,
                    &EngineTuning::default(),
                    &tel,
                )
                .unwrap();
                if observe {
                    t += 1e-3;
                    if let Some(reg) = tel.registry() {
                        store.collect(t, &reg.snapshot());
                    }
                    alerts.eval(t, &store);
                }
                out
            });
        });
    }
    group.finish();
}

criterion_group!(
    hot_path,
    bench_launch_overhead,
    bench_sort_throughput,
    bench_shuffle_throughput,
    bench_telemetry_overhead
);
criterion_main!(hot_path);
