//! Criterion benches mirroring the paper's evaluation artifacts — one
//! group per table/figure, at miniature sizes so `cargo bench` completes
//! quickly. These measure *wall-clock* cost of regenerating each artifact
//! point; the artifact values themselves come from the harness binaries
//! (`fig3_efficiency`, `table2_phoenix`, ...), which print the simulated
//! times at full calibrated scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpmr_apps::{kmc, sio};
use gpmr_baselines::mars::run_mars;
use gpmr_baselines::mars_apps::MarsKmc;
use gpmr_baselines::phoenix::{run_phoenix, PhoenixConfig};
use gpmr_baselines::phoenix_apps::PhoenixSio;
use gpmr_bench::runners::{run_kmc, run_lr, run_mm_bench, run_sio, run_wo, shared_dictionary};
use gpmr_sim_gpu::{Gpu, GpuSpec};

/// Miniature scale: tiny workloads, hardware scaled to match.
const SCALE: u64 = 1024;

fn fig3_strong_scaling_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_efficiency_point");
    for gpus in [1u32, 8] {
        group.bench_with_input(BenchmarkId::new("sio_128k", gpus), &gpus, |b, &g| {
            b.iter(|| run_sio(g, 128 * 1024, SCALE, 1));
        });
        group.bench_with_input(BenchmarkId::new("kmc_64k", gpus), &gpus, |b, &g| {
            b.iter(|| run_kmc(g, 64 * 1024, SCALE, 1));
        });
        group.bench_with_input(BenchmarkId::new("lr_128k", gpus), &gpus, |b, &g| {
            b.iter(|| run_lr(g, 128 * 1024, SCALE, 1));
        });
    }
    group.finish();
}

fn fig2_breakdown_point(c: &mut Criterion) {
    let dict = shared_dictionary(SCALE);
    c.bench_function("fig2_breakdown_wo_8gpu", |b| {
        b.iter(|| run_wo(8, 512 * 1024, SCALE, &dict, 2));
    });
}

fn table2_phoenix_point(c: &mut Criterion) {
    let data = sio::generate_integers(128 * 1024, 3);
    let cfg = PhoenixConfig::default();
    let mut group = c.benchmark_group("table2_phoenix_point");
    group.bench_function("phoenix_sio_128k", |b| {
        b.iter(|| run_phoenix(&cfg, &PhoenixSio, &data));
    });
    group.bench_function("gpmr_sio_128k_1gpu", |b| {
        b.iter(|| run_sio(1, 128 * 1024, SCALE, 3));
    });
    group.finish();
}

fn table3_mars_point(c: &mut Criterion) {
    let centers = kmc::initial_centers(16, 4);
    let points = kmc::generate_points(64 * 1024, 16, 5);
    let mut group = c.benchmark_group("table3_mars_point");
    group.bench_function("mars_kmc_64k", |b| {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        b.iter(|| run_mars(&mut gpu, &MarsKmc::new(centers.clone()), &points).unwrap());
    });
    group.bench_function("gpmr_kmc_64k_1gpu", |b| {
        b.iter(|| run_kmc(1, 64 * 1024, SCALE, 5));
    });
    group.finish();
}

fn mm_end_to_end(c: &mut Criterion) {
    c.bench_function("fig3_mm_128_2gpu", |b| {
        b.iter(|| run_mm_bench(2, 128, SCALE, 6));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_strong_scaling_points,
              fig2_breakdown_point,
              table2_phoenix_point,
              table3_mars_point,
              mm_end_to_end
);
criterion_main!(benches);
