//! ASCII line charts for the figure harnesses: quick visual confirmation
//! of curve shapes (efficiency vs. GPU count) without leaving the
//! terminal.

/// A named data series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// Render series as an ASCII chart of `width` x `height` characters
/// (plus axes). X is plotted on a log2 scale (GPU counts double), y
/// linearly from 0 to `y_max`.
pub fn render_chart(series: &[Series], width: usize, height: usize, y_max: f64) -> String {
    let (width, height) = (width.max(16), height.max(4));
    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    if xs.is_empty() || y_max <= 0.0 {
        return String::from("(no data)\n");
    }
    let x_lo = xs.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
    let x_hi = xs.iter().copied().fold(1.0, f64::max).max(x_lo * 2.0);
    let (lx_lo, lx_hi) = (x_lo.log2(), x_hi.log2());

    let mut grid = vec![vec![' '; width]; height];
    let col = |x: f64| {
        let t = (x.max(1.0).log2() - lx_lo) / (lx_hi - lx_lo);
        ((t * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let row = |y: f64| {
        let t = (y.clamp(0.0, y_max)) / y_max;
        height - 1 - ((t * (height - 1) as f64).round() as usize).min(height - 1)
    };
    for (si, s) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        // Draw line segments between consecutive points (x-linear
        // interpolation per column).
        for w in s.points.windows(2) {
            let (c0, c1) = (col(w[0].0), col(w[1].0));
            #[allow(clippy::needless_range_loop)] // each column targets its own row
            for c in c0..=c1 {
                let t = if c1 == c0 {
                    0.0
                } else {
                    (c - c0) as f64 / (c1 - c0) as f64
                };
                let y = w[0].1 + t * (w[1].1 - w[0].1);
                grid[row(y)][c] = mark;
            }
        }
        for &(x, y) in &s.points {
            grid[row(y)][col(x)] = mark;
        }
    }

    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{y_max:>5.2} |")
        } else if r == height - 1 {
            format!("{:>5.2} |", 0.0)
        } else {
            "      |".to_string()
        };
        out.push_str(&y_label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "       {:<10} (log2 x) {:>width$.0}\n",
        x_lo,
        x_hi,
        width = width.saturating_sub(20)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("       {} {}\n", marks[si % marks.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series {
                label: "big".into(),
                points: vec![(1.0, 1.0), (4.0, 0.95), (16.0, 0.8), (64.0, 0.6)],
            },
            Series {
                label: "small".into(),
                points: vec![(1.0, 1.0), (4.0, 0.4), (16.0, 0.1), (64.0, 0.02)],
            },
        ]
    }

    #[test]
    fn renders_marks_axes_and_legend() {
        let chart = render_chart(&series(), 60, 12, 1.0);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("big"));
        assert!(chart.contains("small"));
        assert!(chart.contains("1.00 |"));
        assert!(chart.contains("0.00 |"));
        // Row count: height + axis + x labels + legend.
        assert!(chart.lines().count() >= 12 + 2 + 2);
    }

    #[test]
    fn higher_series_plots_higher() {
        let chart = render_chart(&series(), 60, 12, 1.0);
        let rows: Vec<&str> = chart.lines().collect();
        // Find the last column marks: '*' (0.6) must appear above 'o' (0.02).
        let star_row = rows.iter().position(|r| r.trim_end().ends_with('*'));
        let o_row = rows.iter().position(|r| r.trim_end().ends_with('o'));
        if let (Some(s), Some(o)) = (star_row, o_row) {
            assert!(s < o, "higher efficiency should render higher");
        }
    }

    #[test]
    fn empty_series_render_placeholder() {
        assert_eq!(render_chart(&[], 40, 10, 1.0), "(no data)\n");
        let empty = vec![Series {
            label: "none".into(),
            points: vec![],
        }];
        assert_eq!(render_chart(&empty, 40, 10, 1.0), "(no data)\n");
    }

    #[test]
    fn single_point_series_render() {
        let one = vec![Series {
            label: "dot".into(),
            points: vec![(4.0, 0.5)],
        }];
        let chart = render_chart(&one, 40, 8, 1.0);
        assert!(chart.contains('*'));
    }
}
