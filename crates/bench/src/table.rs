//! Plain-text table rendering for the harness binaries.

/// Render an aligned text table with a header row.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate().take(cols) {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = widths[c]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &rule);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format a speedup as the paper prints it (three decimals).
pub fn speedup_cell(x: f64) -> String {
    format!("{x:.3}")
}

/// Format an efficiency (two decimals).
pub fn efficiency_cell(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage (one decimal + %).
pub fn percent_cell(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn cells_format() {
        assert_eq!(speedup_cell(1.5), "1.500");
        assert_eq!(efficiency_cell(0.876), "0.88");
        assert_eq!(percent_cell(12.34), "12.3%");
    }
}
