//! Shared harness configuration: scale parsing and run parameters.

/// Default workload scale divisor (element counts / 64, matrix orders
/// / 8). Chosen so the full figure sweeps finish in minutes on a laptop.
pub const DEFAULT_SCALE: u64 = 64;

/// True if `--flag` appears in the process arguments.
pub fn parse_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Parse `--scale N` from the process arguments (or the `GPMR_SCALE`
/// environment variable); fall back to [`DEFAULT_SCALE`].
pub fn parse_scale() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--scale=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("GPMR_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Parameters shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Workload scale divisor.
    pub scale: u64,
    /// Base RNG seed (fixed for reproducibility).
    pub seed: u64,
    /// GPU counts used for scaling sweeps (the paper's x-axis).
    pub gpu_counts: Vec<u32>,
}

impl HarnessConfig {
    /// Config from the command line.
    pub fn from_args() -> Self {
        HarnessConfig {
            scale: parse_scale(),
            seed: 0x47504d52, // "GPMR"
            gpu_counts: vec![1, 4, 8, 16, 32, 64],
        }
    }

    /// The GPU counts for Matrix Multiplication (the paper adds 2).
    pub fn mm_gpu_counts(&self) -> Vec<u32> {
        vec![1, 2, 4, 8, 16, 32, 64]
    }
}

/// Chunk size in bytes for a workload of `total_bytes` on `gpus` GPUs
/// under hardware-scale divisor `scale`: a few chunks per GPU, clamped so
/// chunks stay meaningful at small sizes and double-bufferable within the
/// (scaled) device memory. Equivalent to [`chunk_bytes_tuned`] at the
/// classic double-buffer depth of 2.
pub fn chunk_bytes(total_bytes: u64, gpus: u32, scale: u64) -> usize {
    chunk_bytes_tuned(total_bytes, gpus, scale, 2)
}

/// Depth-aware chunk autotuning for a `depth`-deep upload pipeline. A rank
/// needs `depth` chunks in flight on the copy engine plus about as many
/// queued behind them before the pipeline can actually overlap uploads
/// with map kernels, so the target is `2 * depth` chunks per rank. The
/// upper clamp splits the same (scaled) 64 MB staging budget the
/// double-buffer sizing used across the `depth` in-flight buffers.
pub fn chunk_bytes_tuned(total_bytes: u64, gpus: u32, scale: u64, depth: u32) -> usize {
    let s = scale.max(1);
    let d = u64::from(depth.max(1));
    let per = total_bytes / (2 * d * u64::from(gpus.max(1)));
    let min = (64 * 1024 / s).max(1024);
    let max = ((64 << 20) / (d * s)).max(min);
    per.clamp(min, max) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bytes_clamps() {
        assert_eq!(chunk_bytes(1024, 1, 1), 64 * 1024);
        assert_eq!(chunk_bytes(1 << 40, 1, 1), 32 << 20);
        let mid = chunk_bytes(512 << 20, 4, 1);
        assert_eq!(mid, 32 << 20);
        let small = chunk_bytes(16 << 20, 8, 1);
        assert_eq!(small, (16 << 20) / 32);
        // Scaled hardware shrinks both clamps proportionally.
        assert_eq!(chunk_bytes(1024, 1, 64), 1024);
        assert_eq!(chunk_bytes(1 << 40, 1, 64), (32 << 20) / 64);
    }

    #[test]
    fn tuned_chunks_track_pipeline_depth() {
        // Depth 2 is exactly the classic double-buffer sizing.
        assert_eq!(
            chunk_bytes_tuned(1 << 40, 1, 64, 2),
            chunk_bytes(1 << 40, 1, 64)
        );
        assert_eq!(
            chunk_bytes_tuned(16 << 20, 8, 1, 2),
            chunk_bytes(16 << 20, 8, 1)
        );
        // Deeper pipelines want proportionally more (smaller) chunks per
        // rank, and the staging clamp splits across the in-flight buffers.
        assert_eq!(chunk_bytes_tuned(4 << 20, 8, 64, 4), 64 * 1024);
        assert_eq!(chunk_bytes_tuned(1 << 40, 1, 1, 4), 16 << 20);
        // Depth 1 (no pipelining) degrades to halves of the double-buffer
        // sizing's chunk count, never below the floor.
        assert_eq!(chunk_bytes_tuned(1024, 4, 64, 1), 1024);
    }

    #[test]
    fn default_config_has_paper_gpu_counts() {
        let cfg = HarnessConfig {
            scale: DEFAULT_SCALE,
            seed: 1,
            gpu_counts: vec![1, 4, 8, 16, 32, 64],
        };
        assert_eq!(cfg.mm_gpu_counts(), vec![1, 2, 4, 8, 16, 32, 64]);
    }
}
