//! Weak scaling (Table 1, set two): fixed input *per GPU*; ideal behaviour
//! is constant runtime as GPUs are added. Reports runtimes and weak
//! efficiency `T(1)/T(n)` for a mid-range per-GPU size of each benchmark.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin weak_scaling
//! [--scale N] [--full]` — by default only the mid-range per-GPU size of
//! each benchmark runs; `--full` sweeps the paper's entire set two.

use gpmr_apps::Benchmark;
use gpmr_bench::table::{efficiency_cell, render};
use gpmr_bench::{run_kmc, run_lr, run_sio, run_wo, shared_dictionary, HarnessConfig};
use gpmr_sim_gpu::SimDuration;

fn main() {
    let cfg = HarnessConfig::from_args();
    let full = gpmr_bench::harness::parse_flag("--full");
    println!(
        "Weak scaling (Table 1 set two) — constant per-GPU input, scale divisor {}\n",
        cfg.scale
    );

    let gpu_counts = [1u32, 4, 16, 64];
    for bench in [Benchmark::Sio, Benchmark::Wo, Benchmark::Kmc, Benchmark::Lr] {
        // Mid-range per-GPU size by default; the whole set with --full.
        let sizes = bench.weak_sizes_per_gpu();
        let chosen: Vec<u64> = if full {
            sizes.to_vec()
        } else {
            vec![sizes[sizes.len() / 2]]
        };
        for per_gpu_m in chosen {
            let per_gpu = (per_gpu_m * 1_000_000 / cfg.scale.max(1)).max(1024) as usize;

            let mut headers: Vec<String> =
                vec![format!("{} ({}M/GPU paper)", bench.name(), per_gpu_m)];
            headers.extend(gpu_counts.iter().map(|g| format!("{g} GPU")));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

            let mut time_cells = vec!["runtime".to_string()];
            let mut eff_cells = vec!["weak efficiency".to_string()];
            let mut t1 = SimDuration::ZERO;
            for &g in &gpu_counts {
                let total = per_gpu * g as usize;
                let t = match bench {
                    Benchmark::Sio => run_sio(g, total, cfg.scale, cfg.seed).time,
                    Benchmark::Wo => {
                        let dict = shared_dictionary(cfg.scale);
                        run_wo(g, total, cfg.scale, &dict, cfg.seed).time
                    }
                    Benchmark::Kmc => run_kmc(g, total, cfg.scale, cfg.seed).time,
                    Benchmark::Lr => run_lr(g, total, cfg.scale, cfg.seed).time,
                    Benchmark::Mm => unreachable!("MM has no weak-scaling set"),
                };
                if g == 1 {
                    t1 = t;
                }
                time_cells.push(format!("{t}"));
                eff_cells.push(efficiency_cell(if t.as_secs() > 0.0 {
                    t1.as_secs() / t.as_secs()
                } else {
                    0.0
                }));
            }
            println!("{}", render(&header_refs, &[time_cells, eff_cells]));
        }
    }
    println!("Ideal weak scaling holds runtime flat (efficiency 1.0) as GPUs grow;");
    println!("communication-bound benchmarks (SIO) degrade fastest, accumulation-");
    println!("based ones (KMC, LR) stay closest to flat.");
}
