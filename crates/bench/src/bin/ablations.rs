//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Accumulation** (paper §6: "note the importance of Accumulation —
//!    we saw dramatically worse performance in KMC, LR, and especially WO
//!    before implementing it"): WO with and without Accumulation.
//! 2. **Partial Reduction / Combine on sparse keys** (paper §5.3.2: no
//!    speedup / slowdown for SIO): the three SIO pipeline modes.
//! 3. **Partitioner crossover** (paper §5.3.3): WO efficiency with the
//!    partitioner always off, always on, and at the default crossover.
//! 4. **FP atomics** (paper §5.3.4: GT200's missing float atomics forced
//!    per-block pools): KMC on GT200 vs a Fermi-class device.
//! 5. **PCI-e link sharing**: LR with dedicated vs S1070-paired links.
//! 6. **Pair distribution** (paper §4.1: "no best-performance distribution
//!    for all jobs — round-robin vs consecutive blocks"): SIO under both
//!    partitioners on uniform and on skewed key sets.
//! 7. **Chunk size** (paper §4.4: "tuning the size of each chunk to allow
//!    overlap in computation and communication"): SIO runtime across a
//!    chunk-size sweep — too small pays per-chunk overhead, too large
//!    loses overlap and double-buffering.
//! 8. **Sorter choice** (paper §4.2: radix "when possible", a custom
//!    comparator sort otherwise): SIO under the default radix Sorter vs
//!    the bitonic fallback.
//! 9. **Dynamic load balancing** (paper §4.1: chunks shift between local
//!    queues): the work-stealing scheduler vs static assignment under an
//!    adversarially skewed chunk distribution.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin ablations [--scale N]`

use gpmr_apps::kmc::{self, KmcJob};
use gpmr_apps::lr::{self, LrJob};
use gpmr_apps::sio::{self, SioJob, SioMode};
use gpmr_apps::text::chunk_text;
use gpmr_apps::wo::WoJob;
use gpmr_bench::harness::chunk_bytes;
use gpmr_bench::runners::{corpus_for, scaled_cluster, KMC_CENTERS};
use gpmr_bench::table::render;
use gpmr_bench::{shared_dictionary, HarnessConfig};
use gpmr_core::{run_job, run_job_tuned, EngineTuning, SliceChunk};
use gpmr_sim_gpu::GpuSpec;
use gpmr_sim_net::{Cluster, Topology};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = cfg.scale;
    println!("Ablation studies, scale divisor {scale}\n");

    // ---- 1. WO accumulation on/off -----------------------------------
    {
        let bytes = (64_000_000 / scale as usize).max(64 * 1024);
        let dict = shared_dictionary(scale);
        let text = corpus_for(&dict, bytes, cfg.seed);
        let gpus = 4;
        let chunks = chunk_text(&text, chunk_bytes(bytes as u64, gpus, scale));
        let mut rows = Vec::new();
        for (label, job) in [
            ("Accumulate (paper)", WoJob::new(dict.clone(), gpus)),
            (
                "Plain (no accumulation)",
                WoJob::new(dict.clone(), gpus).with_accumulation(false),
            ),
        ] {
            let mut cl = scaled_cluster(gpus, scale);
            let r = run_job(&mut cl, &job, chunks.clone()).unwrap();
            rows.push(vec![
                label.to_string(),
                format!("{}", r.timings.total),
                r.timings.pairs_shuffled.to_string(),
            ]);
        }
        println!("WO accumulation ablation (4 GPUs, 64M-byte-equivalent corpus):");
        println!(
            "{}",
            render(&["configuration", "runtime", "pairs shuffled"], &rows)
        );
    }

    // ---- 2. SIO pipeline modes ----------------------------------------
    {
        let elements = (32_000_000 / scale as usize).max(16 * 1024);
        let data = sio::generate_integers(elements, cfg.seed);
        let gpus = 4;
        let chunks = sio::sio_chunks(&data, chunk_bytes(4 * elements as u64, gpus, scale));
        let mut rows = Vec::new();
        for (label, mode) in [
            ("Plain (paper)", SioMode::Plain),
            ("Partial Reduction", SioMode::PartialReduce),
            ("Combine", SioMode::Combine),
        ] {
            let mut cl = scaled_cluster(gpus, scale);
            let r = run_job(&mut cl, &SioJob::with_mode(mode), chunks.clone()).unwrap();
            rows.push(vec![
                label.to_string(),
                format!("{}", r.timings.total),
                r.timings.pairs_shuffled.to_string(),
            ]);
        }
        println!("SIO pipeline-mode ablation (4 GPUs, 32M-element-equivalent, sparse keys):");
        println!(
            "{}",
            render(&["configuration", "runtime", "pairs shuffled"], &rows)
        );
    }

    // ---- 3. WO partitioner crossover ----------------------------------
    {
        let bytes = (64_000_000 / scale as usize).max(64 * 1024);
        let dict = shared_dictionary(scale);
        let text = corpus_for(&dict, bytes, cfg.seed);
        let mut rows = Vec::new();
        for gpus in [4u32, 16, 64] {
            let chunks = chunk_text(&text, chunk_bytes(bytes as u64, gpus, scale));
            let mut cells = vec![format!("{gpus} GPUs")];
            for (_, crossover) in [("never", u32::MAX), ("default", 8), ("always", 0)] {
                let job = WoJob::new(dict.clone(), gpus).with_crossover(crossover);
                let mut cl = scaled_cluster(gpus, scale);
                let r = run_job(&mut cl, &job, chunks.clone()).unwrap();
                cells.push(format!("{}", r.timings.total));
            }
            rows.push(cells);
        }
        println!("WO partitioner crossover (single reducer vs round-robin):");
        println!(
            "{}",
            render(
                &[
                    "cluster",
                    "partition never",
                    "crossover 8 (paper)",
                    "partition always"
                ],
                &rows
            )
        );
    }

    // ---- 4. KMC FP atomics (GT200 pools vs Fermi atomics) -------------
    {
        let points = (8_000_000 / scale as usize).max(16 * 1024);
        let centers = kmc::initial_centers(KMC_CENTERS, cfg.seed);
        let data = kmc::generate_points(points, KMC_CENTERS, cfg.seed + 1);
        let chunk_items = chunk_bytes(16 * points as u64, 1, scale) / 16;
        let chunks = SliceChunk::split(&data, chunk_items.max(1));
        let mut rows = Vec::new();
        for (label, spec) in [
            ("GT200 (per-block pools)", GpuSpec::gt200()),
            ("Fermi (FP atomics)", GpuSpec::fermi()),
        ] {
            let mut cl = Cluster::custom_scaled(
                Topology::accelerator(1),
                spec.scaled(scale as f64),
                scale as f64,
            );
            let r = run_job(&mut cl, &KmcJob::new(centers.clone()), chunks.clone()).unwrap();
            rows.push(vec![label.to_string(), format!("{}", r.timings.total)]);
        }
        println!("KMC atomic-free accumulation (1 GPU, 8M-point-equivalent):");
        println!("{}", render(&["device", "runtime"], &rows));
    }

    // ---- 6. Round-robin vs consecutive-blocks partitioning ------------
    {
        let elements = (32_000_000 / scale as usize).max(16 * 1024);
        let gpus = 8;
        // Uniform keys: both distributions balance. Skewed keys (all in
        // the bottom 1/8th of the key space): blocks collapse onto rank 0.
        let uniform = sio::generate_integers(elements, cfg.seed);
        let max_key = u64::from(*uniform.iter().max().unwrap_or(&1));
        let skewed: Vec<u32> = uniform.iter().map(|k| k / 8).collect();
        let chunksz = chunk_bytes(4 * elements as u64, gpus, scale);
        let mut rows = Vec::new();
        for (label, data) in [("uniform keys", &uniform), ("skewed keys", &skewed)] {
            let mut cells = vec![label.to_string()];
            for blocks in [false, true] {
                let job = if blocks {
                    SioJob::default().with_block_partition(max_key)
                } else {
                    SioJob::default()
                };
                let mut cl = scaled_cluster(gpus, scale);
                let r = run_job(&mut cl, &job, sio::sio_chunks(data, chunksz)).unwrap();
                cells.push(format!("{}", r.timings.total));
            }
            rows.push(cells);
        }
        println!("SIO pair distribution (8 GPUs): round-robin vs consecutive blocks:");
        println!("{}", render(&["key set", "round-robin", "blocks"], &rows));
    }

    // ---- 7. Chunk-size sweep -------------------------------------------
    {
        let elements = (32_000_000 / scale as usize).max(64 * 1024);
        let data = sio::generate_integers(elements, cfg.seed);
        let gpus = 4;
        let total_bytes = 4 * elements;
        let mut rows = Vec::new();
        for divisor in [1usize, 4, 16, 64, 256, 1024] {
            let chunksz = (total_bytes / (gpus as usize * divisor)).max(1024);
            let chunks = sio::sio_chunks(&data, chunksz);
            let n_chunks = chunks.len();
            let mut cl = scaled_cluster(gpus, scale);
            let r = run_job(&mut cl, &SioJob::default(), chunks).unwrap();
            rows.push(vec![
                format!("{} kB", chunksz / 1024),
                n_chunks.to_string(),
                format!("{}", r.timings.total),
            ]);
        }
        println!("SIO chunk-size sweep (4 GPUs, 32M-element-equivalent):");
        println!("{}", render(&["chunk size", "chunks", "runtime"], &rows));
    }

    // ---- 8. Sorter choice: radix vs bitonic -----------------------------
    {
        let elements = (32_000_000 / scale as usize).max(64 * 1024);
        let data = sio::generate_integers(elements, cfg.seed);
        let gpus = 4;
        let chunks = sio::sio_chunks(&data, chunk_bytes(4 * elements as u64, gpus, scale));
        let mut rows = Vec::new();
        for (label, job) in [
            ("radix (CUDPP default)", SioJob::default()),
            ("bitonic (fallback)", SioJob::default().with_bitonic_sort()),
        ] {
            let mut cl = scaled_cluster(gpus, scale);
            let r = run_job(&mut cl, &job, chunks.clone()).unwrap();
            let sort_pct = r.timings.mean_percentages()[2];
            rows.push(vec![
                label.to_string(),
                format!("{}", r.timings.total),
                format!("{sort_pct:.1}%"),
            ]);
        }
        println!("SIO sorter choice (4 GPUs, 32M-element-equivalent):");
        println!("{}", render(&["sorter", "runtime", "sort share"], &rows));
    }

    // ---- 9. Dynamic vs static scheduling --------------------------------
    {
        let elements = (32_000_000 / scale as usize).max(128 * 1024);
        let data = sio::generate_integers(elements, cfg.seed);
        let gpus = 8u32;
        // Pile the big chunks onto rank 0's queue (round-robin assigns
        // chunk i to rank i % gpus).
        let split = elements * 4 / 5;
        let mut heavy =
            sio::sio_chunks(&data[..split], chunk_bytes(4 * split as u64, 2, scale)).into_iter();
        let mut light =
            sio::sio_chunks(&data[split..], 4 * 1024 / scale.max(1) as usize + 1024).into_iter();
        let mut chunks = Vec::new();
        let mut i = 0usize;
        loop {
            let next = if i.is_multiple_of(gpus as usize) {
                heavy.next().or_else(|| light.next())
            } else {
                light.next().or_else(|| heavy.next())
            };
            match next {
                Some(c) => chunks.push(c),
                None => break,
            }
            i += 1;
        }
        let mut rows = Vec::new();
        for (label, tuning) in [
            ("dynamic (stealing)", EngineTuning::default()),
            (
                "static assignment",
                EngineTuning {
                    allow_stealing: false,
                    ..EngineTuning::default()
                },
            ),
        ] {
            let mut cl = scaled_cluster(gpus, scale);
            let r = run_job_tuned(&mut cl, &SioJob::default(), chunks.clone(), &tuning).unwrap();
            rows.push(vec![
                label.to_string(),
                format!("{}", r.timings.total),
                r.timings.chunks_stolen.to_string(),
            ]);
        }
        println!("SIO scheduling under skewed queues (8 GPUs):");
        println!(
            "{}",
            render(&["scheduler", "runtime", "chunks stolen"], &rows)
        );
        println!("(On a transfer-bound job like SIO, migrating a chunk costs about as");
        println!("much as mapping it, so stealing roughly breaks even — the dynamic");
        println!("scheduler pays off on compute-bound work, never hurts here.)\n");
    }

    // ---- 5. PCI-e link sharing ----------------------------------------
    {
        let samples = (64_000_000 / scale as usize).max(16 * 1024);
        let data = lr::generate_samples(samples, 2.0, -1.0, cfg.seed);
        let chunk_items = chunk_bytes(8 * samples as u64, 4, scale) / 8;
        let chunks = SliceChunk::split(&data, chunk_items.max(1));
        let mut rows = Vec::new();
        for (label, links) in [("dedicated links", 4u32), ("S1070 paired links", 2)] {
            let topo = Topology::new(1, 4, links);
            let mut cl =
                Cluster::custom_scaled(topo, GpuSpec::gt200().scaled(scale as f64), scale as f64);
            let r = run_job(&mut cl, &LrJob, chunks.clone()).unwrap();
            rows.push(vec![label.to_string(), format!("{}", r.timings.total)]);
        }
        println!("LR under PCI-e link sharing (4 GPUs, one node, 64M-sample-equivalent):");
        println!("{}", render(&["host wiring", "runtime"], &rows));
    }
}
