//! What-if study: GPU-direct networking — the hardware the paper's
//! conclusion asks vendors for ("allow sourcing and sinking by the GPU
//! for network I/O ... GPMR would benefit by moving intermediate data
//! between nodes without having to route through CPU memory").
//!
//! Compares every benchmark with and without GPU-direct across cluster
//! sizes. Expectation: shuffle-heavy jobs (SIO, plain WO) gain the most;
//! accumulation jobs (KMC, LR) barely move because they already minimized
//! the intermediate data.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin whatif_gpu_direct [--scale N]`

use gpmr_apps::lr::{self, LrJob};
use gpmr_apps::sio::{self, SioJob};
use gpmr_apps::text::chunk_text;
use gpmr_apps::wo::WoJob;
use gpmr_bench::harness::chunk_bytes;
use gpmr_bench::runners::corpus_for;
use gpmr_bench::table::{render, speedup_cell};
use gpmr_bench::{shared_dictionary, HarnessConfig};
use gpmr_core::{run_job, GpmrJob, SliceChunk};
use gpmr_sim_gpu::{GpuSpec, SimDuration};
use gpmr_sim_net::Cluster;

fn timed<J: GpmrJob>(
    gpus: u32,
    scale: u64,
    direct: bool,
    job: &J,
    chunks: Vec<J::Chunk>,
) -> SimDuration {
    let mut cluster =
        Cluster::accelerator_scaled(gpus, GpuSpec::gt200(), scale as f64).with_gpu_direct(direct);
    run_job(&mut cluster, job, chunks)
        .expect("job failed")
        .timings
        .total
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = cfg.scale;
    println!("What-if: GPU-direct networking (paper §7 future work), scale divisor {scale}\n");

    let headers = ["benchmark", "GPUs", "host-staged", "GPU-direct", "gain x"];
    let mut rows = Vec::new();

    for gpus in [8u32, 32] {
        // SIO: the full pair volume crosses PCI-e twice without GPU-direct.
        let elements = (32_000_000 / scale as usize).max(64 * 1024);
        let data = sio::generate_integers(elements, cfg.seed);
        let chunks = sio::sio_chunks(&data, chunk_bytes(4 * elements as u64, gpus, scale));
        let base = timed(gpus, scale, false, &SioJob::default(), chunks.clone());
        let direct = timed(gpus, scale, true, &SioJob::default(), chunks);
        rows.push(row("SIO", gpus, base, direct));

        // Plain WO (no accumulation): shuffle-heavy text counting.
        let bytes = (64_000_000 / scale as usize).max(64 * 1024);
        let dict = shared_dictionary(scale);
        let text = corpus_for(&dict, bytes, cfg.seed);
        let wo_chunks = chunk_text(&text, chunk_bytes(bytes as u64, gpus, scale));
        let job = WoJob::new(dict.clone(), gpus).with_accumulation(false);
        let base = timed(gpus, scale, false, &job, wo_chunks.clone());
        let direct = timed(gpus, scale, true, &job, wo_chunks);
        rows.push(row("WO (plain)", gpus, base, direct));

        // LR: accumulation already minimized communication — control case.
        let samples = (64_000_000 / scale as usize).max(64 * 1024);
        let lrdata = lr::generate_samples(samples, 2.0, -1.0, cfg.seed);
        let lr_chunks =
            SliceChunk::split(&lrdata, chunk_bytes(8 * samples as u64, gpus, scale) / 8);
        let base = timed(gpus, scale, false, &LrJob, lr_chunks.clone());
        let direct = timed(gpus, scale, true, &LrJob, lr_chunks);
        rows.push(row("LR (accum)", gpus, base, direct));
    }
    println!("{}", render(&headers, &rows));
    println!("Expected shape: shuffle-heavy jobs (SIO, plain WO) gain noticeably;");
    println!("accumulation jobs are a control — their intermediate data is already");
    println!("tiny, so GPU-direct buys almost nothing (the paper's own reasoning).");
}

fn row(name: &str, gpus: u32, base: SimDuration, direct: SimDuration) -> Vec<String> {
    vec![
        name.to_string(),
        gpus.to_string(),
        format!("{base}"),
        format!("{direct}"),
        speedup_cell(base.as_secs() / direct.as_secs().max(1e-12)),
    ]
}
