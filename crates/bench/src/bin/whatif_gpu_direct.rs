//! GPU-direct networking — the hardware the paper's conclusion asks
//! vendors for ("allow sourcing and sinking by the GPU for network I/O
//! ... GPMR would benefit by moving intermediate data between nodes
//! without having to route through CPU memory").
//!
//! GPU-direct is a first-class engine mode now (`gpmr run --gpu-direct`,
//! `EngineTuning::gpu_direct`), so this binary is a thin wrapper over the
//! perf-gate scenarios that pin it: it runs each 8-rank scenario in both
//! transfer modes through the same `bench::perf` code path the CI gate
//! uses, so the what-if table and the gate can never drift apart.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin whatif_gpu_direct [--scale N]`

use gpmr_bench::perf::{run_scenario, scenario};
use gpmr_bench::table::{render, speedup_cell};
use gpmr_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = cfg.scale;
    println!("What-if: GPU-direct networking (paper §7 future work), scale divisor {scale}\n");

    let headers = ["scenario", "GPUs", "host-staged", "GPU-direct", "gain x"];
    let mut rows = Vec::new();
    for (staged, direct) in [
        ("wo_8rank", "wo_8rank_direct"),
        ("sio_8rank", "sio_8rank_direct"),
    ] {
        let base = scenario(staged).expect("gate scenario");
        let with = scenario(direct).expect("gate scenario");
        let (b, _) = run_scenario(&base, scale);
        let (d, _) = run_scenario(&with, scale);
        rows.push(vec![
            staged.to_string(),
            base.gpus.to_string(),
            format!("{:.3} ms", b.makespan_ns as f64 / 1e6),
            format!("{:.3} ms", d.makespan_ns as f64 / 1e6),
            speedup_cell(b.makespan_ns as f64 / d.makespan_ns.max(1) as f64),
        ]);
    }
    println!("{}", render(&headers, &rows));
    println!("Expected shape: the shuffle-heavy SIO job gains the most; WO under");
    println!("accumulation has already minimized its intermediate data, so");
    println!("GPU-direct buys it less (the paper's own reasoning).");
}
