//! Table 3: GPMR speedup over Mars (1 GPU and 4 GPUs) on the largest
//! problems that satisfy Mars's in-core requirement: 4096x4096 MM, an
//! 8 M-point K-Means, and a 512 MB Word Occurrence.
//!
//! Mars gets the card's full 4 GB (the paper's 1 GB cap is a GPMR test
//! restriction; Mars needs the head-room to hold its intermediate pairs).
//!
//! Usage: `cargo run --release -p gpmr-bench --bin table3_mars [--scale N]`

use gpmr_apps::datasets::mm_dim_factor;
use gpmr_apps::mm::Matrix;
use gpmr_apps::{kmc, text, Benchmark};
use gpmr_baselines::mars::run_mars;
use gpmr_baselines::mars_apps::{mars_mm, MarsKmc, MarsWo};
use gpmr_bench::table::{render, speedup_cell};
use gpmr_bench::{run_kmc, run_mm_bench, run_wo, shared_dictionary, HarnessConfig};
use gpmr_sim_gpu::{Gpu, GpuSpec, PcieLink, SharedLink, SimDuration};

const MARS_CAPACITY: u64 = 4 << 30;

/// A standalone Mars GPU with uniformly scaled hardware and the full 4 GB.
fn mars_gpu(scale: f64) -> Gpu {
    let spec = GpuSpec::gt200()
        .with_mem_capacity(MARS_CAPACITY)
        .scaled(scale);
    Gpu::with_link(spec, SharedLink::new(PcieLink::gen1_x16().scaled(scale)))
}

/// A Mars GPU under the MM scaling law (compute d^3, traffic/capacity d^2).
fn mars_gpu_mm(d: u64) -> Gpu {
    let d2 = (d * d) as f64;
    let d3 = d2 * d as f64;
    let mut spec = GpuSpec::gt200().with_mem_capacity(MARS_CAPACITY);
    spec.clock_ghz /= d3;
    spec.mem_bandwidth /= d3;
    spec.atomic_throughput /= d3;
    spec.mem_capacity = ((spec.mem_capacity as f64 / d2) as u64).max(1 << 20);
    Gpu::with_link(spec, SharedLink::new(PcieLink::gen1_x16().scaled(d2)))
}

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Table 3 — GPMR speedup over Mars, scale divisor {} (paper values in parens)\n",
        cfg.scale
    );

    let headers = [
        "benchmark",
        "Mars",
        "GPMR 1-GPU",
        "GPMR 4-GPU",
        "1-GPU x (paper)",
        "4-GPU x (paper)",
    ];
    let mut rows = Vec::new();

    // --- MM on 4096^2 (paper strong size index 2). --------------------
    {
        let w = gpmr_apps::strong_workload(Benchmark::Mm, 2, cfg.scale, cfg.seed);
        let d = mm_dim_factor(cfg.scale);
        let a = Matrix::random(w.size as usize, w.seed);
        let b = Matrix::random(w.size as usize, w.seed + 1);
        let mut gpu = mars_gpu_mm(d);
        let (_, mars_t) = mars_mm(&mut gpu, &a, &b).expect("Mars MM must fit in core");
        let g1 = run_mm_bench(1, w.size as usize, cfg.scale, w.seed).time;
        let g4 = run_mm_bench(4, w.size as usize, cfg.scale, w.seed).time;
        rows.push(row("MM", mars_t, g1, g4, 2.695, 10.760));
    }

    // --- KMC on 8M points (paper strong size index 1). -----------------
    {
        let w = gpmr_apps::strong_workload(Benchmark::Kmc, 1, cfg.scale, cfg.seed);
        let centers = kmc::initial_centers(gpmr_bench::runners::KMC_CENTERS, w.seed);
        let points = kmc::generate_points(
            w.size as usize,
            gpmr_bench::runners::KMC_CENTERS,
            w.seed + 1,
        );
        let mut gpu = mars_gpu(cfg.scale as f64);
        let mars_t = run_mars(&mut gpu, &MarsKmc::new(centers), &points)
            .expect("Mars KMC must fit in core")
            .time;
        let g1 = run_kmc(1, w.size as usize, cfg.scale, w.seed).time;
        let g4 = run_kmc(4, w.size as usize, cfg.scale, w.seed).time;
        rows.push(row("KMC", mars_t, g1, g4, 37.344, 129.425));
    }

    // --- WO on 512 MB of text (paper strong size index 3). -------------
    {
        let w = gpmr_apps::strong_workload(Benchmark::Wo, 3, cfg.scale, cfg.seed);
        let dict = shared_dictionary(cfg.scale);
        let corpus = text::generate_text(&dict, w.size as usize, w.seed);
        let mut gpu = mars_gpu(cfg.scale as f64);
        let mars_t = run_mars(&mut gpu, &MarsWo::new(dict.clone()), &corpus)
            .expect("Mars WO must fit in core")
            .time;
        let g1 = run_wo(1, w.size as usize, cfg.scale, &dict, w.seed).time;
        let g4 = run_wo(4, w.size as usize, cfg.scale, &dict, w.seed).time;
        rows.push(row("WO", mars_t, g1, g4, 3.098, 11.709));
    }

    println!("{}", render(&headers, &rows));
    println!("Expected shape: GPMR 1-GPU beats Mars everywhere; KMC's gap is the");
    println!("largest (Mars ships a fat pair per point through a bitonic sort,");
    println!("GPMR accumulates on-GPU); all gaps widen ~4x with 4 GPUs.");
}

fn row(
    name: &str,
    mars: SimDuration,
    g1: SimDuration,
    g4: SimDuration,
    paper1: f64,
    paper4: f64,
) -> Vec<String> {
    let ratio = |b: SimDuration| {
        if b.as_secs() <= 0.0 {
            0.0
        } else {
            mars.as_secs() / b.as_secs()
        }
    };
    vec![
        name.to_string(),
        format!("{mars}"),
        format!("{g1}"),
        format!("{g4}"),
        format!("{} ({paper1})", speedup_cell(ratio(g1))),
        format!("{} ({paper4})", speedup_cell(ratio(g4))),
    ]
}
