//! Table 4: lines of source code per benchmark implementation. The paper
//! compares Phoenix/Mars/GPMR on MM, KMC, and WO (setup excluded,
//! boilerplate included); this harness counts the real line counts of the
//! corresponding implementations in this repository and prints the
//! paper's reported numbers alongside.
//!
//! Usage: `cargo run -p gpmr-bench --bin table4_loc`

use gpmr_bench::loc::count_file;
use gpmr_bench::table::render;

fn main() {
    println!("Table 4 — benchmark source lines of code\n");

    // (name, paper Phoenix, paper Mars, paper GPMR, our GPMR files).
    // The paper's WO count includes its hashing machinery, which lives in
    // mph.rs here; MM includes the Matrix/tile plumbing, as the paper's
    // MM included its tiling boilerplate.
    let entries: [(&str, i32, i32, i32, &[&str]); 5] = [
        ("MM", 317, 235, 214, &["apps/src/mm.rs"]),
        ("KMC", 345, 152, 129, &["apps/src/kmc.rs"]),
        ("WO", 231, 140, 397, &["apps/src/wo.rs", "apps/src/mph.rs"]),
        ("SIO", 0, 0, 0, &["apps/src/sio.rs"]),
        ("LR", 0, 0, 0, &["apps/src/lr.rs"]),
    ];

    let headers = [
        "benchmark",
        "Phoenix (paper)",
        "Mars (paper)",
        "GPMR (paper)",
        "this repo (GPMR port)",
    ];
    let mut rows = Vec::new();
    for (name, phx, mars, gpmr, files) in entries {
        let ours = files
            .iter()
            .map(|f| count_file(f))
            .sum::<Result<usize, _>>()
            .map(|n| n.to_string())
            .unwrap_or_else(|e| format!("error: {e}"));
        let cell = |v: i32| {
            if v == 0 {
                "—".to_string()
            } else {
                v.to_string()
            }
        };
        rows.push(vec![
            name.to_string(),
            cell(phx),
            cell(mars),
            cell(gpmr),
            ours,
        ]);
    }
    println!("{}", render(&headers, &rows));
    println!("Counting rule: non-blank, non-comment lines before the test module;");
    println!("WO includes its minimal-perfect-hash machinery (as the paper's 397-");
    println!("line count did). The paper's qualitative point survives the port:");
    println!("hashing makes WO heavyweight while SIO/KMC stay compact; MM carries");
    println!("its tiling plumbing.");
}
