//! Figure 3: GPMR parallel efficiency for MM, SIO, WO, KMC, and LR —
//! strong-scaling set one, efficiency = speedup / #GPUs.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin fig3_efficiency
//! [--scale N] [--csv]` — `--csv` appends machine-readable rows
//! (`benchmark,paper_size,gpus,seconds,efficiency`) for plotting.

use gpmr_apps::Benchmark;
use gpmr_bench::plot::{render_chart, Series};
use gpmr_bench::table::{efficiency_cell, render};
use gpmr_bench::{
    run_kmc, run_lr, run_mm_bench, run_sio, run_wo, shared_dictionary, HarnessConfig,
};
use gpmr_core::efficiency;
use gpmr_sim_gpu::SimDuration;

fn main() {
    let cfg = HarnessConfig::from_args();
    let want_csv = gpmr_bench::harness::parse_flag("--csv");
    let mut csv = String::from("benchmark,paper_size,gpus,seconds,efficiency\n");
    println!(
        "Figure 3 — GPMR parallel efficiency (strong scaling), scale divisor {}\n",
        cfg.scale
    );

    for bench in Benchmark::ALL {
        let gpu_counts = if bench == Benchmark::Mm {
            cfg.mm_gpu_counts()
        } else {
            cfg.gpu_counts.clone()
        };
        // The paper plots the largest sizes; MM uses its top three.
        let sizes = bench.strong_sizes();
        let size_idx: Vec<usize> = if bench == Benchmark::Mm {
            vec![1, 2, 3]
        } else {
            (0..sizes.len()).collect()
        };

        let mut headers: Vec<String> = vec![format!("{} input", bench.name())];
        headers.extend(gpu_counts.iter().map(|g| format!("{g} GPU")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

        let mut rows = Vec::new();
        let mut chart_series: Vec<Series> = Vec::new();
        for &si in &size_idx {
            let w = gpmr_apps::strong_workload(bench, si, cfg.scale, cfg.seed);
            let label = match bench {
                Benchmark::Mm => format!("{0}x{0} (paper {1}x{1})", w.size, sizes[si]),
                _ => format!("{} (paper {}M)", human(w.size), sizes[si]),
            };
            let mut t1 = SimDuration::ZERO;
            let mut points = Vec::new();
            let mut cells = vec![label.clone()];
            for &g in &gpu_counts {
                let out = run_one(bench, g, cfg.scale, &w);
                if g == 1 {
                    t1 = out;
                }
                let eff = efficiency(t1, out, g);
                points.push((f64::from(g), eff));
                cells.push(efficiency_cell(eff));
                csv.push_str(&format!(
                    "{},{},{g},{:.9},{eff:.4}\n",
                    bench.name(),
                    sizes[si],
                    out.as_secs()
                ));
            }
            rows.push(cells);
            chart_series.push(Series { label, points });
        }
        println!("{}", render(&header_refs, &rows));
        println!("{}", render_chart(&chart_series, 64, 12, 1.3));
    }
    if want_csv {
        println!("--- CSV ---");
        print!("{csv}");
    }
    println!("Expected shapes (paper §6): MM near-perfect; SIO super-linear at 4 GPUs");
    println!("(in-core crossover) then network-bound decay; WO recovers past the");
    println!("partitioner crossover; KMC >60% at 64 GPUs; LR flat past one node.");
}

fn run_one(bench: Benchmark, gpus: u32, scale: u64, w: &gpmr_apps::Workload) -> SimDuration {
    match bench {
        Benchmark::Mm => run_mm_bench(gpus, w.size as usize, scale, w.seed).time,
        Benchmark::Sio => run_sio(gpus, w.size as usize, scale, w.seed).time,
        Benchmark::Wo => {
            let dict = shared_dictionary(scale);
            run_wo(gpus, w.size as usize, scale, &dict, w.seed).time
        }
        Benchmark::Kmc => run_kmc(gpus, w.size as usize, scale, w.seed).time,
        Benchmark::Lr => run_lr(gpus, w.size as usize, scale, w.seed).time,
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
