//! Record the perf-gate baseline: run the WO + SIO scenario suite —
//! 1/4/8 ranks plus the GPU-direct and pipelining-off variants at 8
//! ranks — analyze each run (critical path, stage attribution,
//! imbalance), and write the baseline set JSON.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin bench_pr6 \
//!         [--scale N] [--out FILE]`
//! Writes `BENCH_PR6.json` (or `FILE`) in the current directory. CI's
//! `perf-gate` job diffs a fresh recording against the committed file with
//! `gpmr perf diff`; all values are simulated-time and deterministic, so
//! the diff is exact on an unchanged tree.
//!
//! Alongside the deterministic suite, the recorder prints the host
//! wall-clock sort throughput (1M u32 pairs through `sort_pairs`, in
//! Melem/s). That number is machine-dependent, so it goes to stdout only
//! — never into the baseline JSON.

use std::time::Instant;

use gpmr_bench::parse_scale;
use gpmr_bench::perf::record_suite;
use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};

/// Host wall-clock throughput of the radix-sort hot path, in Melem/s.
fn sort_throughput_melem_s() -> f64 {
    let n = 1usize << 20;
    let keys: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let vals: Vec<u32> = (0..n as u32).collect();
    let mut gpu = Gpu::new(GpuSpec::gt200());
    gpmr_primitives::sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap(); // warm-up
    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            gpmr_primitives::sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap(),
        );
    }
    (reps * n) as f64 / t.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let scale = parse_scale();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());

    println!("perf-gate suite (scale {scale})...");
    let set = record_suite(scale, |b, a| {
        println!(
            "  {:<16} makespan {:>10.6}s  bounding {:<5} {:>5.1}%  imbalance CV {:.3}  \
             {} path segments",
            b.name,
            a.makespan_s,
            b.bounding_stage,
            a.bounding_share * 100.0,
            b.imbalance_cv,
            a.critical_path.len(),
        );
    });
    println!(
        "sort throughput  {:.1} Melem/s (host wall-clock, 1M u32 pairs; not recorded)",
        sort_throughput_melem_s()
    );
    std::fs::write(&out, set.to_json()).expect("write baseline set");
    println!("wrote {out}");
}
