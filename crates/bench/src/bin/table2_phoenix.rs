//! Table 2: GPMR speedup over Phoenix (1 GPU and 4 GPUs, single node) on
//! the second-largest strong-scaling inputs — except MM, which uses the
//! small input set (the paper: Phoenix needed ~20 s for a 1024x1024
//! multiply).
//!
//! Usage: `cargo run --release -p gpmr-bench --bin table2_phoenix [--scale N]`

use gpmr_apps::datasets::mm_dim_factor;
use gpmr_apps::mm::Matrix;
use gpmr_apps::{kmc, lr, sio, strong_workload, text, Benchmark};
use gpmr_baselines::phoenix::{run_phoenix, PhoenixConfig};
use gpmr_baselines::phoenix_apps::{phoenix_mm, PhoenixKmc, PhoenixLr, PhoenixSio, PhoenixWo};
use gpmr_bench::table::{render, speedup_cell};
use gpmr_bench::{
    run_kmc, run_lr, run_mm_bench, run_sio, run_wo, shared_dictionary, HarnessConfig,
};
use gpmr_sim_gpu::SimDuration;
use gpmr_sim_net::CpuSpec;

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Table 2 — GPMR speedup over Phoenix, scale divisor {} (paper values in parens)\n",
        cfg.scale
    );

    // Phoenix runs on one node with hardware scaled like the GPMR side.
    let cpu = CpuSpec::dual_opteron_2216().scaled(cfg.scale as f64);
    let phx = PhoenixConfig {
        cpu,
        task_items: 16 * 1024,
    };

    // (benchmark, strong-size index, paper 1-GPU, paper 4-GPU)
    let entries: [(Benchmark, usize, f64, f64); 5] = [
        (Benchmark::Mm, 0, 162.712, 559.209),
        (Benchmark::Kmc, 2, 2.991, 11.726),
        (Benchmark::Lr, 2, 1.296, 4.085),
        (Benchmark::Sio, 2, 1.450, 2.322),
        (Benchmark::Wo, 2, 11.080, 18.441),
    ];

    let headers = [
        "benchmark",
        "Phoenix",
        "GPMR 1-GPU",
        "GPMR 4-GPU",
        "1-GPU x (paper)",
        "4-GPU x (paper)",
    ];
    let mut rows = Vec::new();
    for (bench, idx, paper1, paper4) in entries {
        let w = strong_workload(bench, idx, cfg.scale, cfg.seed);
        let (phoenix_t, g1, g4) = match bench {
            Benchmark::Mm => {
                let a = Matrix::random(w.size as usize, w.seed);
                let b = Matrix::random(w.size as usize, w.seed + 1);
                // Phoenix MM scales uniformly by d^3 (compute and naive
                // vector-vector traffic are both n^3).
                let d = mm_dim_factor(cfg.scale) as f64;
                let mm_cpu = CpuSpec::dual_opteron_2216().scaled(d * d * d);
                let (_, t) = phoenix_mm(&mm_cpu, &a, &b);
                (
                    t,
                    run_mm_bench(1, w.size as usize, cfg.scale, w.seed).time,
                    run_mm_bench(4, w.size as usize, cfg.scale, w.seed).time,
                )
            }
            Benchmark::Sio => {
                let data = sio::generate_integers(w.size as usize, w.seed);
                let t = run_phoenix(&phx, &PhoenixSio, &data).time;
                (
                    t,
                    run_sio(1, w.size as usize, cfg.scale, w.seed).time,
                    run_sio(4, w.size as usize, cfg.scale, w.seed).time,
                )
            }
            Benchmark::Wo => {
                let dict = shared_dictionary(cfg.scale);
                let corpus = text::generate_text(&dict, w.size as usize, w.seed);
                let t = run_phoenix(&phx, &PhoenixWo::new(dict.clone()), &corpus).time;
                (
                    t,
                    run_wo(1, w.size as usize, cfg.scale, &dict, w.seed).time,
                    run_wo(4, w.size as usize, cfg.scale, &dict, w.seed).time,
                )
            }
            Benchmark::Kmc => {
                let centers = kmc::initial_centers(gpmr_bench::runners::KMC_CENTERS, w.seed);
                let points = kmc::generate_points(
                    w.size as usize,
                    gpmr_bench::runners::KMC_CENTERS,
                    w.seed + 1,
                );
                let t = run_phoenix(&phx, &PhoenixKmc::new(centers), &points).time;
                (
                    t,
                    run_kmc(1, w.size as usize, cfg.scale, w.seed).time,
                    run_kmc(4, w.size as usize, cfg.scale, w.seed).time,
                )
            }
            Benchmark::Lr => {
                let samples = lr::generate_samples(w.size as usize, 2.0, -1.0, w.seed);
                let t = run_phoenix(&phx, &PhoenixLr, &samples).time;
                (
                    t,
                    run_lr(1, w.size as usize, cfg.scale, w.seed).time,
                    run_lr(4, w.size as usize, cfg.scale, w.seed).time,
                )
            }
        };
        rows.push(vec![
            bench.name().to_string(),
            format!("{phoenix_t}"),
            format!("{g1}"),
            format!("{g4}"),
            format!("{} ({paper1})", speedup_cell(ratio(phoenix_t, g1))),
            format!("{} ({paper4})", speedup_cell(ratio(phoenix_t, g4))),
        ]);
    }
    println!("{}", render(&headers, &rows));
    println!("Expected shape: GPMR beats Phoenix on every benchmark at 1 GPU and");
    println!("scales further at 4; MM's gap is by far the largest.");
}

fn ratio(a: SimDuration, b: SimDuration) -> f64 {
    if b.as_secs() <= 0.0 {
        0.0
    } else {
        a.as_secs() / b.as_secs()
    }
}
