//! Before/after summary for the persistent-worker-pool PR: measures
//! kernel launch overhead under the pooled and spawn-per-launch backends,
//! sort and shuffle throughput, and wall-clock for a representative
//! Figure-3 Word Occurrence point at 1 and 8 GPUs under both backends —
//! while asserting that simulated times are bit-identical between them.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin bench_pr1 [--scale N]`
//! Writes `BENCH_PR1.json` in the current directory.
//!
//! Units are tagged in field names: `_ns` fields are host wall-clock
//! nanoseconds (`Instant`-measured), `_sim_s` fields are simulated
//! seconds (`SimDuration`). The untagged `wall_ms_*`/`simulated_s`
//! fields are schema-compatibility aliases for the original PR-1 JSON
//! and carry the same values in milliseconds/seconds.

use std::sync::Arc;
use std::time::Instant;

use gpmr_apps::text::{chunk_text, generate_text, Dictionary};
use gpmr_apps::wo::WoJob;
use gpmr_bench::{parse_scale, run_wo, shared_dictionary, RunOutcome};
use gpmr_core::{run_job, run_job_instrumented, EngineTuning, KvSet};
use gpmr_sim_gpu::{set_exec_backend, ExecBackend, Gpu, GpuSpec, LaunchConfig, SimTime};
use gpmr_sim_net::{Cluster, Topology};
use gpmr_telemetry::Telemetry;

/// One cheap 64-block kernel; wall time is dominated by block dispatch.
fn tiny_launch(gpu: &mut Gpu) -> usize {
    let cfg = LaunchConfig::for_items(4096, 64, 64);
    let (launch, _) = gpu
        .launch(SimTime::ZERO, &cfg, |ctx| {
            let r = ctx.item_range(4096);
            ctx.charge_flops(r.len() as u64);
            r.len()
        })
        .expect("launch");
    launch.outputs.into_iter().sum()
}

/// Median wall nanoseconds per launch under `backend`.
fn launch_ns(backend: ExecBackend) -> f64 {
    set_exec_backend(backend);
    let mut gpu = Gpu::new(GpuSpec::gt200());
    gpu.worker_threads = 4; // force the parallel path on 1-core machines
    for _ in 0..50 {
        tiny_launch(&mut gpu); // warm-up (lazy pool spawn, page faults)
    }
    let mut samples: Vec<f64> = (0..30)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..20 {
                tiny_launch(&mut gpu);
            }
            t.elapsed().as_nanos() as f64 / 20.0
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    set_exec_backend(ExecBackend::Pool);
    samples[samples.len() / 2]
}

/// Wall milliseconds and outcome of one WO fig-3 point under `backend`.
fn wo_point(gpus: u32, bytes: usize, scale: u64, backend: ExecBackend) -> (f64, RunOutcome) {
    set_exec_backend(backend);
    let dict = shared_dictionary(scale);
    let t = Instant::now();
    let out = run_wo(gpus, bytes, scale, &dict, 0x47504d52);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    set_exec_backend(ExecBackend::Pool);
    (wall_ms, out)
}

/// Per-rank outputs of a small 4-rank WO job under `backend`.
fn wo_outputs(backend: ExecBackend) -> Vec<KvSet<u32, u32>> {
    set_exec_backend(backend);
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    for rank in 0..4 {
        cluster.gpu(rank).worker_threads = 4;
    }
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let result = run_job(&mut cluster, &WoJob::new(dict, 4), chunks).expect("WO job");
    set_exec_backend(ExecBackend::Pool);
    result.outputs
}

fn main() {
    let scale = parse_scale();
    std::env::set_var("GPMR_WORKER_THREADS", "4");

    println!("launch overhead (64-block kernel, 4 workers)...");
    let spawn_ns = launch_ns(ExecBackend::Spawn);
    let pool_ns = launch_ns(ExecBackend::Pool);
    let speedup = spawn_ns / pool_ns;
    println!("  spawn {spawn_ns:.0} ns/launch, pool {pool_ns:.0} ns/launch, {speedup:.1}x");

    println!("sort throughput (1M u32 pairs)...");
    let n = 1 << 20;
    let keys: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let vals: Vec<u32> = (0..n as u32).collect();
    let mut gpu = Gpu::new(GpuSpec::gt200());
    gpmr_primitives::sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap(); // warm-up
    let t = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        gpmr_primitives::sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap();
    }
    let sort_melem_s = (reps * n) as f64 / t.elapsed().as_secs_f64() / 1e6;
    println!("  {sort_melem_s:.1} Melem/s");

    println!("shuffle throughput (512K pairs into 64 buckets)...");
    let m = 512 * 1024usize;
    let t = Instant::now();
    for _ in 0..reps {
        let pairs: KvSet<u32, u32> = KvSet::from_parts(keys[..m].to_vec(), vals[..m].to_vec());
        std::hint::black_box(gpmr_core::helpers::split_buckets(pairs, 64, |k| k % 64));
    }
    let shuffle_melem_s = (reps * m) as f64 / t.elapsed().as_secs_f64() / 1e6;
    println!("  {shuffle_melem_s:.1} Melem/s");

    println!("fig3 WO points (scale {scale}) under both backends...");
    let bytes = ((512usize << 20) / scale as usize).max(1 << 20);
    let mut fig3 = String::new();
    let mut all_identical = true;
    for gpus in [1u32, 8] {
        let (pool_ms, pool_out) = wo_point(gpus, bytes, scale, ExecBackend::Pool);
        let (spawn_ms, spawn_out) = wo_point(gpus, bytes, scale, ExecBackend::Spawn);
        let identical = pool_out.timings == spawn_out.timings;
        all_identical &= identical;
        println!(
            "  {gpus} GPU(s): pool {pool_ms:.0} ms wall, spawn {spawn_ms:.0} ms wall, \
             sim {} , identical sim times: {identical}",
            pool_out.time
        );
        // Unit-tagged fields first; `wall_ms_*`/`simulated_s` are kept as
        // schema-compatibility aliases for the original PR-1 JSON.
        fig3.push_str(&format!(
            "    {{\"gpus\": {gpus}, \"wall_ns_pool\": {:.0}, \
             \"wall_ns_spawn\": {:.0}, \"makespan_sim_s\": {sim_s:.6}, \
             \"wall_ms_pool\": {pool_ms:.1}, \
             \"wall_ms_spawn\": {spawn_ms:.1}, \"simulated_s\": {sim_s:.6}, \
             \"identical_sim_times\": {identical}}},\n",
            pool_ms * 1e6,
            spawn_ms * 1e6,
            sim_s = pool_out.time.as_secs(),
        ));
    }
    fig3.pop();
    fig3.pop(); // trailing ",\n"

    let outputs_identical = wo_outputs(ExecBackend::Pool) == wo_outputs(ExecBackend::Spawn);
    all_identical &= outputs_identical;
    println!("  outputs identical across backends: {outputs_identical}");
    assert!(
        all_identical,
        "backends diverged — the pool must not change results"
    );

    // Metric snapshot of one small instrumented run, embedded alongside
    // the timings (simulated-domain counters; no wall-clock units).
    println!("telemetry snapshot (small 4-rank WO job)...");
    let tel = Telemetry::enabled();
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    run_job_instrumented(
        &mut cluster,
        &WoJob::new(dict, 4),
        chunks,
        &EngineTuning::default(),
        &tel,
    )
    .expect("instrumented WO job");
    let snap = tel.snapshot();
    println!(
        "  {} spans, {} counter samples, {} chunks dispatched",
        snap.spans.len(),
        snap.samples.len(),
        snap.metrics.counter("engine.chunks_dispatched"),
    );
    let telemetry_json: String = snap
        .metrics
        .to_json()
        .lines()
        .map(|l| format!("  {l}\n"))
        .collect();
    let telemetry_json = telemetry_json.trim().to_string();

    let json = format!(
        "{{\n  \"pr\": 1,\n  \"scale\": {scale},\n  \"launch_overhead\": {{\n    \
         \"spawn_ns_per_launch\": {spawn_ns:.0},\n    \"pool_ns_per_launch\": {pool_ns:.0},\n    \
         \"speedup\": {speedup:.2}\n  }},\n  \
         \"sort_throughput_melem_per_s\": {sort_melem_s:.1},\n  \
         \"shuffle_split_melem_per_s\": {shuffle_melem_s:.1},\n  \
         \"fig3_wo_512mb\": [\n{fig3}\n  ],\n  \
         \"telemetry_small_wo_4rank\": {telemetry_json},\n  \
         \"outputs_identical_across_backends\": {outputs_identical}\n}}\n"
    );
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");
}
