//! Figure 2: GPMR runtime breakdowns (Map / Complete Binning / Sort /
//! Reduce / GPMR Internal-Scheduler) on the largest datasets at 1, 8, and
//! 64 GPUs.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin fig2_breakdown
//! [--scale N] [--csv]`

use gpmr_apps::{strong_workload, Benchmark};
use gpmr_bench::table::{percent_cell, render};
use gpmr_bench::{
    run_kmc, run_lr, run_mm_bench, run_sio, run_wo, shared_dictionary, HarnessConfig, RunOutcome,
};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Figure 2 — GPMR runtime breakdown on the largest datasets, scale divisor {}\n",
        cfg.scale
    );

    let want_csv = gpmr_bench::harness::parse_flag("--csv");
    let mut csv = String::from("benchmark,gpus,map_pct,bin_pct,sort_pct,reduce_pct,sched_pct\n");
    let gpu_counts = [1u32, 8, 64];
    let headers = ["benchmark", "GPUs", "Map", "Bin", "Sort", "Reduce", "Sched"];
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        // Largest strong-scaling input (index 3).
        let w = strong_workload(bench, 3, cfg.scale, cfg.seed);
        for &g in &gpu_counts {
            let out: RunOutcome = match bench {
                Benchmark::Mm => run_mm_bench(g, w.size as usize, cfg.scale, w.seed),
                Benchmark::Sio => run_sio(g, w.size as usize, cfg.scale, w.seed),
                Benchmark::Wo => {
                    let dict = shared_dictionary(cfg.scale);
                    run_wo(g, w.size as usize, cfg.scale, &dict, w.seed)
                }
                Benchmark::Kmc => run_kmc(g, w.size as usize, cfg.scale, w.seed),
                Benchmark::Lr => run_lr(g, w.size as usize, cfg.scale, w.seed),
            };
            let p = out.timings.mean_percentages();
            csv.push_str(&format!(
                "{},{g},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
                bench.name(),
                p[0],
                p[1],
                p[2],
                p[3],
                p[4]
            ));
            rows.push(vec![
                bench.name().to_string(),
                g.to_string(),
                percent_cell(p[0]),
                percent_cell(p[1]),
                percent_cell(p[2]),
                percent_cell(p[3]),
                percent_cell(p[4]),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));
    if want_csv {
        println!("--- CSV ---");
        print!("{csv}");
    }
    println!("Expected shapes (paper Fig. 2): MM stays Map-dominated at every scale;");
    println!("SIO's bottleneck shifts from Sort (few GPUs) toward Binning/network");
    println!("(many GPUs); WO/KMC/LR are Map-dominated at 1 GPU with the scheduler");
    println!("and binning slices growing with GPU count.");
}
