//! Record the perf-gate baseline: run the WO + SIO scenario suite at
//! 1/4/8 ranks, analyze each run (critical path, stage attribution,
//! imbalance), and write the baseline set JSON.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin bench_pr5 \
//!         [--scale N] [--out FILE]`
//! Writes `BENCH_PR5.json` (or `FILE`) in the current directory. CI's
//! `perf-gate` job diffs a fresh recording against the committed file with
//! `gpmr perf diff`; all values are simulated-time and deterministic, so
//! the diff is exact on an unchanged tree.

use gpmr_bench::parse_scale;
use gpmr_bench::perf::record_suite;

fn main() {
    let scale = parse_scale();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    println!("perf-gate suite (scale {scale})...");
    let set = record_suite(scale, |b, a| {
        println!(
            "  {:<10} makespan {:>10.6}s  bounding {:<5} {:>5.1}%  imbalance CV {:.3}  \
             {} path segments",
            b.name,
            a.makespan_s,
            b.bounding_stage,
            a.bounding_share * 100.0,
            b.imbalance_cv,
            a.critical_path.len(),
        );
    });
    std::fs::write(&out, set.to_json()).expect("write baseline set");
    println!("wrote {out}");
}
