//! Table 1: dataset sizes for all benchmarks — element sizes, the
//! strong-scaling input set (set one), and the weak-scaling per-GPU set
//! (set two) — plus the sizes actually used at the current scale divisor.
//!
//! Usage: `cargo run --release -p gpmr-bench --bin table1_datasets [--scale N]`

use gpmr_apps::datasets::mm_dim_factor;
use gpmr_apps::{strong_workload, Benchmark};
use gpmr_bench::table::render;
use gpmr_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_args();
    println!("Table 1 — dataset sizes (scale divisor {})\n", cfg.scale);

    let headers = [
        "benchmark",
        "elem bytes",
        "set one (paper)",
        "set two per-GPU (paper, x1e6)",
        "set one (this run)",
    ];
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let elem = bench
            .element_bytes()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "n/a (matrix)".into());
        let strong = match bench {
            Benchmark::Mm => bench
                .strong_sizes()
                .iter()
                .map(|s| format!("{s}^2"))
                .collect::<Vec<_>>()
                .join(", "),
            _ => format!(
                "{} x1e6",
                bench
                    .strong_sizes()
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let weak = if bench.weak_sizes_per_gpu().is_empty() {
            "—".to_string()
        } else {
            bench
                .weak_sizes_per_gpu()
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let actual = (0..bench.strong_sizes().len())
            .map(|i| {
                let w = strong_workload(bench, i, cfg.scale, cfg.seed);
                match bench {
                    Benchmark::Mm => format!("{}^2", w.size),
                    _ => w.size.to_string(),
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![bench.name().to_string(), elem, strong, weak, actual]);
    }
    println!("{}", render(&headers, &rows));
    println!(
        "Element counts divide by {}; MM matrix orders divide by {} (with the\n\
         matching hardware-scaling laws applied by the runners).",
        cfg.scale,
        mm_dim_factor(cfg.scale)
    );
}
