//! One-call runners for each benchmark: build the (scaled) workload, run
//! the GPMR job on an N-GPU cluster with matching scaled hardware, and
//! return the timing breakdown.
//!
//! Workload-scaling: element counts are divided by `scale` and every
//! hardware throughput is divided by `scale` too (latencies unchanged),
//! so the simulated times approximate full-scale runs — see
//! [`gpmr_sim_gpu::GpuSpec::scaled`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use gpmr_apps::kmc::{self, KmcJob, Point};
use gpmr_apps::lr::{self, LrJob};
use gpmr_apps::mm::Matrix;
use gpmr_apps::sio::{self, SioJob};
use gpmr_apps::text::{chunk_text, generate_text, Dictionary, PAPER_DICTIONARY_WORDS};
use gpmr_apps::wo::WoJob;
use gpmr_core::{run_job, JobTimings, SliceChunk, StageTimes};
use gpmr_sim_gpu::{GpuSpec, SimDuration};
use gpmr_sim_net::{Cluster, Topology};

use crate::harness::chunk_bytes;

/// Timing outcome of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Job makespan (both phases for MM).
    pub time: SimDuration,
    /// Stage breakdown.
    pub timings: JobTimings,
}

/// Number of K-Means centers used by the harness (the paper keeps the
/// center count small and fixed).
pub const KMC_CENTERS: usize = 32;

/// A GT200 cluster with hardware scaled to match workloads divided by
/// `scale`.
pub fn scaled_cluster(gpus: u32, scale: u64) -> Cluster {
    Cluster::accelerator_scaled(gpus, GpuSpec::gt200(), scale as f64)
}

/// The shared dictionary for a given scale: 43 k words divided by the
/// scale divisor (scaled-hardware runs must scale *all* data, the
/// dictionary included, or the fixed 43 k-key accumulation state would
/// dominate shrunken workloads). Memoized per scale.
pub fn shared_dictionary(scale: u64) -> Arc<Dictionary> {
    static DICTS: OnceLock<Mutex<HashMap<u64, Arc<Dictionary>>>> = OnceLock::new();
    let words = (PAPER_DICTIONARY_WORDS / scale.max(1) as usize).max(64);
    let cache = DICTS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("dictionary cache poisoned");
    guard
        .entry(scale)
        .or_insert_with(|| Arc::new(Dictionary::generate(words, 0xd1c7)))
        .clone()
}

/// One memoized corpus: (bytes, seed, text).
type CorpusCache = OnceLock<Mutex<Option<(usize, u64, Arc<Vec<u8>>)>>>;

/// Memoized corpus text so repeated WO runs (different GPU counts) reuse
/// one generation pass.
pub fn corpus_for(dict: &Arc<Dictionary>, bytes: usize, seed: u64) -> Arc<Vec<u8>> {
    static CACHE: CorpusCache = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(None));
    let mut guard = cache.lock().expect("corpus cache poisoned");
    if let Some((b, s, text)) = guard.as_ref() {
        if *b == bytes && *s == seed {
            return text.clone();
        }
    }
    let text = Arc::new(generate_text(dict, bytes, seed));
    *guard = Some((bytes, seed, text.clone()));
    text
}

/// Sparse Integer Occurrence over `elements` integers.
pub fn run_sio(gpus: u32, elements: usize, scale: u64, seed: u64) -> RunOutcome {
    let data = sio::generate_integers(elements, seed);
    let chunks = sio::sio_chunks(&data, chunk_bytes(4 * elements as u64, gpus, scale));
    let mut cl = scaled_cluster(gpus, scale);
    let result = run_job(&mut cl, &SioJob::default(), chunks).expect("SIO job failed");
    RunOutcome {
        time: result.timings.total,
        timings: result.timings,
    }
}

/// Word Occurrence over `bytes` of corpus text.
pub fn run_wo(
    gpus: u32,
    bytes: usize,
    scale: u64,
    dict: &Arc<Dictionary>,
    seed: u64,
) -> RunOutcome {
    let text = corpus_for(dict, bytes, seed);
    let chunks = chunk_text(&text, chunk_bytes(bytes as u64, gpus, scale));
    let mut cl = scaled_cluster(gpus, scale);
    let job = WoJob::new(dict.clone(), gpus);
    let result = run_job(&mut cl, &job, chunks).expect("WO job failed");
    RunOutcome {
        time: result.timings.total,
        timings: result.timings,
    }
}

/// K-Means Clustering over `points` 4-D points.
pub fn run_kmc(gpus: u32, points: usize, scale: u64, seed: u64) -> RunOutcome {
    let centers: Vec<Point> = kmc::initial_centers(KMC_CENTERS, seed);
    let data = kmc::generate_points(points, KMC_CENTERS, seed + 1);
    let chunk_items = chunk_bytes(16 * points as u64, gpus, scale) / 16;
    let chunks = SliceChunk::split(&data, chunk_items.max(1));
    let mut cl = scaled_cluster(gpus, scale);
    let job = KmcJob::new(centers);
    let result = run_job(&mut cl, &job, chunks).expect("KMC job failed");
    RunOutcome {
        time: result.timings.total,
        timings: result.timings,
    }
}

/// Linear Regression over `samples` (x, y) samples.
pub fn run_lr(gpus: u32, samples: usize, scale: u64, seed: u64) -> RunOutcome {
    let data = lr::generate_samples(samples, 2.0, -1.0, seed);
    let chunk_items = chunk_bytes(8 * samples as u64, gpus, scale) / 8;
    let chunks = SliceChunk::split(&data, chunk_items.max(1));
    let mut cl = scaled_cluster(gpus, scale);
    let result = run_job(&mut cl, &LrJob, chunks).expect("LR job failed");
    RunOutcome {
        time: result.timings.total,
        timings: result.timings,
    }
}

/// Matrix Multiplication for order-`n` matrices (already divided by
/// [`gpmr_apps::datasets::mm_dim_factor`]). Both GPMR phases are
/// included; stage times are summed across phases.
///
/// MM has its own scaling law: when matrix order shrinks by `d`, total
/// compute shrinks by `d^3` but PCI-e/network traffic and resident
/// working sets shrink by `d^2`. So the MM cluster scales GPU compute and
/// memory bandwidth by `d^3`, the transfer fabric and device capacity by
/// `d^2`, and the chunk blocks by `d` — making the scaled run time-
/// equivalent to the full-order run (up to fixed latencies).
pub fn run_mm_bench(gpus: u32, n: usize, scale: u64, seed: u64) -> RunOutcome {
    let d = gpmr_apps::datasets::mm_dim_factor(scale);
    let full_spec = GpuSpec::gt200();
    let nt_full = n * d as usize / gpmr_apps::mm::TILE;
    let (side_f, _, kb_f) = gpmr_apps::mm::mm_auto_blocks(nt_full, gpus, full_spec.mem_capacity);
    let side = (side_f / d as usize).max(1);
    let kb = (kb_f / d as usize).max(1);

    let d2 = (d * d) as f64;
    let d3 = d2 * d as f64;
    let mut spec = full_spec;
    spec.clock_ghz /= d3;
    spec.mem_bandwidth /= d3;
    spec.atomic_throughput /= d3;
    spec.mem_capacity = ((spec.mem_capacity as f64 / d2) as u64).max(1 << 20);

    let a = Matrix::random(n, seed);
    let b = Matrix::random(n, seed + 1);
    let mut cl = Cluster::custom_scaled(Topology::accelerator(gpus), spec, d2);
    let result = gpmr_apps::mm::run_mm(&mut cl, &a, &b, side, side, kb).expect("MM job failed");
    let ranks = result.phase1.per_rank.len();
    let per_rank: Vec<StageTimes> = (0..ranks)
        .map(|r| {
            let (p1, p2) = (&result.phase1.per_rank[r], &result.phase2.per_rank[r]);
            StageTimes {
                map: p1.map + p2.map,
                bin: p1.bin + p2.bin,
                sort: p1.sort + p2.sort,
                reduce: p1.reduce + p2.reduce,
                scheduler: p1.scheduler + p2.scheduler,
            }
        })
        .collect();
    let timings = JobTimings {
        total: result.total_time,
        per_rank,
        chunks_per_rank: result.phase1.chunks_per_rank.clone(),
        chunks_stolen: result.phase1.chunks_stolen + result.phase2.chunks_stolen,
        pairs_emitted: result.phase1.pairs_emitted + result.phase2.pairs_emitted,
        pairs_shuffled: result.phase1.pairs_shuffled + result.phase2.pairs_shuffled,
        gpus_lost: result.phase1.gpus_lost + result.phase2.gpus_lost,
        gpus_added: result.phase1.gpus_added + result.phase2.gpus_added,
        chunks_requeued: result.phase1.chunks_requeued + result.phase2.chunks_requeued,
        transfer_retries: result.phase1.transfer_retries + result.phase2.transfer_retries,
        stalls_injected: result.phase1.stalls_injected + result.phase2.stalls_injected,
    };
    RunOutcome {
        time: result.total_time,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_produce_positive_times() {
        assert!(run_sio(2, 20_000, 64, 1).time.as_secs() > 0.0);
        assert!(run_lr(2, 20_000, 64, 1).time.as_secs() > 0.0);
        assert!(run_kmc(2, 5_000, 64, 1).time.as_secs() > 0.0);
        assert!(run_mm_bench(2, 64, 64, 1).time.as_secs() > 0.0);
    }

    #[test]
    fn wo_runner_works_with_small_dictionary() {
        let dict = Arc::new(Dictionary::generate(100, 9));
        let out = run_wo(2, 10_000, 64, &dict, 3);
        assert!(out.time.as_secs() > 0.0);
        assert_eq!(out.timings.per_rank.len(), 2);
    }

    #[test]
    fn more_gpus_do_not_increase_makespan_for_large_jobs() {
        let t1 = run_sio(1, 400_000, 64, 2).time;
        let t4 = run_sio(4, 400_000, 64, 2).time;
        assert!(
            t4.as_secs() < t1.as_secs(),
            "4-GPU run ({t4}) should beat 1 GPU ({t1})"
        );
    }
}
