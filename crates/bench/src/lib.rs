//! # gpmr-bench — harnesses regenerating every table and figure of the
//! GPMR paper
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_datasets` | Table 1: dataset sizes |
//! | `table2_phoenix` | Table 2: GPMR speedup over Phoenix (1 and 4 GPUs) |
//! | `table3_mars` | Table 3: GPMR speedup over Mars (1 and 4 GPUs) |
//! | `table4_loc` | Table 4: benchmark source lines of code |
//! | `fig2_breakdown` | Figure 2: runtime breakdown at 1/8/64 GPUs |
//! | `fig3_efficiency` | Figure 3: parallel efficiency curves |
//! | `weak_scaling` | Table 1 set two: weak-scaling sweep |
//! | `ablations` | extension: accumulation / partial-reduce / crossover ablations |
//!
//! All binaries take `--scale N` (default 64): element counts are divided
//! by `N` (matrix orders by `sqrt(N)`) so runs finish in seconds-to-
//! minutes; `--scale 1` reproduces the paper's full sizes if you have the
//! time and memory. Simulated times scale with the workload, so speedup
//! and efficiency *shapes* are preserved; EXPERIMENTS.md records results
//! at the default scale.

#![warn(missing_docs)]

pub mod harness;
pub mod loc;
pub mod perf;
pub mod plot;
pub mod runners;
pub mod table;

pub use harness::{parse_scale, HarnessConfig, DEFAULT_SCALE};
pub use runners::{run_kmc, run_lr, run_mm_bench, run_sio, run_wo, shared_dictionary, RunOutcome};
