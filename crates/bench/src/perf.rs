//! The perf-gate scenario suite: WO and SIO at 1/4/8 ranks, each run
//! instrumented and analyzed into a [`BenchBaseline`] (makespan, per-stage
//! critical-path time, counters, imbalance).
//!
//! `gpmr perf record` writes the suite into `BENCH_PR6.json`; `gpmr perf
//! diff` re-runs it live and compares against that file. The simulation is
//! deterministic and machine-independent, so an unchanged tree reproduces
//! the committed numbers exactly and any drift is a real behaviour change.
//!
//! Beyond the classic WO/SIO × 1/4/8-rank grid, the suite pins the engine
//! tuning axes that matter for the upload wall: GPU-direct transfers
//! (`*_direct`) and the upload pipeline depth (`wo_8rank_k1` runs the
//! 8-rank WO scenario with pipelining disabled, so the gate notices if
//! the pipeline ever stops paying for itself).

use std::collections::BTreeMap;
use std::sync::Arc;

use gpmr_core::{derive_splitters, run_job_instrumented, EngineTuning, PartitionMode};
use gpmr_telemetry::analyze::{analyze, Analysis};
use gpmr_telemetry::baseline::{BaselineSet, BenchBaseline};
use gpmr_telemetry::Telemetry;

use gpmr_apps::sio::{self, SioJob};
use gpmr_apps::text::{chunk_text, generate_zipf_text};
use gpmr_apps::wo::{sample_word_keys, WoJob};

use crate::harness::chunk_bytes_tuned;
use crate::runners::{corpus_for, scaled_cluster, shared_dictionary};

/// Tolerance the perf gate runs with (±10%, per the CI contract).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Full-scale WO corpus bytes (divided by the scale divisor per run).
const WO_FULL_BYTES: u64 = 1 << 28;
/// Full-scale SIO element count (divided by the scale divisor per run).
const SIO_FULL_ELEMENTS: u64 = 1 << 25;
/// Workload seed shared by every scenario.
const SEED: u64 = 11;

/// Which benchmark a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerfApp {
    /// Word Occurrence (accumulate-mode map, text corpus).
    Wo,
    /// Sparse Integer Occurrence (plain map, integer stream).
    Sio,
}

/// One gate scenario: a benchmark at a GPU count under a fixed engine
/// tuning (pipeline depth, transfer mode).
#[derive(Clone, Copy, Debug)]
pub struct PerfScenario {
    /// Stable scenario name used to match baselines, e.g. `"sio_4rank"`.
    pub name: &'static str,
    /// Benchmark to run.
    pub app: PerfApp,
    /// Cluster size in GPUs.
    pub gpus: u32,
    /// Upload pipeline depth the engine (and chunk autotuner) run with.
    pub depth: u32,
    /// Shuffle pairs directly between GPUs instead of bouncing via hosts.
    pub gpu_direct: bool,
    /// Draw the workload from a Zipf distribution with this exponent
    /// instead of uniform (the skewed-shuffle scenarios).
    pub zipf: Option<f64>,
    /// Shuffle with sampled range splitters instead of round-robin.
    pub range_partition: bool,
}

impl PerfScenario {
    const fn new(name: &'static str, app: PerfApp, gpus: u32) -> Self {
        PerfScenario {
            name,
            app,
            gpus,
            depth: 4,
            gpu_direct: false,
            zipf: None,
            range_partition: false,
        }
    }

    /// The [`EngineTuning`] this scenario runs under.
    pub fn tuning(&self) -> EngineTuning {
        EngineTuning {
            pipeline_depth: self.depth,
            gpu_direct: self.gpu_direct,
            ..EngineTuning::default()
        }
    }
}

/// Zipf exponent of the skewed-shuffle scenarios (hot word near 13% of
/// the corpus — heavy enough to unbalance round-robin, small enough that
/// key-granularity splitters can reach balance).
const ZIPF_S: f64 = 1.05;

/// Sampling stride for the range-partitioned scenario's splitters.
const SPLITTER_STRIDE: usize = 101;

/// The gate suite: WO + SIO at 1, 4, and 8 ranks at the default tuning,
/// plus the GPU-direct and pipelining-off variants of the 8-rank runs,
/// plus the skewed-shuffle pair — the same Zipf corpus shuffled
/// round-robin (`wo_8rank_zipf`) and with sampled range splitters
/// (`wo_8rank_zipf_range`), pinning the skew-aware partitioner's win
/// into the gate.
pub const SCENARIOS: [PerfScenario; 11] = [
    PerfScenario::new("wo_1rank", PerfApp::Wo, 1),
    PerfScenario::new("wo_4rank", PerfApp::Wo, 4),
    PerfScenario::new("wo_8rank", PerfApp::Wo, 8),
    PerfScenario {
        gpu_direct: true,
        ..PerfScenario::new("wo_8rank_direct", PerfApp::Wo, 8)
    },
    PerfScenario {
        depth: 1,
        ..PerfScenario::new("wo_8rank_k1", PerfApp::Wo, 8)
    },
    PerfScenario {
        zipf: Some(ZIPF_S),
        ..PerfScenario::new("wo_8rank_zipf", PerfApp::Wo, 8)
    },
    PerfScenario {
        zipf: Some(ZIPF_S),
        range_partition: true,
        ..PerfScenario::new("wo_8rank_zipf_range", PerfApp::Wo, 8)
    },
    PerfScenario::new("sio_1rank", PerfApp::Sio, 1),
    PerfScenario::new("sio_4rank", PerfApp::Sio, 4),
    PerfScenario::new("sio_8rank", PerfApp::Sio, 8),
    PerfScenario {
        gpu_direct: true,
        ..PerfScenario::new("sio_8rank_direct", PerfApp::Sio, 8)
    },
];

/// Scenario by name.
pub fn scenario(name: &str) -> Option<PerfScenario> {
    SCENARIOS.iter().copied().find(|s| s.name == name)
}

/// Run one scenario instrumented at the given inverse scale, returning its
/// baseline record and the full analysis behind it.
pub fn run_scenario(sc: &PerfScenario, scale: u64) -> (BenchBaseline, Analysis) {
    let scale = scale.max(1);
    let tel = Telemetry::enabled();
    let mut cluster = scaled_cluster(sc.gpus, scale);
    let tuning = sc.tuning();
    match sc.app {
        PerfApp::Wo => {
            let dict = shared_dictionary(scale);
            let bytes = (WO_FULL_BYTES / scale).max(64 * 1024) as usize;
            let text = match sc.zipf {
                Some(s) => Arc::new(generate_zipf_text(&dict, bytes, s, SEED)),
                None => corpus_for(&dict, bytes, SEED),
            };
            let chunks = chunk_text(
                &text,
                chunk_bytes_tuned(bytes as u64, sc.gpus, scale, sc.depth),
            );
            let mut job = WoJob::new(Arc::clone(&dict), sc.gpus);
            if sc.range_partition {
                let samples = sample_word_keys(&dict, &text, SPLITTER_STRIDE);
                job = job.with_partition(PartitionMode::Range {
                    splitters: derive_splitters(&samples, sc.gpus),
                });
            }
            run_job_instrumented(&mut cluster, &job, chunks, &tuning, &tel)
                .expect("WO perf scenario failed");
        }
        PerfApp::Sio => {
            let elements = (SIO_FULL_ELEMENTS / scale).max(16 * 1024) as usize;
            let data = sio::generate_integers(elements, SEED);
            let chunks = sio::sio_chunks(
                &data,
                chunk_bytes_tuned(4 * elements as u64, sc.gpus, scale, sc.depth),
            );
            run_job_instrumented(&mut cluster, &SioJob::default(), chunks, &tuning, &tel)
                .expect("SIO perf scenario failed");
        }
    }
    let snap = tel.snapshot();
    let analysis = analyze(&snap);
    let counters: BTreeMap<String, u64> = snap
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("engine."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let baseline = BenchBaseline::from_analysis(sc.name, &analysis, counters);
    (baseline, analysis)
}

/// Run the whole suite and collect a baseline set, invoking `progress`
/// after each scenario (for harness output).
pub fn record_suite(
    scale: u64,
    mut progress: impl FnMut(&BenchBaseline, &Analysis),
) -> BaselineSet {
    let mut set = BaselineSet {
        scale,
        tolerance: DEFAULT_TOLERANCE,
        baselines: Vec::new(),
    };
    for sc in &SCENARIOS {
        let (baseline, analysis) = run_scenario(sc, scale);
        progress(&baseline, &analysis);
        set.baselines.push(baseline);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_telemetry::baseline::{diff, Verdict};

    #[test]
    fn scenario_reruns_are_bit_identical() {
        let sc = scenario("sio_4rank").unwrap();
        // A large scale keeps the test fast; determinism is scale-blind.
        let (a, _) = run_scenario(&sc, 2048);
        let (b, _) = run_scenario(&sc, 2048);
        assert_eq!(a, b, "deterministic sim must reproduce exactly");
        assert_eq!(diff(&a, &b, DEFAULT_TOLERANCE).verdict, Verdict::Pass);
    }

    #[test]
    fn stage_attribution_reconciles_with_makespan() {
        let sc = scenario("wo_4rank").unwrap();
        let (baseline, analysis) = run_scenario(&sc, 2048);
        assert!(baseline.makespan_ns > 0);
        let stage_sum: u64 = baseline.stage_ns.values().sum();
        let drift =
            (stage_sum as f64 - baseline.makespan_ns as f64).abs() / baseline.makespan_ns as f64;
        assert!(
            drift < 0.01,
            "stage sum {stage_sum} vs {}",
            baseline.makespan_ns
        );
        // The accumulate-mode WO job must now report emitted pairs.
        let emitted = baseline.counters["engine.pairs_emitted"];
        let shuffled = baseline.counters["engine.pairs_shuffled"];
        assert!(emitted > 0, "WO pairs_emitted stuck at 0");
        assert!(emitted >= shuffled);
        assert!(analysis.ranks.len() == 4);
    }
}
