//! Source lines of code counting for Table 4.
//!
//! The paper's Table 4 compares benchmark implementation sizes across
//! Phoenix, Mars, and GPMR (excluding setup, including boilerplate). The
//! harness counts the real line counts of this repository's benchmark
//! implementations the same way: non-blank, non-comment lines, tests
//! excluded.

use std::path::{Path, PathBuf};

/// Count effective source lines in `src`: everything up to the first
/// `#[cfg(test)]` module, minus blank lines and `//` comment lines.
pub fn count_effective_lines(src: &str) -> usize {
    let body = src.split("#[cfg(test)]").next().unwrap_or(src);
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Locate the repository's `crates/` directory from this crate's
/// manifest directory.
pub fn crates_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("bench crate lives under crates/")
        .to_path_buf()
}

/// Count the effective lines of a repository source file, given its path
/// relative to `crates/`.
pub fn count_file(rel: &str) -> std::io::Result<usize> {
    let src = std::fs::read_to_string(crates_dir().join(rel))?;
    Ok(count_effective_lines(&src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_skip_comments_blanks_and_tests() {
        let src = "// comment\n\nfn a() {}\n  // indented comment\nfn b() {}\n#[cfg(test)]\nmod tests { fn c() {} }\n";
        assert_eq!(count_effective_lines(src), 2);
    }

    #[test]
    fn counts_real_app_files() {
        for f in [
            "apps/src/mm.rs",
            "apps/src/kmc.rs",
            "apps/src/wo.rs",
            "apps/src/sio.rs",
            "apps/src/lr.rs",
        ] {
            let n = count_file(f).unwrap();
            assert!(n > 50, "{f} suspiciously small: {n}");
        }
    }
}
