//! Dynamic per-GPU work queues with chunk stealing.
//!
//! GPMR "tracks the per-GPU work in a dynamic queue; if one GPU finishes
//! its work and other GPUs have much more work to do, we shift chunks
//! between the local queues" (paper §4.1) — which is why chunks must be
//! serializable. The queue structure is engine-agnostic and fully testable
//! on its own; the engine charges the migration cost through the fabric.

use std::collections::VecDeque;

/// Per-rank chunk queues.
#[derive(Debug)]
pub struct WorkQueues<C> {
    queues: Vec<VecDeque<C>>,
}

impl<C> WorkQueues<C> {
    /// Distribute `chunks` round-robin over `ranks` queues (the paper's
    /// initial static assignment; chunks are streamed from rank-local
    /// storage).
    pub fn distribute(chunks: Vec<C>, ranks: u32) -> Self {
        let ranks = ranks.max(1) as usize;
        let mut queues: Vec<VecDeque<C>> = (0..ranks).map(|_| VecDeque::new()).collect();
        for (i, c) in chunks.into_iter().enumerate() {
            queues[i % ranks].push_back(c);
        }
        WorkQueues { queues }
    }

    /// Take the next chunk from `rank`'s own queue.
    pub fn pop_local(&mut self, rank: u32) -> Option<C> {
        self.queues[rank as usize].pop_front()
    }

    /// Chunks left in `rank`'s queue.
    pub fn remaining(&self, rank: u32) -> usize {
        self.queues[rank as usize].len()
    }

    /// Chunks left across all queues.
    pub fn total_remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Pick a victim for `thief`: the most-loaded other rank, provided it
    /// still has at least two chunks (stealing the last chunk of a queue
    /// would just move the imbalance). Ties break to the lowest rank for
    /// determinism.
    pub fn steal_victim(&self, thief: u32) -> Option<u32> {
        let mut best: Option<(usize, u32)> = None;
        for (r, q) in self.queues.iter().enumerate() {
            if r as u32 == thief || q.len() < 2 {
                continue;
            }
            match best {
                Some((len, _)) if q.len() <= len => {}
                _ => best = Some((q.len(), r as u32)),
            }
        }
        best.map(|(_, r)| r)
    }

    /// Steal the *tail* chunk from `victim` (the head is what the victim
    /// will map next).
    pub fn steal_from(&mut self, victim: u32) -> Option<C> {
        self.queues[victim as usize].pop_back()
    }

    /// Take everything still queued on `rank`, in queue order. Used when a
    /// rank's GPU is lost and its pending chunks must migrate to survivors.
    pub fn drain_rank(&mut self, rank: u32) -> Vec<C> {
        self.queues[rank as usize].drain(..).collect()
    }

    /// Append a chunk to the tail of `rank`'s queue (requeue after a
    /// migration; the rank finishes its original head-of-queue work first).
    pub fn push_back(&mut self, rank: u32, chunk: C) {
        self.queues[rank as usize].push_back(chunk);
    }

    /// Number of queues.
    pub fn ranks(&self) -> u32 {
        self.queues.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_distribution() {
        let q = WorkQueues::distribute((0..10).collect(), 4);
        assert_eq!(q.remaining(0), 3); // 0, 4, 8
        assert_eq!(q.remaining(1), 3); // 1, 5, 9
        assert_eq!(q.remaining(2), 2);
        assert_eq!(q.remaining(3), 2);
        assert_eq!(q.total_remaining(), 10);
        assert_eq!(q.ranks(), 4);
    }

    #[test]
    fn pop_local_is_fifo() {
        let mut q = WorkQueues::distribute(vec![10, 11, 12, 13], 2);
        assert_eq!(q.pop_local(0), Some(10));
        assert_eq!(q.pop_local(0), Some(12));
        assert_eq!(q.pop_local(0), None);
    }

    #[test]
    fn steal_picks_most_loaded_and_takes_tail() {
        let mut q = WorkQueues::distribute((0..9).collect(), 3);
        // Rank 0: 0,3,6 / rank 1: 1,4,7 / rank 2: 2,5,8.
        q.pop_local(2);
        q.pop_local(2);
        q.pop_local(2); // rank 2 empty
        let victim = q.steal_victim(2).unwrap();
        assert_eq!(victim, 0); // tie between 0 and 1 breaks low
        assert_eq!(q.steal_from(victim), Some(6)); // tail, not head
        assert_eq!(q.remaining(0), 2);
    }

    #[test]
    fn no_victim_when_queues_nearly_empty() {
        let mut q = WorkQueues::distribute(vec![1, 2], 2);
        q.pop_local(0);
        // Rank 1 has exactly one chunk: not worth stealing.
        assert_eq!(q.steal_victim(0), None);
    }

    #[test]
    fn thief_never_steals_from_itself() {
        let q: WorkQueues<u32> = WorkQueues::distribute((0..8).collect(), 2);
        assert_eq!(q.steal_victim(0), Some(1));
        assert_eq!(q.steal_victim(1), Some(0));
    }

    #[test]
    fn drain_rank_empties_one_queue_in_order() {
        let mut q = WorkQueues::distribute((0..9).collect(), 3);
        assert_eq!(q.drain_rank(1), vec![1, 4, 7]);
        assert_eq!(q.remaining(1), 0);
        assert_eq!(q.total_remaining(), 6);
        q.push_back(1, 99);
        assert_eq!(q.remaining(1), 1);
        assert_eq!(q.pop_local(1), Some(99));
    }

    #[test]
    fn single_rank_gets_everything() {
        let q = WorkQueues::distribute((0..5).collect(), 1);
        assert_eq!(q.remaining(0), 5);
        assert_eq!(q.steal_victim(0), None);
    }
}
