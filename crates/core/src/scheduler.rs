//! Dynamic per-GPU work queues with chunk stealing.
//!
//! GPMR "tracks the per-GPU work in a dynamic queue; if one GPU finishes
//! its work and other GPUs have much more work to do, we shift chunks
//! between the local queues" (paper §4.1) — which is why chunks must be
//! serializable. The queue structure is engine-agnostic and fully testable
//! on its own; the engine charges the migration cost through the fabric.

use std::collections::VecDeque;

/// Per-rank chunk queues.
#[derive(Debug)]
pub struct WorkQueues<C> {
    queues: Vec<VecDeque<C>>,
}

impl<C> WorkQueues<C> {
    /// Distribute `chunks` round-robin over `ranks` queues (the paper's
    /// initial static assignment; chunks are streamed from rank-local
    /// storage).
    pub fn distribute(chunks: Vec<C>, ranks: u32) -> Self {
        let targets: Vec<u32> = (0..ranks.max(1)).collect();
        Self::distribute_on(chunks, ranks, &targets)
    }

    /// [`WorkQueues::distribute`] restricted to a target subset: chunks go
    /// round-robin over `targets` only, while `ranks` queues exist in
    /// total. Queues outside `targets` start empty — this is how GPUs that
    /// only *join* the job mid-run (elastic adds) get a seat at the
    /// stealing table without a share of the initial assignment. Targets
    /// out of range are clamped; an empty target list falls back to every
    /// rank.
    pub fn distribute_on(chunks: Vec<C>, ranks: u32, targets: &[u32]) -> Self {
        let ranks = ranks.max(1) as usize;
        let mut queues: Vec<VecDeque<C>> = (0..ranks).map(|_| VecDeque::new()).collect();
        let targets: Vec<usize> = if targets.is_empty() {
            (0..ranks).collect()
        } else {
            targets
                .iter()
                .map(|&t| (t as usize).min(ranks - 1))
                .collect()
        };
        for (i, c) in chunks.into_iter().enumerate() {
            queues[targets[i % targets.len()]].push_back(c);
        }
        WorkQueues { queues }
    }

    /// Take the next chunk from `rank`'s own queue.
    pub fn pop_local(&mut self, rank: u32) -> Option<C> {
        self.queues[rank as usize].pop_front()
    }

    /// Chunks left in `rank`'s queue.
    pub fn remaining(&self, rank: u32) -> usize {
        self.queues[rank as usize].len()
    }

    /// Chunks left across all queues.
    pub fn total_remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Pick a victim for `thief`: the most-loaded other rank, provided it
    /// still has at least two chunks (stealing the last chunk of a queue
    /// would just move the imbalance). Ties break to the lowest rank for
    /// determinism.
    pub fn steal_victim(&self, thief: u32) -> Option<u32> {
        self.steal_victim_by(thief, |_| 1)
    }

    /// [`WorkQueues::steal_victim`] with an explicit work measure: the
    /// victim is the rank with the most remaining *work* (the summed
    /// `weigh` of its queue), not the longest queue — with a deep upload
    /// pipeline the queue a rank is slowest to drain is the one holding
    /// the biggest chunks, not the most. Ties break to the lowest rank.
    pub fn steal_victim_by(&self, thief: u32, weigh: impl Fn(&C) -> u64) -> Option<u32> {
        let mut best: Option<(u64, u32)> = None;
        for (r, q) in self.queues.iter().enumerate() {
            if r as u32 == thief || q.len() < 2 {
                continue;
            }
            let load: u64 = q.iter().map(&weigh).sum();
            match best {
                Some((l, _)) if load <= l => {}
                _ => best = Some((load, r as u32)),
            }
        }
        best.map(|(_, r)| r)
    }

    /// Steal the *tail* chunk from `victim` (the head is what the victim
    /// will map next).
    pub fn steal_from(&mut self, victim: u32) -> Option<C> {
        self.queues[victim as usize].pop_back()
    }

    /// Steal the heaviest chunk (by `weigh`) from `victim`'s queue,
    /// leaving the head alone — it is what the victim maps next. Ties
    /// break toward the tail, so uniform queues behave like
    /// [`WorkQueues::steal_from`]. A migration costs one fabric transfer
    /// no matter the choice, so the thief takes the chunk that sheds the
    /// most work from the victim's critical path.
    pub fn steal_heaviest(&mut self, victim: u32, weigh: impl Fn(&C) -> u64) -> Option<C> {
        let q = &mut self.queues[victim as usize];
        if q.len() < 2 {
            return q.pop_back();
        }
        let mut pick = q.len() - 1;
        let mut heaviest = 0u64;
        for (i, c) in q.iter().enumerate().skip(1) {
            let w = weigh(c);
            if w >= heaviest {
                heaviest = w;
                pick = i;
            }
        }
        q.remove(pick)
    }

    /// The full work-aware steal policy: pick the victim with the most
    /// queued work ([`WorkQueues::steal_victim_by`]) and take its heaviest
    /// chunk ([`WorkQueues::steal_heaviest`]) — but only when the
    /// migration can pay for itself. The paper steals when another GPU has
    /// "much more work to do"; concretely, the victim must keep at least a
    /// full steal-wave's worth of work (one stolen-chunk's `weigh` per
    /// other rank) after the theft. Below that, the victim drains its
    /// queue before the fabric can move a chunk — every thief in the wave
    /// queues its migration behind the victim's outbound shuffle traffic —
    /// and the copy only delays the makespan. Returns the victim alongside
    /// the chunk, or `None` when no steal is worthwhile.
    pub fn steal_profitable(&mut self, thief: u32, weigh: impl Fn(&C) -> u64) -> Option<(u32, C)> {
        let victim = self.steal_victim_by(thief, &weigh)?;
        let q = &self.queues[victim as usize];
        let load: u64 = q.iter().map(&weigh).sum();
        let heaviest = q.iter().skip(1).map(&weigh).max().unwrap_or(0);
        let wave = (self.queues.len() as u64).saturating_sub(1);
        if load.saturating_sub(heaviest) < heaviest.saturating_mul(wave) {
            return None;
        }
        let chunk = self.steal_heaviest(victim, weigh)?;
        Some((victim, chunk))
    }

    /// Take everything still queued on `rank`, in queue order. Used when a
    /// rank's GPU is lost and its pending chunks must migrate to survivors.
    pub fn drain_rank(&mut self, rank: u32) -> Vec<C> {
        self.queues[rank as usize].drain(..).collect()
    }

    /// Take everything still queued on *every* rank, in rank order then
    /// queue order. Used when a run is cancelled: the engine hands the
    /// undone chunks back so its caller can account for them (no chunk may
    /// stay parked in scheduler state after a cancel).
    pub fn drain_all(&mut self) -> Vec<C> {
        let ranks = self.ranks();
        (0..ranks).flat_map(|r| self.drain_rank(r)).collect()
    }

    /// Append a chunk to the tail of `rank`'s queue (requeue after a
    /// migration; the rank finishes its original head-of-queue work first).
    pub fn push_back(&mut self, rank: u32, chunk: C) {
        self.queues[rank as usize].push_back(chunk);
    }

    /// Number of queues.
    pub fn ranks(&self) -> u32 {
        self.queues.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_distribution() {
        let q = WorkQueues::distribute((0..10).collect(), 4);
        assert_eq!(q.remaining(0), 3); // 0, 4, 8
        assert_eq!(q.remaining(1), 3); // 1, 5, 9
        assert_eq!(q.remaining(2), 2);
        assert_eq!(q.remaining(3), 2);
        assert_eq!(q.total_remaining(), 10);
        assert_eq!(q.ranks(), 4);
    }

    #[test]
    fn distribute_on_leaves_non_target_queues_empty() {
        let q = WorkQueues::distribute_on((0..10).collect(), 5, &[0, 1, 2, 3]);
        assert_eq!(q.ranks(), 5);
        assert_eq!(q.remaining(0), 3); // 0, 4, 8
        assert_eq!(q.remaining(1), 3); // 1, 5, 9
        assert_eq!(q.remaining(2), 2);
        assert_eq!(q.remaining(3), 2);
        assert_eq!(q.remaining(4), 0); // joins later; steals only
        assert_eq!(q.total_remaining(), 10);
        // Full-target distribution matches the classic round-robin.
        let a = WorkQueues::distribute_on((0..10).collect::<Vec<u32>>(), 4, &[0, 1, 2, 3]);
        let b = WorkQueues::distribute((0..10).collect::<Vec<u32>>(), 4);
        for r in 0..4 {
            assert_eq!(a.remaining(r), b.remaining(r));
        }
        // Degenerate inputs: empty targets fall back, out-of-range clamps.
        let fallback = WorkQueues::distribute_on((0..4).collect::<Vec<u32>>(), 2, &[]);
        assert_eq!(fallback.remaining(0), 2);
        assert_eq!(fallback.remaining(1), 2);
        let clamped = WorkQueues::distribute_on((0..4).collect::<Vec<u32>>(), 2, &[9]);
        assert_eq!(clamped.remaining(1), 4);
    }

    #[test]
    fn pop_local_is_fifo() {
        let mut q = WorkQueues::distribute(vec![10, 11, 12, 13], 2);
        assert_eq!(q.pop_local(0), Some(10));
        assert_eq!(q.pop_local(0), Some(12));
        assert_eq!(q.pop_local(0), None);
    }

    #[test]
    fn steal_picks_most_loaded_and_takes_tail() {
        let mut q = WorkQueues::distribute((0..9).collect(), 3);
        // Rank 0: 0,3,6 / rank 1: 1,4,7 / rank 2: 2,5,8.
        q.pop_local(2);
        q.pop_local(2);
        q.pop_local(2); // rank 2 empty
        let victim = q.steal_victim(2).unwrap();
        assert_eq!(victim, 0); // tie between 0 and 1 breaks low
        assert_eq!(q.steal_from(victim), Some(6)); // tail, not head
        assert_eq!(q.remaining(0), 2);
    }

    #[test]
    fn no_victim_when_queues_nearly_empty() {
        let mut q = WorkQueues::distribute(vec![1, 2], 2);
        q.pop_local(0);
        // Rank 1 has exactly one chunk: not worth stealing.
        assert_eq!(q.steal_victim(0), None);
    }

    #[test]
    fn thief_never_steals_from_itself() {
        let q: WorkQueues<u32> = WorkQueues::distribute((0..8).collect(), 2);
        assert_eq!(q.steal_victim(0), Some(1));
        assert_eq!(q.steal_victim(1), Some(0));
    }

    #[test]
    fn drain_rank_empties_one_queue_in_order() {
        let mut q = WorkQueues::distribute((0..9).collect(), 3);
        assert_eq!(q.drain_rank(1), vec![1, 4, 7]);
        assert_eq!(q.remaining(1), 0);
        assert_eq!(q.total_remaining(), 6);
        q.push_back(1, 99);
        assert_eq!(q.remaining(1), 1);
        assert_eq!(q.pop_local(1), Some(99));
    }

    #[test]
    fn steal_victim_by_weighs_work_not_length() {
        let mut q = WorkQueues::distribute(Vec::<u64>::new(), 3);
        // Rank 0: two heavy chunks (200 bytes); rank 1: three unit chunks.
        q.push_back(0, 100);
        q.push_back(0, 100);
        q.push_back(1, 1);
        q.push_back(1, 1);
        q.push_back(1, 1);
        assert_eq!(q.steal_victim(2), Some(1)); // longest queue under unit weights
        assert_eq!(q.steal_victim_by(2, |c| *c), Some(0)); // most work under byte weights
        assert_eq!(q.steal_victim_by(0, |c| *c), Some(1)); // thief never picks itself
        assert_eq!(q.steal_victim_by(1, |c| *c), Some(0));
    }

    #[test]
    fn steal_heaviest_spares_the_head_and_breaks_ties_to_tail() {
        let mut q = WorkQueues::distribute(vec![9u64, 1, 5, 1, 5], 1);
        // Queue: 9,1,5,1,5. The head (9) is what the victim maps next.
        assert_eq!(q.steal_heaviest(0, |c| *c), Some(5));
        assert_eq!(q.remaining(0), 4);
        assert_eq!(q.pop_local(0), Some(9)); // head untouched
    }

    #[test]
    fn steal_profitable_stops_when_the_victim_is_nearly_drained() {
        // Three ranks; rank 0 holds all the work. Each steal must leave the
        // victim a wave's worth (2 chunks here) beyond the stolen one.
        let mut q = WorkQueues::distribute(vec![1u64; 15], 1);
        let mut extra = WorkQueues::distribute(Vec::<u64>::new(), 3);
        std::mem::swap(&mut extra, &mut q);
        for _ in 0..5 {
            q.push_back(0, 1);
        }
        // Queue of 5: head + 4 stealable; 5 - 1 = 4 >= 1 * 2 → pays.
        assert!(q.steal_profitable(1, |c| *c).is_some());
        assert!(q.steal_profitable(2, |c| *c).is_some());
        // Queue of 3: 3 - 1 = 2 >= 2 → last profitable steal.
        assert_eq!(q.steal_profitable(1, |c| *c), Some((0, 1)));
        // Queue of 2: 2 - 1 = 1 < 2 → the victim finishes faster alone.
        assert_eq!(q.steal_profitable(2, |c| *c), None);
        assert_eq!(q.remaining(0), 2);
    }

    #[test]
    fn single_rank_gets_everything() {
        let q = WorkQueues::distribute((0..5).collect(), 1);
        assert_eq!(q.remaining(0), 5);
        assert_eq!(q.steal_victim(0), None);
    }
}
