//! The GPMR job interface: what an application implements.
//!
//! Every part of the MapReduce pipeline is programmable (paper §4): the
//! required pieces are a [`GpmrJob::map`] kernel and (unless sort/reduce
//! are bypassed) a [`GpmrJob::reduce`] kernel; everything else has a
//! sensible default — round-robin partitioning for integer keys, the CUDPP
//! radix Sorter, a sort-based Combine — and is switched on or off through
//! the job's [`PipelineConfig`].
//!
//! The Map stage's optional substages follow the paper exactly:
//!
//! * **Partial Reduction** ([`MapMode::PartialReduce`]) — combine
//!   like-keyed, GPU-resident pairs after every map kernel, before the
//!   PCI-e download;
//! * **Accumulation** ([`MapMode::Accumulate`]) — keep one resident
//!   key-value set on the GPU and fold every chunk's output into it;
//!   mutually exclusive with Partial Reduction, and it defers all binning
//!   until the whole Map stage finishes;
//! * **Combine** ([`PipelineConfig::combine`]) — store all emitted pairs
//!   in CPU memory until every map completes, then combine each unique key
//!   once (streamed back through the GPU) before partitioning. Unlike
//!   Hadoop's combiner this is global, not per-map-instance.

use gpmr_primitives::{RadixKey, Segments};
use gpmr_sim_gpu::{Gpu, SimGpuResult, SimTime};

use crate::chunk::Chunk;
use crate::types::{Key, KvSet, Value};

/// Return type of the pair-producing job kernels: the emitted pairs plus
/// the simulated time at which they are ready.
pub type KernelOutput<K, V> = SimGpuResult<(KvSet<K, V>, SimTime)>;

/// Which Map-stage reduction substage a job uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapMode {
    /// Map kernels emit pairs; pairs are downloaded and binned per chunk.
    Plain,
    /// Like `Plain`, but [`GpmrJob::partial_reduce`] runs on the
    /// GPU-resident pairs after each map kernel to shrink the download.
    PartialReduce,
    /// [`GpmrJob::accumulate_init`] seeds a resident key-value set and
    /// [`GpmrJob::map_accumulate`] folds each chunk into it; one download
    /// and one binning pass at the end of the Map stage.
    Accumulate,
}

/// How emitted pairs are routed to reducer ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// No partitioner: every pair goes to rank 0 (paper: "best for jobs
    /// with small intermediate data").
    None,
    /// The default round-robin partitioner for integer-based keys
    /// (`key mod ranks`).
    RoundRobin,
    /// Route through the job's [`GpmrJob::partition`] override.
    Custom,
    /// Skew-aware range partitioning over sampled splitters: key radix
    /// `k` routes to `splitters.partition_point(|s| s <= k)` — the count
    /// of splitters at or below `k` — so `splitters` (sorted ascending,
    /// at most `ranks - 1` entries) cuts the key space into contiguous
    /// ranges of roughly equal *observed* mass. Derive the splitters with
    /// [`derive_splitters`] from a sampling pass; this is the
    /// Afrati/Ullman-style answer to power-law keys serializing on one
    /// reducer under round-robin.
    Range {
        /// Ascending radix boundaries; range `i` is keys in
        /// `(splitters[i-1], splitters[i]]`-style cuts (`<=` goes right).
        splitters: Vec<u64>,
    },
}

impl PartitionMode {
    /// Stable small integer identifying the variant, for fingerprints and
    /// journal hashing (splitter *contents* are hashed separately).
    pub fn discriminant(&self) -> u64 {
        match self {
            PartitionMode::None => 0,
            PartitionMode::RoundRobin => 1,
            PartitionMode::Custom => 2,
            PartitionMode::Range { .. } => 3,
        }
    }

    /// Route a key radix under this mode's host-side rules. `Custom`
    /// cannot be resolved here (it needs the job); callers handle it
    /// before falling through. Returns `None` for `Custom`.
    pub fn route_radix(&self, radix: u64, ranks: u32) -> Option<u32> {
        match self {
            PartitionMode::None => Some(0),
            PartitionMode::RoundRobin => Some((radix % u64::from(ranks.max(1))) as u32),
            PartitionMode::Custom => None,
            PartitionMode::Range { splitters } => {
                Some(splitters.partition_point(|&s| s <= radix) as u32)
            }
        }
    }
}

/// Derive range splitters from a sample of key radixes, minimizing the
/// heaviest band. The sample is collapsed to a run-length histogram of
/// distinct keys; a binary search then finds the smallest per-band load
/// `L` for which first-fit packing of the runs needs at most `reducers`
/// contiguous bands (the classic parametric solution to contiguous
/// makespan partitioning — naive quantile cuts hand a heavy key's band
/// its neighbours too, inflating the maximum). The emitted packing is
/// optimal for the sample: no contiguous-range cut has a smaller max
/// band. The result has at most `reducers - 1` ascending entries,
/// suitable for [`PartitionMode::Range`]. Fewer entries (one key
/// dominating the sample) simply leaves trailing reducers idle — under
/// extreme skew no key-granularity cut can do better.
pub fn derive_splitters(samples: &[u64], reducers: u32) -> Vec<u64> {
    let reducers = reducers.max(1) as usize;
    if samples.is_empty() || reducers == 1 {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mut runs: Vec<(u64, usize)> = Vec::new();
    for &k in &sorted {
        match runs.last_mut() {
            Some((key, c)) if *key == k => *c += 1,
            _ => runs.push((k, 1)),
        }
    }
    // First-fit band count at a given load limit. A single run larger
    // than the limit is unsplittable and occupies one band by itself.
    let bands_needed = |limit: usize| -> usize {
        let mut bands = 1usize;
        let mut band = 0usize;
        for &(_, c) in &runs {
            if band > 0 && band + c > limit {
                bands += 1;
                band = 0;
            }
            band += c;
        }
        bands
    };
    // The limit can't beat the heaviest single run or the mean.
    let max_run = runs.iter().map(|&(_, c)| c).max().unwrap_or(1);
    let mut lo = max_run.max(sorted.len().div_ceil(reducers));
    let mut hi = sorted.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if bands_needed(mid) <= reducers {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let limit = lo;
    let mut splitters = Vec::with_capacity(reducers - 1);
    let mut band = 0usize;
    for &(key, c) in &runs {
        if band > 0 && band + c > limit && splitters.len() < reducers - 1 {
            splitters.push(key);
            band = 0;
        }
        band += c;
    }
    splitters
}

/// Which Sorter the Sort stage uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortMode {
    /// The default CUDPP-style radix sort (integer-based keys).
    Radix,
    /// The comparator-network fallback for keys without a useful radix.
    Bitonic,
}

/// Per-job pipeline shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Map-stage reduction substage.
    pub map_mode: MapMode,
    /// Run the global Combine substage (requires [`GpmrJob::combine_op`]).
    pub combine: bool,
    /// Pair routing.
    pub partition: PartitionMode,
    /// Sorter choice.
    pub sort: SortMode,
    /// Whether Sort and Reduce run at all. Matrix Multiplication bypasses
    /// both (paper §5.3.1): the binned map output *is* the job output.
    pub sort_and_reduce: bool,
}

impl Default for PipelineConfig {
    /// The common case: plain mapping, no combine, round-robin
    /// partitioning, radix sort, full sort+reduce.
    fn default() -> Self {
        PipelineConfig {
            map_mode: MapMode::Plain,
            combine: false,
            partition: PartitionMode::RoundRobin,
            sort: SortMode::Radix,
            sort_and_reduce: true,
        }
    }
}

impl PipelineConfig {
    /// Builder: set the map mode.
    pub fn with_map_mode(mut self, mode: MapMode) -> Self {
        self.map_mode = mode;
        self
    }

    /// Builder: enable or disable the global Combine substage.
    pub fn with_combine(mut self, combine: bool) -> Self {
        self.combine = combine;
        self
    }

    /// Builder: set the partitioning mode.
    pub fn with_partition(mut self, partition: PartitionMode) -> Self {
        self.partition = partition;
        self
    }

    /// Builder: set the Sorter.
    pub fn with_sort(mut self, sort: SortMode) -> Self {
        self.sort = sort;
        self
    }

    /// Builder: bypass Sort and Reduce (the MM configuration).
    pub fn map_only(mut self) -> Self {
        self.sort_and_reduce = false;
        self
    }

    /// Validate substage compatibility (the paper: Accumulation eliminates
    /// Partial Reduce and Combine; Combine excludes Partial Reduce).
    pub fn validate(&self) -> Result<(), String> {
        if self.map_mode == MapMode::Accumulate && self.combine {
            return Err("Accumulation eliminates the Combine substage".into());
        }
        if self.map_mode == MapMode::PartialReduce && self.combine {
            return Err("Partial Reduction and Combine are mutually exclusive".into());
        }
        Ok(())
    }
}

/// The consecutive-blocks partitioner the paper contrasts with
/// round-robin (§4.1: "even when keys are integer values, there is no
/// best-performance distribution for all MapReduce jobs (e.g. round-robin
/// vs. consecutive blocks)"): the key space `[0, max_radix]` is divided
/// into `ranks` contiguous ranges. Keys above `max_radix` land on the
/// last rank. Use from a [`GpmrJob::partition`] override with
/// [`PartitionMode::Custom`].
/// ```
/// use gpmr_core::block_partition;
///
/// // Keys 0..=99 over 4 ranks: contiguous quarters.
/// assert_eq!(block_partition(0, 99, 4), 0);
/// assert_eq!(block_partition(30, 99, 4), 1);
/// assert_eq!(block_partition(99, 99, 4), 3);
/// ```
pub fn block_partition(radix: u64, max_radix: u64, ranks: u32) -> u32 {
    let ranks = u64::from(ranks.max(1));
    if max_radix == 0 {
        return 0;
    }
    let width = (max_radix / ranks + 1).max(1);
    ((radix / width).min(ranks - 1)) as u32
}

/// A complete GPMR application.
///
/// Implementations provide GPU kernels (via the simulated device) for the
/// stages their [`PipelineConfig`] enables. Kernels receive an
/// earliest-start instant and return their completion instant so the
/// engine can overlap them with transfers and communication.
pub trait GpmrJob: Send + Sync {
    /// The input chunk type.
    type Chunk: Chunk;
    /// Key type; integer-based (radix-sortable) as the paper's fast path
    /// requires for the default Sorter and Partitioner.
    type Key: Key + RadixKey;
    /// Value type.
    type Value: Value;

    /// This job's pipeline shape.
    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig::default()
    }

    /// The Map kernel: process one resident chunk, emit key-value pairs.
    /// Used in [`MapMode::Plain`] and [`MapMode::PartialReduce`].
    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> KernelOutput<Self::Key, Self::Value>;

    /// Partial Reduction: shrink the GPU-resident pair set emitted by one
    /// map before it is downloaded. Default: identity (no shrink).
    fn partial_reduce(
        &self,
        _gpu: &mut Gpu,
        at: SimTime,
        pairs: KvSet<Self::Key, Self::Value>,
    ) -> KernelOutput<Self::Key, Self::Value> {
        Ok((pairs, at))
    }

    /// Accumulation: produce the initial resident key-value set (the
    /// paper's WO emits every dictionary key with value 0 here).
    /// Required for [`MapMode::Accumulate`].
    fn accumulate_init(
        &self,
        _gpu: &mut Gpu,
        _at: SimTime,
    ) -> KernelOutput<Self::Key, Self::Value> {
        unimplemented!("job uses MapMode::Accumulate but does not implement accumulate_init")
    }

    /// Accumulation: map one chunk, folding its output into the resident
    /// set. Required for [`MapMode::Accumulate`].
    fn map_accumulate(
        &self,
        _gpu: &mut Gpu,
        _at: SimTime,
        _chunk: &Self::Chunk,
        _state: &mut KvSet<Self::Key, Self::Value>,
    ) -> SimGpuResult<SimTime> {
        unimplemented!("job uses MapMode::Accumulate but does not implement map_accumulate")
    }

    /// Associative, commutative value combiner used by the Combine
    /// substage. Required when `pipeline().combine` is set.
    fn combine_op(&self, _a: Self::Value, _b: Self::Value) -> Self::Value {
        unimplemented!("job enables Combine but does not implement combine_op")
    }

    /// Partitioner for [`PartitionMode::Custom`]: destination rank for
    /// `key`. The provided default is the round-robin rule.
    fn partition(&self, key: &Self::Key, ranks: u32) -> u32 {
        (key.radix() % u64::from(ranks.max(1))) as u32
    }

    /// The Reduce kernel: process sorted, deduplicated key segments.
    /// `segs.keys[i]`'s values are `vals[segs.range(i)]`. Emits the final
    /// pairs for this reduce chunk.
    fn reduce(
        &self,
        _gpu: &mut Gpu,
        at: SimTime,
        _segs: &Segments<Self::Key>,
        _vals: &[Self::Value],
    ) -> KernelOutput<Self::Key, Self::Value> {
        // Jobs that bypass sort+reduce never reach here.
        Ok((KvSet::new(), at))
    }

    /// The paper's reduce-chunking callback (§4.3): how many value *sets*
    /// (key segments) the engine should copy to the GPU for the next
    /// reduce kernel. Default: all remaining.
    fn reduce_sets_per_chunk(&self, remaining: usize) -> usize {
        remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_is_plain_round_robin_radix() {
        let p = PipelineConfig::default();
        assert_eq!(p.map_mode, MapMode::Plain);
        assert!(!p.combine);
        assert_eq!(p.partition, PartitionMode::RoundRobin);
        assert_eq!(p.sort, SortMode::Radix);
        assert!(p.sort_and_reduce);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let p = PipelineConfig::default()
            .with_map_mode(MapMode::PartialReduce)
            .with_partition(PartitionMode::None)
            .with_sort(SortMode::Bitonic)
            .map_only();
        assert_eq!(p.map_mode, MapMode::PartialReduce);
        assert_eq!(p.partition, PartitionMode::None);
        assert_eq!(p.sort, SortMode::Bitonic);
        assert!(!p.sort_and_reduce);
        assert!(p.validate().is_ok());
        assert!(PipelineConfig::default()
            .with_map_mode(MapMode::Accumulate)
            .with_combine(true)
            .validate()
            .is_err());
    }

    #[test]
    fn accumulate_plus_combine_is_invalid() {
        let p = PipelineConfig {
            map_mode: MapMode::Accumulate,
            combine: true,
            ..PipelineConfig::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn partial_reduce_plus_combine_is_invalid() {
        let p = PipelineConfig {
            map_mode: MapMode::PartialReduce,
            combine: true,
            ..PipelineConfig::default()
        };
        assert!(p.validate().is_err());
    }

    struct RoundRobinProbe;
    impl GpmrJob for RoundRobinProbe {
        type Chunk = crate::chunk::SliceChunk<u32>;
        type Key = u32;
        type Value = u32;
        fn map(
            &self,
            _gpu: &mut Gpu,
            at: SimTime,
            _chunk: &Self::Chunk,
        ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
            Ok((KvSet::new(), at))
        }
    }

    #[test]
    fn block_partition_is_contiguous_and_ordered() {
        // Keys 0..100 over 4 ranks: contiguous quarters.
        let dest: Vec<u32> = (0..=100u64).map(|k| block_partition(k, 100, 4)).collect();
        // Monotone non-decreasing and hits every rank.
        assert!(dest.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(dest[0], 0);
        assert_eq!(dest[100], 3);
        for r in 0..4 {
            assert!(dest.contains(&r));
        }
        // Out-of-range keys clamp to the last rank.
        assert_eq!(block_partition(1_000_000, 100, 4), 3);
        // Degenerate cases.
        assert_eq!(block_partition(5, 0, 4), 0);
        assert_eq!(block_partition(5, 100, 1), 0);
        assert_eq!(block_partition(5, 100, 0), 0);
    }

    #[test]
    fn block_partition_balances_uniform_keys() {
        let mut counts = [0u32; 8];
        for k in 0..8000u64 {
            counts[block_partition(k, 7999, 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((900..=1100).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn default_partition_is_key_mod_ranks() {
        let j = RoundRobinProbe;
        assert_eq!(j.partition(&10, 4), 2);
        assert_eq!(j.partition(&10, 1), 0);
        // ranks=0 is clamped rather than dividing by zero
        assert_eq!(j.partition(&10, 0), 0);
    }

    #[test]
    fn derive_splitters_cuts_uniform_samples_evenly() {
        let samples: Vec<u64> = (0..1000).collect();
        let splitters = derive_splitters(&samples, 4);
        assert_eq!(splitters.len(), 3);
        assert!(splitters.windows(2).all(|w| w[0] < w[1]));
        // Each quarter of the sample mass lands in its own range.
        let mode = PartitionMode::Range { splitters };
        let mut counts = [0u32; 4];
        for k in 0..1000u64 {
            counts[mode.route_radix(k, 4).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!((200..=300).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn derive_splitters_isolates_heavy_duplicates() {
        // 90% of the sample is one key: the greedy walk must give it a
        // band of its own ([7, 8)) rather than lumping neighbours in.
        let mut samples = vec![7u64; 900];
        samples.extend(0..100u64);
        let splitters = derive_splitters(&samples, 8);
        assert!(splitters.len() <= 7);
        assert!(splitters.windows(2).all(|w| w[0] < w[1]));
        let mode = PartitionMode::Range {
            splitters: splitters.clone(),
        };
        let heavy = mode.route_radix(7, 8).unwrap();
        for k in (0..100u64).filter(|&k| k != 7) {
            assert_ne!(
                mode.route_radix(k, 8).unwrap(),
                heavy,
                "key {k} shares a band with the heavy key ({splitters:?})"
            );
        }
    }

    #[test]
    fn derive_splitters_degenerate_inputs() {
        assert!(derive_splitters(&[], 4).is_empty());
        assert!(derive_splitters(&[1, 2, 3], 1).is_empty());
        assert!(derive_splitters(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn range_mode_routes_by_partition_point() {
        let mode = PartitionMode::Range {
            splitters: vec![10, 20],
        };
        assert_eq!(mode.route_radix(0, 3), Some(0));
        assert_eq!(mode.route_radix(10, 3), Some(1)); // <= goes right
        assert_eq!(mode.route_radix(15, 3), Some(1));
        assert_eq!(mode.route_radix(20, 3), Some(2));
        assert_eq!(mode.route_radix(u64::MAX, 3), Some(2));
        assert_eq!(mode.discriminant(), 3);
        assert_eq!(PartitionMode::Custom.route_radix(5, 3), None);
    }
}
