//! Plain-old-data byte serialization (unsafe-free).
//!
//! Chunks must be serializable so the scheduler can migrate them between
//! processes for load balancing (paper §4.1). [`Pod`] provides explicit
//! little-endian encoding for the scalar and small-composite types the
//! benchmarks use, without any `unsafe` transmutes.

/// A fixed-size value with an explicit little-endian byte encoding.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Append the encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decode from the first `SIZE` bytes of `src`.
    ///
    /// # Panics
    /// Panics if `src` is shorter than `SIZE`.
    fn read_le(src: &[u8]) -> Self;
}

macro_rules! impl_pod_scalar {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src[..Self::SIZE].try_into().expect("pod: short read"))
            }
        }
    )*};
}

impl_pod_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<A: Pod, B: Pod> Pod for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    #[inline]
    fn write_le(&self, out: &mut Vec<u8>) {
        self.0.write_le(out);
        self.1.write_le(out);
    }
    #[inline]
    fn read_le(src: &[u8]) -> Self {
        (A::read_le(src), B::read_le(&src[A::SIZE..]))
    }
}

impl<T: Pod, const N: usize> Pod for [T; N] {
    const SIZE: usize = T::SIZE * N;
    #[inline]
    fn write_le(&self, out: &mut Vec<u8>) {
        for v in self {
            v.write_le(out);
        }
    }
    #[inline]
    fn read_le(src: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_le(&src[i * T::SIZE..]))
    }
}

/// Encode a slice of pods (length-prefixed).
pub fn write_slice<T: Pod>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u64).write_le(out);
    out.reserve(items.len() * T::SIZE);
    for it in items {
        it.write_le(out);
    }
}

/// Decode a slice of pods written by [`write_slice`]. Returns the items
/// and the number of bytes consumed.
pub fn read_slice<T: Pod>(src: &[u8]) -> (Vec<T>, usize) {
    let len = u64::read_le(src) as usize;
    let mut items = Vec::with_capacity(len);
    let mut off = 8;
    for _ in 0..len {
        items.push(T::read_le(&src[off..]));
        off += T::SIZE;
    }
    (items, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        42u32.write_le(&mut buf);
        (-7i64).write_le(&mut buf);
        3.5f64.write_le(&mut buf);
        assert_eq!(u32::read_le(&buf), 42);
        assert_eq!(i64::read_le(&buf[4..]), -7);
        assert_eq!(f64::read_le(&buf[12..]), 3.5);
    }

    #[test]
    fn tuple_and_array_round_trips() {
        let mut buf = Vec::new();
        let p: (f32, f32) = (1.25, -2.5);
        p.write_le(&mut buf);
        assert_eq!(<(f32, f32)>::read_le(&buf), p);

        let mut buf = Vec::new();
        let a = [9u16, 8, 7];
        a.write_le(&mut buf);
        assert_eq!(<[u16; 3]>::read_le(&buf), a);
        assert_eq!(<[u16; 3]>::SIZE, 6);
    }

    #[test]
    fn slice_round_trips() {
        let items: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let mut buf = Vec::new();
        write_slice(&items, &mut buf);
        let (back, consumed) = read_slice::<u32>(&buf);
        assert_eq!(back, items);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn empty_slice_round_trips() {
        let mut buf = Vec::new();
        write_slice::<f64>(&[], &mut buf);
        let (back, consumed) = read_slice::<f64>(&buf);
        assert!(back.is_empty());
        assert_eq!(consumed, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn short_reads_panic() {
        let _ = u64::read_le(&[1, 2, 3]);
    }
}
