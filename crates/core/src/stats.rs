//! Job timing statistics — the data behind the paper's Figures 2 and 3.
//!
//! The engine records, per rank, how the makespan divides among the
//! pipeline stages the paper's runtime breakdown uses: Map (uploads, map
//! kernels, partial reduction), Complete Binning (the non-overlapped
//! communication tail after the last map), Sort, Reduce, and GPMR
//! internal/scheduler time (barrier waits, steal overhead). The five slices
//! sum to the makespan on every rank by construction.

use gpmr_sim_gpu::SimDuration;

/// Wall-clock (simulated) spans of the pipeline stages on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// Map stage: job start until the rank's last map kernel finishes
    /// (chunk uploads and partial reductions overlap inside it).
    pub map: SimDuration,
    /// Complete Binning: from the last map until all of the rank's
    /// outbound pairs are sent *and* all inbound pairs have arrived.
    pub bin: SimDuration,
    /// Sort stage (upload of received pairs, radix sort, key dedup).
    pub sort: SimDuration,
    /// Reduce stage (chunked reduce kernels and the final download).
    pub reduce: SimDuration,
    /// GPMR internal/scheduler time: whatever remains until the job-wide
    /// makespan (barrier waits, chunk-migration overhead).
    pub scheduler: SimDuration,
}

impl StageTimes {
    /// Sum of all stage spans (equals the job makespan per rank).
    pub fn total(&self) -> SimDuration {
        self.map + self.bin + self.sort + self.reduce + self.scheduler
    }

    /// Percentage breakdown `[map, bin, sort, reduce, scheduler]`.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total().as_secs();
        if t <= 0.0 {
            return [0.0; 5];
        }
        [
            self.map.as_secs() / t * 100.0,
            self.bin.as_secs() / t * 100.0,
            self.sort.as_secs() / t * 100.0,
            self.reduce.as_secs() / t * 100.0,
            self.scheduler.as_secs() / t * 100.0,
        ]
    }
}

/// Aggregate timing result of one job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobTimings {
    /// Job makespan: the latest rank's reduce completion.
    pub total: SimDuration,
    /// Per-rank stage spans.
    pub per_rank: Vec<StageTimes>,
    /// Chunks mapped by each rank (load-balance diagnostics).
    pub chunks_per_rank: Vec<u32>,
    /// Chunks migrated between ranks by the dynamic scheduler.
    pub chunks_stolen: u32,
    /// Key-value pairs emitted by all maps (before any reduction substage).
    pub pairs_emitted: u64,
    /// Pairs actually shipped to reducers (after partial reduce /
    /// accumulate / combine).
    pub pairs_shuffled: u64,
    /// GPUs lost to injected fail-stop faults during the job.
    pub gpus_lost: u32,
    /// GPUs that joined the job mid-run via elastic add events.
    pub gpus_added: u32,
    /// Chunks migrated off lost ranks and rerun on survivors.
    pub chunks_requeued: u32,
    /// Fabric transfer attempts that failed and were retried with backoff.
    pub transfer_retries: u32,
    /// Straggler stalls injected by the fault plan.
    pub stalls_injected: u32,
}

impl JobTimings {
    /// Mean stage breakdown across ranks, as percentages
    /// `[map, bin, sort, reduce, scheduler]`.
    pub fn mean_percentages(&self) -> [f64; 5] {
        if self.per_rank.is_empty() {
            return [0.0; 5];
        }
        let mut acc = [0.0; 5];
        for st in &self.per_rank {
            for (a, p) in acc.iter_mut().zip(st.percentages()) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.per_rank.len() as f64;
        }
        acc
    }
}

/// Speedup of a parallel run over a one-GPU run.
pub fn speedup(t1: SimDuration, tn: SimDuration) -> f64 {
    if tn.as_secs() <= 0.0 {
        return 0.0;
    }
    t1.as_secs() / tn.as_secs()
}

/// The paper's parallel efficiency: `speedup / #GPUs`.
pub fn efficiency(t1: SimDuration, tn: SimDuration, gpus: u32) -> f64 {
    speedup(t1, tn) / f64::from(gpus.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn stage_percentages_sum_to_100() {
        let st = StageTimes {
            map: secs(4.0),
            bin: secs(3.0),
            sort: secs(2.0),
            reduce: secs(0.5),
            scheduler: secs(0.5),
        };
        let p = st.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[0] - 40.0).abs() < 1e-9);
        assert_eq!(st.total().as_secs(), 10.0);
    }

    #[test]
    fn zero_total_yields_zero_percentages() {
        assert_eq!(StageTimes::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn mean_percentages_average_ranks() {
        let t = JobTimings {
            per_rank: vec![
                StageTimes {
                    map: secs(1.0),
                    ..StageTimes::default()
                },
                StageTimes {
                    bin: secs(1.0),
                    ..StageTimes::default()
                },
            ],
            ..JobTimings::default()
        };
        let p = t.mean_percentages();
        assert!((p[0] - 50.0).abs() < 1e-9);
        assert!((p[1] - 50.0).abs() < 1e-9);
        assert_eq!(JobTimings::default().mean_percentages(), [0.0; 5]);
    }

    #[test]
    fn speedup_and_efficiency() {
        assert!((speedup(secs(8.0), secs(2.0)) - 4.0).abs() < 1e-12);
        assert!((efficiency(secs(8.0), secs(2.0), 4) - 1.0).abs() < 1e-12);
        assert!((efficiency(secs(8.0), secs(4.0), 4) - 0.5).abs() < 1e-12);
        assert_eq!(speedup(secs(1.0), SimDuration::ZERO), 0.0);
    }

    #[test]
    fn speedup_and_efficiency_degenerate_inputs() {
        // Zero or negative denominators never divide.
        assert_eq!(speedup(SimDuration::ZERO, SimDuration::ZERO), 0.0);
        assert_eq!(speedup(secs(5.0), secs(-1.0)), 0.0);
        assert_eq!(efficiency(secs(5.0), SimDuration::ZERO, 8), 0.0);
        // Zero baseline is a valid (if useless) measurement: speedup 0.
        assert_eq!(speedup(SimDuration::ZERO, secs(2.0)), 0.0);
        // gpus == 0 is clamped rather than dividing by zero.
        assert!((efficiency(secs(4.0), secs(4.0), 0) - 1.0).abs() < 1e-12);
        // Sub-linear and super-linear speedups pass through unclamped.
        assert!((efficiency(secs(16.0), secs(1.0), 8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentages_sum_to_100_for_uneven_splits() {
        // Awkward floating-point splits must still total ~100.
        for parts in [
            [1e-9, 2e-9, 3e-9, 4e-9, 5e-9],
            [1.0 / 3.0, 1.0 / 7.0, 1.0 / 11.0, 1.0 / 13.0, 1.0 / 17.0],
            [1e6, 1.0, 1e-6, 3.0, 7.0],
        ] {
            let st = StageTimes {
                map: secs(parts[0]),
                bin: secs(parts[1]),
                sort: secs(parts[2]),
                reduce: secs(parts[3]),
                scheduler: secs(parts[4]),
            };
            let sum: f64 = st.percentages().iter().sum();
            assert!((sum - 100.0).abs() < 1e-6, "sum {sum} for {parts:?}");
        }
    }

    #[test]
    fn single_nonzero_stage_takes_all_percentage() {
        let st = StageTimes {
            sort: secs(2.5e-7),
            ..StageTimes::default()
        };
        let p = st.percentages();
        assert!((p[2] - 100.0).abs() < 1e-9);
        assert_eq!(p[0] + p[1] + p[3] + p[4], 0.0);
    }
}
