//! Job execution traces.
//!
//! [`run_job_traced`](crate::engine::run_job_traced) records every
//! pipeline event — chunk uploads, map kernels, partial reductions,
//! downloads, bin sends, chunk steals, sort and reduce phases — with its
//! simulated start/end window. Traces power debugging ("why is rank 3
//! idle?"), the Gantt renderer below, and tests that assert structural
//! properties of the schedule (overlap, stealing, barrier behaviour).

use std::fmt;

use gpmr_sim_gpu::{SimDuration, SimTime};

/// What a trace event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Job setup (scheduler/communicator startup).
    Setup,
    /// Chunk upload over PCI-e (host to device).
    Upload,
    /// Map kernel execution (includes accumulate-mode maps).
    Map,
    /// Partial Reduction kernel.
    PartialReduce,
    /// Accumulation-state initialization kernel.
    AccumulateInit,
    /// Partition kernel.
    Partition,
    /// Pair download over PCI-e (device to host).
    Download,
    /// Bin-stage network send (CPU thread; ends at receiver arrival).
    Send,
    /// Global Combine (upload + combine kernel) in combine mode.
    Combine,
    /// Chunk migration from another rank's queue.
    Steal,
    /// Sort stage (upload of received pairs, sort, key dedup).
    Sort,
    /// Reduce stage (chunked reduce kernels + output download).
    Reduce,
    /// Fail-stop GPU loss detected by the scheduler (fault injection).
    GpuLost,
    /// Orphaned chunk migrated off a lost rank onto a survivor.
    Requeue,
    /// Transfer retry backoff after a plan-injected fabric failure.
    Retry,
    /// Injected straggler stall (fault injection).
    Stall,
    /// A GPU joined the running job (elastic add).
    GpuAdded,
    /// Write-ahead journal flush (zero simulated duration; host-side I/O
    /// is never charged to the schedule).
    JournalFlush,
    /// Caller-requested stop (service cancellation or missed deadline):
    /// the engine halted at a chunk boundary and drained its queues.
    Cancelled,
}

impl TraceKind {
    /// Every kind, in pipeline order. Extending the enum without updating
    /// this list is a compile error (see `exhaustive_all` test), which is
    /// what keeps the Gantt legend and exporters complete.
    pub const ALL: [TraceKind; 19] = [
        TraceKind::Setup,
        TraceKind::Upload,
        TraceKind::Map,
        TraceKind::PartialReduce,
        TraceKind::AccumulateInit,
        TraceKind::Partition,
        TraceKind::Download,
        TraceKind::Send,
        TraceKind::Combine,
        TraceKind::Steal,
        TraceKind::Sort,
        TraceKind::Reduce,
        TraceKind::GpuLost,
        TraceKind::Requeue,
        TraceKind::Retry,
        TraceKind::Stall,
        TraceKind::GpuAdded,
        TraceKind::JournalFlush,
        TraceKind::Cancelled,
    ];

    /// One-letter tag used by the Gantt renderer.
    pub fn tag(self) -> char {
        match self {
            TraceKind::Setup => '#',
            TraceKind::Upload => 'u',
            TraceKind::Map => 'M',
            TraceKind::PartialReduce => 'p',
            TraceKind::AccumulateInit => 'a',
            TraceKind::Partition => 't',
            TraceKind::Download => 'd',
            TraceKind::Send => 's',
            TraceKind::Combine => 'C',
            TraceKind::Steal => '!',
            TraceKind::Sort => 'S',
            TraceKind::Reduce => 'R',
            TraceKind::GpuLost => 'X',
            TraceKind::Requeue => 'q',
            TraceKind::Retry => 'r',
            TraceKind::Stall => 'z',
            TraceKind::GpuAdded => '+',
            TraceKind::JournalFlush => 'J',
            TraceKind::Cancelled => 'c',
        }
    }

    /// Stable identifier (the variant name); also the telemetry span kind.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Setup => "Setup",
            TraceKind::Upload => "Upload",
            TraceKind::Map => "Map",
            TraceKind::PartialReduce => "PartialReduce",
            TraceKind::AccumulateInit => "AccumulateInit",
            TraceKind::Partition => "Partition",
            TraceKind::Download => "Download",
            TraceKind::Send => "Send",
            TraceKind::Combine => "Combine",
            TraceKind::Steal => "Steal",
            TraceKind::Sort => "Sort",
            TraceKind::Reduce => "Reduce",
            TraceKind::GpuLost => "GpuLost",
            TraceKind::Requeue => "Requeue",
            TraceKind::Retry => "Retry",
            TraceKind::Stall => "Stall",
            TraceKind::GpuAdded => "GpuAdded",
            TraceKind::JournalFlush => "JournalFlush",
            TraceKind::Cancelled => "Cancelled",
        }
    }

    /// Short human label used in the generated Gantt legend.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Setup => "setup",
            TraceKind::Upload => "upload",
            TraceKind::Map => "map",
            TraceKind::PartialReduce => "partial-reduce",
            TraceKind::AccumulateInit => "accum-init",
            TraceKind::Partition => "partition",
            TraceKind::Download => "download",
            TraceKind::Send => "send",
            TraceKind::Combine => "combine",
            TraceKind::Steal => "steal",
            TraceKind::Sort => "sort",
            TraceKind::Reduce => "reduce",
            TraceKind::GpuLost => "gpu-lost",
            TraceKind::Requeue => "requeue",
            TraceKind::Retry => "retry",
            TraceKind::Stall => "stall",
            TraceKind::GpuAdded => "gpu-added",
            TraceKind::JournalFlush => "journal-flush",
            TraceKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`TraceKind::name`]; `None` for non-stage span kinds
    /// (container spans like `"Chunk"`, fabric spans like `"NetSend"`).
    pub fn from_name(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The full `tag label` legend, generated from [`TraceKind::ALL`] so
    /// every kind — including the fault tags `X`/`q`/`r`/`z` — is always
    /// listed.
    pub fn legend() -> String {
        TraceKind::ALL
            .iter()
            .map(|k| format!("{} {}", k.tag(), k.label()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Rank (GPU/process) the event belongs to.
    pub rank: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Simulated start instant.
    pub start: SimTime,
    /// Simulated end instant.
    pub end: SimTime,
    /// Free-form detail (chunk id, destination rank, pair count, ...).
    pub detail: String,
}

impl TraceEvent {
    /// Event duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A full job trace.
#[derive(Clone, Debug, Default)]
pub struct JobTrace {
    /// All events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl JobTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derive a classic trace from a telemetry snapshot. Spans whose kind
    /// names a [`TraceKind`] become events (rank = telemetry track, detail
    /// = the span's `detail` attribute), in record order; container spans
    /// (`"Chunk"`) and fabric spans (`"NetSend"`) are skipped. Because
    /// spans store simulated seconds as `f64`, the result is bit-identical
    /// to the trace the engine recorded directly before telemetry existed.
    pub fn from_telemetry(snap: &gpmr_telemetry::TelemetrySnapshot) -> Self {
        let mut trace = JobTrace::new();
        for span in &snap.spans {
            if let Some(kind) = TraceKind::from_name(&span.kind) {
                trace.record(
                    span.track,
                    kind,
                    SimTime::from_secs(span.start_s),
                    SimTime::from_secs(span.end_s),
                    span.attr("detail").unwrap_or(""),
                );
            }
        }
        trace
    }

    pub(crate) fn record(
        &mut self,
        rank: u32,
        kind: TraceKind,
        start: SimTime,
        end: SimTime,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            rank,
            kind,
            start,
            end,
            detail: detail.into(),
        });
    }

    /// Events of one rank, in recording order.
    pub fn events_for(&self, rank: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Events of one kind.
    pub fn events_of(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The latest end instant in the trace.
    pub fn span_end(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Render an ASCII Gantt chart, one row per rank, `width` columns of
    /// simulated time. Later events overwrite earlier ones in a cell;
    /// kernels therefore show through the longer transfer windows they
    /// overlap.
    pub fn gantt(&self, ranks: u32, width: usize) -> String {
        let width = width.max(10);
        let end = self.span_end().as_secs();
        if end <= 0.0 {
            return String::from("(empty trace)\n");
        }
        let col = |t: SimTime| {
            (((t.as_secs() / end) * width as f64) as usize).min(width.saturating_sub(1))
        };
        let mut out = String::new();
        // Legend is generated from TraceKind::ALL so new kinds (and the
        // fault tags X/q/r/z) can never be missing; wrap to ~78 columns.
        let header = format!(
            "time 0 .. {:.3} ms ({} columns; legend: {})",
            end * 1e3,
            width,
            TraceKind::legend()
        );
        let mut line_len = 0;
        for (i, word) in header.split(' ').enumerate() {
            if i > 0 {
                if line_len + 1 + word.len() > 78 {
                    out.push('\n');
                    line_len = 0;
                } else {
                    out.push(' ');
                    line_len += 1;
                }
            }
            out.push_str(word);
            line_len += word.len();
        }
        out.push('\n');
        for r in 0..ranks {
            let mut row = vec![' '; width];
            for e in self.events_for(r) {
                let (c0, c1) = (col(e.start), col(e.end).max(col(e.start)));
                for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                    *cell = e.kind.tag();
                }
            }
            out.push_str(&format!("rank {r:>3} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }

    /// Export all events as CSV (`rank,kind,start_s,end_s,detail`) for
    /// external visualization tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,kind,start_s,end_s,detail\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{:?},{:.9},{:.9},{}\n",
                e.rank,
                e.kind,
                e.start.as_secs(),
                e.end.as_secs(),
                e.detail.replace(',', ";"),
            ));
        }
        out
    }

    /// Aggregate busy time per kind per rank (diagnostics).
    pub fn busy_by_kind(&self, rank: u32, kind: TraceKind) -> SimDuration {
        self.events_for(rank)
            .filter(|e| e.kind == kind)
            .map(TraceEvent::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> JobTrace {
        let mut tr = JobTrace::new();
        tr.record(0, TraceKind::Upload, t(0.0), t(0.1), "chunk 0");
        tr.record(0, TraceKind::Map, t(0.1), t(0.4), "chunk 0");
        tr.record(1, TraceKind::Map, t(0.2), t(0.3), "chunk 1");
        tr.record(0, TraceKind::Sort, t(0.5), t(0.8), "");
        tr
    }

    #[test]
    fn filters_and_span() {
        let tr = sample();
        assert_eq!(tr.events_for(0).count(), 3);
        assert_eq!(tr.events_for(1).count(), 1);
        assert_eq!(tr.events_of(TraceKind::Map).count(), 2);
        assert_eq!(tr.span_end(), t(0.8));
        assert!((tr.busy_by_kind(0, TraceKind::Map).as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows_and_tags() {
        let tr = sample();
        let g = tr.gantt(2, 40);
        let rows: Vec<&str> = g.lines().filter(|l| l.starts_with("rank")).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains('M'));
        assert!(rows[0].contains('S'));
        assert!(rows[1].contains('M'));
        // All rows same width.
        assert_eq!(rows[0].len(), rows[1].len());
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tr = JobTrace::new();
        assert_eq!(tr.gantt(4, 40), "(empty trace)\n");
        assert_eq!(tr.span_end(), SimTime::ZERO);
    }

    #[test]
    fn csv_export_has_one_line_per_event() {
        let tr = sample();
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + tr.events.len());
        assert!(lines[0].starts_with("rank,kind"));
        assert!(lines[1].contains("Upload"));
        assert!(lines[1].contains("chunk 0"));
    }

    #[test]
    fn tags_are_distinct() {
        let tags: std::collections::HashSet<char> =
            TraceKind::ALL.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), TraceKind::ALL.len());
    }

    /// A new `TraceKind` variant cannot ship without a tag, name, label,
    /// and `ALL` entry: `tag`/`name`/`label` are exhaustive matches (a new
    /// variant is a compile error until handled), and the match below is a
    /// compile error until the variant appears here — while the assertion
    /// fails until it is added to `ALL`.
    #[test]
    fn all_covers_every_variant() {
        fn expected_index(k: TraceKind) -> usize {
            use TraceKind::*;
            match k {
                Setup => 0,
                Upload => 1,
                Map => 2,
                PartialReduce => 3,
                AccumulateInit => 4,
                Partition => 5,
                Download => 6,
                Send => 7,
                Combine => 8,
                Steal => 9,
                Sort => 10,
                Reduce => 11,
                GpuLost => 12,
                Requeue => 13,
                Retry => 14,
                Stall => 15,
                GpuAdded => 16,
                JournalFlush => 17,
                Cancelled => 18,
            }
        }
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(expected_index(*k), i, "{k} out of place in ALL");
            assert_eq!(TraceKind::from_name(k.name()), Some(*k));
        }
    }

    #[test]
    fn legend_lists_every_tag_including_fault_tags() {
        let legend = TraceKind::legend();
        for k in TraceKind::ALL {
            assert!(
                legend.contains(&format!("{} {}", k.tag(), k.label())),
                "legend missing {k}: {legend}"
            );
        }
        // The fault-injection tags from the fault-tolerance scheduler must
        // be documented in every rendered Gantt header.
        for tag in [
            "X gpu-lost",
            "q requeue",
            "r retry",
            "z stall",
            "+ gpu-added",
            "J journal-flush",
        ] {
            assert!(legend.contains(tag), "legend missing {tag}");
        }
        let mut tr = JobTrace::new();
        tr.record(0, TraceKind::GpuLost, t(0.0), t(0.1), "");
        assert!(tr.gantt(1, 40).contains("X gpu-lost"));
    }

    #[test]
    fn from_telemetry_round_trips_events() {
        use gpmr_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        tel.span(0, "Upload", 0.0, 0.1)
            .attr("detail", "chunk 0")
            .record();
        tel.span(0, "Chunk", 0.0, 0.4).name("chunk 0").record(); // skipped
        tel.span(1, "Map", 0.2, 0.3)
            .attr("detail", "8 pairs")
            .record();
        tel.span(2, "NetSend", 0.0, 0.1).record(); // skipped
        let trace = JobTrace::from_telemetry(&tel.snapshot());
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, TraceKind::Upload);
        assert_eq!(trace.events[0].detail, "chunk 0");
        assert_eq!(trace.events[1].rank, 1);
        assert_eq!(trace.events[1].end, t(0.3));
    }
}
