//! Job execution traces.
//!
//! [`run_job_traced`](crate::engine::run_job_traced) records every
//! pipeline event — chunk uploads, map kernels, partial reductions,
//! downloads, bin sends, chunk steals, sort and reduce phases — with its
//! simulated start/end window. Traces power debugging ("why is rank 3
//! idle?"), the Gantt renderer below, and tests that assert structural
//! properties of the schedule (overlap, stealing, barrier behaviour).

use std::fmt;

use gpmr_sim_gpu::{SimDuration, SimTime};

/// What a trace event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Job setup (scheduler/communicator startup).
    Setup,
    /// Chunk upload over PCI-e (host to device).
    Upload,
    /// Map kernel execution (includes accumulate-mode maps).
    Map,
    /// Partial Reduction kernel.
    PartialReduce,
    /// Accumulation-state initialization kernel.
    AccumulateInit,
    /// Partition kernel.
    Partition,
    /// Pair download over PCI-e (device to host).
    Download,
    /// Bin-stage network send (CPU thread; ends at receiver arrival).
    Send,
    /// Global Combine (upload + combine kernel) in combine mode.
    Combine,
    /// Chunk migration from another rank's queue.
    Steal,
    /// Sort stage (upload of received pairs, sort, key dedup).
    Sort,
    /// Reduce stage (chunked reduce kernels + output download).
    Reduce,
    /// Fail-stop GPU loss detected by the scheduler (fault injection).
    GpuLost,
    /// Orphaned chunk migrated off a lost rank onto a survivor.
    Requeue,
    /// Transfer retry backoff after a plan-injected fabric failure.
    Retry,
    /// Injected straggler stall (fault injection).
    Stall,
}

impl TraceKind {
    /// One-letter tag used by the Gantt renderer.
    pub fn tag(self) -> char {
        match self {
            TraceKind::Setup => '#',
            TraceKind::Upload => 'u',
            TraceKind::Map => 'M',
            TraceKind::PartialReduce => 'p',
            TraceKind::AccumulateInit => 'a',
            TraceKind::Partition => 't',
            TraceKind::Download => 'd',
            TraceKind::Send => 's',
            TraceKind::Combine => 'C',
            TraceKind::Steal => '!',
            TraceKind::Sort => 'S',
            TraceKind::Reduce => 'R',
            TraceKind::GpuLost => 'X',
            TraceKind::Requeue => 'q',
            TraceKind::Retry => 'r',
            TraceKind::Stall => 'z',
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Rank (GPU/process) the event belongs to.
    pub rank: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Simulated start instant.
    pub start: SimTime,
    /// Simulated end instant.
    pub end: SimTime,
    /// Free-form detail (chunk id, destination rank, pair count, ...).
    pub detail: String,
}

impl TraceEvent {
    /// Event duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A full job trace.
#[derive(Clone, Debug, Default)]
pub struct JobTrace {
    /// All events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl JobTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(
        &mut self,
        rank: u32,
        kind: TraceKind,
        start: SimTime,
        end: SimTime,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            rank,
            kind,
            start,
            end,
            detail: detail.into(),
        });
    }

    /// Events of one rank, in recording order.
    pub fn events_for(&self, rank: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Events of one kind.
    pub fn events_of(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The latest end instant in the trace.
    pub fn span_end(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Render an ASCII Gantt chart, one row per rank, `width` columns of
    /// simulated time. Later events overwrite earlier ones in a cell;
    /// kernels therefore show through the longer transfer windows they
    /// overlap.
    pub fn gantt(&self, ranks: u32, width: usize) -> String {
        let width = width.max(10);
        let end = self.span_end().as_secs();
        if end <= 0.0 {
            return String::from("(empty trace)\n");
        }
        let col = |t: SimTime| {
            (((t.as_secs() / end) * width as f64) as usize).min(width.saturating_sub(1))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "time 0 .. {:.3} ms ({} columns; legend: # setup, u upload, M map, p partial-\n\
             reduce, a accum-init, t partition, d download, s send, C combine, ! steal,\n\
             S sort, R reduce, X gpu-lost, q requeue, r retry, z stall)\n",
            end * 1e3,
            width
        ));
        for r in 0..ranks {
            let mut row = vec![' '; width];
            for e in self.events_for(r) {
                let (c0, c1) = (col(e.start), col(e.end).max(col(e.start)));
                for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                    *cell = e.kind.tag();
                }
            }
            out.push_str(&format!("rank {r:>3} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }

    /// Export all events as CSV (`rank,kind,start_s,end_s,detail`) for
    /// external visualization tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,kind,start_s,end_s,detail\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{:?},{:.9},{:.9},{}\n",
                e.rank,
                e.kind,
                e.start.as_secs(),
                e.end.as_secs(),
                e.detail.replace(',', ";"),
            ));
        }
        out
    }

    /// Aggregate busy time per kind per rank (diagnostics).
    pub fn busy_by_kind(&self, rank: u32, kind: TraceKind) -> SimDuration {
        self.events_for(rank)
            .filter(|e| e.kind == kind)
            .map(TraceEvent::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> JobTrace {
        let mut tr = JobTrace::new();
        tr.record(0, TraceKind::Upload, t(0.0), t(0.1), "chunk 0");
        tr.record(0, TraceKind::Map, t(0.1), t(0.4), "chunk 0");
        tr.record(1, TraceKind::Map, t(0.2), t(0.3), "chunk 1");
        tr.record(0, TraceKind::Sort, t(0.5), t(0.8), "");
        tr
    }

    #[test]
    fn filters_and_span() {
        let tr = sample();
        assert_eq!(tr.events_for(0).count(), 3);
        assert_eq!(tr.events_for(1).count(), 1);
        assert_eq!(tr.events_of(TraceKind::Map).count(), 2);
        assert_eq!(tr.span_end(), t(0.8));
        assert!((tr.busy_by_kind(0, TraceKind::Map).as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows_and_tags() {
        let tr = sample();
        let g = tr.gantt(2, 40);
        let rows: Vec<&str> = g.lines().filter(|l| l.starts_with("rank")).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains('M'));
        assert!(rows[0].contains('S'));
        assert!(rows[1].contains('M'));
        // All rows same width.
        assert_eq!(rows[0].len(), rows[1].len());
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tr = JobTrace::new();
        assert_eq!(tr.gantt(4, 40), "(empty trace)\n");
        assert_eq!(tr.span_end(), SimTime::ZERO);
    }

    #[test]
    fn csv_export_has_one_line_per_event() {
        let tr = sample();
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + tr.events.len());
        assert!(lines[0].starts_with("rank,kind"));
        assert!(lines[1].contains("Upload"));
        assert!(lines[1].contains("chunk 0"));
    }

    #[test]
    fn tags_are_distinct() {
        use TraceKind::*;
        let kinds = [
            Setup,
            Upload,
            Map,
            PartialReduce,
            AccumulateInit,
            Partition,
            Download,
            Send,
            Combine,
            Steal,
            Sort,
            Reduce,
            GpuLost,
            Requeue,
            Retry,
            Stall,
        ];
        let tags: std::collections::HashSet<char> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }
}
