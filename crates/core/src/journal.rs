//! Write-ahead job journal: an append-only commit log of the scheduler's
//! quantized touch-points (chunk dispatch, chunk commit, bin sorted, bin
//! reduced, GPU loss/add, steal/requeue), with content hashes, plus the
//! completed-bin manifest derived from it.
//!
//! The engine is a deterministic simulation, so recovery is *verified
//! replay*: a resumed run re-executes the job from scratch and checks each
//! commit record it would write against the journal's surviving prefix.
//! A matching prefix proves the resumed schedule is bit-identical to the
//! crashed run up to the last consistent point; from there the journal
//! switches to append mode and the run finishes normally. A record that
//! decodes but does not match raises [`JournalError::Diverged`] — the
//! journal belongs to a different job, input, or cluster shape.
//!
//! On-disk format: a flat sequence of frames, each
//! `[payload_len: u32 LE][checksum: u64 LE][payload]` where the checksum
//! is FNV-1a over the payload and the payload is a tagged
//! [`JournalRecord`] encoded with the same little-endian [`Pod`] codec the
//! chunks use. A torn tail (truncated frame or checksum mismatch — the
//! crash happened mid-write) is detected on open and trimmed back to the
//! last whole record; it is never an error.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::pod::Pod;

/// FNV-1a 64-bit over a byte slice: the journal's checksum and content
/// hash. Stable, dependency-free, and fast enough for commit-sized
/// payloads.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher (see [`fnv1a`]).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Fold `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a little-endian `u64` into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Content hash of a key/value pair sequence, in order. This is the hash
/// stored in [`JournalRecord::ChunkCommit`], [`JournalRecord::BinSorted`],
/// and [`JournalRecord::BinReduced`]: since the engine's pair buffers are
/// canonically ordered, equal hashes mean bit-identical data.
pub fn hash_pairs<K: Pod, V: Pod>(keys: &[K], vals: &[V]) -> u64 {
    let mut buf = Vec::with_capacity(keys.len() * K::SIZE + vals.len() * V::SIZE);
    for k in keys {
        k.write_le(&mut buf);
    }
    for v in vals {
        v.write_le(&mut buf);
    }
    fnv1a(&buf)
}

/// One commit-log entry. Every variant is written at a scheduler
/// touch-point the fault harness already quantizes on, so the log orders
/// identically across runs of the same job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// Job admission: a fingerprint over the cluster shape, pipeline
    /// configuration, tuning that affects the schedule, and every input
    /// chunk's content. Always the first record; a resumed run whose
    /// fingerprint differs diverges immediately instead of replaying
    /// garbage.
    JobStart {
        /// FNV-1a over job configuration and input chunk contents.
        fingerprint: u64,
        /// Number of input chunks.
        n_chunks: u64,
        /// Cluster size (including GPUs that only join mid-job).
        ranks: u32,
        /// Reducer count: the ranks present at job start, which own the
        /// partition space for the whole job.
        reducers: u32,
    },
    /// A chunk left a queue for a rank's upload pipeline.
    ChunkDispatch {
        /// Canonical chunk id (original input index).
        chunk_id: u64,
        /// The rank that will map it.
        rank: u32,
    },
    /// A chunk's map output was committed (it can never rerun).
    ChunkCommit {
        /// Canonical chunk id.
        chunk_id: u64,
        /// The rank that mapped it.
        rank: u32,
        /// Emitted pair count (chunk item count in accumulate mode, where
        /// emissions fold into device state immediately).
        pairs: u64,
        /// Content hash: the emitted pairs ([`hash_pairs`]), or the chunk
        /// bytes in accumulate mode.
        hash: u64,
    },
    /// An idle rank stole a queued chunk.
    Steal {
        /// Canonical chunk id.
        chunk_id: u64,
        /// The rank it was stolen from.
        victim: u32,
        /// The rank that now owns it.
        thief: u32,
    },
    /// A lost rank's chunk migrated to a survivor.
    Requeue {
        /// Canonical chunk id.
        chunk_id: u64,
        /// The dead rank.
        from: u32,
        /// The surviving rank that will rerun it.
        to: u32,
    },
    /// A GPU failed fail-stop.
    GpuLost {
        /// The lost rank.
        rank: u32,
    },
    /// A GPU joined the running job (elastic add).
    GpuAdded {
        /// The joining rank.
        rank: u32,
    },
    /// A reducer's inbound bin finished sorting.
    BinSorted {
        /// The reducer rank.
        rank: u32,
        /// Sorted pair count.
        pairs: u64,
        /// Unique key count (segment count).
        unique: u64,
        /// [`hash_pairs`] over the sorted keys and values.
        hash: u64,
    },
    /// A reducer's output was committed (downloaded to the host).
    BinReduced {
        /// The reducer rank.
        rank: u32,
        /// Output pair count.
        pairs: u64,
        /// [`hash_pairs`] over the output keys and values.
        hash: u64,
    },
    /// The job finished.
    JobEnd {
        /// FNV-1a fold of every rank's output-pair hash, in rank order.
        output_hash: u64,
        /// `f64::to_bits` of the makespan in seconds (bit-exact).
        makespan_bits: u64,
    },
    /// A round of a multi-round (chained) job is starting. Written by the
    /// round driver before the round's own `JobStart`, so a resumed run
    /// detects divergence at round granularity — a different convergence
    /// trajectory (changed centers, changed splitters) diverges here, on
    /// the control hash, before any per-chunk record could mislead.
    RoundStart {
        /// Zero-based round index.
        round: u32,
        /// FNV-1a over the round's control state (the host-visible scalar
        /// the previous round broadcast: centers, splitters, thresholds).
        control_hash: u64,
    },
    /// A round of a multi-round job completed.
    RoundEnd {
        /// Zero-based round index.
        round: u32,
        /// FNV-1a fold of every rank's round-output hash, in rank order.
        output_hash: u64,
        /// `f64::to_bits` of the driver's accumulated cross-round clock
        /// at the end of this round (bit-exact).
        clock_bits: u64,
    },
}

impl JournalRecord {
    /// Stage and cluster-membership boundaries flush unconditionally —
    /// these are the "last consistent point" markers recovery seeks to.
    fn is_barrier(&self) -> bool {
        matches!(
            self,
            JournalRecord::JobStart { .. }
                | JournalRecord::GpuLost { .. }
                | JournalRecord::GpuAdded { .. }
                | JournalRecord::BinSorted { .. }
                | JournalRecord::BinReduced { .. }
                | JournalRecord::JobEnd { .. }
                | JournalRecord::RoundStart { .. }
                | JournalRecord::RoundEnd { .. }
        )
    }

    fn tag(&self) -> u8 {
        match self {
            JournalRecord::JobStart { .. } => 1,
            JournalRecord::ChunkDispatch { .. } => 2,
            JournalRecord::ChunkCommit { .. } => 3,
            JournalRecord::Steal { .. } => 4,
            JournalRecord::Requeue { .. } => 5,
            JournalRecord::GpuLost { .. } => 6,
            JournalRecord::GpuAdded { .. } => 7,
            JournalRecord::BinSorted { .. } => 8,
            JournalRecord::BinReduced { .. } => 9,
            JournalRecord::JobEnd { .. } => 10,
            JournalRecord::RoundStart { .. } => 11,
            JournalRecord::RoundEnd { .. } => 12,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match *self {
            JournalRecord::JobStart {
                fingerprint,
                n_chunks,
                ranks,
                reducers,
            } => {
                fingerprint.write_le(out);
                n_chunks.write_le(out);
                ranks.write_le(out);
                reducers.write_le(out);
            }
            JournalRecord::ChunkDispatch { chunk_id, rank } => {
                chunk_id.write_le(out);
                rank.write_le(out);
            }
            JournalRecord::ChunkCommit {
                chunk_id,
                rank,
                pairs,
                hash,
            } => {
                chunk_id.write_le(out);
                rank.write_le(out);
                pairs.write_le(out);
                hash.write_le(out);
            }
            JournalRecord::Steal {
                chunk_id,
                victim,
                thief,
            } => {
                chunk_id.write_le(out);
                victim.write_le(out);
                thief.write_le(out);
            }
            JournalRecord::Requeue { chunk_id, from, to } => {
                chunk_id.write_le(out);
                from.write_le(out);
                to.write_le(out);
            }
            JournalRecord::GpuLost { rank } | JournalRecord::GpuAdded { rank } => {
                rank.write_le(out);
            }
            JournalRecord::BinSorted {
                rank,
                pairs,
                unique,
                hash,
            } => {
                rank.write_le(out);
                pairs.write_le(out);
                unique.write_le(out);
                hash.write_le(out);
            }
            JournalRecord::BinReduced { rank, pairs, hash } => {
                rank.write_le(out);
                pairs.write_le(out);
                hash.write_le(out);
            }
            JournalRecord::JobEnd {
                output_hash,
                makespan_bits,
            } => {
                output_hash.write_le(out);
                makespan_bits.write_le(out);
            }
            JournalRecord::RoundStart {
                round,
                control_hash,
            } => {
                round.write_le(out);
                control_hash.write_le(out);
            }
            JournalRecord::RoundEnd {
                round,
                output_hash,
                clock_bits,
            } => {
                round.write_le(out);
                output_hash.write_le(out);
                clock_bits.write_le(out);
            }
        }
    }

    fn decode(payload: &[u8]) -> Option<JournalRecord> {
        let (&tag, _) = payload.split_first()?;
        let mut off = 0usize;
        let body = &payload[1..];
        let next_u64 = |off: &mut usize| -> Option<u64> {
            let v = u64::read_le(body.get(*off..*off + 8)?);
            *off += 8;
            Some(v)
        };
        let next_u32 = |off: &mut usize| -> Option<u32> {
            let v = u32::read_le(body.get(*off..*off + 4)?);
            *off += 4;
            Some(v)
        };
        let rec = match tag {
            1 => JournalRecord::JobStart {
                fingerprint: next_u64(&mut off)?,
                n_chunks: next_u64(&mut off)?,
                ranks: next_u32(&mut off)?,
                reducers: next_u32(&mut off)?,
            },
            2 => JournalRecord::ChunkDispatch {
                chunk_id: next_u64(&mut off)?,
                rank: next_u32(&mut off)?,
            },
            3 => JournalRecord::ChunkCommit {
                chunk_id: next_u64(&mut off)?,
                rank: next_u32(&mut off)?,
                pairs: next_u64(&mut off)?,
                hash: next_u64(&mut off)?,
            },
            4 => JournalRecord::Steal {
                chunk_id: next_u64(&mut off)?,
                victim: next_u32(&mut off)?,
                thief: next_u32(&mut off)?,
            },
            5 => JournalRecord::Requeue {
                chunk_id: next_u64(&mut off)?,
                from: next_u32(&mut off)?,
                to: next_u32(&mut off)?,
            },
            6 => JournalRecord::GpuLost {
                rank: next_u32(&mut off)?,
            },
            7 => JournalRecord::GpuAdded {
                rank: next_u32(&mut off)?,
            },
            8 => JournalRecord::BinSorted {
                rank: next_u32(&mut off)?,
                pairs: next_u64(&mut off)?,
                unique: next_u64(&mut off)?,
                hash: next_u64(&mut off)?,
            },
            9 => JournalRecord::BinReduced {
                rank: next_u32(&mut off)?,
                pairs: next_u64(&mut off)?,
                hash: next_u64(&mut off)?,
            },
            10 => JournalRecord::JobEnd {
                output_hash: next_u64(&mut off)?,
                makespan_bits: next_u64(&mut off)?,
            },
            11 => JournalRecord::RoundStart {
                round: next_u32(&mut off)?,
                control_hash: next_u64(&mut off)?,
            },
            12 => JournalRecord::RoundEnd {
                round: next_u32(&mut off)?,
                output_hash: next_u64(&mut off)?,
                clock_bits: next_u64(&mut off)?,
            },
            _ => return None,
        };
        if off != body.len() {
            return None;
        }
        Some(rec)
    }
}

/// Errors raised by journal operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The journal file could not be read or written.
    Io(String),
    /// During replay, the run produced a record that disagrees with the
    /// journal: the journal belongs to a different job, input, cluster
    /// shape, or fault plan, and replaying further would corrupt it.
    Diverged {
        /// Zero-based index of the mismatching record.
        index: u64,
        /// What the journal holds.
        expected: JournalRecord,
        /// What the resumed run produced.
        got: JournalRecord,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O failed: {msg}"),
            JournalError::Diverged {
                index,
                expected,
                got,
            } => write!(
                f,
                "resume diverged from the journal at record {index}: journal has {expected:?}, \
                 the run produced {got:?} (different job, input, or cluster?)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// Convenience result alias for journal operations.
pub type JournalResult<T> = Result<T, JournalError>;

/// What [`Journal::record`] did with a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordOutcome {
    /// The record matched the journal's replay prefix; nothing written.
    Replayed,
    /// The record was appended to the in-memory tail (not yet on disk).
    Buffered,
    /// The record was appended and the tail was flushed to disk.
    Flushed,
}

const FRAME_HEADER: usize = 4 + 8; // payload_len: u32 + checksum: u64

/// The write-ahead journal: a verified-replay prefix (on resume) followed
/// by an append tail, flushed every `checkpoint_every` records and at
/// every stage barrier.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    replay: Vec<JournalRecord>,
    replay_idx: usize,
    pending: Vec<u8>,
    pending_records: u64,
    checkpoint_every: u64,
    appended: u64,
    flushes: u64,
    torn_bytes: u64,
}

impl Journal {
    /// Start a fresh journal at `path` (truncating any existing file),
    /// flushing at least every `checkpoint_every` records (clamped to 1).
    pub fn create(path: impl AsRef<Path>, checkpoint_every: u32) -> JournalResult<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal {
            path,
            file,
            replay: Vec::new(),
            replay_idx: 0,
            pending: Vec::new(),
            pending_records: 0,
            checkpoint_every: u64::from(checkpoint_every.max(1)),
            appended: 0,
            flushes: 0,
            torn_bytes: 0,
        })
    }

    /// Open an existing journal at `path` for resumption: load the valid
    /// record prefix, trim any torn tail off the file, and enter replay
    /// mode. The next [`Journal::record`] calls verify against the prefix
    /// and switch to appending once it is exhausted.
    pub fn resume(path: impl AsRef<Path>, checkpoint_every: u32) -> JournalResult<Journal> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        let (replay, offsets) = scan_bytes(&bytes);
        let valid = *offsets.last().expect("offsets always start at 0");
        let torn_bytes = bytes.len() as u64 - valid;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid)?;
        file.seek(SeekFrom::Start(valid))?;
        Ok(Journal {
            path,
            file,
            replay,
            replay_idx: 0,
            pending: Vec::new(),
            pending_records: 0,
            checkpoint_every: u64::from(checkpoint_every.max(1)),
            appended: 0,
            flushes: 0,
            torn_bytes,
        })
    }

    /// Decode the valid record prefix of the journal at `path`, returning
    /// the records and the byte offset of every record boundary (starting
    /// at 0, ending at the valid prefix length). The crash-point test
    /// matrix truncates at exactly these offsets.
    pub fn scan(path: impl AsRef<Path>) -> JournalResult<(Vec<JournalRecord>, Vec<u64>)> {
        let bytes = std::fs::read(path.as_ref())?;
        Ok(scan_bytes(&bytes))
    }

    /// Verify (in replay mode) or append one record. Appends are buffered;
    /// the buffer is flushed every `checkpoint_every` records and at every
    /// stage barrier (job start/end, bin sorted/reduced, GPU lost/added).
    pub fn record(&mut self, rec: &JournalRecord) -> JournalResult<RecordOutcome> {
        if self.replay_idx < self.replay.len() {
            let expected = self.replay[self.replay_idx];
            if expected != *rec {
                return Err(JournalError::Diverged {
                    index: self.replay_idx as u64,
                    expected,
                    got: *rec,
                });
            }
            self.replay_idx += 1;
            return Ok(RecordOutcome::Replayed);
        }
        let mut payload = Vec::with_capacity(48);
        rec.encode(&mut payload);
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&fnv1a(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.appended += 1;
        self.pending_records += 1;
        if rec.is_barrier() || self.pending_records >= self.checkpoint_every {
            self.flush()?;
            Ok(RecordOutcome::Flushed)
        } else {
            Ok(RecordOutcome::Buffered)
        }
    }

    /// Write any buffered records to disk.
    pub fn flush(&mut self) -> JournalResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.file.flush()?;
        self.pending.clear();
        self.pending_records = 0;
        self.flushes += 1;
        Ok(())
    }

    /// Records verified against the replay prefix so far.
    pub fn replayed(&self) -> u64 {
        self.replay_idx as u64
    }

    /// Records loaded into the replay prefix on open (0 for a fresh
    /// journal).
    pub fn replay_len(&self) -> u64 {
        self.replay.len() as u64
    }

    /// Records appended past the replay prefix.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Disk flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Bytes of torn tail trimmed when the journal was opened for resume.
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed-bin manifest derived from the records seen so far
    /// (replay prefix; appended records are folded in as they are
    /// written). Call after a run for the final manifest.
    pub fn summary(&self) -> JournalSummary {
        JournalSummary::from_records(&self.replay)
    }
}

/// Decode the longest valid record prefix of raw journal bytes. Returns
/// the records plus every record-boundary offset (length `records + 1`,
/// starting at 0). Bytes past the last whole, checksummed, decodable
/// record are a torn tail and are excluded.
pub fn scan_bytes(bytes: &[u8]) -> (Vec<JournalRecord>, Vec<u64>) {
    let mut records = Vec::new();
    let mut offsets = vec![0u64];
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos.checked_add(FRAME_HEADER + len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + FRAME_HEADER..end];
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(rec) = JournalRecord::decode(payload) else {
            break;
        };
        records.push(rec);
        pos = end;
        offsets.push(pos as u64);
    }
    (records, offsets)
}

/// The completed-bin manifest: a summary view of a journal's records
/// answering "what had durably finished when the run stopped".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// The job admission record, if the journal got that far.
    pub started: Option<JournalRecord>,
    /// Chunk ids with a committed map output, sorted and deduplicated
    /// (a chunk can legitimately commit twice when its first commit died
    /// with a GPU's accumulate state).
    pub committed_chunks: Vec<u64>,
    /// Dispatch records seen.
    pub dispatches: u64,
    /// Steal records seen.
    pub steals: u64,
    /// Requeue records seen.
    pub requeues: u64,
    /// Ranks recorded as lost.
    pub gpus_lost: Vec<u32>,
    /// Ranks recorded as joining mid-job.
    pub gpus_added: Vec<u32>,
    /// Reducer ranks whose bin finished sorting.
    pub bins_sorted: Vec<u32>,
    /// Reducer ranks whose output was committed.
    pub bins_reduced: Vec<u32>,
    /// The job-end record, if the run completed.
    pub ended: Option<JournalRecord>,
    /// Round-start records seen (multi-round jobs).
    pub rounds_started: u64,
    /// Round indices with a committed `RoundEnd`, in journal order.
    pub rounds_completed: Vec<u32>,
}

impl JournalSummary {
    /// Fold a record sequence into the manifest.
    pub fn from_records(records: &[JournalRecord]) -> JournalSummary {
        let mut s = JournalSummary::default();
        for &rec in records {
            match rec {
                JournalRecord::JobStart { .. } => s.started = Some(rec),
                JournalRecord::ChunkDispatch { .. } => s.dispatches += 1,
                JournalRecord::ChunkCommit { chunk_id, .. } => s.committed_chunks.push(chunk_id),
                JournalRecord::Steal { .. } => s.steals += 1,
                JournalRecord::Requeue { .. } => s.requeues += 1,
                JournalRecord::GpuLost { rank } => s.gpus_lost.push(rank),
                JournalRecord::GpuAdded { rank } => s.gpus_added.push(rank),
                JournalRecord::BinSorted { rank, .. } => s.bins_sorted.push(rank),
                JournalRecord::BinReduced { rank, .. } => s.bins_reduced.push(rank),
                JournalRecord::JobEnd { .. } => s.ended = Some(rec),
                JournalRecord::RoundStart { .. } => s.rounds_started += 1,
                JournalRecord::RoundEnd { round, .. } => s.rounds_completed.push(round),
            }
        }
        s.committed_chunks.sort_unstable();
        s.committed_chunks.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::JobStart {
                fingerprint: 0xdead_beef,
                n_chunks: 4,
                ranks: 3,
                reducers: 2,
            },
            JournalRecord::ChunkDispatch {
                chunk_id: 0,
                rank: 0,
            },
            JournalRecord::Steal {
                chunk_id: 3,
                victim: 1,
                thief: 2,
            },
            JournalRecord::ChunkCommit {
                chunk_id: 0,
                rank: 0,
                pairs: 17,
                hash: 42,
            },
            JournalRecord::GpuLost { rank: 1 },
            JournalRecord::Requeue {
                chunk_id: 1,
                from: 1,
                to: 2,
            },
            JournalRecord::GpuAdded { rank: 2 },
            JournalRecord::BinSorted {
                rank: 0,
                pairs: 17,
                unique: 5,
                hash: 7,
            },
            JournalRecord::BinReduced {
                rank: 0,
                pairs: 5,
                hash: 9,
            },
            JournalRecord::JobEnd {
                output_hash: 11,
                makespan_bits: 2.5f64.to_bits(),
            },
            JournalRecord::RoundStart {
                round: 3,
                control_hash: 0xc0ff_ee00,
            },
            JournalRecord::RoundEnd {
                round: 3,
                output_hash: 13,
                clock_bits: 7.25f64.to_bits(),
            },
        ]
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gpmr_journal_{name}_{}", std::process::id()))
    }

    #[test]
    fn every_record_kind_round_trips_through_the_codec() {
        for rec in sample_records() {
            let mut payload = Vec::new();
            rec.encode(&mut payload);
            assert_eq!(JournalRecord::decode(&payload), Some(rec), "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_tags_and_truncated_or_oversized_payloads() {
        assert_eq!(JournalRecord::decode(&[]), None);
        assert_eq!(JournalRecord::decode(&[99, 0, 0, 0, 0]), None);
        let mut payload = Vec::new();
        JournalRecord::GpuLost { rank: 1 }.encode(&mut payload);
        assert_eq!(JournalRecord::decode(&payload[..payload.len() - 1]), None);
        payload.push(0); // trailing garbage must not decode
        assert_eq!(JournalRecord::decode(&payload), None);
    }

    #[test]
    fn create_write_scan_round_trips_every_record() {
        let path = temp("roundtrip");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.record(&rec).unwrap();
        }
        j.flush().unwrap();
        let (records, offsets) = Journal::scan(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(offsets.len(), records.len() + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(
            *offsets.last().unwrap(),
            std::fs::metadata(&path).unwrap().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_every_buffers_non_barrier_records() {
        let path = temp("buffering");
        let mut j = Journal::create(&path, 100).unwrap();
        let d = JournalRecord::ChunkDispatch {
            chunk_id: 0,
            rank: 0,
        };
        assert_eq!(j.record(&d).unwrap(), RecordOutcome::Buffered);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // A barrier record forces everything buffered onto disk.
        assert_eq!(
            j.record(&JournalRecord::GpuLost { rank: 0 }).unwrap(),
            RecordOutcome::Flushed
        );
        let (records, _) = Journal::scan(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(j.flushes(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_trimmed_on_resume_at_any_truncation_point() {
        let path = temp("torn");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.record(&rec).unwrap();
        }
        j.flush().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let (_, offsets) = scan_bytes(&bytes);
        // Mid-record cut: one byte past the 4th record boundary.
        let cut = offsets[4] + 1;
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        let j2 = Journal::resume(&path, 1).unwrap();
        assert_eq!(j2.replay_len(), 4);
        assert_eq!(j2.torn_bytes(), 1);
        // The file itself was trimmed back to the boundary.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_cuts_the_valid_prefix_there() {
        let path = temp("corrupt");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.record(&rec).unwrap();
        }
        j.flush().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let (_, offsets) = scan_bytes(&bytes);
        // Flip a payload byte inside record 2.
        bytes[offsets[2] as usize + FRAME_HEADER] ^= 0xff;
        let (records, offs) = scan_bytes(&bytes);
        assert_eq!(records.len(), 2);
        assert_eq!(*offs.last().unwrap(), offsets[2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_verifies_then_appends_and_diverges_on_mismatch() {
        let path = temp("replay");
        let recs = sample_records();
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in &recs[..3] {
            j.record(rec).unwrap();
        }
        j.flush().unwrap();

        let mut j2 = Journal::resume(&path, 1).unwrap();
        assert_eq!(j2.record(&recs[0]).unwrap(), RecordOutcome::Replayed);
        assert_eq!(j2.record(&recs[1]).unwrap(), RecordOutcome::Replayed);
        // Divergence in the middle of the prefix is a typed error.
        let wrong = JournalRecord::GpuLost { rank: 9 };
        match j2.record(&wrong) {
            Err(JournalError::Diverged {
                index,
                expected,
                got,
            }) => {
                assert_eq!(index, 2);
                assert_eq!(expected, recs[2]);
                assert_eq!(got, wrong);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        // A correct record still replays, then the tail appends.
        assert_eq!(j2.record(&recs[2]).unwrap(), RecordOutcome::Replayed);
        assert_eq!(j2.record(&recs[3]).unwrap(), RecordOutcome::Flushed);
        assert_eq!(j2.replayed(), 3);
        assert_eq!(j2.appended(), 1);
        let (records, _) = Journal::scan(&path).unwrap();
        assert_eq!(records, recs[..4].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_builds_the_completed_bin_manifest() {
        let s = JournalSummary::from_records(&sample_records());
        assert!(s.started.is_some());
        assert_eq!(s.committed_chunks, vec![0]);
        assert_eq!(s.dispatches, 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.requeues, 1);
        assert_eq!(s.gpus_lost, vec![1]);
        assert_eq!(s.gpus_added, vec![2]);
        assert_eq!(s.bins_sorted, vec![0]);
        assert_eq!(s.bins_reduced, vec![0]);
        assert!(s.ended.is_some());
        assert_eq!(s.rounds_started, 1);
        assert_eq!(s.rounds_completed, vec![3]);
    }

    #[test]
    fn hash_pairs_is_order_sensitive_and_stable() {
        let a = hash_pairs(&[1u32, 2, 3], &[10u32, 20, 30]);
        let b = hash_pairs(&[1u32, 2, 3], &[10u32, 20, 30]);
        let c = hash_pairs(&[3u32, 2, 1], &[10u32, 20, 30]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Published FNV-1a 64 test vector.
        assert_eq!(fnv1a(b"hello"), 0xa430_d846_80aa_bd0b);
    }
}
