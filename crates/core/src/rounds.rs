//! The multi-round job driver: chain MapReduce passes so round k's reduce
//! output feeds round k+1's map **without leaving the cluster**.
//!
//! The Goodrich line of work (sorting/searching/simulation in the
//! MapReduce framework) treats a MapReduce algorithm as a *sequence of
//! rounds*; this engine historically ran exactly one. [`run_rounds`]
//! drives a [`RoundJob`] through up to `max_rounds` passes of the
//! single-round engine, with three properties the hand-rolled host loops
//! (the old k-means example) did not have:
//!
//! * **Cluster-resident chaining** — per-rank outputs stay on the device
//!   that produced them and become the next round's input chunks
//!   ([`RoundDecision::Chain`]), or the original input stays resident for
//!   re-iteration ([`RoundDecision::Again`]). When a conservative fit
//!   check holds and the previous round saw no steals, kills, or joins,
//!   the next round runs under [`RunControl::inputs_resident`] and skips
//!   every stationary chunk upload; only the control scalar (centers,
//!   splitters, a convergence flag) crosses to the host and back.
//! * **Honest cross-round time** — each engine pass restarts simulated
//!   time at zero; the driver accumulates `makespan + control-broadcast
//!   tail` per round into one cross-round clock, recorded as per-round
//!   `Round` telemetry spans.
//! * **Round-granular recovery** — with [`run_rounds_journaled`], every
//!   round is bracketed by [`JournalRecord::RoundStart`] (hashing the
//!   driver's control state) and [`JournalRecord::RoundEnd`] (hashing the
//!   round's outputs and the exact clock bits), on top of the engine's
//!   own per-round records. An interrupted multi-round run resumed with
//!   [`Journal::resume`] replays completed rounds verbatim and finishes
//!   bit-identically.

use gpmr_sim_gpu::{SimDuration, SimTime};
use gpmr_sim_net::Cluster;
use gpmr_telemetry::Telemetry;

use crate::chunk::{Chunk, PairChunk};
use crate::engine::{
    run_job_controlled, run_job_controlled_journaled, EngineTuning, JobResult, RunControl,
};
use crate::error::EngineResult;
use crate::job::GpmrJob;
use crate::journal::{hash_pairs, Fnv64, Journal, JournalRecord};
use crate::pod::Pod;
use crate::types::KvSet;

/// The per-rank output set a [`RoundJob`]'s round produces — what the
/// driver hands to [`RoundJob::absorb`] and [`RoundJob::rechunk`].
pub type RoundOutputs<J> = KvSet<<J as GpmrJob>::Key, <J as GpmrJob>::Value>;

/// What a rounds drive over job type `J` returns: [`RoundsResult`]
/// projected onto `J`'s key/value types.
pub type DriveResult<J> = RoundsResult<<J as GpmrJob>::Key, <J as GpmrJob>::Value>;

/// What the driver should do after a round, decided by
/// [`RoundJob::absorb`] from the round's outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundDecision {
    /// Converged (or otherwise finished): stop, the round's outputs are
    /// the job's outputs.
    Done,
    /// Run another round over the *same* input chunks (iterative
    /// refinement: k-means re-maps the dataset under updated centers).
    Again,
    /// Run another round over the round's *outputs*, re-chunked by
    /// [`RoundJob::rechunk`] (pipelined rounds: sample-sort's sampling
    /// pass feeds its partitioned sort pass).
    Chain,
}

/// [`RoundJob::absorb`]'s verdict: the control decision plus the size of
/// the control state the host must broadcast to every rank before the
/// next round (updated centers, derived splitters — zero when nothing
/// crosses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStep {
    /// Continue, repeat, or chain.
    pub decision: RoundDecision,
    /// Bytes of control state broadcast from the host (via rank 0) after
    /// this round. The broadcast tail is charged to the cross-round
    /// clock; `0` skips it.
    pub control_bytes: u64,
}

impl RoundStep {
    /// Finished, nothing further crosses the wire.
    pub fn done() -> Self {
        RoundStep {
            decision: RoundDecision::Done,
            control_bytes: 0,
        }
    }

    /// Another pass over the same chunks, broadcasting `control_bytes` of
    /// updated control state first.
    pub fn again(control_bytes: u64) -> Self {
        RoundStep {
            decision: RoundDecision::Again,
            control_bytes,
        }
    }

    /// Chain the outputs into the next round's input, broadcasting
    /// `control_bytes` of control state first.
    pub fn chain(control_bytes: u64) -> Self {
        RoundStep {
            decision: RoundDecision::Chain,
            control_bytes,
        }
    }
}

/// A multi-round GPMR application: a factory of per-round [`GpmrJob`]s
/// plus the host-side control logic between rounds.
///
/// The driver owns the loop; the implementation owns the state that
/// evolves across rounds (centers, splitters, thresholds) and surfaces it
/// through three hooks: [`RoundJob::job`] builds the round's job from the
/// current state, [`RoundJob::absorb`] folds a round's outputs back into
/// the state and decides what happens next, and [`RoundJob::rechunk`]
/// (only for [`RoundDecision::Chain`]) turns outputs into next-round
/// chunks.
pub trait RoundJob {
    /// The per-round job type. One type for every round — rounds vary by
    /// *configuration* (pipeline shape, partition mode, control state),
    /// not by key/value/chunk types.
    type Job: GpmrJob;

    /// Hard cap on rounds; the driver stops here even without
    /// [`RoundDecision::Done`] (Lloyd's iterations cap, a fixed
    /// two-round sample-sort).
    fn max_rounds(&self) -> u32;

    /// Build round `round`'s job from the current control state.
    fn job(&self, round: u32) -> Self::Job;

    /// Hash of the current control state, journaled in
    /// [`JournalRecord::RoundStart`] before each round. A resumed run
    /// whose control trajectory differs (changed centers, changed
    /// splitters) diverges here, at the round boundary. Default: 0
    /// (stateless drivers).
    fn control_hash(&self) -> u64 {
        0
    }

    /// Fold round `round`'s per-rank outputs into the control state and
    /// decide what happens next. Runs on the host; only
    /// [`RoundStep::control_bytes`] of the resulting state is charged as
    /// a broadcast back to the ranks.
    fn absorb(&mut self, round: u32, outputs: &[RoundOutputs<Self::Job>]) -> RoundStep;

    /// Turn round `round`'s outputs into the next round's input chunks
    /// (consumed — the data does not move, it is re-labelled). Required
    /// when [`RoundJob::absorb`] returns [`RoundDecision::Chain`].
    ///
    /// Contract: preserve rank affinity — chunk `i` is dispatched to
    /// reducer `i % reducers`, so emitting outputs interleaved by source
    /// rank (see [`rechunk_interleaved`]) keeps every stationary chunk on
    /// the device that produced it, which is what lets the next round run
    /// resident. Implementations must also respect the engine's
    /// [`ChunkTooLarge`](crate::error::EngineError::ChunkTooLarge)
    /// admission bound (split with [`max_resident_chunk_bytes`]).
    fn rechunk(
        &self,
        _round: u32,
        _outputs: Vec<RoundOutputs<Self::Job>>,
    ) -> Vec<<Self::Job as GpmrJob>::Chunk> {
        unimplemented!("RoundJob::absorb returned Chain but rechunk is not implemented")
    }

    /// Whether [`RoundJob::rechunk`] preserves rank affinity (chunk `i`
    /// holds only data that rank `i % ranks` already has, as
    /// [`rechunk_interleaved`] arranges). Only then may a chained round
    /// run device-resident; the default is `false` — a rechunk that
    /// concentrates or reshuffles data across ranks must pay its uploads.
    fn rechunk_preserves_affinity(&self) -> bool {
        false
    }
}

/// Per-round accounting from a [`run_rounds`] drive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStats {
    /// The round's engine makespan (its own clock starts at zero).
    pub makespan: SimDuration,
    /// Tail charged for broadcasting the control state after the round.
    pub broadcast: SimDuration,
    /// Whether the round ran with its inputs device-resident (uploads
    /// skipped for stationary chunks).
    pub resident: bool,
    /// Input chunks the round dispatched.
    pub chunks: usize,
}

/// The outcome of a multi-round drive.
#[derive(Debug)]
pub struct RoundsResult<K, V> {
    /// The final round's per-rank outputs.
    pub outputs: Vec<KvSet<K, V>>,
    /// Rounds executed.
    pub rounds: u32,
    /// Whether the driver said [`RoundDecision::Done`] (as opposed to
    /// hitting [`RoundJob::max_rounds`]).
    pub converged: bool,
    /// Honest cross-round simulated time: every round's makespan plus
    /// every control-broadcast tail, accumulated.
    pub total_time: SimDuration,
    /// Per-round breakdown.
    pub per_round: Vec<RoundStats>,
}

/// The largest chunk the engine will admit under `tuning` on `cluster`
/// (the [`ChunkTooLarge`](crate::error::EngineError::ChunkTooLarge)
/// formula, inverted). [`RoundJob::rechunk`] implementations split their
/// outputs to stay under this.
pub fn max_resident_chunk_bytes(cluster: &mut Cluster, tuning: &EngineTuning) -> u64 {
    let gpu_direct = cluster.gpu_direct();
    let capacity = cluster.gpu(0).mem.capacity();
    capacity / tuning.staging_slots(gpu_direct).max(1)
}

/// Split per-rank outputs into [`PairChunk`]s interleaved by source rank:
/// chunk `i` holds pairs produced by rank `i % ranks`, so the engine's
/// round-robin distribution sends every chunk back to the device already
/// holding its data. Oversized outputs split into multiple slices, each
/// at most `max_bytes` (clamped to one pair).
pub fn rechunk_interleaved<K: Pod + PartialEq, V: Pod>(
    outputs: Vec<KvSet<K, V>>,
    max_bytes: u64,
) -> Vec<PairChunk<K, V>> {
    let pair_bytes = (K::SIZE + V::SIZE) as u64;
    let max_pairs = (max_bytes / pair_bytes.max(1)).max(1) as usize;
    let mut per_rank: Vec<Vec<PairChunk<K, V>>> = outputs
        .iter()
        .map(|o| PairChunk::split(o, max_pairs, 0))
        .collect();
    let ranks = per_rank.len();
    let total: usize = per_rank.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut layer = 0usize;
    while out.len() < total {
        for rank_chunks in per_rank.iter_mut() {
            if layer < rank_chunks.len() {
                let mut c =
                    std::mem::replace(&mut rank_chunks[layer], PairChunk::new(0, KvSet::new()));
                c.id = out.len() as u32;
                out.push(c);
            } else {
                // Keep the interleave aligned: a rank with nothing left
                // this layer contributes an empty chunk so chunk i still
                // lands on rank i % ranks.
                out.push(PairChunk::new(out.len() as u32, KvSet::new()));
            }
        }
        layer += 1;
    }
    debug_assert!(out.len() % ranks.max(1) == 0 || ranks == 0);
    out
}

/// Journal hooks for the round driver (engine-level hooks live inside the
/// per-round engine call). `run` is the journaled engine entry point,
/// monomorphized where the `Pod` bounds hold so the driver loop itself
/// needs none.
#[allow(clippy::type_complexity)]
struct RoundJournal<'j, J: GpmrJob> {
    journal: &'j mut Journal,
    hash_pairs: fn(&[J::Key], &[J::Value]) -> u64,
    run: fn(
        &mut Cluster,
        &J,
        Vec<J::Chunk>,
        &EngineTuning,
        &Telemetry,
        &mut Journal,
        &RunControl,
    ) -> EngineResult<JobResult<J::Key, J::Value>>,
}

/// Drive `driver` through its rounds on `cluster`. The initial `chunks`
/// are round 0's input; [`RoundDecision::Again`] rounds re-dispatch them
/// (hence `Chunk: Clone`), [`RoundDecision::Chain`] rounds replace them
/// via [`RoundJob::rechunk`].
pub fn run_rounds<D: RoundJob>(
    cluster: &mut Cluster,
    driver: &mut D,
    chunks: Vec<<D::Job as GpmrJob>::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
) -> EngineResult<DriveResult<D::Job>>
where
    <D::Job as GpmrJob>::Chunk: Clone,
{
    run_rounds_impl(cluster, driver, chunks, tuning, tel, None)
}

/// [`run_rounds`] with a write-ahead [`Journal`]: round boundaries are
/// journaled as [`JournalRecord::RoundStart`]/[`JournalRecord::RoundEnd`]
/// around the engine's own records, so `--journal F --resume` recovers an
/// interrupted multi-round job at round granularity and finishes
/// bit-identically (outputs, per-round stats, and the cross-round clock).
pub fn run_rounds_journaled<D: RoundJob>(
    cluster: &mut Cluster,
    driver: &mut D,
    chunks: Vec<<D::Job as GpmrJob>::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    journal: &mut Journal,
) -> EngineResult<DriveResult<D::Job>>
where
    <D::Job as GpmrJob>::Chunk: Clone,
    <D::Job as GpmrJob>::Key: Pod,
    <D::Job as GpmrJob>::Value: Pod,
{
    let jr = RoundJournal {
        journal,
        hash_pairs: hash_pairs::<<D::Job as GpmrJob>::Key, <D::Job as GpmrJob>::Value>,
        run: run_job_controlled_journaled::<D::Job>,
    };
    run_rounds_impl(cluster, driver, chunks, tuning, tel, Some(jr))
}

fn run_rounds_impl<D: RoundJob>(
    cluster: &mut Cluster,
    driver: &mut D,
    mut chunks: Vec<<D::Job as GpmrJob>::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    mut jr: Option<RoundJournal<'_, D::Job>>,
) -> EngineResult<DriveResult<D::Job>>
where
    <D::Job as GpmrJob>::Chunk: Clone,
{
    let max_rounds = driver.max_rounds().max(1);
    let mut clock = SimDuration::ZERO;
    let mut per_round: Vec<RoundStats> = Vec::new();
    let mut resident = false;
    let mut round = 0u32;
    loop {
        if let Some(jr) = jr.as_mut() {
            jr.journal
                .record(&JournalRecord::RoundStart {
                    round,
                    control_hash: driver.control_hash(),
                })
                .map_err(crate::error::EngineError::from)?;
        }
        let job = driver.job(round);
        let control = RunControl {
            stop_at: None,
            inputs_resident: resident,
        };
        let n_chunks = chunks.len();
        let result: JobResult<_, _> = match jr.as_mut() {
            Some(jrn) => (jrn.run)(
                cluster,
                &job,
                chunks.clone(),
                tuning,
                tel,
                &mut *jrn.journal,
                &control,
            )?,
            None => run_job_controlled(cluster, &job, chunks.clone(), tuning, tel, &control)?,
        };
        let makespan = result.timings.total;
        let quiet = result.timings.chunks_stolen == 0
            && result.timings.chunks_requeued == 0
            && result.timings.gpus_lost == 0
            && result.timings.gpus_added == 0;

        let step = driver.absorb(round, &result.outputs);

        // Control-state broadcast: the host (via rank 0) pushes the
        // updated control scalar to every rank before the next round.
        // Charged on the round's own clock, folded into the cross-round
        // total as the tail past the makespan.
        let mut tail = SimDuration::ZERO;
        if step.control_bytes > 0 {
            let end = SimTime::ZERO + makespan;
            let latest = gpmr_sim_net::broadcast(cluster.fabric(), 0, end, step.control_bytes)
                .into_iter()
                .fold(end, |a, b| if b > a { b } else { a });
            tail = latest.since(end);
        }
        let round_start = clock;
        clock += makespan + tail;
        per_round.push(RoundStats {
            makespan,
            broadcast: tail,
            resident,
            chunks: n_chunks,
        });
        if tel.is_enabled() {
            tel.span(0, "Round", round_start.as_secs(), clock.as_secs())
                .name(format!("round {round}"))
                .attr("round", round.to_string())
                .attr("resident", resident.to_string())
                .attr("chunks", n_chunks.to_string())
                .record();
        }
        if let Some(jr) = jr.as_mut() {
            let mut h = Fnv64::new();
            for o in &result.outputs {
                h.write_u64((jr.hash_pairs)(&o.keys, &o.vals));
            }
            jr.journal
                .record(&JournalRecord::RoundEnd {
                    round,
                    output_hash: h.finish(),
                    clock_bits: clock.as_secs().to_bits(),
                })
                .map_err(crate::error::EngineError::from)?;
        }

        round += 1;
        let done = step.decision == RoundDecision::Done || round >= max_rounds;
        if done {
            return Ok(RoundsResult {
                outputs: result.outputs,
                rounds: round,
                converged: step.decision == RoundDecision::Done,
                total_time: clock,
                per_round,
            });
        }

        // Residency for the next round: only claimed when the dataset
        // conservatively fits on one device alongside the working set
        // (2x bound: pairs plus sort/scratch room) AND the finished round
        // moved nothing between ranks — a steal, requeue, loss, or join
        // displaces data from its home device, so the honest fallback is
        // a full re-upload.
        let affine = match step.decision {
            RoundDecision::Chain => {
                chunks = driver.rechunk(round - 1, result.outputs);
                driver.rechunk_preserves_affinity()
            }
            // `Again` re-runs the unchanged chunks: trivially affine.
            _ => true,
        };
        let total_bytes: u64 = chunks.iter().map(Chunk::size_bytes).sum();
        let capacity = cluster.gpu(0).mem.capacity();
        resident = quiet && affine && total_bytes.saturating_mul(2) <= capacity;
    }
}
