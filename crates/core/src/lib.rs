//! # gpmr-core — the GPMR multi-GPU MapReduce library
//!
//! Reproduction of the library presented in Stuart & Owens, *Multi-GPU
//! MapReduce on GPU Clusters* (IPDPS 2011), on the deterministic GPU and
//! cluster simulators in `gpmr-sim-gpu`/`gpmr-sim-net`.
//!
//! ## The pipeline
//!
//! A job streams [`Chunk`]s of input through per-GPU processes:
//!
//! ```text
//! Scheduler -> [Map (+ Partial Reduce | Accumulate) + Partition] -> Bin
//!           -> Sort -> Scheduler -> Reduce
//! ```
//!
//! GPU stages are kernels on the simulated device; Bin is the only CPU
//! stage (GPUs cannot source or sink network I/O) and is overlapped with
//! mapping. Applications implement [`GpmrJob`] and choose their pipeline
//! shape with [`PipelineConfig`]: Partial Reduction, Accumulation, the
//! global Combine, partitioning, and the Sorter are all selectable, with
//! working defaults (round-robin partitioner, CUDPP-style radix sort).
//!
//! ## Quick start
//!
//! ```
//! use gpmr_core::{run_job, GpmrJob, KvSet, SliceChunk};
//! use gpmr_primitives::Segments;
//! use gpmr_sim_gpu::{Gpu, GpuSpec, LaunchConfig, SimGpuResult, SimTime};
//! use gpmr_sim_net::Cluster;
//!
//! /// Count occurrences of each integer (the paper's SIO benchmark).
//! struct CountJob;
//!
//! impl GpmrJob for CountJob {
//!     type Chunk = SliceChunk<u32>;
//!     type Key = u32;
//!     type Value = u32;
//!
//!     fn map(&self, gpu: &mut Gpu, at: SimTime, chunk: &Self::Chunk)
//!         -> SimGpuResult<(KvSet<u32, u32>, SimTime)>
//!     {
//!         let cfg = LaunchConfig::for_items(chunk.items.len(), 2048, 256);
//!         let (launch, res) = gpu.launch(at, &cfg, |ctx| {
//!             let range = ctx.item_range(chunk.items.len());
//!             ctx.charge_read::<u32>(range.len());
//!             ctx.charge_write::<u32>(2 * range.len());
//!             let mut out = KvSet::with_capacity(range.len());
//!             for &x in &chunk.items[range] { out.push(x, 1); }
//!             out
//!         })?;
//!         let mut pairs = KvSet::new();
//!         for p in launch.outputs { pairs.append(p); }
//!         Ok((pairs, res.end))
//!     }
//!
//!     fn reduce(&self, gpu: &mut Gpu, at: SimTime, segs: &Segments<u32>, vals: &[u32])
//!         -> SimGpuResult<(KvSet<u32, u32>, SimTime)>
//!     {
//!         let cfg = LaunchConfig::for_items(segs.len().max(1), 512, 256);
//!         let (launch, res) = gpu.launch(at, &cfg, |ctx| {
//!             let mut out = KvSet::new();
//!             for s in ctx.item_range(segs.len()) {
//!                 let r = segs.range(s);
//!                 ctx.charge_read_uncoalesced::<u32>(r.len());
//!                 out.push(segs.keys[s], vals[r].iter().sum::<u32>());
//!             }
//!             out
//!         })?;
//!         let mut out = KvSet::new();
//!         for p in launch.outputs { out.append(p); }
//!         Ok((out, res.end))
//!     }
//! }
//!
//! let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
//! let data: Vec<u32> = (0..10_000).map(|i| i % 100).collect();
//! let chunks = SliceChunk::split(&data, 2048);
//! let result = run_job(&mut cluster, &CountJob, chunks).unwrap();
//! let total: u64 = result.merged_output().vals.iter().map(|&v| v as u64).sum();
//! assert_eq!(total, 10_000);
//! ```

#![warn(missing_docs)]

pub mod chunk;
pub mod engine;
pub mod error;
pub mod helpers;
pub mod job;
pub mod journal;
pub mod pod;
pub mod rounds;
pub mod scheduler;
pub mod stats;
pub mod trace;
pub mod types;

pub use chunk::{Chunk, PairChunk, SliceChunk};
pub use engine::{
    run_job, run_job_analyzed, run_job_controlled, run_job_controlled_journaled,
    run_job_instrumented, run_job_journaled, run_job_traced, run_job_tuned, EngineTuning,
    JobResult, RunControl,
};
pub use error::{EngineError, EngineResult};
pub use job::{
    block_partition, derive_splitters, GpmrJob, MapMode, PartitionMode, PipelineConfig, SortMode,
};
pub use journal::{
    scan_bytes, Journal, JournalError, JournalRecord, JournalResult, JournalSummary, RecordOutcome,
};
pub use pod::Pod;
pub use rounds::{
    max_resident_chunk_bytes, rechunk_interleaved, run_rounds, run_rounds_journaled, RoundDecision,
    RoundJob, RoundStats, RoundStep, RoundsResult,
};
pub use scheduler::WorkQueues;
pub use stats::{efficiency, speedup, JobTimings, StageTimes};
pub use trace::{JobTrace, TraceEvent, TraceKind};
pub use types::{Key, KvSet, Value};
