//! The GPMR execution engine: a discrete-event simulation of the paper's
//! per-GPU MapReduce pipeline over a whole cluster.
//!
//! One logical process drives each GPU (paper §4). The engine advances the
//! process with the earliest ready-time, so dynamic load balancing, stream
//! overlap (double-buffered chunk uploads against map kernels), and the
//! Map/Bin communication overlap all emerge from the resource timelines:
//!
//! * chunk uploads reserve the (possibly shared) PCI-e link;
//! * map kernels reserve the GPU compute timeline;
//! * pair downloads reserve the PCI-e link's other direction;
//! * Bin sends reserve NIC send/receive engines through the fabric;
//! * Sort and Reduce run per-rank after all inbound pairs arrive.
//!
//! Data is computed for real — the output of [`run_job`] is bit-exact and
//! is verified against CPU references in the application crates.

use std::collections::VecDeque;

use gpmr_primitives::{
    bitonic_sort_pairs_by, bits_for_radix, extract_segments, sort_pairs_with_bits_config, RadixKey,
    Segments, SortConfig,
};
use gpmr_sim_gpu::{FaultPlan, SimDuration, SimTime};
use gpmr_sim_net::{Cluster, Fabric, Mailbox};
use gpmr_telemetry::analyze::{analyze, Analysis};
use gpmr_telemetry::{Counter, Registry, Telemetry};

use crate::error::{EngineError, EngineResult};
use crate::helpers::{charge_partition, combine_pairs, split_buckets_bounded};
use crate::job::{GpmrJob, MapMode, PartitionMode, SortMode};
use crate::journal::{fnv1a, hash_pairs, Fnv64, Journal, JournalRecord, RecordOutcome};
use crate::pod::Pod;
use crate::scheduler::WorkQueues;
use crate::stats::{JobTimings, StageTimes};
use crate::trace::{JobTrace, TraceKind};
use crate::types::KvSet;
use crate::Chunk;

/// Result of a traced run: the job result paired with its schedule trace.
pub type TracedRun<K, V> = EngineResult<(JobResult<K, V>, JobTrace)>;

/// Result of an analyzed run: the job result paired with its performance
/// diagnosis.
pub type AnalyzedRun<K, V> = EngineResult<(JobResult<K, V>, Analysis)>;

/// Engine policy knobs: scheduler behaviour and fixed-cost calibration.
///
/// These are *software* parameters (the hardware lives in the cluster);
/// the defaults reproduce the paper's measured overheads. Research uses:
/// disable stealing to measure what the dynamic scheduler buys, or zero
/// the overheads to see the ideal-software ceiling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineTuning {
    /// Dynamic load balancing: idle ranks steal chunks from loaded queues
    /// (paper §4.1). Off = static round-robin assignment only.
    pub allow_stealing: bool,
    /// CPU-side scheduler overhead charged per chunk dequeue (queue
    /// management, callback dispatch), in seconds.
    pub sched_overhead_s: f64,
    /// One-time job setup (context creation, scheduler initialization),
    /// charged before the first chunk on every rank, in seconds.
    pub setup_base_s: f64,
    /// Per-rank share of cluster-wide job setup (MPI-style collective
    /// startup and the final barrier grow with the communicator size), in
    /// seconds. Together with the base cost this is the paper's "GPMR
    /// internal / scheduler" floor that erodes efficiency at 64 GPUs on
    /// light jobs.
    pub setup_per_rank_s: f64,
    /// How many times a failing fabric transfer is retried (with capped
    /// exponential backoff) before the job aborts with
    /// [`EngineError::TransferFailed`].
    pub max_transfer_retries: u32,
    /// First retry backoff, in seconds; each further retry doubles it.
    pub retry_backoff_base_s: f64,
    /// Ceiling on the exponential backoff, in seconds.
    pub retry_backoff_cap_s: f64,
    /// Depth of the chunk upload pipeline: how many chunk staging buffers
    /// each rank keeps resident. `1` serializes upload behind the previous
    /// map (no overlap), `2` is the classic double buffer, and deeper
    /// values let uploads for chunks N+1..N+k-1 queue on the device's copy
    /// engine while chunk N maps — hiding per-chunk dispatch and PCI-e
    /// latency on upload-bound jobs. Device memory must hold the chunk
    /// `pipeline_depth` times (see [`EngineError::ChunkTooLarge`]).
    pub pipeline_depth: u32,
    /// GPU-direct networking (the source paper's future-work hardware):
    /// intermediate pairs are sourced and sunk by the GPU for network I/O,
    /// skipping the PCI-e round trips through host memory that bracket
    /// every Bin send and the sort-input upload. Also enabled by
    /// [`Cluster::with_gpu_direct`]; either switch turns it on.
    pub gpu_direct: bool,
}

impl Default for EngineTuning {
    fn default() -> Self {
        EngineTuning {
            allow_stealing: true,
            sched_overhead_s: 30.0e-6,
            setup_base_s: 0.5e-3,
            setup_per_rank_s: 0.25e-3,
            max_transfer_retries: 8,
            retry_backoff_base_s: 50.0e-6,
            retry_backoff_cap_s: 5.0e-3,
            pipeline_depth: 4,
            gpu_direct: false,
        }
    }
}

impl EngineTuning {
    /// Staging slots a chunk must fit into device memory simultaneously:
    /// the upload pipeline depth, plus one GPU-direct staging slot when
    /// that mode is on (pass the cluster's own gpu-direct flag — either
    /// switch enables it). This is the [`EngineError::ChunkTooLarge`]
    /// admission formula; the job service reuses it for memory admission
    /// control before a job ever reaches the engine.
    pub fn staging_slots(&self, cluster_gpu_direct: bool) -> u64 {
        u64::from(self.pipeline_depth.max(1)) + u64::from(self.gpu_direct || cluster_gpu_direct)
    }
}

/// Caller-side control over a running job, threaded through the poolable
/// entry points ([`run_job_controlled`]). The default is unrestricted: the
/// engine behaves bit-identically to the classic `run_job*` family (which
/// are thin wrappers passing exactly this default).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunControl {
    /// Stop the job at this simulated instant (cancellation, deadline).
    /// Ranks whose scheduler cursor reaches the instant take no more
    /// chunks; in-flight chunks finish at their chunk boundary; then the
    /// engine drains every queue, releases device state, and returns
    /// [`EngineError::Cancelled`] with conservation accounting instead of
    /// running Bin/Sort/Reduce.
    pub stop_at: Option<SimTime>,
    /// The input chunks are already resident in device memory on the rank
    /// that dequeues them (the round driver's chained rounds: round k's
    /// reduce output never left the cluster, so round k+1's map reads it
    /// in place). Chunks that *move* ranks — steals and fault-plan
    /// requeues — are displaced from their home device and pay the full
    /// H2D upload as usual; only stationary chunks skip it. The caller is
    /// responsible for the claim being true (the driver checks a per-rank
    /// fit bound before setting this).
    pub inputs_resident: bool,
}

impl RunControl {
    /// Unrestricted control: run to completion (what `run_job` passes).
    pub fn unrestricted() -> Self {
        RunControl::default()
    }

    /// Stop (cancel) the job at simulated instant `t`.
    pub fn stop_at(t: SimTime) -> Self {
        RunControl {
            stop_at: Some(t),
            ..RunControl::default()
        }
    }

    /// Inputs are device-resident on their home ranks (round chaining).
    pub fn resident() -> Self {
        RunControl {
            inputs_resident: true,
            ..RunControl::default()
        }
    }
}

/// The outcome of one GPMR job.
#[derive(Debug)]
pub struct JobResult<K, V> {
    /// Final pairs produced on each rank (reducer output, or binned map
    /// output for jobs that bypass sort+reduce).
    pub outputs: Vec<KvSet<K, V>>,
    /// Timing statistics.
    pub timings: JobTimings,
}

impl<K: crate::types::Key, V: crate::types::Value> JobResult<K, V> {
    /// All output pairs concatenated in rank order (copied; the per-rank
    /// outputs stay available). See [`JobResult::into_merged_output`] for
    /// the owning variant that avoids the copy.
    pub fn merged_output(&self) -> KvSet<K, V> {
        let total: usize = self.outputs.iter().map(KvSet::len).sum();
        let mut out = KvSet::with_capacity(total);
        for o in &self.outputs {
            out.extend_from_set(o);
        }
        out
    }

    /// Consume the result, concatenating all output pairs in rank order
    /// without copying rank 0's (usually dominant) buffer when it is the
    /// only one.
    pub fn into_merged_output(self) -> KvSet<K, V> {
        let total: usize = self.outputs.iter().map(KvSet::len).sum();
        let mut outputs = self.outputs.into_iter();
        let mut out = outputs.next().unwrap_or_default();
        out.reserve(total - out.len());
        for o in outputs {
            out.append(o);
        }
        out
    }

    /// The job makespan.
    pub fn total_time(&self) -> SimDuration {
        self.timings.total
    }
}

#[derive(Clone, Debug)]
struct RankState<K, V, C> {
    cursor: SimTime,
    /// Earliest instant kernels may run (job setup done, and in accumulate
    /// mode the accumulator initialized). Uploads may start earlier.
    compute_ready: SimTime,
    /// When this rank's setup charge ends (the cluster-wide setup for
    /// initial ranks; join instant plus local setup for elastic adds).
    /// Stage accounting measures Map from here.
    setup_end: SimTime,
    /// False for a rank with a scheduled elastic add that has not reached
    /// its join instant yet; flipped (once) the first time the scheduler
    /// picks the rank.
    joined: bool,
    /// Map-end instants of chunks whose staging buffer is still occupied;
    /// an upload for a new chunk gates on the oldest entry once all
    /// `pipeline_depth` buffers are in flight.
    inflight: VecDeque<SimTime>,
    last_map_end: SimTime,
    last_d2h: SimTime,
    bin_done: SimTime,
    sort_ready: SimTime,
    sort_done: SimTime,
    reduce_done: SimTime,
    chunks_done: u32,
    accum: Option<KvSet<K, V>>,
    store: KvSet<K, V>,
    active: bool,
    /// False once the rank's GPU has been lost to an injected fault.
    alive: bool,
    /// Next entry of the rank's injected-stall schedule to apply.
    stall_idx: usize,
    /// Chunks already folded into this rank's GPU-resident accumulate
    /// state. Retained only when the fault plan schedules a kill for this
    /// rank in accumulate mode: the state dies with the device, so these
    /// must be rerun on survivors.
    processed: Vec<(u64, C)>,
}

impl<K: crate::types::Key, V: crate::types::Value, C> Default for RankState<K, V, C> {
    fn default() -> Self {
        RankState {
            cursor: SimTime::ZERO,
            compute_ready: SimTime::ZERO,
            setup_end: SimTime::ZERO,
            joined: true,
            inflight: VecDeque::new(),
            last_map_end: SimTime::ZERO,
            last_d2h: SimTime::ZERO,
            bin_done: SimTime::ZERO,
            sort_ready: SimTime::ZERO,
            sort_done: SimTime::ZERO,
            reduce_done: SimTime::ZERO,
            chunks_done: 0,
            accum: None,
            store: KvSet::new(),
            active: true,
            alive: true,
            stall_idx: 0,
            processed: Vec::new(),
        }
    }
}

/// The engine's telemetry context: the caller's [`Telemetry`] handle (for
/// spans and counter samples) plus cached `engine.*` counter handles.
///
/// Counters are always real — when the caller's handle is disabled they go
/// to a private registry — so [`JobTimings`] is a thin consumer of
/// telemetry counters in every mode, and a shared enabled registry reused
/// across jobs still yields per-job numbers via the `base` deltas.
struct EngineTel {
    tel: Telemetry,
    dispatched: Counter,
    stolen: Counter,
    requeued: Counter,
    gpus_lost: Counter,
    retries: Counter,
    stalls: Counter,
    pairs_emitted: Counter,
    pairs_shuffled: Counter,
    gpus_added: Counter,
    base: [u64; 9],
}

impl EngineTel {
    fn new(tel: &Telemetry) -> Self {
        let reg = tel.registry().cloned().unwrap_or_else(Registry::new);
        let dispatched = reg.counter("engine.chunks_dispatched");
        let stolen = reg.counter("engine.chunks_stolen");
        let requeued = reg.counter("engine.chunks_requeued");
        let gpus_lost = reg.counter("engine.gpus_lost");
        let retries = reg.counter("engine.transfer_retries");
        let stalls = reg.counter("engine.stalls_injected");
        let pairs_emitted = reg.counter("engine.pairs_emitted");
        let pairs_shuffled = reg.counter("engine.pairs_shuffled");
        let gpus_added = reg.counter("engine.gpus_added");
        let base = [
            dispatched.get(),
            stolen.get(),
            requeued.get(),
            gpus_lost.get(),
            retries.get(),
            stalls.get(),
            pairs_emitted.get(),
            pairs_shuffled.get(),
            gpus_added.get(),
        ];
        EngineTel {
            tel: tel.clone(),
            dispatched,
            stolen,
            requeued,
            gpus_lost,
            retries,
            stalls,
            pairs_emitted,
            pairs_shuffled,
            gpus_added,
            base,
        }
    }

    /// Record a pipeline stage event as a span on the rank's track. The
    /// `detail` closure only runs when telemetry is enabled.
    fn event(
        &self,
        rank: u32,
        kind: TraceKind,
        start: SimTime,
        end: SimTime,
        detail: impl FnOnce() -> String,
    ) {
        self.child_event(rank, kind, start, end, 0, detail);
    }

    /// [`EngineTel::event`] under a parent chunk span (0 = no parent).
    fn child_event(
        &self,
        rank: u32,
        kind: TraceKind,
        start: SimTime,
        end: SimTime,
        parent: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel
            .span(rank, kind.name(), start.as_secs(), end.as_secs())
            .parent(parent)
            .attr_with("detail", detail)
            .record();
    }

    /// Record a chunk's container span under a pre-reserved id.
    fn chunk_span(&self, rank: u32, id: u64, chunk_id: u64, start: SimTime, end: SimTime) {
        if id == 0 {
            return;
        }
        self.tel
            .span(rank, "Chunk", start.as_secs(), end.as_secs())
            .id(id)
            .name(format!("chunk {chunk_id}"))
            .attr("chunk", chunk_id.to_string())
            .record();
    }

    /// Count a chunk dispatch and sample the rank's queue depth.
    fn dispatch(&self, rank: u32, at: SimTime, depth: usize) {
        self.dispatched.inc();
        self.tel
            .sample(rank, "queue_depth", at.as_secs(), depth as f64);
    }

    fn delta(c: &Counter, base: u64) -> u64 {
        c.get().saturating_sub(base)
    }
}

/// Journal hooks threaded through the engine for journaled runs. Plain
/// runs pass `None` everywhere, so the disabled path does no hashing, no
/// I/O, and no extra counter work — journal-less runs stay byte-identical
/// in timing and output to an engine without the journal.
struct JournalCtx<'j, K, V> {
    journal: &'j mut Journal,
    /// Content hash over an ordered pair buffer; instantiated at the
    /// journaled entry point, where the `Pod` bounds live.
    hash_pairs: fn(&[K], &[V]) -> u64,
    /// `engine.journal_records` — records verified or appended.
    records: Counter,
    /// `engine.journal_replayed` — records verified against the prefix.
    replayed: Counter,
    /// `engine.journal_flushes` — disk flushes performed.
    flushes: Counter,
}

/// Verify-or-append one journal record (no-op without a journal context).
/// Journaling never charges simulated time; a flush is recorded as a
/// zero-duration `JournalFlush` span at the commit instant.
fn jrecord<K, V>(
    jctx: &mut Option<JournalCtx<'_, K, V>>,
    tel: &EngineTel,
    rank: u32,
    at: SimTime,
    rec: JournalRecord,
) -> EngineResult<()> {
    let Some(ctx) = jctx.as_mut() else {
        return Ok(());
    };
    match ctx.journal.record(&rec).map_err(EngineError::from)? {
        RecordOutcome::Replayed => ctx.replayed.inc(),
        RecordOutcome::Buffered => ctx.records.inc(),
        RecordOutcome::Flushed => {
            ctx.records.inc();
            ctx.flushes.inc();
            let on_disk = ctx.journal.replay_len() + ctx.journal.appended();
            tel.event(rank, TraceKind::JournalFlush, at, at, || {
                format!("{on_disk} record(s) durable")
            });
        }
    }
    Ok(())
}

/// Time a transfer through the fabric, retrying plan-injected failures
/// with capped exponential backoff. Returns the arrival instant at `to`,
/// or [`EngineError::TransferFailed`] once the retry budget is exhausted.
fn transfer_with_retry(
    fabric: &mut Fabric,
    from: u32,
    to: u32,
    mut ready: SimTime,
    bytes: u64,
    tuning: &EngineTuning,
    tel: &EngineTel,
) -> EngineResult<SimTime> {
    let mut attempt = 0u32;
    loop {
        match fabric.try_send(from, to, ready, bytes, attempt) {
            Ok(arrival) => return Ok(arrival),
            Err(fault) => {
                attempt += 1;
                tel.retries.inc();
                if attempt > tuning.max_transfer_retries {
                    return Err(EngineError::TransferFailed { attempt, fault });
                }
                let backoff = SimDuration::from_secs(
                    (tuning.retry_backoff_base_s * f64::from(1u32 << (attempt - 1).min(31)))
                        .min(tuning.retry_backoff_cap_s),
                );
                tel.event(from, TraceKind::Retry, ready, ready + backoff, || {
                    format!("transfer to rank {to} failed (attempt {attempt}); backing off")
                });
                ready += backoff;
            }
        }
    }
}

/// Handle a fail-stop GPU loss on rank `r` detected at simulated instant
/// `now`: mark the rank dead, collect every chunk whose work died with the
/// device (the in-flight chunk, anything still queued, and — in accumulate
/// mode — chunks already folded into the lost GPU-resident state), and
/// migrate them to surviving ranks round-robin, charging the fabric for
/// each move. Errors with [`EngineError::GpuLost`] when no rank survives.
#[allow(clippy::too_many_arguments)]
fn kill_rank<K: crate::types::Key, V: crate::types::Value, C: Chunk>(
    r: u32,
    now: SimTime,
    in_flight: Option<(u64, C)>,
    queues: &mut WorkQueues<(u64, C)>,
    st: &mut [RankState<K, V, C>],
    cluster: &mut Cluster,
    tuning: &EngineTuning,
    tel: &EngineTel,
    jctx: &mut Option<JournalCtx<'_, K, V>>,
    displaced: &mut std::collections::HashSet<u64>,
) -> EngineResult<()> {
    let ri = r as usize;
    tel.gpus_lost.inc();
    jrecord(jctx, tel, r, now, JournalRecord::GpuLost { rank: r })?;
    st[ri].alive = false;
    st[ri].active = false;
    st[ri].accum = None;
    let mut orphans: Vec<(u64, C)> = std::mem::take(&mut st[ri].processed);
    orphans.extend(in_flight);
    orphans.extend(queues.drain_rank(r));
    // Canonical migration order, independent of how the orphans mixed.
    orphans.sort_by_key(|&(id, _)| id);
    tel.event(r, TraceKind::GpuLost, now, now, || {
        format!("GPU lost; {} chunks orphaned", orphans.len())
    });
    let live: Vec<u32> = (0..queues.ranks())
        .filter(|&x| st[x as usize].alive)
        .collect();
    if live.is_empty() {
        return Err(EngineError::GpuLost { rank: r });
    }
    // Spread orphans over survivors, starting just past the victim. The
    // chunk data sits in the victim's *host* memory (chunks are streamed
    // from rank-local storage and Bin is a CPU stage), so the surviving
    // host forwards it across the fabric even though its GPU is gone.
    let first = live.iter().position(|&x| x > r).unwrap_or(0);
    for (i, (id, chunk)) in orphans.into_iter().enumerate() {
        let dest = live[(first + i) % live.len()];
        // The chunk leaves its home rank: any device residency is gone.
        displaced.insert(id);
        let bytes = chunk.serialize().len() as u64;
        let arrival = transfer_with_retry(cluster.fabric(), r, dest, now, bytes, tuning, tel)?;
        tel.event(r, TraceKind::Requeue, now, arrival, || {
            format!("chunk {id} -> rank {dest}")
        });
        jrecord(
            jctx,
            tel,
            r,
            arrival,
            JournalRecord::Requeue {
                chunk_id: id,
                from: r,
                to: dest,
            },
        )?;
        queues.push_back(dest, (id, chunk));
        let d = dest as usize;
        st[d].cursor = st[d].cursor.max(arrival);
        st[d].active = true;
        tel.requeued.inc();
    }
    Ok(())
}

/// The rank that takes over a lost rank's remaining pipeline work: the
/// next live rank cyclically past `r`.
fn takeover<K, V, C>(r: u32, st: &[RankState<K, V, C>]) -> Option<u32> {
    let n = st.len() as u32;
    (1..n).map(|i| (r + i) % n).find(|&x| st[x as usize].alive)
}

/// Run `job` over `chunks` on `cluster`, returning per-rank outputs and
/// the timing breakdown. Clocks are reset at entry so results of
/// consecutive jobs on one cluster are independent.
pub fn run_job<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
) -> EngineResult<JobResult<J::Key, J::Value>> {
    run_job_controlled(
        cluster,
        job,
        chunks,
        &EngineTuning::default(),
        &Telemetry::disabled(),
        &RunControl::unrestricted(),
    )
}

/// [`run_job`] with explicit [`EngineTuning`] (scheduler policy and
/// overhead calibration).
pub fn run_job_tuned<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
) -> EngineResult<JobResult<J::Key, J::Value>> {
    run_job_controlled(
        cluster,
        job,
        chunks,
        tuning,
        &Telemetry::disabled(),
        &RunControl::unrestricted(),
    )
}

/// The poolable, cancellable entry point the job service multiplexes onto
/// a shared engine pool: [`run_job_instrumented`] plus a caller-side
/// [`RunControl`]. With an unrestricted control this is bit-identical —
/// outputs and simulated timings — to the classic entry points, which are
/// thin wrappers over this path. With `stop_at` set the run is aborted at
/// that instant and surfaces as [`EngineError::Cancelled`] carrying
/// chunk-conservation accounting.
pub fn run_job_controlled<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    control: &RunControl,
) -> EngineResult<JobResult<J::Key, J::Value>> {
    run_job_impl(cluster, job, chunks, tuning, tel, None, control)
}

/// [`run_job`] recording into a caller-provided [`Telemetry`] handle:
/// chunk lifecycle spans, stage spans, queue-depth samples, and `engine.*`
/// counters, with the cluster's devices and fabric attached for `gpu.*`
/// and `fabric.*` metrics. A disabled handle degrades to [`run_job_tuned`]
/// at near-zero cost. Snapshot the handle afterwards for export (or derive
/// a classic [`JobTrace`] with [`JobTrace::from_telemetry`]).
pub fn run_job_instrumented<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
) -> EngineResult<JobResult<J::Key, J::Value>> {
    run_job_controlled(
        cluster,
        job,
        chunks,
        tuning,
        tel,
        &RunControl::unrestricted(),
    )
}

/// [`run_job`], additionally recording a full execution trace (every
/// upload, kernel, send, steal, sort, and reduce with its simulated time
/// window). Render it with [`JobTrace::gantt`]. The trace is derived from
/// a telemetry recording ([`run_job_instrumented`] is the richer API).
pub fn run_job_traced<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
) -> TracedRun<J::Key, J::Value> {
    let tel = Telemetry::enabled();
    let result = run_job_controlled(
        cluster,
        job,
        chunks,
        &EngineTuning::default(),
        &tel,
        &RunControl::unrestricted(),
    )?;
    Ok((result, JobTrace::from_telemetry(&tel.snapshot())))
}

/// [`run_job_instrumented`] with a private recording, returning the job
/// result alongside the finished performance [`Analysis`] (critical path
/// with per-stage attribution, per-rank busy/idle/blocked, imbalance, and
/// findings). The recorder is snapshotted after engine teardown, so the
/// analysis sees final memory-peak gauges and every span.
pub fn run_job_analyzed<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
) -> AnalyzedRun<J::Key, J::Value> {
    let tel = Telemetry::enabled();
    let result = run_job_controlled(
        cluster,
        job,
        chunks,
        tuning,
        &tel,
        &RunControl::unrestricted(),
    )?;
    Ok((result, analyze(&tel.snapshot())))
}

/// [`run_job_instrumented`] with a write-ahead [`Journal`]: every
/// scheduling decision and stage commit is verified against (on resume) or
/// appended to (fresh, or once past the replay prefix) the journal, so an
/// interrupted run restarted with [`Journal::resume`] finishes
/// bit-identically to an uninterrupted one. Requires `Pod` key/value types
/// so commits can be content-hashed. Journaling charges no simulated time:
/// a journaled run's outputs and timings equal the plain run's.
pub fn run_job_journaled<J>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    journal: &mut Journal,
) -> EngineResult<JobResult<J::Key, J::Value>>
where
    J: GpmrJob,
    J::Key: Pod,
    J::Value: Pod,
{
    run_job_controlled_journaled(
        cluster,
        job,
        chunks,
        tuning,
        tel,
        journal,
        &RunControl::unrestricted(),
    )
}

/// [`run_job_controlled`] with a write-ahead [`Journal`] (the service's
/// journaled path). A stopped run leaves the journal holding a consistent
/// prefix of the full run's records: resuming the same job without the
/// stop replays that prefix and finishes bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn run_job_controlled_journaled<J>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    journal: &mut Journal,
    control: &RunControl,
) -> EngineResult<JobResult<J::Key, J::Value>>
where
    J: GpmrJob,
    J::Key: Pod,
    J::Value: Pod,
{
    let reg = tel.registry().cloned().unwrap_or_else(Registry::new);
    let jctx = JournalCtx {
        journal,
        hash_pairs: hash_pairs::<J::Key, J::Value>,
        records: reg.counter("engine.journal_records"),
        replayed: reg.counter("engine.journal_replayed"),
        flushes: reg.counter("engine.journal_flushes"),
    };
    run_job_impl(cluster, job, chunks, tuning, tel, Some(jctx), control)
}

fn run_job_impl<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    telemetry: &Telemetry,
    mut jctx: Option<JournalCtx<'_, J::Key, J::Value>>,
    control: &RunControl,
) -> EngineResult<JobResult<J::Key, J::Value>> {
    let cfg = job.pipeline();
    cfg.validate().map_err(EngineError::InvalidPipeline)?;
    let ranks = cluster.size();
    let gpu_direct = tuning.gpu_direct || cluster.gpu_direct();
    let depth = tuning.pipeline_depth.max(1) as usize;
    let sort_cfg = SortConfig::from_env();
    cluster.reset_clocks();
    if telemetry.is_enabled() {
        cluster.attach_telemetry(telemetry);
    }
    let tel = EngineTel::new(telemetry);

    // Every staging slot of the upload pipeline must fit on the device at
    // once, plus one slot of GPU-direct staging (pairs parked in device
    // memory for the NIC to source).
    let staging_slots = depth as u64 + u64::from(gpu_direct);
    let capacity = cluster.gpu(0).mem.capacity();
    for c in &chunks {
        if c.size_bytes().saturating_mul(staging_slots) > capacity {
            return Err(EngineError::ChunkTooLarge {
                bytes: c.size_bytes(),
                capacity,
                slots: staging_slots,
            });
        }
    }

    // Fault-injection state. Kills and stalls are read by the scheduler at
    // its touch-points (chunk dispatch, chunk commit, sort readiness);
    // transfer faults are applied inside `transfer_with_retry`.
    let plan: Option<FaultPlan> = cluster.fault_plan().cloned();
    let kill_at: Vec<Option<SimTime>> = (0..ranks)
        .map(|r| plan.as_ref().and_then(|p| p.kill_time(r)))
        .collect();
    let stalls: Vec<Vec<(SimTime, SimDuration)>> = (0..ranks)
        .map(|r| plan.as_ref().map_or_else(Vec::new, |p| p.stalls_for(r)))
        .collect();

    // Elastic adds: ranks with a scheduled GPU-add event join mid-job.
    // They take no part in the initial distribution and are excluded from
    // the reducer set, so the shuffle destinations — and therefore the
    // per-rank outputs — are identical to a run on the initial cluster
    // alone; added GPUs contribute map throughput by stealing.
    let join_at: Vec<Option<SimTime>> = (0..ranks)
        .map(|r| plan.as_ref().and_then(|p| p.add_time(r)))
        .collect();
    if let Some(p) = plan.as_ref() {
        if let Some(r) = p.added_ranks().into_iter().find(|&r| r >= ranks) {
            return Err(EngineError::InvalidPipeline(format!(
                "fault plan adds rank {r} but the cluster has only {ranks} GPUs"
            )));
        }
    }
    let reducers: Vec<u32> = (0..ranks)
        .filter(|&r| join_at[r as usize].is_none())
        .collect();
    if reducers.is_empty() {
        return Err(EngineError::InvalidPipeline(
            "fault plan defers every GPU with an add event; no rank can start the job".into(),
        ));
    }

    // Chunks carry their original index as a canonical id: requeues and
    // steals change *which rank* processes a chunk, never its identity, so
    // receivers can order inbound buckets identically across fault plans.
    let n_chunks = chunks.len() as u64;
    let ids: Vec<(u64, J::Chunk)> = chunks
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as u64, c))
        .collect();
    if jctx.is_some() {
        // Job fingerprint: everything that shapes the schedule and the
        // data. A resume against a journal written by a different job (or
        // the same job on a different cluster shape) diverges on record 0
        // instead of replaying garbage.
        let mut fp = Fnv64::new();
        fp.write_u64(u64::from(ranks));
        fp.write_u64(reducers.len() as u64);
        for &r in &reducers {
            fp.write_u64(u64::from(r));
        }
        fp.write_u64(n_chunks);
        fp.write_u64(depth as u64);
        fp.write_u64(u64::from(gpu_direct));
        fp.write_u64(cfg.map_mode as u64);
        fp.write_u64(u64::from(cfg.combine));
        fp.write_u64(cfg.partition.discriminant());
        if let PartitionMode::Range { splitters } = &cfg.partition {
            fp.write_u64(splitters.len() as u64);
            for &s in splitters {
                fp.write_u64(s);
            }
        }
        fp.write_u64(cfg.sort as u64);
        fp.write_u64(u64::from(cfg.sort_and_reduce));
        for (_, c) in &ids {
            fp.write_u64(fnv1a(&c.serialize()));
        }
        let rec = JournalRecord::JobStart {
            fingerprint: fp.finish(),
            n_chunks,
            ranks,
            reducers: reducers.len() as u32,
        };
        jrecord(&mut jctx, &tel, 0, SimTime::ZERO, rec)?;
    }
    let mut queues = WorkQueues::distribute_on(ids, ranks, &reducers);
    let setup =
        SimTime::from_secs(tuning.setup_base_s + tuning.setup_per_rank_s * f64::from(ranks));
    // Uploads are host-driven DMA enqueues: with a pipelined engine they
    // start once the local context exists (base setup), overlapping the
    // cluster-wide collective startup. Kernels still wait for full setup
    // (`compute_ready`). Depth 1 keeps the legacy serialized start.
    let upload_ready = if depth >= 2 {
        SimTime::from_secs(tuning.setup_base_s)
    } else {
        setup
    };
    let mut st: Vec<RankState<J::Key, J::Value, J::Chunk>> = (0..ranks)
        .map(|r| match join_at[r as usize] {
            // Initial ranks pay the cluster-wide collective setup.
            None => RankState {
                cursor: upload_ready,
                compute_ready: setup,
                setup_end: setup,
                ..RankState::default()
            },
            // Elastic adds pay only their local context creation, starting
            // at the join instant; the collective already happened.
            Some(join) => RankState {
                cursor: join,
                compute_ready: join + SimDuration::from_secs(tuning.setup_base_s),
                setup_end: join + SimDuration::from_secs(tuning.setup_base_s),
                joined: false,
                ..RankState::default()
            },
        })
        .collect();
    for &r in &reducers {
        tel.event(r, TraceKind::Setup, SimTime::ZERO, setup, || {
            "job setup".into()
        });
    }
    let mut mailbox: Mailbox<ShuffleMsg<J::Key, J::Value>> = Mailbox::new(ranks);
    // Chunk ids that moved off their home rank (steals, fault-plan
    // requeues): under `RunControl::inputs_resident` these still pay the
    // full upload — residency only holds where the chunk was born.
    let mut displaced: std::collections::HashSet<u64> = std::collections::HashSet::new();

    // --- Map stage -------------------------------------------------------
    if cfg.map_mode == MapMode::Accumulate {
        for &r in &reducers {
            let gpu = cluster.gpu(r);
            let (state, t) = job.accumulate_init(gpu, setup)?;
            tel.event(r, TraceKind::AccumulateInit, setup, t, || {
                "accumulate init".into()
            });
            let s = &mut st[r as usize];
            s.accum = Some(state);
            // Chunk uploads may overlap the init kernel; maps may not.
            s.compute_ready = s.compute_ready.max(t);
        }
    }

    // Drive the earliest-ready active rank until none remain.
    while let Some(r) = (0..ranks)
        .filter(|&r| st[r as usize].active)
        .min_by(|&a, &b| {
            st[a as usize]
                .cursor
                .partial_cmp(&st[b as usize].cursor)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
    {
        let ri = r as usize;

        // Caller-requested stop: a rank whose clock has reached the stop
        // instant dequeues no more work. Its in-flight chunks already
        // committed (dispatch is synchronous per chunk), so stopping here
        // is a clean chunk boundary; the leftover queue is drained and
        // accounted for after the loop.
        if control.stop_at.is_some_and(|stop| st[ri].cursor >= stop) {
            st[ri].active = false;
            continue;
        }

        // Straggler injection: a stall due at or before this dispatch
        // freezes the rank before it takes more work.
        while st[ri].stall_idx < stalls[ri].len() && stalls[ri][st[ri].stall_idx].0 <= st[ri].cursor
        {
            let (_, dur) = stalls[ri][st[ri].stall_idx];
            st[ri].stall_idx += 1;
            let begin = st[ri].cursor;
            st[ri].cursor += dur;
            tel.stalls.inc();
            tel.event(r, TraceKind::Stall, begin, st[ri].cursor, || {
                format!("injected stall ({dur})")
            });
        }

        // Fail-stop check at dispatch: a GPU whose kill instant has passed
        // takes no more work, and everything it held migrates away.
        if kill_at[ri].is_some_and(|k| k <= st[ri].cursor) {
            kill_rank(
                r,
                st[ri].cursor,
                None,
                &mut queues,
                &mut st,
                cluster,
                tuning,
                &tel,
                &mut jctx,
                &mut displaced,
            )?;
            continue;
        }

        // Elastic add: a rank scheduled to join mid-job runs its local
        // setup at its first scheduler pick. It owns no queued work (the
        // initial distribution skipped it) and is not a reducer, so it
        // contributes by stealing map work from loaded survivors.
        if !st[ri].joined {
            st[ri].joined = true;
            let join = join_at[ri].expect("unjoined ranks have an add event");
            tel.gpus_added.inc();
            tel.event(r, TraceKind::GpuAdded, join, join, || {
                "GPU joined the job mid-run".into()
            });
            tel.event(r, TraceKind::Setup, join, st[ri].compute_ready, || {
                "late-join setup".into()
            });
            jrecord(
                &mut jctx,
                &tel,
                r,
                join,
                JournalRecord::GpuAdded { rank: r },
            )?;
            if cfg.map_mode == MapMode::Accumulate {
                let t0 = st[ri].compute_ready;
                let gpu = cluster.gpu(r);
                let (state, t) = job.accumulate_init(gpu, t0)?;
                tel.event(r, TraceKind::AccumulateInit, t0, t, || {
                    "accumulate init".into()
                });
                st[ri].accum = Some(state);
                st[ri].compute_ready = st[ri].compute_ready.max(t);
            }
        }

        // Obtain a chunk: own queue, else steal, else retire.
        let (chunk_id, chunk) = match queues.pop_local(r) {
            Some(c) => c,
            None if !tuning.allow_stealing => {
                st[ri].active = false;
                continue;
            }
            // Work-aware stealing: take the heaviest chunk from the rank
            // with the most queued bytes, but only while the steal pays
            // for itself (see `WorkQueues::steal_profitable`) — late
            // steals queue their migration behind the victim's outbound
            // shuffle traffic and arrive after the victim would have
            // processed the chunk locally.
            None => match queues.steal_profitable(r, |c| c.1.size_bytes()) {
                Some((victim, c)) => {
                    tel.stolen.inc();
                    displaced.insert(c.0);
                    // Migration: serialized chunk crosses the fabric from the
                    // victim's host memory to the thief's.
                    let bytes = c.1.serialize().len() as u64;
                    let before = st[ri].cursor;
                    let arrival = transfer_with_retry(
                        cluster.fabric(),
                        victim,
                        r,
                        before,
                        bytes,
                        tuning,
                        &tel,
                    )?;
                    tel.event(r, TraceKind::Steal, before, arrival, || {
                        format!("stole chunk from rank {victim}")
                    });
                    st[ri].cursor = arrival;
                    jrecord(
                        &mut jctx,
                        &tel,
                        r,
                        arrival,
                        JournalRecord::Steal {
                            chunk_id: c.0,
                            victim,
                            thief: r,
                        },
                    )?;
                    c
                }
                None => {
                    st[ri].active = false;
                    continue;
                }
            },
        };

        st[ri].cursor += SimDuration::from_secs(tuning.sched_overhead_s);
        let cursor = st[ri].cursor;
        jrecord(
            &mut jctx,
            &tel,
            r,
            cursor,
            JournalRecord::ChunkDispatch { chunk_id, rank: r },
        )?;
        let compute_ready = st[ri].compute_ready;
        // k-deep upload pipeline: the upload may only start once a staging
        // slot frees — i.e. when the map of the chunk `depth` dispatches
        // back has finished. Until then uploads queue on the copy engine
        // while earlier chunks map.
        let mut gate = SimTime::ZERO;
        while st[ri].inflight.len() >= depth {
            gate = gate.max(st[ri].inflight.pop_front().expect("len checked"));
        }
        tel.dispatch(r, cursor, queues.remaining(r));
        // Container span grouping this chunk's stage spans; its id is
        // reserved now so children can link to it, and the span itself is
        // written once the chunk's window is known.
        let chunk_span = tel.tel.reserve_span_id();

        let gpu = cluster.gpu(r);
        // Round chaining: a chunk the driver left resident on this device
        // skips its upload entirely — the window collapses to the gated
        // dispatch instant. Displaced chunks (steals, requeues) moved
        // hosts, so they pay the full transfer like any cold chunk.
        let up = if control.inputs_resident && !displaced.contains(&chunk_id) {
            let at = cursor.max(gate);
            gpmr_sim_gpu::Reservation { start: at, end: at }
        } else {
            gpu.h2d_gated(cursor, gate, chunk.size_bytes())
        };
        gpu.note_resident(staging_slots * chunk.size_bytes());
        tel.child_event(r, TraceKind::Upload, up.start, up.end, chunk_span, || {
            format!("{} bytes", chunk.size_bytes())
        });

        match cfg.map_mode {
            MapMode::Accumulate => {
                let mut state = st[ri].accum.take().expect("accumulate state initialized");
                let t = job.map_accumulate(gpu, up.end.max(compute_ready), &chunk, &mut state)?;
                if kill_at[ri].is_some_and(|k| k <= t) {
                    // The device died before this map finished. The whole
                    // accumulate state dies with it, so every chunk it
                    // covered — plus this one — reruns on survivors.
                    drop(state);
                    kill_rank(
                        r,
                        t,
                        Some((chunk_id, chunk)),
                        &mut queues,
                        &mut st,
                        cluster,
                        tuning,
                        &tel,
                        &mut jctx,
                        &mut displaced,
                    )?;
                    continue;
                }
                tel.child_event(
                    r,
                    TraceKind::Map,
                    up.end.max(compute_ready),
                    t,
                    chunk_span,
                    || "map+accumulate".into(),
                );
                tel.chunk_span(r, chunk_span, chunk_id, up.start, t);
                // Accumulate folds emissions into device state, so the
                // commit hashes the chunk itself: replay re-folds it.
                if jctx.is_some() {
                    let hash = fnv1a(&chunk.serialize());
                    jrecord(
                        &mut jctx,
                        &tel,
                        r,
                        t,
                        JournalRecord::ChunkCommit {
                            chunk_id,
                            rank: r,
                            pairs: chunk.item_count() as u64,
                            hash,
                        },
                    )?;
                }
                gpu.note_resident(staging_slots * chunk.size_bytes() + state.size_bytes());
                let s = &mut st[ri];
                s.accum = Some(state);
                s.last_map_end = s.last_map_end.max(t);
                // The host is free to dispatch again once this upload has
                // left the queue; the staging gate and the compute timeline
                // keep the device honest.
                s.cursor = up.start;
                s.inflight.push_back(t);
                s.chunks_done += 1;
                if kill_at[ri].is_some() {
                    s.processed.push((chunk_id, chunk));
                }
            }
            MapMode::Plain | MapMode::PartialReduce => {
                let (mut pairs, mut t) = job.map(gpu, up.end.max(compute_ready), &chunk)?;
                let map_end = t;
                let map_pairs = pairs.len();
                let mut partial = None;
                if cfg.map_mode == MapMode::PartialReduce {
                    let (p, tp) = job.partial_reduce(gpu, t, pairs)?;
                    partial = Some((t, tp, p.len()));
                    pairs = p;
                    t = tp;
                }
                if kill_at[ri].is_some_and(|k| k <= t) {
                    // Kernels never completed: nothing was emitted, and the
                    // chunk reruns on a survivor.
                    drop(pairs);
                    kill_rank(
                        r,
                        t,
                        Some((chunk_id, chunk)),
                        &mut queues,
                        &mut st,
                        cluster,
                        tuning,
                        &tel,
                        &mut jctx,
                        &mut displaced,
                    )?;
                    continue;
                }
                let commit = jctx
                    .as_ref()
                    .map(|ctx| (ctx.hash_pairs)(&pairs.keys, &pairs.vals));
                if let Some(hash) = commit {
                    jrecord(
                        &mut jctx,
                        &tel,
                        r,
                        t,
                        JournalRecord::ChunkCommit {
                            chunk_id,
                            rank: r,
                            pairs: pairs.len() as u64,
                            hash,
                        },
                    )?;
                }
                tel.child_event(
                    r,
                    TraceKind::Map,
                    up.end.max(compute_ready),
                    map_end,
                    chunk_span,
                    || format!("{map_pairs} pairs"),
                );
                if let Some((pr_start, pr_end, pr_pairs)) = partial {
                    tel.child_event(
                        r,
                        TraceKind::PartialReduce,
                        pr_start,
                        pr_end,
                        chunk_span,
                        || format!("-> {pr_pairs} pairs"),
                    );
                }
                tel.pairs_emitted.add(map_pairs as u64);
                gpu.note_resident(chunk.size_bytes() + pairs.size_bytes());
                if cfg.combine {
                    // Pairs are stored in CPU memory until all maps finish.
                    let down = gpu.d2h(t, pairs.size_bytes());
                    tel.chunk_span(r, chunk_span, chunk_id, up.start, down.end);
                    let s = &mut st[ri];
                    s.store.append(pairs);
                    s.last_d2h = s.last_d2h.max(down.end);
                    s.last_map_end = s.last_map_end.max(t);
                    s.cursor = up.start;
                    s.inflight.push_back(t);
                    s.chunks_done += 1;
                } else {
                    // Partition on the GPU, download, and bin immediately —
                    // overlapped with the next chunk's upload and map.
                    let t_part = charge_partition::<J::Key, J::Value>(gpu, t, pairs.len());
                    // GPU-direct networking (the paper's future-work
                    // hardware): pairs leave the GPU through the NIC
                    // without the PCI-e round trip through host memory.
                    let send_ready = if gpu_direct {
                        t_part
                    } else {
                        let down = gpu.d2h(t_part, pairs.size_bytes());
                        tel.child_event(
                            r,
                            TraceKind::Download,
                            down.start,
                            down.end,
                            chunk_span,
                            || format!("{} bytes", pairs.size_bytes()),
                        );
                        down.end
                    };
                    tel.child_event(r, TraceKind::Partition, t, t_part, chunk_span, || {
                        String::new()
                    });
                    tel.pairs_shuffled.add(pairs.len() as u64);
                    let buckets = route_pairs(job, &cfg.partition, pairs, &reducers, ranks);
                    let mut bin_done = st[ri].bin_done;
                    let mut chunk_end = send_ready;
                    for (dest, bucket) in buckets.into_iter().enumerate() {
                        if bucket.pairs.is_empty() {
                            continue;
                        }
                        let bytes = bucket.pairs.size_bytes();
                        let arrival = transfer_with_retry(
                            cluster.fabric(),
                            r,
                            dest as u32,
                            send_ready,
                            bytes,
                            tuning,
                            &tel,
                        )?;
                        mailbox.deliver(dest as u32, r, chunk_id, arrival, bucket);
                        tel.child_event(
                            r,
                            TraceKind::Send,
                            send_ready,
                            arrival,
                            chunk_span,
                            || format!("{bytes} bytes to rank {dest}"),
                        );
                        bin_done = bin_done.max(arrival);
                        chunk_end = chunk_end.max(arrival);
                    }
                    tel.chunk_span(r, chunk_span, chunk_id, up.start, chunk_end);
                    let s = &mut st[ri];
                    s.bin_done = bin_done;
                    s.last_map_end = s.last_map_end.max(t);
                    s.cursor = up.start;
                    s.inflight.push_back(t);
                    s.chunks_done += 1;
                }
            }
        }
    }

    // --- Caller-requested stop ------------------------------------------
    // Every rank halted at a chunk boundary at or after `stop_at`. Drain
    // the leftover queues so no chunk stays parked in scheduler state, and
    // account for the whole input: chunks committed by maps plus chunks
    // released here cover every dispatched chunk (fault-plan kills may
    // rerun chunks, which only raises the committed count). Device memory
    // holds no engine allocations across chunks (working sets are modeled
    // via `note_resident`), so dropping per-rank state releases everything.
    if let Some(stop) = control.stop_at {
        let chunks_committed: u32 = st.iter().map(|s| s.chunks_done).sum();
        let chunks_released = queues.drain_all().len() as u32;
        tel.event(0, TraceKind::Cancelled, stop, stop, || {
            format!(
                "run stopped: {chunks_committed} chunk(s) committed, {chunks_released} released"
            )
        });
        cluster.flush_telemetry();
        return Err(EngineError::Cancelled {
            at_ns: (stop.as_secs() * 1e9).round() as u64,
            chunks_committed,
            chunks_released,
        });
    }

    // --- Deferred binning (Accumulate / Combine) -------------------------
    match cfg.map_mode {
        MapMode::Accumulate => {
            for r in 0..ranks {
                let ri = r as usize;
                if !st[ri].alive {
                    // The accumulate state died with the device; its chunks
                    // were rerun on survivors, so there is nothing to ship.
                    continue;
                }
                let state = st[ri].accum.take().unwrap_or_default();
                // Accumulate-mode maps fold emissions into device state
                // immediately, so the committed accumulator entries are the
                // map output: count them as emitted here, where the state
                // is committed for binning (keeps `pairs_emitted >=
                // pairs_shuffled` in every map mode, and counts nothing for
                // state that died with its GPU and was rerun elsewhere).
                tel.pairs_emitted.add(state.len() as u64);
                tel.pairs_shuffled.add(state.len() as u64);
                let gpu = cluster.gpu(r);
                let t_part =
                    charge_partition::<J::Key, J::Value>(gpu, st[ri].last_map_end, state.len());
                let send_ready = if gpu_direct {
                    t_part
                } else {
                    gpu.d2h(t_part, state.size_bytes()).end
                };
                let buckets = route_pairs(job, &cfg.partition, state, &reducers, ranks);
                let mut bin_done = st[ri].bin_done;
                for (dest, bucket) in buckets.into_iter().enumerate() {
                    if bucket.pairs.is_empty() {
                        continue;
                    }
                    let bytes = bucket.pairs.size_bytes();
                    let arrival = transfer_with_retry(
                        cluster.fabric(),
                        r,
                        dest as u32,
                        send_ready,
                        bytes,
                        tuning,
                        &tel,
                    )?;
                    mailbox.deliver(dest as u32, r, n_chunks + u64::from(r), arrival, bucket);
                    tel.event(r, TraceKind::Send, send_ready, arrival, || {
                        format!("{bytes} bytes to rank {dest}")
                    });
                    bin_done = bin_done.max(arrival);
                }
                st[ri].bin_done = bin_done;
            }
        }
        MapMode::Plain | MapMode::PartialReduce if cfg.combine => {
            for r in 0..ranks {
                let ri = r as usize;
                let store = std::mem::take(&mut st[ri].store);
                if store.is_empty() {
                    continue;
                }
                // The store lives in host memory, so it survives a GPU
                // loss; a lost rank's combine runs on a surviving GPU.
                let exec = if st[ri].alive {
                    r
                } else {
                    takeover(r, &st).expect("kill_rank guarantees a survivor")
                };
                let t0 = st[ri].last_map_end.max(st[ri].last_d2h);
                let gpu = cluster.gpu(exec);
                // Stream stored pairs back down to the GPU for combination.
                let up = gpu.h2d(t0, store.size_bytes());
                let (combined, t1) =
                    combine_pairs(gpu, up.end, store, |a, b| job.combine_op(a, b))?;
                tel.event(r, TraceKind::Combine, up.start, t1, || {
                    let note = if exec == r {
                        String::new()
                    } else {
                        format!(" (on rank {exec})")
                    };
                    format!("-> {} pairs{note}", combined.len())
                });
                tel.pairs_shuffled.add(combined.len() as u64);
                let t_part = charge_partition::<J::Key, J::Value>(gpu, t1, combined.len());
                let send_ready = if gpu_direct {
                    t_part
                } else {
                    gpu.d2h(t_part, combined.size_bytes()).end
                };
                let buckets = route_pairs(job, &cfg.partition, combined, &reducers, ranks);
                let mut bin_done = st[ri].bin_done;
                for (dest, bucket) in buckets.into_iter().enumerate() {
                    if bucket.pairs.is_empty() {
                        continue;
                    }
                    let bytes = bucket.pairs.size_bytes();
                    let arrival = transfer_with_retry(
                        cluster.fabric(),
                        r,
                        dest as u32,
                        send_ready,
                        bytes,
                        tuning,
                        &tel,
                    )?;
                    mailbox.deliver(dest as u32, r, n_chunks + u64::from(r), arrival, bucket);
                    tel.event(r, TraceKind::Send, send_ready, arrival, || {
                        format!("{bytes} bytes to rank {dest}")
                    });
                    bin_done = bin_done.max(arrival);
                }
                st[ri].bin_done = bin_done;
            }
        }
        _ => {}
    }

    // --- Sort + Reduce stages --------------------------------------------
    // Drain all inbound pairs first: sort-readiness must be known for
    // every rank before lost GPUs are assigned takeover ranks. Deliveries
    // are consumed in canonical (chunk-id, sender) order, so the
    // concatenated set is identical no matter how faults, retries, or
    // stalls reshuffled arrival times.
    let mut inbound: Vec<Inbound<J::Key, J::Value>> = Vec::with_capacity(ranks as usize);
    for r in 0..ranks {
        let ri = r as usize;
        let deliveries = mailbox.drain_canonical(r);
        let mut incoming: KvSet<J::Key, J::Value> =
            KvSet::with_capacity(deliveries.iter().map(|d| d.payload.pairs.len()).sum());
        let mut last_arrival = SimTime::ZERO;
        let mut parts = Vec::with_capacity(deliveries.len());
        let mut max_radix = 0u64;
        for d in deliveries {
            last_arrival = last_arrival.max(d.arrival);
            max_radix = max_radix.max(d.payload.max_radix);
            parts.push((d.arrival, d.payload.pairs.size_bytes()));
            incoming.append(d.payload.pairs);
        }
        st[ri].sort_ready = st[ri].last_map_end.max(st[ri].bin_done).max(last_arrival);
        inbound.push(Inbound {
            pairs: incoming,
            parts,
            max_radix,
        });
    }

    // A rank whose GPU died after its map work completed is discovered
    // here: its sort and reduce run on the next surviving rank, with the
    // output still stored in the lost rank's slot.
    let mut last_sort_loss = None;
    for r in 0..ranks {
        let ri = r as usize;
        if st[ri].alive && kill_at[ri].is_some_and(|k| k <= st[ri].sort_ready) {
            st[ri].alive = false;
            tel.gpus_lost.inc();
            last_sort_loss = Some(r);
            tel.event(
                r,
                TraceKind::GpuLost,
                st[ri].sort_ready,
                st[ri].sort_ready,
                || "GPU lost before sort".to_string(),
            );
            jrecord(
                &mut jctx,
                &tel,
                r,
                st[ri].sort_ready,
                JournalRecord::GpuLost { rank: r },
            )?;
        }
    }
    if st.iter().all(|s| !s.alive) {
        return Err(EngineError::GpuLost {
            rank: last_sort_loss.unwrap_or(0),
        });
    }

    let mut outputs: Vec<KvSet<J::Key, J::Value>> = Vec::with_capacity(ranks as usize);
    for (r, inb) in (0..ranks).zip(inbound) {
        let ri = r as usize;
        let sort_ready = st[ri].sort_ready;
        let incoming = inb.pairs;

        if !cfg.sort_and_reduce || incoming.is_empty() {
            st[ri].sort_done = sort_ready;
            st[ri].reduce_done = sort_ready;
            let hash = jctx
                .as_ref()
                .map(|ctx| (ctx.hash_pairs)(&incoming.keys, &incoming.vals));
            if let Some(hash) = hash {
                jrecord(
                    &mut jctx,
                    &tel,
                    r,
                    sort_ready,
                    JournalRecord::BinReduced {
                        rank: r,
                        pairs: incoming.len() as u64,
                        hash,
                    },
                )?;
            }
            outputs.push(incoming);
            continue;
        }

        let exec = if st[ri].alive {
            r
        } else {
            takeover(r, &st).expect("a live rank exists")
        };
        let exec_note = if exec == r {
            String::new()
        } else {
            format!(" (on rank {exec})")
        };

        // Sort input: stream inbound buckets up to the device as they
        // arrive, overlapping the upload with the map/bin tail instead of
        // paying one bulk transfer after the last arrival. The host stages
        // arrivals in a pinned buffer and coalesces everything that lands
        // while the previous DMA is in flight into the next one, so
        // hundreds of small deliveries cost a handful of transfers — not
        // one initiation latency each. Free with GPU-direct networking —
        // the pairs arrived in device memory.
        let gpu = cluster.gpu(exec);
        let mut device_ready = sort_ready;
        if !gpu_direct {
            let mut parts = inb.parts;
            parts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut first_start: Option<SimTime> = None;
            let mut last_end = sort_ready;
            let mut transfers = 0u32;
            let mut i = 0usize;
            while i < parts.len() {
                let issue = parts[i].0.max(gpu.copy_free_at());
                let mut bytes = 0u64;
                while i < parts.len() && parts[i].0 <= issue {
                    bytes += parts[i].1;
                    i += 1;
                }
                let u = gpu.h2d(issue, bytes);
                first_start.get_or_insert(u.start);
                last_end = u.end;
                transfers += 1;
            }
            device_ready = device_ready.max(last_end);
            if let Some(first) = first_start {
                tel.event(r, TraceKind::Upload, first, last_end, || {
                    format!(
                        "{} bytes of sort input in {transfers} transfers{exec_note}",
                        incoming.size_bytes(),
                    )
                });
            }
        }
        // Out-of-core sort: when the pairs (with the sort's ping-pong
        // buffer) exceed device memory, external passes stream the data
        // back and forth across PCI-e. This is what makes SIO's speedup
        // super-linear at the GPU count where the data first fits in core
        // (paper Figure 3).
        let mut sort_start = device_ready;
        let capacity = gpu.mem.capacity();
        let need = 2 * incoming.size_bytes();
        // In-core working set: pairs plus the ping-pong buffer, capped at
        // device capacity when the sort spills out of core.
        gpu.note_resident(if capacity > 0 {
            need.min(capacity)
        } else {
            need
        });
        if capacity > 0 && need > capacity {
            let extra_passes = need / capacity;
            for _ in 0..extra_passes {
                let d = gpu.d2h(sort_start, incoming.size_bytes());
                let u = gpu.h2d(d.end, incoming.size_bytes());
                sort_start = u.end;
            }
        }
        // The partitioner already bounded every bucket's key range while
        // routing, so the sort starts on the right digit count without a
        // max-radix reduction pass.
        let (skeys, svals, t1) = match cfg.sort {
            SortMode::Radix => sort_pairs_with_bits_config(
                gpu,
                sort_start,
                &incoming.keys,
                &incoming.vals,
                bits_for_radix(inb.max_radix),
                &sort_cfg,
            )?,
            SortMode::Bitonic => {
                bitonic_sort_pairs_by(gpu, sort_start, &incoming.keys, &incoming.vals, |a, b| {
                    a.radix().cmp(&b.radix())
                })?
            }
        };
        let (segs, t2) = extract_segments(gpu, t1, &skeys)?;
        tel.event(r, TraceKind::Sort, device_ready, t2, || {
            format!(
                "{} pairs, {} unique keys{exec_note}",
                skeys.len(),
                segs.len()
            )
        });
        let sorted = jctx.as_ref().map(|ctx| (ctx.hash_pairs)(&skeys, &svals));
        if let Some(hash) = sorted {
            jrecord(
                &mut jctx,
                &tel,
                r,
                t2,
                JournalRecord::BinSorted {
                    rank: r,
                    pairs: skeys.len() as u64,
                    unique: segs.len() as u64,
                    hash,
                },
            )?;
        }
        st[ri].sort_done = t2;
        // Stage accounting: Bin absorbs the wait for arrivals and the
        // streamed input upload; Sort is kernel time only.
        st[ri].sort_ready = device_ready;

        // Reduce: chunked by the job's callback. Typical reducers emit one
        // pair per unique key, so size for that.
        let mut out: KvSet<J::Key, J::Value> = KvSet::with_capacity(segs.len());
        let mut t = t2;
        let mut i = 0usize;
        let val_bytes = std::mem::size_of::<J::Value>().max(1);
        let reduce_budget = (capacity as usize / 4).max(val_bytes);
        while i < segs.len() {
            let mut take = job
                .reduce_sets_per_chunk(segs.len() - i)
                .clamp(1, segs.len() - i);
            // Memory safety net: a reduce chunk's values must fit on the
            // device (quarter of memory, leaving room for outputs and the
            // double buffer) regardless of what the callback asked for.
            while take > 1 && (segs.offsets[i + take] - segs.offsets[i]) * val_bytes > reduce_budget
            {
                take /= 2;
            }
            let sub = Segments {
                keys: segs.keys[i..i + take].to_vec(),
                offsets: segs.offsets[i..=i + take]
                    .iter()
                    .map(|o| o - segs.offsets[i])
                    .collect(),
            };
            let vals = &svals[segs.offsets[i]..segs.offsets[i + take]];
            let (part, tn) = job.reduce(gpu, t, &sub, vals)?;
            out.append(part);
            t = tn;
            i += take;
        }
        let down = gpu.d2h(t, out.size_bytes());
        tel.event(r, TraceKind::Reduce, t2, down.end, || {
            format!("{} output pairs{exec_note}", out.len())
        });
        st[ri].reduce_done = down.end;
        let reduced = jctx
            .as_ref()
            .map(|ctx| (ctx.hash_pairs)(&out.keys, &out.vals));
        if let Some(hash) = reduced {
            jrecord(
                &mut jctx,
                &tel,
                r,
                down.end,
                JournalRecord::BinReduced {
                    rank: r,
                    pairs: out.len() as u64,
                    hash,
                },
            )?;
        }
        outputs.push(out);
    }

    // Job is done: publish each device's memory high-water mark to its
    // `gpu.rank{r}.mem_peak_bytes` gauge (teardown flush).
    cluster.flush_telemetry();

    // --- Assemble timings -------------------------------------------------
    let makespan = st
        .iter()
        .map(|s| s.reduce_done)
        .fold(SimTime::ZERO, SimTime::max);
    if let Some(ctx) = jctx.as_ref() {
        // Job-end manifest: a fold of every rank's output hash plus the
        // exact makespan bits. A resumed run that reaches this record with
        // the same values is bit-identical to the uninterrupted run.
        let mut h = Fnv64::new();
        for o in &outputs {
            h.write_u64((ctx.hash_pairs)(&o.keys, &o.vals));
        }
        let rec = JournalRecord::JobEnd {
            output_hash: h.finish(),
            makespan_bits: makespan.since(SimTime::ZERO).as_secs().to_bits(),
        };
        jrecord(&mut jctx, &tel, 0, makespan, rec)?;
    }
    let per_rank: Vec<StageTimes> = st
        .iter()
        .map(|s| StageTimes {
            map: s.last_map_end.since(s.setup_end),
            bin: s.sort_ready.since(s.last_map_end.max(s.setup_end)),
            sort: s.sort_done.since(s.sort_ready),
            reduce: s.reduce_done.since(s.sort_done),
            // Job setup plus the end-of-job barrier wait. An elastic add's
            // setup ends at its join instant plus local setup, so its idle
            // pre-join span lands here, not in Map.
            scheduler: s.setup_end.since(SimTime::ZERO) + makespan.since(s.reduce_done),
        })
        .collect();

    Ok(JobResult {
        outputs,
        timings: JobTimings {
            total: makespan.since(SimTime::ZERO),
            per_rank,
            chunks_per_rank: st.iter().map(|s| s.chunks_done).collect(),
            chunks_stolen: EngineTel::delta(&tel.stolen, tel.base[1]) as u32,
            pairs_emitted: EngineTel::delta(&tel.pairs_emitted, tel.base[6]),
            pairs_shuffled: EngineTel::delta(&tel.pairs_shuffled, tel.base[7]),
            gpus_lost: EngineTel::delta(&tel.gpus_lost, tel.base[3]) as u32,
            gpus_added: EngineTel::delta(&tel.gpus_added, tel.base[8]) as u32,
            chunks_requeued: EngineTel::delta(&tel.requeued, tel.base[2]) as u32,
            transfer_retries: EngineTel::delta(&tel.retries, tel.base[4]) as u32,
            stalls_injected: EngineTel::delta(&tel.stalls, tel.base[5]) as u32,
        },
    })
}

/// One binned bucket in flight to its reducer rank, carrying the key-range
/// bound the partition pass computed while routing (the pass touches every
/// key anyway, so folding a max costs nothing extra). The receiver uses it
/// to size its radix sort without a max-radix reduction.
struct ShuffleMsg<K, V> {
    pairs: KvSet<K, V>,
    max_radix: u64,
}

/// Everything a rank received for its sort stage: the concatenated pairs,
/// the per-delivery (arrival, bytes) schedule for streamed input uploads,
/// and the folded key-range bound.
struct Inbound<K, V> {
    pairs: KvSet<K, V>,
    parts: Vec<(SimTime, u64)>,
    max_radix: u64,
}

/// Partition `pairs` over the `reducers` (the ranks that started the job;
/// elastic adds are excluded so the destination set — and the output — is
/// independent of mid-job joins), scattered into a `ranks`-wide bucket
/// vector indexed by destination rank. With every rank a reducer this is
/// the classic placement.
fn route_pairs<J: GpmrJob>(
    job: &J,
    mode: &PartitionMode,
    pairs: KvSet<J::Key, J::Value>,
    reducers: &[u32],
    ranks: u32,
) -> Vec<ShuffleMsg<J::Key, J::Value>> {
    fn scatter<K: crate::types::Key, V: crate::types::Value>(
        buckets: Vec<(KvSet<K, V>, u64)>,
        reducers: &[u32],
        ranks: u32,
    ) -> Vec<ShuffleMsg<K, V>> {
        let mut out: Vec<ShuffleMsg<K, V>> = (0..ranks)
            .map(|_| ShuffleMsg {
                pairs: KvSet::new(),
                max_radix: 0,
            })
            .collect();
        for (i, (pairs, max_radix)) in buckets.into_iter().enumerate() {
            out[reducers[i] as usize] = ShuffleMsg { pairs, max_radix };
        }
        out
    }
    let nred = reducers.len() as u32;
    match mode {
        PartitionMode::None => {
            let max_radix = pairs.keys.iter().map(|k| k.radix()).max().unwrap_or(0);
            let mut buckets: Vec<ShuffleMsg<J::Key, J::Value>> = (0..ranks)
                .map(|_| ShuffleMsg {
                    pairs: KvSet::new(),
                    max_radix: 0,
                })
                .collect();
            buckets[reducers[0] as usize] = ShuffleMsg { pairs, max_radix };
            buckets
        }
        PartitionMode::RoundRobin => scatter(
            split_buckets_bounded(pairs, nred, |k| (k.radix() % u64::from(nred)) as u32),
            reducers,
            ranks,
        ),
        PartitionMode::Custom => scatter(
            split_buckets_bounded(pairs, nred, |k| job.partition(k, nred)),
            reducers,
            ranks,
        ),
        PartitionMode::Range { splitters } => scatter(
            split_buckets_bounded(pairs, nred, |k| {
                splitters.partition_point(|&s| s <= k.radix()) as u32
            }),
            reducers,
            ranks,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::SliceChunk;
    use crate::job::PipelineConfig;
    use gpmr_sim_gpu::{Gpu, GpuSpec, LaunchConfig, SimGpuResult};

    /// A minimal counting job with a configurable pipeline, used to
    /// exercise engine paths directly.
    struct TestJob {
        cfg: PipelineConfig,
    }

    impl TestJob {
        fn with(cfg: PipelineConfig) -> Self {
            TestJob { cfg }
        }
    }

    impl GpmrJob for TestJob {
        type Chunk = SliceChunk<u32>;
        type Key = u32;
        type Value = u32;

        fn pipeline(&self) -> PipelineConfig {
            self.cfg.clone()
        }

        fn map(
            &self,
            gpu: &mut Gpu,
            at: SimTime,
            chunk: &Self::Chunk,
        ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
            let n = chunk.items.len();
            let cfg = LaunchConfig::for_items(n, 1024, 128);
            let (launch, res) = gpu.launch(at, &cfg, |ctx| {
                let range = ctx.item_range(n);
                ctx.charge_read::<u32>(range.len());
                let mut out = KvSet::with_capacity(range.len());
                for &x in &chunk.items[range] {
                    out.push(x % 16, 1);
                }
                out
            })?;
            let mut pairs = KvSet::new();
            for p in launch.outputs {
                pairs.append(p);
            }
            Ok((pairs, res.end))
        }

        fn combine_op(&self, a: u32, b: u32) -> u32 {
            a + b
        }

        fn reduce(
            &self,
            gpu: &mut Gpu,
            at: SimTime,
            segs: &Segments<u32>,
            vals: &[u32],
        ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
            let cfg = LaunchConfig::grid(1, 128);
            let (launch, res) = gpu.launch(at, &cfg, |ctx| {
                let mut out = KvSet::new();
                for s in 0..segs.len() {
                    let r = segs.range(s);
                    ctx.charge_read_uncoalesced::<u32>(r.len());
                    out.push(segs.keys[s], vals[r].iter().sum());
                }
                out
            })?;
            let mut out = KvSet::new();
            for p in launch.outputs {
                out.append(p);
            }
            Ok((out, res.end))
        }
    }

    fn input(n: u32) -> Vec<SliceChunk<u32>> {
        let data: Vec<u32> = (0..n).collect();
        SliceChunk::split(&data, 500)
    }

    fn counts(result: &JobResult<u32, u32>) -> Vec<u32> {
        let mut c = vec![0u32; 16];
        for (k, v) in result.merged_output().iter() {
            c[*k as usize] += *v;
        }
        c
    }

    #[test]
    fn combine_mode_defers_binning_and_matches_plain() {
        let plain = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            run_job(
                &mut cl,
                &TestJob::with(PipelineConfig::default()),
                input(8000),
            )
            .unwrap()
        };
        let combined = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            let cfg = PipelineConfig::default().with_combine(true);
            run_job(&mut cl, &TestJob::with(cfg), input(8000)).unwrap()
        };
        assert_eq!(counts(&plain), counts(&combined));
        // Combine collapses the shuffle to at most (keys x ranks) pairs.
        assert!(combined.timings.pairs_shuffled <= 16 * 4);
        assert_eq!(plain.timings.pairs_shuffled, 8000);
    }

    #[test]
    fn partition_none_routes_everything_to_rank_zero() {
        let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
        let cfg = PipelineConfig::default().with_partition(PartitionMode::None);
        let result = run_job(&mut cl, &TestJob::with(cfg), input(4000)).unwrap();
        assert!(!result.outputs[0].is_empty());
        assert!(result.outputs[1..].iter().all(KvSet::is_empty));
        assert_eq!(counts(&result).iter().sum::<u32>(), 4000);
    }

    #[test]
    fn map_only_jobs_skip_sort_and_reduce() {
        let mut cl = Cluster::accelerator(2, GpuSpec::gt200());
        let cfg = PipelineConfig::default().map_only();
        let result = run_job(&mut cl, &TestJob::with(cfg), input(2000)).unwrap();
        // Raw pairs, not reduced: one pair per input element.
        assert_eq!(result.merged_output().len(), 2000);
        for st in &result.timings.per_rank {
            assert_eq!(st.sort.as_secs(), 0.0);
            assert_eq!(st.reduce.as_secs(), 0.0);
        }
    }

    #[test]
    fn bitonic_sorter_path_matches_radix_path() {
        let radix = {
            let mut cl = Cluster::accelerator(3, GpuSpec::gt200());
            run_job(
                &mut cl,
                &TestJob::with(PipelineConfig::default()),
                input(5000),
            )
            .unwrap()
        };
        let bitonic = {
            let mut cl = Cluster::accelerator(3, GpuSpec::gt200());
            let cfg = PipelineConfig::default().with_sort(SortMode::Bitonic);
            run_job(&mut cl, &TestJob::with(cfg), input(5000)).unwrap()
        };
        assert_eq!(counts(&radix), counts(&bitonic));
    }

    #[test]
    fn out_of_core_sort_charges_extra_pcie_passes() {
        // A device too small to hold the incoming pairs twice must stream
        // them in and out for external sort passes.
        let small = GpuSpec::gt200().with_mem_capacity(48 * 1024);
        let large = GpuSpec::gt200();
        let run_with = |spec: GpuSpec| {
            let mut cl = Cluster::new(gpmr_sim_net::Topology::new(1, 1, 1), spec);
            let r = run_job(
                &mut cl,
                &TestJob::with(PipelineConfig::default()),
                input(4000),
            )
            .unwrap();
            let stats = cl.gpu(0).stats();
            (r, stats.h2d_bytes)
        };
        let (r_small, h2d_small) = run_with(small);
        let (r_large, h2d_large) = run_with(large);
        assert_eq!(counts(&r_small), counts(&r_large));
        assert!(
            h2d_small > h2d_large,
            "small device should re-upload for external passes ({h2d_small} vs {h2d_large})"
        );
        assert!(r_small.total_time().as_secs() > r_large.total_time().as_secs());
    }

    #[test]
    fn single_rank_cluster_runs_every_pipeline() {
        for cfg in [
            PipelineConfig::default(),
            PipelineConfig::default().with_combine(true),
            PipelineConfig::default().with_partition(PartitionMode::None),
            PipelineConfig::default().map_only(),
        ] {
            let mut cl = Cluster::accelerator(1, GpuSpec::gt200());
            let result = run_job(&mut cl, &TestJob::with(cfg.clone()), input(3000)).unwrap();
            let total: u32 = result.merged_output().vals.iter().sum();
            assert_eq!(total, 3000, "{cfg:?}");
        }
    }

    #[test]
    fn elastic_add_is_output_invariant_and_steals_work() {
        // Reference: the initial four-GPU cluster, no fault plan. 20
        // chunks land 5 per rank, deep enough for profitable steals.
        let base = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            run_job(
                &mut cl,
                &TestJob::with(PipelineConfig::default()),
                input(10_000),
            )
            .unwrap()
        };
        // Elastic run: a fifth GPU joins almost immediately. It is not a
        // reducer and owns no initial queue, so the shuffle destinations —
        // and the per-rank outputs — match the four-GPU run exactly; the
        // new GPU contributes by stealing map work.
        let mut cl = Cluster::accelerator(5, GpuSpec::gt200());
        cl.set_fault_plan(Some(FaultPlan::new().add(4, 1e-4)));
        let elastic = run_job(
            &mut cl,
            &TestJob::with(PipelineConfig::default()),
            input(10_000),
        )
        .unwrap();
        assert_eq!(elastic.timings.gpus_added, 1);
        assert_eq!(&elastic.outputs[..4], &base.outputs[..]);
        assert!(elastic.outputs[4].is_empty(), "added rank is not a reducer");
        assert!(
            elastic.timings.chunks_per_rank[4] >= 1,
            "the added GPU must steal map work: {:?}",
            elastic.timings.chunks_per_rank
        );
        assert_eq!(counts(&elastic), counts(&base));
    }

    #[test]
    fn adding_every_rank_or_an_unknown_rank_is_rejected() {
        let run_with = |plan: FaultPlan| {
            let mut cl = Cluster::accelerator(2, GpuSpec::gt200());
            cl.set_fault_plan(Some(plan));
            run_job(
                &mut cl,
                &TestJob::with(PipelineConfig::default()),
                input(1000),
            )
        };
        let err = run_with(FaultPlan::new().add(7, 1e-4)).unwrap_err();
        assert!(matches!(err, EngineError::InvalidPipeline(_)), "{err}");
        let err = run_with(FaultPlan::new().add(0, 1e-4).add(1, 2e-4)).unwrap_err();
        assert!(matches!(err, EngineError::InvalidPipeline(_)), "{err}");
    }

    #[test]
    fn journaled_run_matches_plain_and_replays_verbatim() {
        use crate::journal::JournalError;

        let dir = std::env::temp_dir().join("gpmr_engine_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.gpj");
        let job = TestJob::with(PipelineConfig::default());
        let tuning = EngineTuning::default();
        let tel = Telemetry::disabled();

        let plain = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            run_job(&mut cl, &job, input(8000)).unwrap()
        };

        // A journaled run pays no simulated time: outputs AND timings
        // match the plain engine bit for bit.
        let mut journal = Journal::create(&path, 1).unwrap();
        let first = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            run_job_journaled(&mut cl, &job, input(8000), &tuning, &tel, &mut journal).unwrap()
        };
        let written = journal.appended();
        drop(journal);
        assert_eq!(first.outputs, plain.outputs);
        assert_eq!(first.timings, plain.timings);

        let bytes = std::fs::read(&path).unwrap();
        let (records, _) = crate::journal::scan_bytes(&bytes);
        assert_eq!(records.len() as u64, written);
        assert!(matches!(
            records.first(),
            Some(JournalRecord::JobStart { .. })
        ));
        assert!(matches!(records.last(), Some(JournalRecord::JobEnd { .. })));

        // Resume over the complete journal: a pure verified replay that
        // appends nothing and leaves the file byte-identical.
        let mut journal = Journal::resume(&path, 1).unwrap();
        let second = {
            let mut cl = Cluster::accelerator(4, GpuSpec::gt200());
            run_job_journaled(&mut cl, &job, input(8000), &tuning, &tel, &mut journal).unwrap()
        };
        assert_eq!(journal.replayed(), records.len() as u64);
        assert_eq!(journal.appended(), 0);
        drop(journal);
        assert_eq!(second.outputs, first.outputs);
        assert_eq!(second.timings, first.timings);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);

        // A different job shape diverges on the fingerprint record instead
        // of silently replaying someone else's journal.
        let mut journal = Journal::resume(&path, 1).unwrap();
        let err = {
            let mut cl = Cluster::accelerator(2, GpuSpec::gt200());
            run_job_journaled(&mut cl, &job, input(8000), &tuning, &tel, &mut journal).unwrap_err()
        };
        assert!(
            matches!(
                err,
                EngineError::Journal(JournalError::Diverged { index: 0, .. })
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
