//! Chunks: the unit of scheduling, streaming, and load balancing.
//!
//! GPMR batches many map items into a chunk and streams chunks through the
//! GPU (paper §3). Chunks must report their transfer size (PCI-e cost) and
//! be serializable, because the dynamic scheduler migrates chunks between
//! processes when queues run dry (paper §4.1).

use crate::pod::{read_slice, write_slice, Pod};

/// A batch of map input items.
pub trait Chunk: Send + Sync + 'static {
    /// Number of map items in the chunk.
    fn item_count(&self) -> usize;
    /// Bytes transferred when the chunk is uploaded to a GPU or migrated
    /// to another node.
    fn size_bytes(&self) -> u64;
    /// Serialize for migration between processes.
    fn serialize(&self) -> Vec<u8>;
    /// Reconstruct from [`Chunk::serialize`] output.
    fn deserialize(bytes: &[u8]) -> Self
    where
        Self: Sized;
}

/// The workhorse chunk: a tightly-packed array of POD items, as used by
/// SIO (integers), KMC/LR (points), and WO (text bytes).
#[derive(Clone, Debug, PartialEq)]
pub struct SliceChunk<T> {
    /// Identifier of this chunk within its job (stable across migration).
    pub id: u32,
    /// Offset of the first item within the whole dataset.
    pub global_offset: u64,
    /// The packed items.
    pub items: Vec<T>,
}

impl<T: Pod> SliceChunk<T> {
    /// Create a chunk.
    pub fn new(id: u32, global_offset: u64, items: Vec<T>) -> Self {
        SliceChunk {
            id,
            global_offset,
            items,
        }
    }

    /// Split `data` into chunks of at most `chunk_items` items.
    pub fn split(data: &[T], chunk_items: usize) -> Vec<Self> {
        let chunk_items = chunk_items.max(1);
        data.chunks(chunk_items)
            .enumerate()
            .map(|(i, c)| SliceChunk {
                id: i as u32,
                global_offset: (i * chunk_items) as u64,
                items: c.to_vec(),
            })
            .collect()
    }
}

impl<T: Pod> Chunk for SliceChunk<T> {
    fn item_count(&self) -> usize {
        self.items.len()
    }

    fn size_bytes(&self) -> u64 {
        (self.items.len() * T::SIZE) as u64
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.items.len() * T::SIZE);
        self.id.write_le(&mut out);
        self.global_offset.write_le(&mut out);
        write_slice(&self.items, &mut out);
        out
    }

    fn deserialize(bytes: &[u8]) -> Self {
        let id = u32::read_le(bytes);
        let global_offset = u64::read_le(&bytes[4..]);
        let (items, _) = read_slice(&bytes[12..]);
        SliceChunk {
            id,
            global_offset,
            items,
        }
    }
}

/// A chunk of key-value pairs: the round driver's chained-input type. A
/// round's per-rank reduce output becomes the next round's map input
/// without a host-side re-encode — the pairs stay pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct PairChunk<K, V> {
    /// Identifier of this chunk within its job (stable across migration).
    pub id: u32,
    /// The pairs.
    pub pairs: crate::types::KvSet<K, V>,
}

impl<K: Pod + PartialEq, V: Pod> PairChunk<K, V> {
    /// Create a chunk.
    pub fn new(id: u32, pairs: crate::types::KvSet<K, V>) -> Self {
        PairChunk { id, pairs }
    }

    /// Split one pair set into chunks of at most `chunk_pairs` pairs,
    /// numbering them from `first_id`.
    pub fn split(pairs: &crate::types::KvSet<K, V>, chunk_pairs: usize, first_id: u32) -> Vec<Self>
    where
        K: Clone,
        V: Clone,
    {
        let chunk_pairs = chunk_pairs.max(1);
        pairs
            .keys
            .chunks(chunk_pairs)
            .zip(pairs.vals.chunks(chunk_pairs))
            .enumerate()
            .map(|(i, (k, v))| PairChunk {
                id: first_id + i as u32,
                pairs: crate::types::KvSet::from_parts(k.to_vec(), v.to_vec()),
            })
            .collect()
    }
}

impl<K: Pod + PartialEq, V: Pod> Chunk for PairChunk<K, V> {
    fn item_count(&self) -> usize {
        self.pairs.len()
    }

    fn size_bytes(&self) -> u64 {
        self.pairs.size_bytes()
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pairs.len() * (K::SIZE + V::SIZE));
        self.id.write_le(&mut out);
        write_slice(&self.pairs.keys, &mut out);
        write_slice(&self.pairs.vals, &mut out);
        out
    }

    fn deserialize(bytes: &[u8]) -> Self {
        let id = u32::read_le(bytes);
        let (keys, used) = read_slice(&bytes[4..]);
        let (vals, _) = read_slice(&bytes[4 + used..]);
        PairChunk {
            id,
            pairs: crate::types::KvSet::from_parts(keys, vals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_items() {
        let data: Vec<u32> = (0..1000).collect();
        let chunks = SliceChunk::split(&data, 300);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].items.len(), 100);
        assert_eq!(chunks[2].global_offset, 600);
        let total: usize = chunks.iter().map(|c| c.item_count()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn serialization_round_trips() {
        let c = SliceChunk::new(3, 900, vec![1.5f32, -2.5, 0.0]);
        let bytes = c.serialize();
        let back = SliceChunk::<f32>::deserialize(&bytes);
        assert_eq!(back, c);
        assert_eq!(c.size_bytes(), 12);
    }

    #[test]
    fn tuple_item_chunks() {
        let pts: Vec<(f32, f32)> = (0..10).map(|i| (i as f32, -(i as f32))).collect();
        let chunks = SliceChunk::split(&pts, 4);
        assert_eq!(chunks.len(), 3);
        let bytes = chunks[1].serialize();
        assert_eq!(SliceChunk::<(f32, f32)>::deserialize(&bytes), chunks[1]);
    }

    #[test]
    fn zero_sized_split_clamps() {
        let data = vec![1u8, 2, 3];
        let chunks = SliceChunk::split(&data, 0);
        assert_eq!(chunks.len(), 3);
    }

    #[test]
    fn pair_chunk_round_trips_and_splits() {
        let pairs: crate::types::KvSet<u32, f32> =
            (0..10u32).map(|i| (i, i as f32 * 0.5)).collect();
        let c = PairChunk::new(7, pairs.clone());
        assert_eq!(c.item_count(), 10);
        assert_eq!(c.size_bytes(), 80);
        let back = PairChunk::<u32, f32>::deserialize(&c.serialize());
        assert_eq!(back, c);

        let parts = PairChunk::split(&pairs, 4, 100);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].id, 100);
        assert_eq!(parts[2].id, 102);
        assert_eq!(parts[2].pairs.len(), 2);
        let total: usize = parts.iter().map(Chunk::item_count).sum();
        assert_eq!(total, 10);
    }
}
