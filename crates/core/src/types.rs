//! Key-value containers used throughout the pipeline.
//!
//! GPMR imposes no strict definition of a key (paper §4.1), but its fast
//! path — the default radix Sorter and round-robin Partitioner — requires
//! integer-based keys. The engine keeps keys and values in
//! structure-of-arrays form ([`KvSet`]) because that is how GPU-resident
//! emit spaces are laid out for coalesced access.

/// Marker for key types: cheap to copy, comparable, thread-safe.
pub trait Key: Copy + PartialEq + Send + Sync + 'static {}
impl<T: Copy + PartialEq + Send + Sync + 'static> Key for T {}

/// Marker for value types: cheap to copy, thread-safe.
pub trait Value: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Value for T {}

/// A set of key-value pairs in structure-of-arrays layout.
///
/// ```
/// use gpmr_core::KvSet;
///
/// let mut pairs: KvSet<u32, u32> = [(1, 10), (2, 20)].into_iter().collect();
/// pairs.push(3, 30);
/// assert_eq!(pairs.len(), 3);
/// assert_eq!(pairs.size_bytes(), 24);
/// assert_eq!(pairs.iter().map(|(_, v)| *v).sum::<u32>(), 60);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct KvSet<K, V> {
    /// The keys.
    pub keys: Vec<K>,
    /// The values; `vals[i]` belongs to `keys[i]`.
    pub vals: Vec<V>,
}

impl<K: Key, V: Value> Default for KvSet<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> KvSet<K, V> {
    /// An empty set.
    pub fn new() -> Self {
        KvSet {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty set with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        KvSet {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Build from parallel vectors. Panics if lengths differ.
    pub fn from_parts(keys: Vec<K>, vals: Vec<V>) -> Self {
        assert_eq!(keys.len(), vals.len(), "keys/vals length mismatch");
        KvSet { keys, vals }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Emit one pair.
    pub fn push(&mut self, key: K, val: V) {
        self.keys.push(key);
        self.vals.push(val);
    }

    /// Reserve capacity for at least `additional` more pairs.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.vals.reserve(additional);
    }

    /// Append all pairs of `other`.
    pub fn append(&mut self, mut other: KvSet<K, V>) {
        self.keys.append(&mut other.keys);
        self.vals.append(&mut other.vals);
    }

    /// Append copies of all pairs of `other`, leaving it intact.
    pub fn extend_from_set(&mut self, other: &KvSet<K, V>) {
        self.keys.extend_from_slice(&other.keys);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Size in bytes when resident or transferred.
    pub fn size_bytes(&self) -> u64 {
        (self.keys.len() * std::mem::size_of::<K>() + self.vals.len() * std::mem::size_of::<V>())
            as u64
    }

    /// Iterate `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.vals.iter())
    }
}

impl<K: Key, V: Value> FromIterator<(K, V)> for KvSet<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut set = KvSet::new();
        for (k, v) in iter {
            set.push(k, v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_append_and_iter() {
        let mut a: KvSet<u32, u64> = KvSet::new();
        a.push(1, 10);
        a.push(2, 20);
        let b: KvSet<u32, u64> = [(3u32, 30u64)].into_iter().collect();
        a.append(b);
        assert_eq!(a.len(), 3);
        let pairs: Vec<(u32, u64)> = a.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn size_bytes_counts_both_arrays() {
        let s = KvSet::from_parts(vec![1u32, 2], vec![1.0f64, 2.0]);
        assert_eq!(s.size_bytes(), 2 * 4 + 2 * 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_validates_lengths() {
        let _ = KvSet::from_parts(vec![1u32], vec![1u8, 2]);
    }

    #[test]
    fn reserve_and_extend_from_set() {
        let mut a: KvSet<u32, u32> = KvSet::new();
        a.reserve(8);
        assert!(a.keys.capacity() >= 8 && a.vals.capacity() >= 8);
        let b: KvSet<u32, u32> = [(1u32, 10u32), (2, 20)].into_iter().collect();
        a.extend_from_set(&b);
        a.extend_from_set(&b);
        assert_eq!(b.len(), 2); // untouched
        let pairs: Vec<(u32, u32)> = a.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (1, 10), (2, 20)]);
    }

    #[test]
    fn default_and_capacity() {
        let s: KvSet<u32, u32> = KvSet::default();
        assert!(s.is_empty());
        let s: KvSet<u32, u32> = KvSet::with_capacity(16);
        assert!(s.keys.capacity() >= 16);
    }
}
