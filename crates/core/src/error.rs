//! Engine error types.

use std::fmt;

use gpmr_sim_gpu::SimGpuError;
use gpmr_sim_net::TransferFault;

use crate::journal::JournalError;

/// Errors raised while running a GPMR job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A device operation failed (out of memory, bad launch, ...).
    Gpu(SimGpuError),
    /// The job's pipeline configuration is inconsistent.
    InvalidPipeline(String),
    /// A chunk cannot fit in device memory once per staging slot of the
    /// upload pipeline (`EngineTuning::pipeline_depth` buffers, plus one
    /// GPU-direct staging slot when that mode is on); re-chunk the input
    /// with a smaller chunk size or shrink the pipeline depth.
    ChunkTooLarge {
        /// The chunk's transfer size in bytes.
        bytes: u64,
        /// The device capacity in bytes.
        capacity: u64,
        /// Staging slots the chunk must fit into the capacity: the
        /// configured pipeline depth plus one when GPU-direct staging is
        /// enabled.
        slots: u64,
    },
    /// A GPU failed and no live GPU remained to take over its work. Raised
    /// only when a fault plan kills *every* rank; any plan that leaves one
    /// GPU alive recovers instead.
    GpuLost {
        /// The last rank to fail.
        rank: u32,
    },
    /// A fabric transfer kept failing past the engine's retry budget
    /// (`EngineTuning::max_transfer_retries`).
    TransferFailed {
        /// Number of attempts made (initial try plus retries).
        attempt: u32,
        /// The underlying fabric fault (source of this error).
        fault: TransferFault,
    },
    /// The write-ahead journal failed: an I/O error, or a resumed run
    /// diverging from the journal's record prefix (see
    /// [`JournalError::Diverged`]).
    Journal(JournalError),
    /// The run was stopped by its caller (`RunControl::stop_at`): service
    /// cancellation or a missed deadline. Ranks stop dequeuing at the stop
    /// instant, in-flight chunks finish at their chunk boundary, every
    /// queued chunk is drained back out of the work queues, and device
    /// memory is released. Committed plus released chunks account for the
    /// whole input (absent fault-plan kills, which may rerun chunks).
    Cancelled {
        /// Stop instant in integer nanoseconds of simulated time.
        at_ns: u64,
        /// Chunks whose map work committed before the engine stopped.
        chunks_committed: u32,
        /// Chunks drained from the work queues when the engine stopped.
        chunks_released: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Gpu(e) => write!(f, "device error: {e}"),
            EngineError::InvalidPipeline(msg) => write!(f, "invalid pipeline: {msg}"),
            EngineError::ChunkTooLarge {
                bytes,
                capacity,
                slots,
            } => write!(
                f,
                "chunk of {bytes} bytes cannot be staged {slots} times (pipeline depth plus \
                 GPU-direct staging) in {capacity} bytes of device memory"
            ),
            EngineError::GpuLost { rank } => {
                write!(
                    f,
                    "GPU on rank {rank} lost with no surviving GPU to recover onto"
                )
            }
            EngineError::TransferFailed { attempt, fault } => {
                write!(f, "transfer failed after {attempt} attempts: {fault}")
            }
            EngineError::Journal(e) => write!(f, "journal error: {e}"),
            EngineError::Cancelled {
                at_ns,
                chunks_committed,
                chunks_released,
            } => write!(
                f,
                "job cancelled at {:.6}s: {chunks_committed} chunk(s) committed, \
                 {chunks_released} released",
                *at_ns as f64 / 1e9
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gpu(e) => Some(e),
            EngineError::TransferFailed { fault, .. } => Some(fault),
            EngineError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimGpuError> for EngineError {
    fn from(e: SimGpuError) -> Self {
        EngineError::Gpu(e)
    }
}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> Self {
        EngineError::Journal(e)
    }
}

/// Convenience result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;
