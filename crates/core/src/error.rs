//! Engine error types.

use std::fmt;

use gpmr_sim_gpu::SimGpuError;

/// Errors raised while running a GPMR job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A device operation failed (out of memory, bad launch, ...).
    Gpu(SimGpuError),
    /// The job's pipeline configuration is inconsistent.
    InvalidPipeline(String),
    /// A chunk (double-buffered) cannot fit in device memory; re-chunk the
    /// input with a smaller chunk size.
    ChunkTooLarge {
        /// The chunk's transfer size in bytes.
        bytes: u64,
        /// The device capacity in bytes.
        capacity: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Gpu(e) => write!(f, "device error: {e}"),
            EngineError::InvalidPipeline(msg) => write!(f, "invalid pipeline: {msg}"),
            EngineError::ChunkTooLarge { bytes, capacity } => write!(
                f,
                "chunk of {bytes} bytes cannot be double-buffered in {capacity} bytes of device memory"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimGpuError> for EngineError {
    fn from(e: SimGpuError) -> Self {
        EngineError::Gpu(e)
    }
}

/// Convenience result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;
