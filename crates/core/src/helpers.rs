//! Engine-internal GPU helpers shared by pipeline stages.

use std::collections::HashMap;

use gpmr_primitives::{extract_segments, sort_pairs, RadixKey};
use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

use crate::types::{Key, KvSet, Value};

/// Charge the Partition kernel: read every pair, compute its bucket, and
/// write it into the per-reducer contiguous layout (one scan-and-scatter
/// pass; writes are mostly coalesced after the scan).
pub fn charge_partition<K: Key, V: Value>(gpu: &mut Gpu, at: SimTime, pairs: usize) -> SimTime {
    if pairs == 0 {
        return at;
    }
    let pair_bytes = (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64;
    let cost = KernelCost {
        flops: 3 * pairs as u64,
        bytes_coalesced: 2 * pairs as u64 * pair_bytes,
        ..KernelCost::ZERO
    };
    gpu.charge_compute(at, &cost, 1.0).end
}

/// Split pairs into per-destination buckets with `route`. Buckets for
/// every rank are returned (possibly empty), in rank order.
pub fn split_buckets<K: Key + RadixKey, V: Value>(
    pairs: KvSet<K, V>,
    ranks: u32,
    route: impl Fn(&K) -> u32,
) -> Vec<KvSet<K, V>> {
    split_buckets_bounded(pairs, ranks, route)
        .into_iter()
        .map(|(bucket, _)| bucket)
        .collect()
}

/// [`split_buckets`], additionally returning each bucket's maximum key
/// radix (0 for an empty bucket). The partition pass reads every key to
/// route it, so the bound is free — receivers use it to size their radix
/// sorts without paying a max-radix reduction.
pub fn split_buckets_bounded<K: Key + RadixKey, V: Value>(
    pairs: KvSet<K, V>,
    ranks: u32,
    route: impl Fn(&K) -> u32,
) -> Vec<(KvSet<K, V>, u64)> {
    // Counting pre-pass: route every key once to size each bucket exactly,
    // so the fill loop never reallocates.
    let mut dests: Vec<u32> = Vec::with_capacity(pairs.len());
    let mut counts = vec![0usize; ranks as usize];
    let mut bounds = vec![0u64; ranks as usize];
    for k in &pairs.keys {
        let dest = route(k).min(ranks - 1);
        counts[dest as usize] += 1;
        bounds[dest as usize] = bounds[dest as usize].max(k.radix());
        dests.push(dest);
    }
    let mut buckets: Vec<KvSet<K, V>> = counts.into_iter().map(KvSet::with_capacity).collect();
    for ((k, v), dest) in pairs.keys.into_iter().zip(pairs.vals).zip(dests) {
        buckets[dest as usize].push(k, v);
    }
    buckets.into_iter().zip(bounds).collect()
}

/// The generic Combine: group like-keyed pairs and fold each group with
/// `op`, on the GPU (sort + segment + segmented fold — the storage
/// strategy the paper describes for streaming CPU-stored pairs back down
/// to the device).
pub fn combine_pairs<K, V, F>(
    gpu: &mut Gpu,
    at: SimTime,
    pairs: KvSet<K, V>,
    op: F,
) -> SimGpuResult<(KvSet<K, V>, SimTime)>
where
    K: Key + RadixKey,
    V: Value,
    F: Fn(V, V) -> V + Sync,
{
    if pairs.is_empty() {
        return Ok((pairs, at));
    }
    let (skeys, svals, t1) = sort_pairs(gpu, at, &pairs.keys, &pairs.vals)?;
    let (segs, t2) = extract_segments(gpu, t1, &skeys)?;

    // Segmented fold: one thread per segment (paper SIO-style reducer).
    let cfg = LaunchConfig::for_items(segs.len(), 1024, 256);
    let (folded, res) = gpu.launch(t2, &cfg, |ctx| {
        let range = ctx.item_range(segs.len());
        let mut out: KvSet<K, V> = KvSet::with_capacity(range.len());
        for s in range {
            let vr = segs.range(s);
            ctx.charge_read_uncoalesced::<V>(vr.len());
            ctx.charge_flops(vr.len() as u64);
            let mut acc = svals[vr.start];
            for &v in &svals[vr.start + 1..vr.end] {
                acc = op(acc, v);
            }
            out.push(segs.keys[s], acc);
        }
        ctx.charge_write::<K>(out.len());
        ctx.charge_write::<V>(out.len());
        out
    })?;

    let mut out = KvSet::with_capacity(segs.len());
    for part in folded.outputs {
        out.append(part);
    }
    Ok((out, res.end))
}

/// CPU-reference grouping for tests: fold like-keyed values with `op`,
/// returning pairs sorted by key radix.
pub fn reference_combine<K, V, F>(pairs: &KvSet<K, V>, op: F) -> Vec<(K, V)>
where
    K: Key + RadixKey,
    V: Value,
    F: Fn(V, V) -> V,
{
    let mut map: HashMap<u64, (K, V)> = HashMap::new();
    for (k, v) in pairs.iter() {
        map.entry(k.radix())
            .and_modify(|e| e.1 = op(e.1, *v))
            .or_insert((*k, *v));
    }
    let mut out: Vec<(K, V)> = map.into_values().collect();
    out.sort_by_key(|(k, _)| k.radix());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn partition_charge_advances_time() {
        let mut g = gpu();
        let t = charge_partition::<u32, u32>(&mut g, SimTime::ZERO, 1 << 20);
        assert!(t > SimTime::ZERO);
        assert_eq!(charge_partition::<u32, u32>(&mut g, t, 0), t);
    }

    #[test]
    fn split_buckets_routes_and_preserves_pairs() {
        let pairs: KvSet<u32, u32> = (0..100u32).map(|i| (i, i * 2)).collect();
        let buckets = split_buckets(pairs, 4, |k| k % 4);
        assert_eq!(buckets.len(), 4);
        for (r, b) in buckets.iter().enumerate() {
            assert_eq!(b.len(), 25);
            assert!(b.keys.iter().all(|k| k % 4 == r as u32));
            assert!(b.iter().all(|(k, v)| *v == k * 2));
        }
    }

    #[test]
    fn split_buckets_clamps_bad_routes() {
        let pairs: KvSet<u32, u32> = [(7u32, 1u32)].into_iter().collect();
        let buckets = split_buckets(pairs, 2, |_| 99);
        assert_eq!(buckets[1].len(), 1);
    }

    #[test]
    fn combine_pairs_matches_reference() {
        let mut g = gpu();
        let pairs: KvSet<u32, u64> = (0..10_000u32).map(|i| (i % 37, 1u64)).collect();
        let expect = reference_combine(&pairs, |a, b| a + b);
        let (combined, t) = combine_pairs(&mut g, SimTime::ZERO, pairs, |a, b| a + b).unwrap();
        let mut got: Vec<(u32, u64)> = combined.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got, expect);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn combine_pairs_empty_is_free() {
        let mut g = gpu();
        let (out, t) =
            combine_pairs(&mut g, SimTime::ZERO, KvSet::<u32, u32>::new(), |a, _| a).unwrap();
        assert!(out.is_empty());
        assert_eq!(t, SimTime::ZERO);
    }
}
