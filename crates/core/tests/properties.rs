//! Property-based tests for the GPMR core: serialization, routing, and
//! pipeline-equivalence invariants on arbitrary inputs.

use gpmr_core::helpers::{combine_pairs, reference_combine, split_buckets};
use gpmr_core::{Chunk, KvSet, SliceChunk, WorkQueues};
use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slice_chunk_serialization_round_trips(
        items in prop::collection::vec(any::<u32>(), 0..2000),
        id in any::<u32>(),
        offset in any::<u64>(),
    ) {
        let c = SliceChunk::new(id, offset, items);
        let back = SliceChunk::<u32>::deserialize(&c.serialize());
        prop_assert_eq!(back, c);
    }

    #[test]
    fn float_chunk_serialization_round_trips(
        items in prop::collection::vec(any::<f64>(), 0..500),
    ) {
        let c = SliceChunk::new(1, 0, items);
        let back = SliceChunk::<f64>::deserialize(&c.serialize());
        // Bit-exact (including NaN payloads is not required; compare bits).
        prop_assert_eq!(back.items.len(), c.items.len());
        for (a, b) in back.items.iter().zip(&c.items) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_split_covers_input(
        items in prop::collection::vec(any::<u16>(), 0..3000),
        chunk_items in 1usize..500,
    ) {
        let chunks = SliceChunk::split(&items, chunk_items);
        let total: usize = chunks.iter().map(|c| c.item_count()).sum();
        prop_assert_eq!(total, items.len());
        let mut rebuilt = Vec::new();
        for c in &chunks {
            prop_assert_eq!(c.global_offset as usize, rebuilt.len());
            rebuilt.extend_from_slice(&c.items);
        }
        prop_assert_eq!(rebuilt, items);
    }

    #[test]
    fn split_buckets_is_a_partition(
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..2000),
        ranks in 1u32..32,
    ) {
        let set: KvSet<u32, u32> = pairs.iter().copied().collect();
        let buckets = split_buckets(set, ranks, |k| k % ranks);
        prop_assert_eq!(buckets.len(), ranks as usize);
        let total: usize = buckets.iter().map(KvSet::len).sum();
        prop_assert_eq!(total, pairs.len());
        for (r, b) in buckets.iter().enumerate() {
            prop_assert!(b.keys.iter().all(|k| k % ranks == r as u32));
        }
        // Every pair survives routing (multiset equality via sorting).
        let mut flat: Vec<(u32, u32)> = buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (*k, *v)))
            .collect();
        let mut orig = pairs.clone();
        flat.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(flat, orig);
    }

    #[test]
    fn combine_pairs_matches_reference(
        pairs in prop::collection::vec((0u32..100, 0u64..1000), 0..1500),
    ) {
        let set: KvSet<u32, u64> = pairs.iter().copied().collect();
        let expect = reference_combine(&set, |a, b| a + b);
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let (combined, _) = combine_pairs(&mut gpu, SimTime::ZERO, set, |a, b| a + b).unwrap();
        let mut got: Vec<(u32, u64)> = combined.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn work_queues_conserve_chunks(
        n_chunks in 0usize..200,
        ranks in 1u32..16,
        steals in 0usize..50,
    ) {
        let mut q = WorkQueues::distribute((0..n_chunks).collect(), ranks);
        let mut taken = Vec::new();
        // Interleave pops and steals arbitrarily.
        for i in 0..steals {
            let rank = (i as u32) % ranks;
            if let Some(c) = q.pop_local(rank) {
                taken.push(c);
            } else if let Some(victim) = q.steal_victim(rank) {
                taken.push(q.steal_from(victim).unwrap());
            }
        }
        // Drain everything left.
        for r in 0..ranks {
            while let Some(c) = q.pop_local(r) {
                taken.push(c);
            }
        }
        taken.sort_unstable();
        prop_assert_eq!(taken, (0..n_chunks).collect::<Vec<_>>());
    }
}
