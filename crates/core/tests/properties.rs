//! Property-based tests for the GPMR core: serialization, routing, and
//! pipeline-equivalence invariants on arbitrary inputs.

use gpmr_core::helpers::{combine_pairs, reference_combine, split_buckets};
use gpmr_core::{Chunk, KvSet, SliceChunk, WorkQueues};
use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slice_chunk_serialization_round_trips(
        items in prop::collection::vec(any::<u32>(), 0..2000),
        id in any::<u32>(),
        offset in any::<u64>(),
    ) {
        let c = SliceChunk::new(id, offset, items);
        let back = SliceChunk::<u32>::deserialize(&c.serialize());
        prop_assert_eq!(back, c);
    }

    #[test]
    fn float_chunk_serialization_round_trips(
        items in prop::collection::vec(any::<f64>(), 0..500),
    ) {
        let c = SliceChunk::new(1, 0, items);
        let back = SliceChunk::<f64>::deserialize(&c.serialize());
        // Bit-exact (including NaN payloads is not required; compare bits).
        prop_assert_eq!(back.items.len(), c.items.len());
        for (a, b) in back.items.iter().zip(&c.items) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_split_covers_input(
        items in prop::collection::vec(any::<u16>(), 0..3000),
        chunk_items in 1usize..500,
    ) {
        let chunks = SliceChunk::split(&items, chunk_items);
        let total: usize = chunks.iter().map(|c| c.item_count()).sum();
        prop_assert_eq!(total, items.len());
        let mut rebuilt = Vec::new();
        for c in &chunks {
            prop_assert_eq!(c.global_offset as usize, rebuilt.len());
            rebuilt.extend_from_slice(&c.items);
        }
        prop_assert_eq!(rebuilt, items);
    }

    #[test]
    fn split_buckets_is_a_partition(
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..2000),
        ranks in 1u32..32,
    ) {
        let set: KvSet<u32, u32> = pairs.iter().copied().collect();
        let buckets = split_buckets(set, ranks, |k| k % ranks);
        prop_assert_eq!(buckets.len(), ranks as usize);
        let total: usize = buckets.iter().map(KvSet::len).sum();
        prop_assert_eq!(total, pairs.len());
        for (r, b) in buckets.iter().enumerate() {
            prop_assert!(b.keys.iter().all(|k| k % ranks == r as u32));
        }
        // Every pair survives routing (multiset equality via sorting).
        let mut flat: Vec<(u32, u32)> = buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (*k, *v)))
            .collect();
        let mut orig = pairs.clone();
        flat.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(flat, orig);
    }

    #[test]
    fn combine_pairs_matches_reference(
        pairs in prop::collection::vec((0u32..100, 0u64..1000), 0..1500),
    ) {
        let set: KvSet<u32, u64> = pairs.iter().copied().collect();
        let expect = reference_combine(&set, |a, b| a + b);
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let (combined, _) = combine_pairs(&mut gpu, SimTime::ZERO, set, |a, b| a + b).unwrap();
        let mut got: Vec<(u32, u64)> = combined.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn work_queues_conserve_chunks(
        n_chunks in 0usize..200,
        ranks in 1u32..16,
        steals in 0usize..50,
    ) {
        let mut q = WorkQueues::distribute((0..n_chunks).collect(), ranks);
        let mut taken = Vec::new();
        // Interleave pops and steals arbitrarily.
        for i in 0..steals {
            let rank = (i as u32) % ranks;
            if let Some(c) = q.pop_local(rank) {
                taken.push(c);
            } else if let Some(victim) = q.steal_victim(rank) {
                taken.push(q.steal_from(victim).unwrap());
            }
        }
        // Drain everything left.
        for r in 0..ranks {
            while let Some(c) = q.pop_local(r) {
                taken.push(c);
            }
        }
        taken.sort_unstable();
        prop_assert_eq!(taken, (0..n_chunks).collect::<Vec<_>>());
    }
}

// Range-partitioner properties: splitter shape, routing totality, and
// the balanced-partition load guarantee (including under Zipf skew).
mod range_partitioning {
    use gpmr_core::{derive_splitters, PartitionMode};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Splitters are strictly ascending, within budget, and route
        /// every possible key (sampled or not) to a real reducer.
        #[test]
        fn splitters_monotone_and_routing_total(
            samples in prop::collection::vec(any::<u64>(), 0..3000),
            reducers in 1u32..32,
            probes in prop::collection::vec(any::<u64>(), 0..200),
        ) {
            let splitters = derive_splitters(&samples, reducers);
            prop_assert!(splitters.len() < reducers.max(1) as usize);
            prop_assert!(splitters.windows(2).all(|w| w[0] < w[1]));
            let mode = PartitionMode::Range { splitters };
            for k in samples.iter().chain(probes.iter()) {
                let band = mode.route_radix(*k, reducers).unwrap();
                prop_assert!(band < reducers.max(1));
            }
            // Routing is monotone in the key: bands partition the key
            // space into ascending contiguous ranges.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let bands: Vec<u32> = sorted
                .iter()
                .map(|k| mode.route_radix(*k, reducers).unwrap())
                .collect();
            prop_assert!(bands.windows(2).all(|w| w[0] <= w[1]));
        }

        /// The balanced-partition guarantee: no band carries more than
        /// a fair share plus one unsplittable run of sample mass.
        #[test]
        fn band_load_bounded_by_fair_share_plus_heaviest_key(
            samples in prop::collection::vec(0u64..500, 1..4000),
            reducers in 2u32..16,
        ) {
            let splitters = derive_splitters(&samples, reducers);
            let mode = PartitionMode::Range { splitters };
            let mut loads = vec![0usize; reducers as usize];
            let mut runs = std::collections::HashMap::new();
            for &k in &samples {
                loads[mode.route_radix(k, reducers).unwrap() as usize] += 1;
                *runs.entry(k).or_insert(0usize) += 1;
            }
            let max_run = runs.values().copied().max().unwrap_or(0);
            let fair = samples.len().div_ceil(reducers as usize);
            let bound = fair + max_run;
            for (b, &load) in loads.iter().enumerate() {
                prop_assert!(
                    load <= bound,
                    "band {b} carries {load} > fair {fair} + heaviest run {max_run}"
                );
            }
        }

        /// The acceptance-criteria regime: Zipf-distributed key mass over
        /// a permuted key space, 8 reducers — the sampled range partition
        /// keeps max/mean reducer load at or under 1.5.
        #[test]
        fn zipf_skew_ratio_bounded(
            s in 0.8f64..1.05,
            space in 512usize..2048,
            perm_seed in any::<u32>(),
        ) {
            const REDUCERS: u32 = 8;
            const TOTAL: usize = 20_000;
            // Zipf(s) mass over `space` ranks, each rank mapped to a
            // pseudo-random distinct key (multiplicative bijection on
            // u32), so heavy keys land anywhere in the key space.
            let h: f64 = (1..=space).map(|k| 1.0 / (k as f64).powf(s)).sum();
            let mut samples = Vec::with_capacity(TOTAL);
            for rank in 0..space {
                let p = 1.0 / ((rank + 1) as f64).powf(s) / h;
                let count = (p * TOTAL as f64).round() as usize;
                let key = (rank as u32)
                    .wrapping_mul(2_654_435_761)
                    .wrapping_add(perm_seed);
                samples.extend(std::iter::repeat_n(u64::from(key), count));
            }
            let splitters = derive_splitters(&samples, REDUCERS);
            let mode = PartitionMode::Range { splitters };
            let mut loads = vec![0u64; REDUCERS as usize];
            for &k in &samples {
                loads[mode.route_radix(k, REDUCERS).unwrap() as usize] += 1;
            }
            let max = *loads.iter().max().unwrap() as f64;
            let mean = samples.len() as f64 / f64::from(REDUCERS);
            prop_assert!(
                max / mean <= 1.5,
                "zipf(s={s:.3}, space={space}) ratio {:.3} (loads {loads:?})",
                max / mean
            );
        }
    }
}
