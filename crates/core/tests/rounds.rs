//! Determinism and recovery properties of the multi-round job driver:
//! the same drive must produce bit-identical outputs and simulated times
//! across repeated runs — for every worker count, both GPU generations,
//! under fault plans, with and without a journal — and a journaled drive
//! interrupted at *any* byte must resume to the identical result.

use gpmr_core::rounds::{RoundJob, RoundStep};
use gpmr_core::{
    run_rounds, run_rounds_journaled, EngineTuning, GpmrJob, Journal, KvSet, PipelineConfig,
    RoundsResult, SliceChunk,
};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{FaultPlan, Gpu, GpuSpec, LaunchConfig, SimGpuResult, SimTime};
use gpmr_sim_net::Cluster;
use gpmr_telemetry::Telemetry;

/// One round of the test drive: histogram `item % KEYS` with a per-round
/// salt mixed in, so every round's output depends on the control state.
#[derive(Clone)]
struct HistJob {
    salt: u32,
}

const KEYS: u32 = 64;

impl GpmrJob for HistJob {
    type Chunk = SliceChunk<u32>;
    type Key = u32;
    type Value = u32;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig::default()
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let n = chunk.items.len();
        let cfg = LaunchConfig::for_items(n, 4096, 256);
        let salt = self.salt;
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<u32>(range.len());
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for &x in &chunk.items[range.clone()] {
                out.push(x.wrapping_add(salt) % KEYS, 1);
            }
            ctx.charge_write::<u32>(2 * out.len());
            out
        })?;
        let mut pairs = KvSet::new();
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        let cfg = LaunchConfig::for_items(segs.len(), 2048, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                ctx.charge_read::<u32>(r.len());
                out.push(segs.keys[s], vals[r].iter().copied().sum());
            }
            ctx.charge_write::<u32>(2 * out.len());
            out
        })?;
        let mut pairs = KvSet::new();
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }
}

/// Drives [`HistJob`] for a fixed number of rounds, folding each round's
/// histogram into the salt (so the control trajectory depends on every
/// previous round's output — any divergence compounds and is caught).
struct HistRounds {
    rounds: u32,
    salt: u32,
}

impl RoundJob for HistRounds {
    type Job = HistJob;

    fn max_rounds(&self) -> u32 {
        self.rounds
    }

    fn job(&self, _round: u32) -> HistJob {
        HistJob { salt: self.salt }
    }

    fn control_hash(&self) -> u64 {
        u64::from(self.salt)
    }

    fn absorb(&mut self, round: u32, outputs: &[KvSet<u32, u32>]) -> RoundStep {
        let mut acc = 0u32;
        for o in outputs {
            for (k, v) in o.iter() {
                acc = acc.wrapping_mul(31).wrapping_add(k.wrapping_add(*v));
            }
        }
        self.salt = acc;
        if round + 1 >= self.rounds {
            RoundStep::done()
        } else {
            RoundStep::again(4)
        }
    }
}

fn input_chunks(n: usize) -> Vec<SliceChunk<u32>> {
    // Deterministic pseudo-random items (no RNG dependency).
    let items: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(7))
        .collect();
    SliceChunk::split(&items, 4096)
}

/// A result's identity-relevant bits: outputs verbatim plus the exact
/// clock (as bits), round count, and per-round makespans (as bits).
type Fingerprint = (Vec<Vec<(u32, u32)>>, u64, u32, Vec<u64>);

fn fingerprint(r: &RoundsResult<u32, u32>) -> Fingerprint {
    (
        r.outputs
            .iter()
            .map(|o| o.iter().map(|(k, v)| (*k, *v)).collect())
            .collect(),
        r.total_time.as_secs().to_bits(),
        r.rounds,
        r.per_round
            .iter()
            .map(|s| s.makespan.as_secs().to_bits())
            .collect(),
    )
}

fn drive(gpus: u32, spec: GpuSpec, plan: Option<FaultPlan>) -> RoundsResult<u32, u32> {
    let mut cluster = Cluster::accelerator(gpus, spec);
    cluster.set_fault_plan(plan);
    let mut driver = HistRounds { rounds: 3, salt: 1 };
    run_rounds(
        &mut cluster,
        &mut driver,
        input_chunks(60_000),
        &EngineTuning::default(),
        &Telemetry::disabled(),
    )
    .expect("drive failed")
}

#[test]
fn round_driver_is_deterministic_across_workers_backends_and_faults() {
    type SpecFn = fn() -> GpuSpec;
    let specs: [(&str, SpecFn); 2] = [("gt200", GpuSpec::gt200), ("fermi", GpuSpec::fermi)];
    for gpus in [1u32, 2, 8] {
        for (name, spec) in specs {
            // Kill one rank mid-drive where there is a rank to spare, and
            // let one join; single-GPU runs only get the fault-free case.
            let mut plans = vec![None];
            if gpus > 1 {
                plans.push(Some(FaultPlan::new().kill(gpus - 1, 2e-4)));
                plans.push(Some(FaultPlan::new().add(gpus - 1, 1e-4)));
            }
            for plan in plans {
                let a = fingerprint(&drive(gpus, spec(), plan.clone()));
                let b = fingerprint(&drive(gpus, spec(), plan.clone()));
                assert_eq!(
                    a, b,
                    "non-deterministic drive: {gpus} x {name}, plan {plan:?}"
                );
            }
        }
    }
}

#[test]
fn journaled_drive_matches_plain_drive() {
    let path = std::env::temp_dir().join("gpmr_rounds_plain_vs_journal.bin");
    let plain = fingerprint(&drive(4, GpuSpec::gt200(), None));
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let mut driver = HistRounds { rounds: 3, salt: 1 };
    let mut journal = Journal::create(&path, 1).unwrap();
    let journaled = run_rounds_journaled(
        &mut cluster,
        &mut driver,
        input_chunks(60_000),
        &EngineTuning::default(),
        &Telemetry::disabled(),
        &mut journal,
    )
    .expect("journaled drive failed");
    assert_eq!(plain, fingerprint(&journaled));
    std::fs::remove_file(&path).ok();
}

/// Interrupt a journaled multi-round drive at an arbitrary byte and
/// resume: the outcome must be bit-identical to the uninterrupted run —
/// outputs, round count, per-round makespans, and the cross-round clock.
#[test]
fn interrupted_drive_resumes_bit_identically_at_any_truncation() {
    let dir = std::env::temp_dir();
    let full_path = dir.join("gpmr_rounds_resume_full.bin");

    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let mut driver = HistRounds { rounds: 3, salt: 1 };
    let mut journal = Journal::create(&full_path, 1).unwrap();
    let reference = fingerprint(
        &run_rounds_journaled(
            &mut cluster,
            &mut driver,
            input_chunks(60_000),
            &EngineTuning::default(),
            &Telemetry::disabled(),
            &mut journal,
        )
        .expect("reference drive failed"),
    );
    drop(journal);
    let bytes = std::fs::read(&full_path).unwrap();
    assert!(bytes.len() > 64, "journal suspiciously small");

    // Cut points from almost-nothing to almost-complete, deliberately
    // *not* aligned to record boundaries: resume must trim the torn tail
    // and re-execute from the last consistent round.
    for fraction in [0.05, 0.3, 0.55, 0.8, 0.97] {
        let cut = ((bytes.len() as f64 * fraction) as usize).max(1);
        let trunc_path = dir.join(format!("gpmr_rounds_resume_{cut}.bin"));
        std::fs::write(&trunc_path, &bytes[..cut]).unwrap();

        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let mut driver = HistRounds { rounds: 3, salt: 1 };
        let mut journal = Journal::resume(&trunc_path, 1).unwrap();
        let resumed = run_rounds_journaled(
            &mut cluster,
            &mut driver,
            input_chunks(60_000),
            &EngineTuning::default(),
            &Telemetry::disabled(),
            &mut journal,
        )
        .unwrap_or_else(|e| panic!("resume at byte {cut} failed: {e}"));
        assert_eq!(
            reference,
            fingerprint(&resumed),
            "resume at byte {cut} diverged"
        );
        drop(journal);
        std::fs::remove_file(&trunc_path).ok();
    }
    std::fs::remove_file(&full_path).ok();
}
