//! Phoenix implementations of the paper's benchmarks (Table 2's CPU
//! side): the typical CPU MapReduce formulations, with costs charged to
//! the Opteron model.

use std::ops::Range;
use std::sync::Arc;

use gpmr_apps::kmc::{Point, DIMS};
use gpmr_apps::lr::{Sample, STAT_KEYS};
use gpmr_apps::mm::Matrix;
use gpmr_apps::text::Dictionary;
use gpmr_sim_gpu::SimDuration;
use gpmr_sim_net::CpuSpec;

use crate::cpu::{cpu_time, CpuCost};
use crate::phoenix::PhoenixApp;

/// Phoenix SIO: one emit per integer, sum per key.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhoenixSio;

impl PhoenixApp for PhoenixSio {
    type Item = u32;
    type Key = u32;
    type Value = u32;

    fn map_range(&self, items: &[u32], range: Range<usize>, out: &mut Vec<(u32, u32)>) -> CpuCost {
        let n = range.len();
        out.reserve(n);
        for &x in &items[range] {
            out.push((x, 1));
        }
        CpuCost {
            ops: 3 * n as u64,
            bytes: 12 * n as u64, // 4 read + 8 emitted
            ..CpuCost::ZERO
        }
    }

    fn reduce(&self, _key: u32, vals: &[u32]) -> (u32, CpuCost) {
        (
            vals.iter().sum(),
            CpuCost {
                ops: vals.len() as u64,
                bytes: 4 * vals.len() as u64,
                ..CpuCost::ZERO
            },
        )
    }
}

/// Phoenix WO: scan lines, hash each word (the CPU implementation pays
/// string hashing per byte), emit `(word_id, 1)`.
#[derive(Clone)]
pub struct PhoenixWo {
    dict: Arc<Dictionary>,
}

impl PhoenixWo {
    /// Build against a dictionary (shared with the GPMR job for output
    /// comparability).
    pub fn new(dict: Arc<Dictionary>) -> Self {
        PhoenixWo { dict }
    }
}

impl PhoenixApp for PhoenixWo {
    type Item = u8;
    type Key = u32;
    type Value = u32;

    fn map_range(&self, items: &[u8], range: Range<usize>, out: &mut Vec<(u32, u32)>) -> CpuCost {
        let sep = |b: u8| b == b' ' || b == b'\n';
        let n = range.len();
        let mut i = range.start;
        let mut words = 0u64;
        while i < range.end {
            if sep(items[i]) || (i > 0 && !sep(items[i - 1])) {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < items.len() && !sep(items[j]) {
                j += 1;
            }
            out.push((self.dict.mph.index(&items[i..j]), 1));
            words += 1;
            i = j;
        }
        CpuCost {
            ops: 3 * n as u64, // scan + hash per byte
            bytes: n as u64 + 8 * words,
            ..CpuCost::ZERO
        }
    }

    fn reduce(&self, _key: u32, vals: &[u32]) -> (u32, CpuCost) {
        (
            vals.iter().sum(),
            CpuCost {
                ops: vals.len() as u64,
                bytes: 4 * vals.len() as u64,
                ..CpuCost::ZERO
            },
        )
    }
}

/// Phoenix KMC: the typical CPU formulation — each point emits
/// `(nearest_center, [coords..., 1])`, reduce sums component-wise. The
/// per-point pair emission is what GPMR's Accumulation eliminates.
#[derive(Clone, Debug)]
pub struct PhoenixKmc {
    centers: Vec<Point>,
}

impl PhoenixKmc {
    /// Build against the iteration's centers.
    pub fn new(centers: Vec<Point>) -> Self {
        PhoenixKmc { centers }
    }
}

impl PhoenixApp for PhoenixKmc {
    type Item = Point;
    type Key = u32;
    type Value = [f64; DIMS + 1];

    fn map_range(
        &self,
        items: &[Point],
        range: Range<usize>,
        out: &mut Vec<(u32, [f64; DIMS + 1])>,
    ) -> CpuCost {
        let n = range.len();
        let k = self.centers.len();
        out.reserve(n);
        for p in &items[range] {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, center) in self.centers.iter().enumerate() {
                let mut d = 0.0f32;
                for dim in 0..DIMS {
                    let diff = p[dim] - center[dim];
                    d += diff * diff;
                }
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            let mut v = [0.0f64; DIMS + 1];
            for dim in 0..DIMS {
                v[dim] = f64::from(p[dim]);
            }
            v[DIMS] = 1.0;
            out.push((best as u32, v));
        }
        CpuCost {
            ops: (n * k * 3 * DIMS) as u64,
            bytes: (n * (16 + 44)) as u64, // point read + fat pair emitted
            ..CpuCost::ZERO
        }
    }

    fn reduce(&self, _key: u32, vals: &[[f64; DIMS + 1]]) -> ([f64; DIMS + 1], CpuCost) {
        let mut acc = [0.0f64; DIMS + 1];
        for v in vals {
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        (
            acc,
            CpuCost {
                ops: (vals.len() * (DIMS + 1)) as u64,
                bytes: (vals.len() * 40) as u64,
                ..CpuCost::ZERO
            },
        )
    }
}

/// Phoenix LR: each map task computes the six partial statistics over its
/// range and emits six pairs (Phoenix's efficient per-task formulation).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhoenixLr;

impl PhoenixApp for PhoenixLr {
    type Item = Sample;
    type Key = u32;
    type Value = f64;

    fn map_range(
        &self,
        items: &[Sample],
        range: Range<usize>,
        out: &mut Vec<(u32, f64)>,
    ) -> CpuCost {
        let n = range.len();
        let mut s = [0.0f64; STAT_KEYS];
        for &(x, y) in &items[range] {
            let (x, y) = (f64::from(x), f64::from(y));
            s[0] += 1.0;
            s[1] += x;
            s[2] += y;
            s[3] += x * x;
            s[4] += x * y;
            s[5] += y * y;
        }
        for (k, v) in s.into_iter().enumerate() {
            out.push((k as u32, v));
        }
        CpuCost {
            ops: 8 * n as u64,
            bytes: 8 * n as u64,
            ..CpuCost::ZERO
        }
    }

    fn reduce(&self, _key: u32, vals: &[f64]) -> (f64, CpuCost) {
        (
            vals.iter().sum(),
            CpuCost {
                ops: vals.len() as u64,
                bytes: 8 * vals.len() as u64,
                ..CpuCost::ZERO
            },
        )
    }
}

/// Phoenix MM: the common CPU MapReduce formulation — one vector-vector
/// product per output element, no tiling. The column accesses of B miss
/// cache on every step, which is why the paper measured Phoenix taking
/// ~20 s on a 1024x1024 multiply. The product is computed exactly; the
/// cost model charges the naive formulation.
pub fn phoenix_mm(cpu: &CpuSpec, a: &Matrix, b: &Matrix) -> (Matrix, SimDuration) {
    let n = a.n as u64;
    let c = a.multiply_reference(b);
    let cost = CpuCost {
        ops: 2 * n * n * n,
        bytes: 4 * n * n * n,        // row traversals of A
        bytes_random: 4 * n * n * n, // column traversals of B
    };
    (c, cpu_time(cpu, cpu.cores as usize, &cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phoenix::{run_phoenix, PhoenixConfig};
    use gpmr_apps::text::{generate_text, words_of};
    use gpmr_apps::{kmc, lr, sio};

    fn cfg() -> PhoenixConfig {
        PhoenixConfig {
            task_items: 4096,
            ..PhoenixConfig::default()
        }
    }

    #[test]
    fn phoenix_sio_matches_reference() {
        let data = sio::generate_integers(20_000, 1);
        let result = run_phoenix(&cfg(), &PhoenixSio, &data);
        let expect = sio::cpu_reference(&data);
        assert_eq!(result.pairs.len(), expect.len());
        for &(k, v) in &result.pairs {
            assert_eq!(v, expect[&k]);
        }
    }

    #[test]
    fn phoenix_wo_matches_reference() {
        let dict = Arc::new(Dictionary::generate(200, 3));
        let text = generate_text(&dict, 30_000, 4);
        let result = run_phoenix(&cfg(), &PhoenixWo::new(dict.clone()), &text);
        let expect = gpmr_apps::wo::cpu_reference(&dict, &text);
        let total: u64 = result.pairs.iter().map(|&(_, v)| u64::from(v)).sum();
        assert_eq!(total, words_of(&text).count() as u64);
        for &(k, v) in &result.pairs {
            assert_eq!(v, expect[k as usize], "word id {k}");
        }
    }

    #[test]
    fn phoenix_kmc_matches_reference() {
        let centers = kmc::initial_centers(8, 5);
        let points = kmc::generate_points(10_000, 8, 6);
        let result = run_phoenix(&cfg(), &PhoenixKmc::new(centers.clone()), &points);
        let expect = kmc::cpu_reference(&centers, &points);
        for &(c, v) in &result.pairs {
            let base = c as usize * (DIMS + 1);
            for dim in 0..=DIMS {
                let want = expect[base + dim];
                assert!(
                    (v[dim] - want).abs() <= 1e-6 * (1.0 + want.abs()),
                    "center {c} dim {dim}"
                );
            }
        }
    }

    #[test]
    fn phoenix_lr_matches_reference() {
        let samples = lr::generate_samples(20_000, 1.5, 2.0, 7);
        let result = run_phoenix(&cfg(), &PhoenixLr, &samples);
        let expect = lr::cpu_reference(&samples);
        assert_eq!(result.pairs.len(), STAT_KEYS);
        for &(k, v) in &result.pairs {
            let want = expect[k as usize];
            assert!((v - want).abs() <= 1e-6 * (1.0 + want.abs()), "stat {k}");
        }
    }

    #[test]
    fn phoenix_mm_is_exact_and_slow() {
        let a = Matrix::random(64, 8);
        let b = Matrix::random(64, 9);
        let cpu = CpuSpec::dual_opteron_2216();
        let (c, t) = phoenix_mm(&cpu, &a, &b);
        assert_eq!(c, a.multiply_reference(&b));
        // The naive formulation is memory-bound: 64^3 * 4 * (1 + 4) bytes
        // over the node's 3 GB/s.
        let expect = (64.0f64.powi(3) * 4.0 * 5.0) / 3.0e9;
        assert!((t.as_secs() - expect).abs() / expect < 0.5);
    }
}
