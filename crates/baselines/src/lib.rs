//! # gpmr-baselines — the comparison systems of Tables 2 and 3
//!
//! * [`phoenix`] — a Phoenix-style (Ranger et al.) multicore CPU
//!   MapReduce executor with an Opteron cost model, plus the paper's five
//!   benchmarks in their typical CPU formulations ([`phoenix_apps`]);
//! * [`mars`] — a Mars-style (He et al.) single-GPU, in-core MapReduce
//!   executor with Mars's structural handicaps (two-pass emission,
//!   one-thread-per-item, bitonic sort), plus the Table 3 benchmarks
//!   ([`mars_apps`]).
//!
//! Both executors compute real results (verified against the same CPU
//! references as the GPMR jobs) and charge their time to the same
//! simulated-hardware models, so speedup ratios are apples-to-apples.

#![warn(missing_docs)]

pub mod cpu;
pub mod mars;
pub mod mars_apps;
pub mod phoenix;
pub mod phoenix_apps;

pub use cpu::{cpu_time, CpuCost};
pub use mars::{run_mars, MarsApp, MarsError, MarsResult};
pub use mars_apps::{mars_mm, MarsKmc, MarsWo};
pub use phoenix::{run_phoenix, PhoenixApp, PhoenixConfig, PhoenixResult};
pub use phoenix_apps::{phoenix_mm, PhoenixKmc, PhoenixLr, PhoenixSio, PhoenixWo};
