//! Phoenix-style multicore CPU MapReduce (Ranger et al., HPCA 2007) —
//! the optimized CPU baseline of the paper's Table 2.
//!
//! Phoenix runs on one shared-memory node: map tasks are spread over
//! worker threads, intermediate pairs are grouped with a hash table, and
//! reduce tasks run per key. The executor here does the real computation
//! on host threads (the shared persistent worker pool, deterministic merge
//! order) while the time charged comes from the [`CpuCost`] model, so
//! Phoenix runtimes are directly comparable with the simulated GPMR
//! runtimes.

use std::collections::HashMap;
use std::ops::Range;

use gpmr_core::{Key, Value};
use gpmr_primitives::RadixKey;
use gpmr_sim_gpu::SimDuration;
use gpmr_sim_net::CpuSpec;

use crate::cpu::{cpu_time, CpuCost};

/// A Phoenix application: map over item ranges, reduce per key.
pub trait PhoenixApp: Send + Sync {
    /// Input element type.
    type Item: Copy + Send + Sync + 'static;
    /// Intermediate/output key.
    type Key: Key + RadixKey;
    /// Intermediate/output value.
    type Value: Value;

    /// One map task: process `items[range]`, emitting pairs. The range is
    /// a hint — ownership rules for boundary-spanning records (e.g. words)
    /// follow "starts in range". Returns the task's cost.
    fn map_range(
        &self,
        items: &[Self::Item],
        range: Range<usize>,
        out: &mut Vec<(Self::Key, Self::Value)>,
    ) -> CpuCost;

    /// Reduce all values of `key` to one value, with its cost.
    fn reduce(&self, key: Self::Key, vals: &[Self::Value]) -> (Self::Value, CpuCost);
}

/// Phoenix runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct PhoenixConfig {
    /// Host description (workers = cores).
    pub cpu: CpuSpec,
    /// Items per map task.
    pub task_items: usize,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            cpu: CpuSpec::dual_opteron_2216(),
            task_items: 64 * 1024,
        }
    }
}

/// Result of a Phoenix run.
#[derive(Clone, Debug)]
pub struct PhoenixResult<K, V> {
    /// Final pairs, sorted by key radix (Phoenix emits sorted output).
    pub pairs: Vec<(K, V)>,
    /// Total modelled runtime.
    pub time: SimDuration,
    /// Map-stage time.
    pub map_time: SimDuration,
    /// Group (hash partition) time.
    pub group_time: SimDuration,
    /// Reduce-stage time.
    pub reduce_time: SimDuration,
}

/// Per-worker map output: the emitted pairs plus the accumulated cost.
type MapOutput<A> = (
    Vec<(<A as PhoenixApp>::Key, <A as PhoenixApp>::Value)>,
    CpuCost,
);

/// Run a Phoenix job over `items`.
pub fn run_phoenix<A: PhoenixApp>(
    cfg: &PhoenixConfig,
    app: &A,
    items: &[A::Item],
) -> PhoenixResult<A::Key, A::Value> {
    let workers = cfg.cpu.cores.max(1) as usize;
    let task_items = cfg.task_items.max(1);
    let n_tasks = items.len().div_ceil(task_items).max(1);

    // --- Map: tasks statically striped over workers, real execution on
    // the shared persistent pool (results come back in worker order). ----
    let worker_outputs: Vec<MapOutput<A>> = gpmr_sim_gpu::pool::run_indexed(workers, |w| {
        let mut out = Vec::new();
        let mut cost = CpuCost::ZERO;
        let mut t = w;
        while t < n_tasks {
            let start = t * task_items;
            let end = ((t + 1) * task_items).min(items.len());
            if start < end {
                cost += app.map_range(items, start..end, &mut out);
            }
            t += workers;
        }
        (out, cost)
    });

    // The map stage finishes when the slowest worker's *compute* finishes
    // or when the shared memory bus has moved everyone's bytes, whichever
    // is later.
    let compute_time = worker_outputs
        .iter()
        .map(|(_, c)| {
            cpu_time(
                &cfg.cpu,
                1,
                &CpuCost {
                    ops: c.ops,
                    ..CpuCost::ZERO
                },
            )
        })
        .fold(SimDuration::ZERO, SimDuration::max);
    let total_mem = worker_outputs.iter().fold(CpuCost::ZERO, |acc, (_, c)| {
        acc + CpuCost {
            bytes: c.bytes,
            bytes_random: c.bytes_random,
            ..CpuCost::ZERO
        }
    });
    let map_time = compute_time.max(cpu_time(&cfg.cpu, workers, &total_mem));

    // --- Group: hash-partition all pairs (deterministic worker order). --
    let total_pairs: usize = worker_outputs.iter().map(|(o, _)| o.len()).sum();
    let pair_bytes = (std::mem::size_of::<A::Key>() + std::mem::size_of::<A::Value>()) as u64;
    let group_cost = CpuCost {
        ops: 12 * total_pairs as u64,
        bytes: 2 * total_pairs as u64 * pair_bytes,
        bytes_random: total_pairs as u64 * pair_bytes,
    };
    let group_time = cpu_time(&cfg.cpu, workers, &group_cost);

    let mut groups: HashMap<u64, (A::Key, Vec<A::Value>)> = HashMap::new();
    for (out, _) in &worker_outputs {
        for (k, v) in out {
            groups
                .entry(k.radix())
                .or_insert_with(|| (*k, Vec::new()))
                .1
                .push(*v);
        }
    }

    // --- Reduce: per key, order fixed by key radix. ----------------------
    let mut keys: Vec<u64> = groups.keys().copied().collect();
    keys.sort_unstable();
    let mut pairs = Vec::with_capacity(keys.len());
    let mut reduce_cost = CpuCost::ZERO;
    for kr in keys {
        let (k, vals) = &groups[&kr];
        let (v, c) = app.reduce(*k, vals);
        reduce_cost += c;
        pairs.push((*k, v));
    }
    let reduce_time = cpu_time(&cfg.cpu, workers, &reduce_cost);

    PhoenixResult {
        pairs,
        time: map_time + group_time + reduce_time,
        map_time,
        group_time,
        reduce_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountApp;
    impl PhoenixApp for CountApp {
        type Item = u32;
        type Key = u32;
        type Value = u32;
        fn map_range(
            &self,
            items: &[u32],
            range: Range<usize>,
            out: &mut Vec<(u32, u32)>,
        ) -> CpuCost {
            let n = range.len();
            for &x in &items[range] {
                out.push((x, 1));
            }
            CpuCost {
                ops: 2 * n as u64,
                bytes: 12 * n as u64,
                ..CpuCost::ZERO
            }
        }
        fn reduce(&self, _key: u32, vals: &[u32]) -> (u32, CpuCost) {
            (
                vals.iter().sum(),
                CpuCost {
                    ops: vals.len() as u64,
                    bytes: 4 * vals.len() as u64,
                    ..CpuCost::ZERO
                },
            )
        }
    }

    #[test]
    fn phoenix_counts_correctly() {
        let items: Vec<u32> = (0..10_000).map(|i| i % 13).collect();
        let cfg = PhoenixConfig {
            task_items: 1000,
            ..PhoenixConfig::default()
        };
        let result = run_phoenix(&cfg, &CountApp, &items);
        assert_eq!(result.pairs.len(), 13);
        for &(k, v) in &result.pairs {
            let expect = items.iter().filter(|&&x| x == k).count() as u32;
            assert_eq!(v, expect);
        }
        // Sorted output.
        assert!(result.pairs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(result.time.as_secs() > 0.0);
        assert!(result.map_time.as_secs() > 0.0);
    }

    #[test]
    fn phoenix_is_deterministic() {
        let items: Vec<u32> = (0..5000).map(|i| i * 7 % 101).collect();
        let cfg = PhoenixConfig::default();
        let a = run_phoenix(&cfg, &CountApp, &items);
        let b = run_phoenix(&cfg, &CountApp, &items);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn empty_input_is_near_free() {
        let result = run_phoenix(&PhoenixConfig::default(), &CountApp, &[]);
        assert!(result.pairs.is_empty());
        assert_eq!(result.time, SimDuration::ZERO);
    }

    #[test]
    fn map_time_tracks_slowest_worker() {
        // All items identical: reduce is one big group.
        let items = vec![7u32; 20_000];
        let result = run_phoenix(&PhoenixConfig::default(), &CountApp, &items);
        assert_eq!(result.pairs, vec![(7, 20_000)]);
        assert!(result.group_time.as_secs() > 0.0);
        assert!(result.reduce_time.as_secs() > 0.0);
    }
}
