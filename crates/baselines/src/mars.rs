//! Mars-style single-GPU MapReduce (He et al., PACT 2008) — the prior
//! GPU-MapReduce baseline of the paper's Table 3.
//!
//! Mars's structural handicaps relative to GPMR, all reproduced:
//!
//! * **single GPU, in-core only** — the whole input *and* the
//!   intermediate pairs must fit in device memory or the job fails;
//! * **library-scheduled threads** — strictly one thread per map item, no
//!   block-level cooperation or user-controlled scheduling;
//! * **two-pass emission** — because it cannot size outputs in advance,
//!   Mars first runs a count kernel, prefix-sums the counts, then re-runs
//!   the map to emit into exact slots (every map does its work twice);
//! * **bitonic sort** — O(n log^2 n) compare-exchanges instead of radix.

use gpmr_core::{Key, Value};
use gpmr_primitives::{bitonic_sort_pairs_by, exclusive_scan, extract_segments, RadixKey};
use gpmr_sim_gpu::{BlockCtx, Gpu, LaunchConfig, SimDuration, SimGpuError, SimTime};

/// Errors raised by the Mars executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MarsError {
    /// Input plus intermediate data exceed device memory (Mars has no
    /// out-of-core path).
    InCoreViolation {
        /// Bytes the job requires resident at once.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Underlying device error.
    Gpu(SimGpuError),
}

impl std::fmt::Display for MarsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarsError::InCoreViolation { required, capacity } => write!(
                f,
                "Mars requires {required} bytes in-core but the device has {capacity}"
            ),
            MarsError::Gpu(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for MarsError {}

impl From<SimGpuError> for MarsError {
    fn from(e: SimGpuError) -> Self {
        MarsError::Gpu(e)
    }
}

/// A Mars application: strictly one thread per item.
pub trait MarsApp: Send + Sync {
    /// Input element type.
    type Item: Copy + Send + Sync + 'static;
    /// Intermediate/output key.
    type Key: Key + RadixKey;
    /// Intermediate/output value.
    type Value: Value;

    /// Count pass: pairs this item will emit (charge reads on `ctx`).
    fn count(&self, ctx: &mut BlockCtx, items: &[Self::Item], idx: usize) -> usize;

    /// Emit pass: produce the pairs (charge the work again — Mars re-does
    /// the map — plus the scattered writes).
    fn emit(
        &self,
        ctx: &mut BlockCtx,
        items: &[Self::Item],
        idx: usize,
        out: &mut Vec<(Self::Key, Self::Value)>,
    );

    /// Reduce one key's values (one thread per key).
    fn reduce(&self, ctx: &mut BlockCtx, key: Self::Key, vals: &[Self::Value]) -> Self::Value;
}

/// Result of a Mars run.
#[derive(Clone, Debug)]
pub struct MarsResult<K, V> {
    /// Final pairs, sorted by key.
    pub pairs: Vec<(K, V)>,
    /// Total modelled runtime.
    pub time: SimDuration,
    /// Map time (count pass + scan + emit pass).
    pub map_time: SimDuration,
    /// Bitonic sort time.
    pub sort_time: SimDuration,
    /// Reduce time.
    pub reduce_time: SimDuration,
}

/// One thread per item, 256-thread blocks.
fn mars_cfg(items: usize) -> LaunchConfig {
    LaunchConfig::for_items(items, 256, 256)
}

/// Run a Mars job over `items` on a single GPU.
pub fn run_mars<A: MarsApp>(
    gpu: &mut Gpu,
    app: &A,
    items: &[A::Item],
) -> Result<MarsResult<A::Key, A::Value>, MarsError> {
    gpu.reset_clock();
    let t0 = SimTime::ZERO;
    if items.is_empty() {
        return Ok(MarsResult {
            pairs: Vec::new(),
            time: SimDuration::ZERO,
            map_time: SimDuration::ZERO,
            sort_time: SimDuration::ZERO,
            reduce_time: SimDuration::ZERO,
        });
    }

    // Upload the entire input (no chunking in Mars).
    let item_bytes = std::mem::size_of_val(items) as u64;
    let up = gpu.h2d(t0, item_bytes);
    let cfg = mars_cfg(items.len());

    // Pass 1: count emissions per item.
    let (counts_launch, r1) = gpu.launch(up.end, &cfg, |ctx| {
        let range = ctx.item_range(items.len());
        let mut counts = Vec::with_capacity(range.len());
        for i in range {
            counts.push(app.count(ctx, items, i) as u32);
        }
        counts
    })?;
    let counts: Vec<u32> = counts_launch.outputs.into_iter().flatten().collect();

    // Prefix sum of counts to get emit offsets.
    let (_, total_pairs, t_scan) = exclusive_scan(gpu, r1.end, &counts)?;
    let total_pairs = total_pairs as u64;

    // Mars's in-core requirement: input + pairs + the sort's double
    // buffer must be simultaneously resident.
    let pair_bytes = (std::mem::size_of::<A::Key>() + std::mem::size_of::<A::Value>()) as u64;
    let required = item_bytes + 2 * total_pairs * pair_bytes;
    let capacity = gpu.mem.capacity();
    if required > capacity {
        return Err(MarsError::InCoreViolation { required, capacity });
    }

    // Pass 2: emit into pre-sized slots.
    let (emits, r2) = gpu.launch(t_scan, &cfg, |ctx| {
        let range = ctx.item_range(items.len());
        let mut out = Vec::new();
        for i in range {
            app.emit(ctx, items, i, &mut out);
        }
        // Mars writes through its key/value directory: scattered.
        ctx.charge_write_uncoalesced::<u8>(out.len() * pair_bytes as usize);
        out
    })?;
    let mut keys = Vec::with_capacity(total_pairs as usize);
    let mut vals = Vec::with_capacity(total_pairs as usize);
    for block in emits.outputs {
        for (k, v) in block {
            keys.push(k);
            vals.push(v);
        }
    }
    let map_time = r2.end.since(t0);

    // Bitonic sort (Mars's sorter).
    let (skeys, svals, t_sorted) =
        bitonic_sort_pairs_by(gpu, r2.end, &keys, &vals, |a, b| a.radix().cmp(&b.radix()))?;
    let (segs, t_segs) = extract_segments(gpu, t_sorted, &skeys)?;
    let sort_time = t_segs.since(r2.end);

    // Reduce: one thread per key.
    let rcfg = mars_cfg(segs.len().max(1));
    let (reduced, r3) = gpu.launch(t_segs, &rcfg, |ctx| {
        let range = ctx.item_range(segs.len());
        let mut out = Vec::with_capacity(range.len());
        for s in range {
            let r = segs.range(s);
            out.push((segs.keys[s], app.reduce(ctx, segs.keys[s], &svals[r])));
        }
        out
    })?;
    let mut pairs = Vec::with_capacity(segs.len());
    for block in reduced.outputs {
        pairs.extend(block);
    }
    let out_bytes = pairs.len() as u64 * pair_bytes;
    let down = gpu.d2h(r3.end, out_bytes);
    let reduce_time = down.end.since(t_segs);

    Ok(MarsResult {
        pairs,
        time: down.end.since(t0),
        map_time,
        sort_time,
        reduce_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    struct CountApp;
    impl MarsApp for CountApp {
        type Item = u32;
        type Key = u32;
        type Value = u32;
        fn count(&self, ctx: &mut BlockCtx, _items: &[u32], _idx: usize) -> usize {
            ctx.charge_read::<u32>(1);
            1
        }
        fn emit(&self, ctx: &mut BlockCtx, items: &[u32], idx: usize, out: &mut Vec<(u32, u32)>) {
            ctx.charge_read::<u32>(1);
            out.push((items[idx], 1));
        }
        fn reduce(&self, ctx: &mut BlockCtx, _key: u32, vals: &[u32]) -> u32 {
            ctx.charge_read_uncoalesced::<u32>(vals.len());
            vals.iter().sum()
        }
    }

    #[test]
    fn mars_counts_correctly() {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let items: Vec<u32> = (0..20_000).map(|i| i % 50).collect();
        let result = run_mars(&mut gpu, &CountApp, &items).unwrap();
        assert_eq!(result.pairs.len(), 50);
        for &(k, v) in &result.pairs {
            assert_eq!(v, 400, "key {k}");
        }
        assert!(result.pairs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(result.time.as_secs() > 0.0);
        assert!(result.map_time.as_secs() > 0.0);
        assert!(result.sort_time.as_secs() > 0.0);
        assert!(result.reduce_time.as_secs() > 0.0);
    }

    #[test]
    fn mars_rejects_out_of_core_jobs() {
        let mut gpu = Gpu::new(GpuSpec::gt200().with_mem_capacity(64 * 1024));
        let items: Vec<u32> = (0..10_000).collect();
        let err = run_mars(&mut gpu, &CountApp, &items).unwrap_err();
        assert!(matches!(err, MarsError::InCoreViolation { .. }));
        let msg = err.to_string();
        assert!(msg.contains("in-core"));
    }

    #[test]
    fn mars_empty_input() {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let result = run_mars(&mut gpu, &CountApp, &[]).unwrap();
        assert!(result.pairs.is_empty());
        assert_eq!(result.time, SimDuration::ZERO);
    }

    #[test]
    fn mars_is_deterministic() {
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let items: Vec<u32> = (0..5000).map(|i| i * 31 % 97).collect();
        let a = run_mars(&mut gpu, &CountApp, &items).unwrap();
        let b = run_mars(&mut gpu, &CountApp, &items).unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.time, b.time);
    }
}
