//! Mars implementations of the Table 3 benchmarks (MM, KMC, WO) — the
//! formulations Mars's one-thread-per-item model forces.

use std::sync::Arc;

use gpmr_apps::kmc::{Point, DIMS};
use gpmr_apps::mm::Matrix;
use gpmr_apps::text::Dictionary;
use gpmr_sim_gpu::{BlockCtx, Gpu, LaunchConfig, SimDuration, SimTime};

use crate::mars::{MarsApp, MarsError};

/// Mars WO: one thread per text byte; a thread that sees a word start
/// hashes the word and emits `(word_id, 1)`. No accumulation — the full
/// pair stream goes through the bitonic sort.
#[derive(Clone)]
pub struct MarsWo {
    dict: Arc<Dictionary>,
}

impl MarsWo {
    /// Build against a dictionary shared with the other implementations.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        MarsWo { dict }
    }
}

fn sep(b: u8) -> bool {
    b == b' ' || b == b'\n'
}

fn word_start(text: &[u8], i: usize) -> bool {
    !sep(text[i]) && (i == 0 || sep(text[i - 1]))
}

impl MarsApp for MarsWo {
    type Item = u8;
    type Key = u32;
    type Value = u32;

    fn count(&self, ctx: &mut BlockCtx, items: &[u8], idx: usize) -> usize {
        ctx.charge_read::<u8>(2);
        usize::from(word_start(items, idx))
    }

    fn emit(&self, ctx: &mut BlockCtx, items: &[u8], idx: usize, out: &mut Vec<(u32, u32)>) {
        if !word_start(items, idx) {
            ctx.charge_read::<u8>(2);
            return;
        }
        let mut j = idx;
        while j < items.len() && !sep(items[j]) {
            j += 1;
        }
        ctx.charge_read::<u8>(j - idx + 2);
        ctx.charge_flops((j - idx) as u64);
        out.push((self.dict.mph.index(&items[idx..j]), 1));
    }

    fn reduce(&self, ctx: &mut BlockCtx, _key: u32, vals: &[u32]) -> u32 {
        ctx.charge_read_uncoalesced::<u32>(vals.len());
        ctx.charge_flops(vals.len() as u64);
        vals.iter().sum()
    }
}

/// Mars KMC: the CPU formulation verbatim — each point emits
/// `(nearest_center, point-with-count)`, a 40+ byte pair per point, all
/// of it sorted bitonically. This is the configuration the paper beats by
/// 37x on one GPU.
#[derive(Clone, Debug)]
pub struct MarsKmc {
    centers: Vec<Point>,
}

impl MarsKmc {
    /// Build against the iteration's centers.
    pub fn new(centers: Vec<Point>) -> Self {
        MarsKmc { centers }
    }

    fn nearest(&self, p: &Point) -> u32 {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, center) in self.centers.iter().enumerate() {
            let mut d = 0.0f32;
            for dim in 0..DIMS {
                let diff = p[dim] - center[dim];
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best as u32
    }
}

impl MarsApp for MarsKmc {
    type Item = Point;
    type Key = u32;
    type Value = [f64; DIMS + 1];

    fn count(&self, ctx: &mut BlockCtx, _items: &[Point], _idx: usize) -> usize {
        // The count pass still reads the point (uncoalesced: one thread
        // loads its own 16-byte point).
        ctx.charge_read_uncoalesced::<Point>(1);
        1
    }

    fn emit(
        &self,
        ctx: &mut BlockCtx,
        items: &[Point],
        idx: usize,
        out: &mut Vec<(u32, [f64; DIMS + 1])>,
    ) {
        ctx.charge_read_uncoalesced::<Point>(1);
        ctx.charge_flops((self.centers.len() * 3 * DIMS) as u64);
        let p = &items[idx];
        let c = self.nearest(p);
        let mut v = [0.0f64; DIMS + 1];
        for dim in 0..DIMS {
            v[dim] = f64::from(p[dim]);
        }
        v[DIMS] = 1.0;
        out.push((c, v));
    }

    fn reduce(&self, ctx: &mut BlockCtx, _key: u32, vals: &[[f64; DIMS + 1]]) -> [f64; DIMS + 1] {
        ctx.charge_read_uncoalesced::<[f64; DIMS + 1]>(vals.len());
        ctx.charge_flops((vals.len() * (DIMS + 1)) as u64);
        let mut acc = [0.0f64; DIMS + 1];
        for v in vals {
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        acc
    }
}

/// Mars MM: one thread per output element computing a full vector-vector
/// product; B's column reads are uncoalesced (the paper's critique of the
/// direct CPU port). In-core only. Returns the exact product and the
/// modelled time.
pub fn mars_mm(gpu: &mut Gpu, a: &Matrix, b: &Matrix) -> Result<(Matrix, SimDuration), MarsError> {
    gpu.reset_clock();
    let n = a.n;
    let required = 3 * (n * n * 4) as u64;
    let capacity = gpu.mem.capacity();
    if required > capacity {
        return Err(MarsError::InCoreViolation { required, capacity });
    }
    let up = gpu.h2d(SimTime::ZERO, 2 * (n * n * 4) as u64);

    // One thread per element, 256-thread blocks; each row of threads
    // shares A's row (coalesced) but strides B's column (uncoalesced).
    let cfg = LaunchConfig::for_items(n * n, 256, 256);
    let a_data = &a.data;
    let b_data = &b.data;
    let (launch, res) = gpu.launch(up.end, &cfg, |ctx| {
        let range = ctx.item_range(n * n);
        // A rows are shared by a block's threads (cache/broadcast reuse
        // ~8x); B columns get partial texture-cache reuse (~2x). Without
        // any blocking this is still far more traffic than GPMR's tiles.
        ctx.charge_read::<f32>(range.len() * n / 8); // A rows, block-shared
        ctx.charge_read::<f32>(range.len() * n / 2); // B columns, texture cache
        ctx.charge_flops(2 * (range.len() * n) as u64);
        ctx.charge_write::<f32>(range.len());
        let mut out = Vec::with_capacity(range.len());
        for e in range {
            let (i, j) = (e / n, e % n);
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a_data[i * n + k] * b_data[k * n + j];
            }
            out.push(acc);
        }
        out
    })?;
    let mut c = Matrix::zeros(n);
    let mut idx = 0usize;
    for block in launch.outputs {
        for v in block {
            c.data[idx] = v;
            idx += 1;
        }
    }
    let down = gpu.d2h(res.end, (n * n * 4) as u64);
    Ok((c, down.end.since(SimTime::ZERO)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mars::run_mars;
    use gpmr_apps::text::{generate_text, words_of};
    use gpmr_apps::{kmc, wo};
    use gpmr_sim_gpu::GpuSpec;

    #[test]
    fn mars_wo_matches_reference() {
        let dict = Arc::new(Dictionary::generate(150, 21));
        let text = generate_text(&dict, 20_000, 22);
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let result = run_mars(&mut gpu, &MarsWo::new(dict.clone()), &text).unwrap();
        let expect = wo::cpu_reference(&dict, &text);
        let total: u64 = result.pairs.iter().map(|&(_, v)| u64::from(v)).sum();
        assert_eq!(total, words_of(&text).count() as u64);
        for &(k, v) in &result.pairs {
            assert_eq!(v, expect[k as usize]);
        }
    }

    #[test]
    fn mars_kmc_matches_reference() {
        let centers = kmc::initial_centers(8, 23);
        let points = kmc::generate_points(10_000, 8, 24);
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let result = run_mars(&mut gpu, &MarsKmc::new(centers.clone()), &points).unwrap();
        let expect = kmc::cpu_reference(&centers, &points);
        for &(c, v) in &result.pairs {
            let base = c as usize * (DIMS + 1);
            for dim in 0..=DIMS {
                let want = expect[base + dim];
                assert!(
                    (v[dim] - want).abs() <= 1e-6 * (1.0 + want.abs()),
                    "center {c} dim {dim}: {} vs {want}",
                    v[dim]
                );
            }
        }
    }

    #[test]
    fn mars_mm_is_exact() {
        let a = Matrix::random(64, 31);
        let b = Matrix::random(64, 32);
        let mut gpu = Gpu::new(GpuSpec::gt200());
        let (c, t) = mars_mm(&mut gpu, &a, &b).unwrap();
        let expect = a.multiply_reference(&b);
        for (x, y) in c.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-3);
        }
        assert!(t.as_secs() > 0.0);
    }

    #[test]
    fn mars_mm_respects_in_core_limit() {
        let a = Matrix::random(128, 33);
        let b = Matrix::random(128, 34);
        let mut gpu = Gpu::new(GpuSpec::gt200().with_mem_capacity(64 * 1024));
        assert!(matches!(
            mars_mm(&mut gpu, &a, &b),
            Err(MarsError::InCoreViolation { .. })
        ));
    }
}
