//! CPU cost accounting for the Phoenix-style baseline.
//!
//! Same philosophy as the GPU side: computation is executed for real on
//! host threads; *time* comes from an analytic model over operation and
//! byte counts, so Phoenix and GPMR times are directly comparable
//! (Table 2).

use gpmr_sim_gpu::SimDuration;
use gpmr_sim_net::CpuSpec;

/// Work performed by a CPU stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuCost {
    /// Scalar operations.
    pub ops: u64,
    /// Bytes moved through the memory hierarchy (sequential).
    pub bytes: u64,
    /// Bytes moved by cache-unfriendly access patterns (charged with a
    /// miss penalty).
    pub bytes_random: u64,
}

impl CpuCost {
    /// Zero cost.
    pub const ZERO: CpuCost = CpuCost {
        ops: 0,
        bytes: 0,
        bytes_random: 0,
    };
}

impl std::ops::Add for CpuCost {
    type Output = CpuCost;

    /// Component-wise sum.
    fn add(self, other: CpuCost) -> CpuCost {
        CpuCost {
            ops: self.ops + other.ops,
            bytes: self.bytes + other.bytes,
            bytes_random: self.bytes_random + other.bytes_random,
        }
    }
}

impl std::ops::AddAssign for CpuCost {
    fn add_assign(&mut self, rhs: CpuCost) {
        *self = *self + rhs;
    }
}

/// Penalty multiplier for random (cache-missing) byte traffic.
pub const RANDOM_ACCESS_PENALTY: f64 = 4.0;

/// Time for `cost` executed by `workers` threads on `cpu`: compute scales
/// with cores, memory bandwidth is shared.
pub fn cpu_time(cpu: &CpuSpec, workers: usize, cost: &CpuCost) -> SimDuration {
    let w = workers.clamp(1, cpu.cores as usize) as f64;
    let compute = cost.ops as f64 / (cpu.peak_ops() / cpu.cores as f64 * w);
    let mem =
        (cost.bytes as f64 + cost.bytes_random as f64 * RANDOM_ACCESS_PENALTY) / cpu.mem_bandwidth;
    SimDuration::from_secs(compute.max(mem))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_scales_with_workers() {
        let cpu = CpuSpec::dual_opteron_2216();
        let cost = CpuCost {
            ops: 1 << 32,
            ..CpuCost::ZERO
        };
        let t1 = cpu_time(&cpu, 1, &cost).as_secs();
        let t4 = cpu_time(&cpu, 4, &cost).as_secs();
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
        // More workers than cores gains nothing.
        let t8 = cpu_time(&cpu, 8, &cost).as_secs();
        assert_eq!(t4, t8);
    }

    #[test]
    fn memory_bandwidth_is_shared() {
        let cpu = CpuSpec::dual_opteron_2216();
        let cost = CpuCost {
            bytes: 3_000_000_000,
            ..CpuCost::ZERO
        };
        let t1 = cpu_time(&cpu, 1, &cost).as_secs();
        let t4 = cpu_time(&cpu, 4, &cost).as_secs();
        assert!((t1 - 1.0).abs() < 1e-9);
        assert_eq!(t1, t4);
    }

    #[test]
    fn random_bytes_cost_more() {
        let cpu = CpuSpec::dual_opteron_2216();
        let seq = CpuCost {
            bytes: 1 << 30,
            ..CpuCost::ZERO
        };
        let rnd = CpuCost {
            bytes_random: 1 << 30,
            ..CpuCost::ZERO
        };
        assert!(cpu_time(&cpu, 4, &rnd).as_secs() > cpu_time(&cpu, 4, &seq).as_secs() * 3.0);
    }

    #[test]
    fn costs_sum() {
        let mut a = CpuCost {
            ops: 1,
            bytes: 2,
            bytes_random: 3,
        };
        a += a;
        assert_eq!(
            a,
            CpuCost {
                ops: 2,
                bytes: 4,
                bytes_random: 6
            }
        );
    }
}
