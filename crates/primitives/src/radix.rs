//! GPU radix sort, after Satish/Harris/Garland — the CUDPP sort GPMR uses
//! as its default Sorter for integer-based keys.
//!
//! Least-significant-digit counting sort over configurable-width digits
//! (default 11 bits, so 32-bit keys take 3 passes instead of 4 — the
//! wide-digit trick from the Xeon Phi MapReduce work). Each pass runs two
//! kernels (per-block digit histograms, then a stable scatter) plus a
//! digit-major scan of the histogram matrix; the final pass can instead
//! run as one fused histogram+scatter kernel that keeps its histogram in
//! shared memory and skips the separate global-memory histogram read and
//! scan launch. The scatter's writes are inherently uncoalesced and are
//! charged as such — this is why Sort is a visible slice of the paper's
//! Figure 2 runtime breakdown.

use std::sync::Mutex;

use gpmr_sim_gpu::{
    occupancy, run_indexed, worker_threads, Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime,
};

use crate::elem::RadixKey;

/// Items processed per sort block.
pub const SORT_ITEMS_PER_BLOCK: usize = 4096;

/// Sort tuning knobs (digit width and final-pass fusion). The defaults are
/// the fast path; [`SortConfig::reference()`] is the classic 8-bit
/// two-kernel CUDPP layout kept as the bit-identical baseline for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortConfig {
    /// Bits per counting-sort pass. Wider digits mean fewer passes but a
    /// bigger shared-memory histogram (`4 << digit_bits` bytes, which must
    /// fit in the device's per-SM shared memory). Clamped to 1..=12.
    pub digit_bits: u32,
    /// Run the last pass as a single fused histogram+scatter kernel: the
    /// histogram lives in shared memory, so the pass reads the pairs from
    /// global memory once and skips the standalone scan launch.
    pub fuse_final: bool,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            digit_bits: 11,
            fuse_final: true,
        }
    }
}

impl SortConfig {
    /// The pre-optimization CUDPP layout: 8-bit digits, no fusion. Every
    /// other configuration must produce bit-identical output to this one.
    pub fn reference() -> Self {
        SortConfig {
            digit_bits: 8,
            fuse_final: false,
        }
    }

    /// Config from the environment: `GPMR_SORT_DIGIT_BITS` (1..=12) and
    /// `GPMR_SORT_FUSE` (`0` disables final-pass fusion). Unset variables
    /// keep the defaults.
    pub fn from_env() -> Self {
        let mut cfg = SortConfig::default();
        if let Some(bits) = std::env::var("GPMR_SORT_DIGIT_BITS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            cfg.digit_bits = bits;
        }
        if let Ok(v) = std::env::var("GPMR_SORT_FUSE") {
            cfg.fuse_final = v != "0";
        }
        cfg.normalized()
    }

    /// Clamp the digit width to what the histogram's shared-memory
    /// footprint allows.
    pub fn normalized(mut self) -> Self {
        self.digit_bits = self.digit_bits.clamp(1, 12);
        self
    }

    fn digits(&self) -> usize {
        1usize << self.digit_bits
    }
}

/// Sort `keys` ascending, carrying `vals` along, auto-detecting the number
/// of significant key bits (one reduction pass, like CUDPP's bit-range
/// optimization). Stable. Returns sorted keys, reordered values, and the
/// completion time.
///
/// ```
/// use gpmr_primitives::sort_pairs;
/// use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
///
/// let mut gpu = Gpu::new(GpuSpec::gt200());
/// let keys = vec![9u32, 1, 5, 1];
/// let vals = vec![90u32, 10, 50, 11];
/// let (k, v, t) = sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap();
/// assert_eq!(k, vec![1, 1, 5, 9]);
/// assert_eq!(v, vec![10, 11, 50, 90]); // stable
/// assert!(t > SimTime::ZERO); // the sort cost simulated device time
/// ```
pub fn sort_pairs<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    sort_pairs_config(gpu, at, keys, vals, &SortConfig::default())
}

/// [`sort_pairs`] with explicit [`SortConfig`] tuning.
pub fn sort_pairs_config<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    cfg: &SortConfig,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    if keys.len() > 1 && serial_host(gpu, keys.len()) {
        // Serial fast path: charge the max-reduction kernels as usual but
        // fold the host-side max into the pass-0 histogram sweep the sort
        // needs anyway — one read of the keys instead of two.
        let cfg = cfg.normalized();
        let t = charge_max_radix(gpu, at, keys)?;
        let hbits = host_digit_bits(keys.len(), &cfg);
        let mask = (1u64 << hbits) - 1;
        let mut hist = vec![0usize; 1 << hbits];
        let mut max = 0u64;
        for k in keys {
            let r = k.radix();
            max = max.max(r);
            hist[(r & mask) as usize] += 1;
        }
        return serial_sort(gpu, t, keys, vals, bits_for_radix(max), &cfg, hist);
    }
    // Find the maximum radix to bound the number of passes.
    let (max_radix, t) = max_radix(gpu, at, keys)?;
    sort_pairs_with_bits_config(gpu, t, keys, vals, bits_for_radix(max_radix), cfg)
}

/// Significant bits needed to represent `max_radix` (at least 1).
pub fn bits_for_radix(max_radix: u64) -> u32 {
    if max_radix == 0 {
        1
    } else {
        64 - max_radix.leading_zeros()
    }
}

/// Sort with an explicit significant-bit count (use when the caller knows
/// the key range, e.g. a partitioner that already bounded keys). Skips the
/// max-radix reduction pass that [`sort_pairs`] pays.
pub fn sort_pairs_with_bits<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    significant_bits: u32,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    sort_pairs_with_bits_config(
        gpu,
        at,
        keys,
        vals,
        significant_bits,
        &SortConfig::default(),
    )
}

/// [`sort_pairs_with_bits`] with explicit [`SortConfig`] tuning.
pub fn sort_pairs_with_bits_config<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    significant_bits: u32,
    cfg: &SortConfig,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    assert_eq!(
        keys.len(),
        vals.len(),
        "keys and values must have equal length"
    );
    if keys.len() <= 1 {
        return Ok((keys.to_vec(), vals.to_vec(), at));
    }
    let cfg = cfg.normalized();
    let passes = significant_bits.clamp(1, K::BITS).div_ceil(cfg.digit_bits);

    if serial_host(gpu, keys.len()) {
        let hbits = host_digit_bits(keys.len(), &cfg);
        let mask = (1u64 << hbits) - 1;
        let mut hist = vec![0usize; 1 << hbits];
        for k in keys {
            hist[(k.radix() & mask) as usize] += 1;
        }
        return serial_sort(gpu, at, keys, vals, significant_bits, &cfg, hist);
    }

    // Ping-pong between two packed pair buffers: pass 0 reads the borrowed
    // key/value slices directly, later passes read the previous pass's
    // output. Packing each pair into one element means a scatter touches
    // one cache line per pair instead of two (one per array) — the
    // dominant cost of an LSD sort on the host side.
    let mut a: Vec<(K, V)> = Vec::new();
    let mut b: Vec<(K, V)> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut t = at;

    for pass in 0..passes {
        let shift = pass * cfg.digit_bits;
        let fused = cfg.fuse_final && pass + 1 == passes;
        t = if pass == 0 {
            let src = SplitSrc { keys, vals };
            one_pass_into(gpu, t, &src, shift, &cfg, fused, &mut a, &mut offsets)?
        } else if pass % 2 == 1 {
            one_pass_into(
                gpu,
                t,
                a.as_slice(),
                shift,
                &cfg,
                fused,
                &mut b,
                &mut offsets,
            )?
        } else {
            one_pass_into(
                gpu,
                t,
                b.as_slice(),
                shift,
                &cfg,
                fused,
                &mut a,
                &mut offsets,
            )?
        };
    }
    let out = if passes % 2 == 1 { a } else { b };
    let mut ks = Vec::with_capacity(out.len());
    let mut vs = Vec::with_capacity(out.len());
    for (k, v) in out {
        ks.push(k);
        vs.push(v);
    }
    Ok((ks, vs, t))
}

/// Whole-sort serial fast path: one histogram read of the input up front,
/// then one combined scatter-plus-next-histogram sweep per digit — the
/// next pass's counts fall out of the keys the scatter is already
/// touching, and the final pass scatters straight into the split output
/// vectors, so no standalone histogram or unzip passes remain. Charges
/// exactly the per-pass kernels the worker-pool path charges, and the
/// stable output is unique, so simulated time, kernel counts, and results
/// are all bit-identical to it.
fn serial_sort<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    bits: u32,
    cfg: &SortConfig,
    // Digit counts of the host's pass 0 (shift 0, [`host_digit_bits`]
    // wide), computed by the caller so it can fold other per-key work
    // (e.g. the max reduction) into the same sweep; later passes inherit
    // `next` from the previous scatter.
    mut hist: Vec<usize>,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    let n = keys.len();
    let digits = cfg.digits();
    let pair_bytes = std::mem::size_of::<K>() + std::mem::size_of::<V>();
    let launch_cfg = LaunchConfig::for_items(n, SORT_ITEMS_PER_BLOCK, 256)
        .with_shared_bytes((digits * 4) as u32);
    let blocks = n.div_ceil(SORT_ITEMS_PER_BLOCK);

    // Simulated kernels: exactly the configured plan (`cfg.digit_bits`-wide
    // passes, optionally a fused final) that `one_pass_into` charges, with
    // charge-only launch closures — how the host reproduces the output is
    // its own business (below).
    let sim_passes = bits.clamp(1, K::BITS).div_ceil(cfg.digit_bits);
    let mut t = at;
    for pass in 0..sim_passes {
        let fused = cfg.fuse_final && pass + 1 == sim_passes;
        t = if fused {
            let cost = KernelCost {
                flops: 5 * n as u64 + (digits * blocks) as u64,
                bytes_coalesced: (n * pair_bytes) as u64,
                bytes_uncoalesced: (n * pair_bytes) as u64,
                ..KernelCost::ZERO
            };
            let occ = occupancy(&gpu.spec, &launch_cfg).fraction;
            gpu.charge_compute(t, &cost, occ).end
        } else {
            let (_, r1) = gpu.launch(t, &launch_cfg, |ctx| {
                let range = ctx.item_range(n);
                ctx.charge_read::<K>(range.len());
                ctx.charge_read::<V>(range.len());
                ctx.charge_flops(3 * range.len() as u64);
            })?;
            let scan_cost = KernelCost {
                flops: (digits * blocks) as u64,
                bytes_coalesced: (2 * digits * blocks * 4) as u64,
                ..KernelCost::ZERO
            };
            let r2 = gpu.charge_compute(r1.end, &scan_cost, 1.0);
            let scatter_cost = KernelCost {
                flops: 2 * n as u64,
                bytes_coalesced: (n * pair_bytes) as u64,
                bytes_uncoalesced: (n * pair_bytes) as u64,
                ..KernelCost::ZERO
            };
            gpu.charge_compute(r2.end, &scatter_cost, 1.0).end
        };
    }

    // Host sweeps, possibly on wider digits than the simulated kernels
    // (see [`host_digit_bits`]) — fewer sweeps over the data, same unique
    // stable output.
    let hbits = host_digit_bits(n, cfg);
    let hmask = (1u64 << hbits) - 1;
    let hpasses = bits.clamp(1, K::BITS).div_ceil(hbits);
    debug_assert_eq!(hist.len(), 1usize << hbits);
    let mut next = vec![0usize; 1 << hbits];
    let mut a: Vec<(K, V)> = Vec::new();
    let mut b: Vec<(K, V)> = Vec::new();
    let mut ks: Vec<K> = Vec::new();
    let mut vs: Vec<V> = Vec::new();
    for pass in 0..hpasses {
        let shift = pass * hbits;
        let last = pass + 1 == hpasses;

        // Exclusive scan turns the counts into running placement cursors
        // in place.
        let mut running = 0usize;
        for c in hist.iter_mut() {
            running += std::mem::replace(c, running);
        }
        let next_shift = shift + hbits;
        if !last {
            next.iter_mut().for_each(|c| *c = 0);
        }
        // Every scatter writes into spare capacity: the cursors are the
        // exclusive scan of exact digit counts, so each slot in 0..n is
        // written exactly once and `set_len(n)` below observes a fully
        // initialized buffer — no zero/fill pass over memory the scatter
        // is about to overwrite anyway. All element types are `Copy`.
        if pass == 0 && last {
            ks.clear();
            ks.reserve(n);
            vs.clear();
            vs.reserve(n);
            let ok = &mut ks.spare_capacity_mut()[..n];
            let ov = &mut vs.spare_capacity_mut()[..n];
            for (&k, &v) in keys.iter().zip(vals) {
                let pos = &mut hist[((k.radix() >> shift) & hmask) as usize];
                ok[*pos].write(k);
                ov[*pos].write(v);
                *pos += 1;
            }
        } else if pass == 0 {
            a.clear();
            a.reserve(n);
            let out = &mut a.spare_capacity_mut()[..n];
            for (&k, &v) in keys.iter().zip(vals) {
                let pos = &mut hist[((k.radix() >> shift) & hmask) as usize];
                out[*pos].write((k, v));
                *pos += 1;
                next[((k.radix() >> next_shift) & hmask) as usize] += 1;
            }
            // SAFETY: all n slots written exactly once (see above).
            unsafe { a.set_len(n) };
        } else {
            let (src, dst) = if pass % 2 == 1 {
                (&mut a, &mut b)
            } else {
                (&mut b, &mut a)
            };
            if last {
                ks.clear();
                ks.reserve(n);
                vs.clear();
                vs.reserve(n);
                let ok = &mut ks.spare_capacity_mut()[..n];
                let ov = &mut vs.spare_capacity_mut()[..n];
                for &(k, v) in src.iter() {
                    let pos = &mut hist[((k.radix() >> shift) & hmask) as usize];
                    ok[*pos].write(k);
                    ov[*pos].write(v);
                    *pos += 1;
                }
            } else {
                dst.clear();
                dst.reserve(n);
                let out = &mut dst.spare_capacity_mut()[..n];
                for &(k, v) in src.iter() {
                    let pos = &mut hist[((k.radix() >> shift) & hmask) as usize];
                    out[*pos].write((k, v));
                    *pos += 1;
                    next[((k.radix() >> next_shift) & hmask) as usize] += 1;
                }
                // SAFETY: all n slots written exactly once (see above).
                unsafe { dst.set_len(n) };
            }
        }
        if last {
            // SAFETY: all n slots written exactly once (see above).
            unsafe {
                ks.set_len(n);
                vs.set_len(n);
            }
        } else {
            std::mem::swap(&mut hist, &mut next);
        }
    }
    Ok((ks, vs, t))
}

/// Sort keys only (values are implicit indices nobody needs).
pub fn sort_keys<K: RadixKey>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
) -> SimGpuResult<(Vec<K>, SimTime)> {
    // Carry zero-sized values: unit type costs nothing to move.
    let vals = vec![(); keys.len()];
    let (k, _, t) = sort_pairs(gpu, at, keys, &vals)?;
    Ok((k, t))
}

/// Whether the sort's host bookkeeping should run serially: a worker pool
/// wider than the machine's real parallelism only adds queuing overhead
/// to a memory-bound scatter, so the pool path is gated on the GPU's
/// configured workers AND the cores actually present. Either path charges
/// the same simulated kernels and produces bit-identical output (the
/// stable sort result is unique).
fn serial_host(gpu: &Gpu, n: usize) -> bool {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    gpu.worker_threads.min(hw).min(8) <= 1 || n < (1 << 16)
}

/// Digit width of the serial host sweeps. Wide 16-bit digits halve the
/// sweep count for 32-bit keys once the input is big enough to amortize
/// the 64K-entry counter tables; small inputs keep the configured width.
/// Purely a host-execution choice: the simulated kernels always charge
/// the configured [`SortConfig`] plan, and the stable sort output is
/// unique, so results are bit-identical regardless of digit width.
fn host_digit_bits(n: usize, cfg: &SortConfig) -> u32 {
    if n >= (1 << 16) {
        16
    } else {
        cfg.digit_bits
    }
}

/// Charge exactly the kernels [`max_radix`] charges without the host-side
/// reduction — the serial sort folds the real max into the pass-0
/// histogram sweep it needs anyway.
fn charge_max_radix<K: RadixKey>(gpu: &mut Gpu, at: SimTime, keys: &[K]) -> SimGpuResult<SimTime> {
    if keys.is_empty() {
        return Ok(at);
    }
    let cfg = LaunchConfig::for_items(keys.len(), SORT_ITEMS_PER_BLOCK, 256);
    let (partials, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(keys.len());
        ctx.charge_read::<K>(range.len());
        ctx.charge_flops(range.len() as u64);
    })?;
    let final_cost = KernelCost {
        flops: partials.outputs.len() as u64,
        bytes_coalesced: (partials.outputs.len() * 8) as u64,
        ..KernelCost::ZERO
    };
    Ok(gpu.charge_compute(r1.end, &final_cost, 1.0).end)
}

fn max_radix<K: RadixKey>(gpu: &mut Gpu, at: SimTime, keys: &[K]) -> SimGpuResult<(u64, SimTime)> {
    if keys.is_empty() {
        return Ok((0, at));
    }
    // A dedicated max-reduction kernel: read every key once, fold per
    // block, then fold the per-block partials (same shape as a sum
    // reduction, no materialized radix array).
    let cfg = LaunchConfig::for_items(keys.len(), SORT_ITEMS_PER_BLOCK, 256);
    let (partials, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(keys.len());
        ctx.charge_read::<K>(range.len());
        ctx.charge_flops(range.len() as u64);
        keys[range].iter().map(|k| k.radix()).max().unwrap_or(0)
    })?;
    let final_cost = KernelCost {
        flops: partials.outputs.len() as u64,
        bytes_coalesced: (partials.outputs.len() * 8) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &final_cost, 1.0);
    Ok((partials.outputs.into_iter().max().unwrap_or(0), r2.end))
}

/// Pair source a sort pass reads from: the borrowed key/value slices on
/// pass 0, the packed ping-pong buffer on later passes.
trait PairSrc<K, V>: Sync {
    fn len(&self) -> usize;
    fn key(&self, i: usize) -> K;
    fn pair(&self, i: usize) -> (K, V);
}

struct SplitSrc<'a, K, V> {
    keys: &'a [K],
    vals: &'a [V],
}

impl<K: RadixKey, V: Copy + Send + Sync> PairSrc<K, V> for SplitSrc<'_, K, V> {
    fn len(&self) -> usize {
        self.keys.len()
    }
    #[inline]
    fn key(&self, i: usize) -> K {
        self.keys[i]
    }
    #[inline]
    fn pair(&self, i: usize) -> (K, V) {
        (self.keys[i], self.vals[i])
    }
}

impl<K: RadixKey, V: Copy + Send + Sync> PairSrc<K, V> for [(K, V)] {
    fn len(&self) -> usize {
        <[(K, V)]>::len(self)
    }
    #[inline]
    fn key(&self, i: usize) -> K {
        self[i].0
    }
    #[inline]
    fn pair(&self, i: usize) -> (K, V) {
        self[i]
    }
}

/// One stable counting-sort pass on a `cfg.digit_bits`-wide digit at
/// `shift`, writing the reordered pairs into `out` (buffers are reused
/// across passes). `fused` charges the single-kernel histogram+scatter
/// variant instead of the two-kernel-plus-scan layout; the data movement
/// is identical either way, so the output does not depend on it.
#[allow(clippy::too_many_arguments)]
fn one_pass_into<K, V, S>(
    gpu: &mut Gpu,
    at: SimTime,
    src: &S,
    shift: u32,
    cfg: &SortConfig,
    fused: bool,
    out: &mut Vec<(K, V)>,
    offsets: &mut Vec<usize>,
) -> SimGpuResult<SimTime>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
    S: PairSrc<K, V> + ?Sized,
{
    let n = src.len();
    let digits = cfg.digits();
    let mask = digits as u64 - 1;
    let launch_cfg = LaunchConfig::for_items(n, SORT_ITEMS_PER_BLOCK, 256)
        .with_shared_bytes((digits * 4) as u32);
    let pair_bytes = std::mem::size_of::<K>() + std::mem::size_of::<V>();
    let blocks = n.div_ceil(SORT_ITEMS_PER_BLOCK);

    let end = if fused {
        // Fused pass: one kernel builds its digit histogram in shared
        // memory, exchanges per-block digit offsets, and scatters — the
        // pairs are read from global memory once (no standalone histogram
        // read) and the separate scan launch disappears. Writes stay
        // scattered and are charged uncoalesced.
        let cost = KernelCost {
            flops: 5 * n as u64 + (digits * blocks) as u64,
            bytes_coalesced: (n * pair_bytes) as u64,
            bytes_uncoalesced: (n * pair_bytes) as u64,
            ..KernelCost::ZERO
        };
        let occ = occupancy(&gpu.spec, &launch_cfg).fraction;
        let r = gpu.charge_compute(at, &cost, occ);
        let counts = host_histogram(src, shift, mask, digits, blocks, n);
        scan_offsets(&counts, digits, offsets);
        r.end
    } else {
        // Kernel 1: per-block digit histogram. The global stable order is
        // digit-major then block-major then local order; with counts per
        // block the scatter below can place every pair directly, so no
        // per-block bucket lists are materialized.
        let (hist, r1) = gpu.launch(at, &launch_cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<K>(range.len());
            ctx.charge_read::<V>(range.len());
            ctx.charge_flops(3 * range.len() as u64); // digit extract + shared atomic
            let mut counts = vec![0usize; digits];
            for i in range {
                let d = ((src.key(i).radix() >> shift) & mask) as usize;
                counts[d] += 1;
            }
            counts
        })?;

        // Digit-major exclusive scan over the (digit x block) histogram.
        let blocks = hist.outputs.len();
        let scan_cost = KernelCost {
            flops: (digits * blocks) as u64,
            bytes_coalesced: (2 * digits * blocks * 4) as u64,
            ..KernelCost::ZERO
        };
        let r2 = gpu.charge_compute(r1.end, &scan_cost, 1.0);
        scan_offsets(&hist.outputs, digits, offsets);

        // Kernel 2 (scatter): each pair lands at its scanned offset. Writes
        // are scattered across the output — charged uncoalesced, reads
        // coalesced.
        let scatter_cost = KernelCost {
            flops: 2 * n as u64,
            bytes_coalesced: (n * pair_bytes) as u64,
            bytes_uncoalesced: (n * pair_bytes) as u64,
            ..KernelCost::ZERO
        };
        gpu.charge_compute(r2.end, &scatter_cost, 1.0).end
    };

    // A forward scan writes each pair at its block's scanned offset;
    // forward order within a block keeps the sort stable. (Placement is
    // the same data movement the kernels charged for above.) The stable
    // output is unique, so either placement strategy below produces
    // bit-identical results no matter the worker count.
    if out.len() != n {
        out.clear();
        out.resize(n, src.pair(0));
    }
    let per = n.div_ceil(blocks);
    let parts = digit_partitions(offsets, blocks, digits, n);
    if parts.len() <= 1 {
        // Serial placement collapses the (digit x block) offset table to
        // one running counter per digit — a block's pairs are visited in
        // global input order anyway, so per-block bases are redundant and
        // the counter table stays cache-resident.
        let mut ctr: Vec<usize> = (0..digits).map(|d| offsets[d * blocks]).collect();
        for i in 0..n {
            let (k, v) = src.pair(i);
            let d = ((k.radix() >> shift) & mask) as usize;
            let pos = &mut ctr[d];
            out[*pos] = (k, v);
            *pos += 1;
        }
    } else {
        // Parallel placement: the digit-major layout means each digit range
        // owns one contiguous slice of the output and of the offset table,
        // so the ranges can be carved into disjoint `&mut` regions and
        // filled on the worker pool. Every region's writes are fully
        // determined by the scanned offsets, so the result is bit-identical
        // to the serial loop no matter how tasks interleave.
        struct Region<'a, K, V> {
            d0: usize,
            d1: usize,
            base: usize,
            pairs: &'a mut [(K, V)],
            offs: &'a mut [usize],
        }
        let mut regions: Vec<Mutex<Region<'_, K, V>>> = Vec::with_capacity(parts.len());
        let mut rem_p: &mut [(K, V)] = out;
        let mut rem_o: &mut [usize] = offsets;
        let mut done_out = 0usize;
        let mut done_dig = 0usize;
        for &(d0, d1, start, end_o) in &parts {
            let (_, rest) = std::mem::take(&mut rem_p).split_at_mut(start - done_out);
            let (mine_p, rest_p) = rest.split_at_mut(end_o - start);
            rem_p = rest_p;
            let (_, rest) = std::mem::take(&mut rem_o).split_at_mut((d0 - done_dig) * blocks);
            let (mine_o, rest_o) = rest.split_at_mut((d1 - d0) * blocks);
            rem_o = rest_o;
            done_out = end_o;
            done_dig = d1;
            regions.push(Mutex::new(Region {
                d0,
                d1,
                base: start,
                pairs: mine_p,
                offs: mine_o,
            }));
        }
        run_indexed(regions.len(), |t| {
            let mut guard = regions[t].lock().unwrap();
            let reg = &mut *guard;
            for b in 0..blocks {
                let start = (b * per).min(n);
                let end_i = ((b + 1) * per).min(n);
                for i in start..end_i {
                    let d = ((src.key(i).radix() >> shift) & mask) as usize;
                    if d < reg.d0 || d >= reg.d1 {
                        continue;
                    }
                    let pos = &mut reg.offs[(d - reg.d0) * blocks + b];
                    reg.pairs[*pos - reg.base] = src.pair(i);
                    *pos += 1;
                }
            }
        });
    }
    Ok(end)
}

/// Host-side per-block digit histograms for the fused pass — the same
/// per-block counts the two-kernel path gets from its histogram kernel
/// launch. Runs on the worker pool when there is one; a single-thread
/// host just walks the input once (queueing hundreds of block tasks
/// through a one-worker pool only adds overhead).
fn host_histogram<K, V, S>(
    src: &S,
    shift: u32,
    mask: u64,
    digits: usize,
    blocks: usize,
    n: usize,
) -> Vec<Vec<usize>>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
    S: PairSrc<K, V> + ?Sized,
{
    let per = n.div_ceil(blocks);
    let block_counts = |b: usize| {
        let start = (b * per).min(n);
        let end = ((b + 1) * per).min(n);
        let mut counts = vec![0usize; digits];
        for i in start..end {
            let d = ((src.key(i).radix() >> shift) & mask) as usize;
            counts[d] += 1;
        }
        counts
    };
    if worker_threads() == 1 {
        (0..blocks).map(block_counts).collect()
    } else {
        run_indexed(blocks, block_counts)
    }
}

/// Digit-major exclusive scan of per-block counts into `offsets`
/// (indexed `d * blocks + b`): the global stable order is digit-major,
/// then block-major, then local order.
fn scan_offsets(counts: &[Vec<usize>], digits: usize, offsets: &mut Vec<usize>) {
    let blocks = counts.len();
    offsets.clear();
    offsets.resize(blocks * digits, 0);
    let mut running = 0usize;
    for d in 0..digits {
        for (b, c) in counts.iter().enumerate() {
            offsets[d * blocks + b] = running;
            running += c[d];
        }
    }
}

/// Greedily split the digit space into at most `worker_threads()` (capped
/// at 8) contiguous ranges holding roughly equal pair counts, returning
/// `(d0, d1, out_start, out_end)` per non-empty range. Small inputs stay
/// on one range (serial placement).
fn digit_partitions(
    offsets: &[usize],
    blocks: usize,
    digits: usize,
    n: usize,
) -> Vec<(usize, usize, usize, usize)> {
    let max_parts = worker_threads().min(8);
    if n < (1 << 16) || max_parts <= 1 {
        return vec![(0, digits, 0, n)];
    }
    let start = |d: usize| {
        if d == digits {
            n
        } else {
            offsets[d * blocks]
        }
    };
    let target = n.div_ceil(max_parts);
    let mut parts = Vec::with_capacity(max_parts);
    let mut d0 = 0;
    while d0 < digits {
        let mut d1 = d0 + 1;
        while d1 < digits && start(d1) - start(d0) < target {
            d1 += 1;
        }
        if start(d1) > start(d0) {
            parts.push((d0, d1, start(d0), start(d1)));
        }
        d0 = d1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed.max(1);
        (0..n)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 16) as u32
            })
            .collect()
    }

    #[test]
    fn sorts_random_u32_keys() {
        let mut g = gpu();
        let keys = pseudo_random(50_000, 42);
        let (sorted, end) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn pairs_travel_with_their_keys() {
        let mut g = gpu();
        let keys = pseudo_random(10_000, 7);
        let vals: Vec<u32> = keys.iter().map(|&k| k.wrapping_mul(3)).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        for (k, v) in sk.iter().zip(&sv) {
            assert_eq!(*v, k.wrapping_mul(3));
        }
    }

    #[test]
    fn sort_is_stable() {
        let mut g = gpu();
        // Many duplicate keys; values record original position.
        let keys: Vec<u32> = (0..20_000u32).map(|i| i % 16).collect();
        let vals: Vec<u32> = (0..20_000).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        for w in sk.windows(2).zip(sv.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "stability violated");
            }
        }
    }

    #[test]
    fn narrow_keys_use_fewer_passes() {
        let mut g = gpu();
        let keys: Vec<u32> = (0..30_000u32).map(|i| (i * 37) % 200).collect();
        let k1 = g.stats().kernels;
        let (sorted, _) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let launches_narrow = g.stats().kernels - k1;
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);

        // Full-width keys need three 11-bit passes; 8-bit keys only one.
        let wide = pseudo_random(30_000, 3);
        let k2 = g.stats().kernels;
        sort_keys(&mut g, SimTime::ZERO, &wide).unwrap();
        let launches_wide = g.stats().kernels - k2;
        assert!(launches_wide > launches_narrow);
    }

    #[test]
    fn wide_digits_cut_pass_count_and_time() {
        // 32-bit keys: 8-bit digits need 4 passes, 11-bit digits 3, and
        // the fused final pass removes two launches more. Fewer, cheaper
        // passes must show up as less simulated time.
        let keys = pseudo_random(60_000, 17);
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let mut runs = Vec::new();
        for cfg in [SortConfig::reference(), SortConfig::default()] {
            let mut g = gpu();
            let (sk, sv, t) =
                sort_pairs_with_bits_config(&mut g, SimTime::ZERO, &keys, &vals, 32, &cfg).unwrap();
            runs.push((sk, sv, t, g.stats().kernels));
        }
        let (ref_k, ref_v, ref_t, ref_kernels) = runs.remove(0);
        let (wide_k, wide_v, wide_t, wide_kernels) = runs.remove(0);
        assert_eq!(ref_k, wide_k, "output must not depend on digit width");
        assert_eq!(ref_v, wide_v, "value order must not depend on digit width");
        assert!(
            wide_kernels < ref_kernels,
            "{wide_kernels} vs {ref_kernels}"
        );
        assert!(
            wide_t < ref_t,
            "wide-digit fused sort ({wide_t}) should beat 8-bit ({ref_t})"
        );
    }

    #[test]
    fn fused_final_pass_saves_launches() {
        let keys = pseudo_random(40_000, 23);
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let cfg_plain = SortConfig {
            fuse_final: false,
            ..SortConfig::default()
        };
        let mut g1 = gpu();
        let (k1, _, t1) =
            sort_pairs_with_bits_config(&mut g1, SimTime::ZERO, &keys, &vals, 32, &cfg_plain)
                .unwrap();
        let mut g2 = gpu();
        let (k2, _, t2) = sort_pairs_with_bits_config(
            &mut g2,
            SimTime::ZERO,
            &keys,
            &vals,
            32,
            &SortConfig::default(),
        )
        .unwrap();
        assert_eq!(k1, k2);
        assert!(g2.stats().kernels < g1.stats().kernels);
        assert!(t2 < t1, "fused ({t2}) should beat unfused ({t1})");
    }

    #[test]
    fn explicit_bits_variant_sorts() {
        let mut g = gpu();
        let keys: Vec<u64> = (0..5000u64).rev().collect();
        let vals: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let (sk, sv, _) = sort_pairs_with_bits(&mut g, SimTime::ZERO, &keys, &vals, 13).unwrap();
        assert_eq!(sk[0], 0);
        assert_eq!(sk[4999], 4999);
        assert_eq!(sv[0], (4999 % 256) as u8);
    }

    #[test]
    fn config_from_env_clamps_digit_width() {
        let clamped = SortConfig {
            digit_bits: 40,
            fuse_final: true,
        }
        .normalized();
        assert_eq!(clamped.digit_bits, 12);
        let floor = SortConfig {
            digit_bits: 0,
            fuse_final: false,
        }
        .normalized();
        assert_eq!(floor.digit_bits, 1);
    }

    #[test]
    fn signed_keys_sort_correctly() {
        let mut g = gpu();
        let keys: Vec<i32> = vec![5, -3, 0, -100, 88, -1, i32::MIN, i32::MAX];
        let (sorted, _) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn trivial_inputs() {
        let mut g = gpu();
        let (empty, t) = sort_keys::<u32>(&mut g, SimTime::ZERO, &[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(t, SimTime::ZERO);
        let (one, _) = sort_keys(&mut g, SimTime::ZERO, &[9u32]).unwrap();
        assert_eq!(one, vec![9]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut g = gpu();
        let _ = sort_pairs_with_bits(&mut g, SimTime::ZERO, &[1u32, 2], &[1u32], 8);
    }
}
