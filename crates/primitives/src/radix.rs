//! GPU radix sort, after Satish/Harris/Garland — the CUDPP sort GPMR uses
//! as its default Sorter for integer-based keys.
//!
//! Least-significant-digit counting sort over 8-bit digits. Each pass runs
//! two kernels (per-block digit histograms, then a stable scatter) plus a
//! digit-major scan of the histogram matrix; all three charge the compute
//! timeline. The scatter's writes are inherently uncoalesced and are
//! charged as such — this is why Sort is a visible slice of the paper's
//! Figure 2 runtime breakdown.

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

use crate::elem::RadixKey;
use crate::scan::reduce;

/// Items processed per sort block.
pub const SORT_ITEMS_PER_BLOCK: usize = 4096;
const DIGIT_BITS: u32 = 8;
const DIGITS: usize = 1 << DIGIT_BITS;

/// Sort `keys` ascending, carrying `vals` along, auto-detecting the number
/// of significant key bits (one reduction pass, like CUDPP's bit-range
/// optimization). Stable. Returns sorted keys, reordered values, and the
/// completion time.
///
/// ```
/// use gpmr_primitives::sort_pairs;
/// use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
///
/// let mut gpu = Gpu::new(GpuSpec::gt200());
/// let keys = vec![9u32, 1, 5, 1];
/// let vals = vec![90u32, 10, 50, 11];
/// let (k, v, t) = sort_pairs(&mut gpu, SimTime::ZERO, &keys, &vals).unwrap();
/// assert_eq!(k, vec![1, 1, 5, 9]);
/// assert_eq!(v, vec![10, 11, 50, 90]); // stable
/// assert!(t > SimTime::ZERO); // the sort cost simulated device time
/// ```
pub fn sort_pairs<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    // Find the maximum radix to bound the number of passes.
    let (max_radix, t) = max_radix(gpu, at, keys)?;
    let bits = if max_radix == 0 {
        1
    } else {
        64 - max_radix.leading_zeros()
    };
    sort_pairs_with_bits(gpu, t, keys, vals, bits)
}

/// Sort with an explicit significant-bit count (use when the caller knows
/// the key range, e.g. a partitioner that already bounded keys).
pub fn sort_pairs_with_bits<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    significant_bits: u32,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    assert_eq!(
        keys.len(),
        vals.len(),
        "keys and values must have equal length"
    );
    if keys.len() <= 1 {
        return Ok((keys.to_vec(), vals.to_vec(), at));
    }
    let passes = significant_bits.clamp(1, K::BITS).div_ceil(DIGIT_BITS);

    // Ping-pong between two owned buffer pairs: pass 0 reads the borrowed
    // input directly, so neither an up-front clone of the dataset nor a
    // fresh output allocation per pass is needed.
    let mut a = SortBufs::default();
    let mut b = SortBufs::default();
    let mut t = at;

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        t = if pass == 0 {
            counting_pass_into(gpu, t, keys, vals, shift, &mut a)?
        } else if pass % 2 == 1 {
            counting_pass_into(gpu, t, &a.keys, &a.vals, shift, &mut b)?
        } else {
            counting_pass_into(gpu, t, &b.keys, &b.vals, shift, &mut a)?
        };
    }
    let out = if passes % 2 == 1 { a } else { b };
    Ok((out.keys, out.vals, t))
}

/// Sort keys only (values are implicit indices nobody needs).
pub fn sort_keys<K: RadixKey>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
) -> SimGpuResult<(Vec<K>, SimTime)> {
    // Carry zero-sized values: unit type costs nothing to move.
    let vals = vec![(); keys.len()];
    let (k, _, t) = sort_pairs(gpu, at, keys, &vals)?;
    Ok((k, t))
}

fn max_radix<K: RadixKey>(gpu: &mut Gpu, at: SimTime, keys: &[K]) -> SimGpuResult<(u64, SimTime)> {
    if keys.is_empty() {
        return Ok((0, at));
    }
    // A dedicated max-reduction kernel: same traffic as a sum reduction.
    let radixes: Vec<u64> = keys.iter().map(|k| k.radix()).collect();
    let (_, t) = reduce(gpu, at, &radixes)?;
    let max = radixes.into_iter().max().unwrap_or(0);
    Ok((max, t))
}

/// Reusable destination buffers for one ping-pong direction of the sort.
struct SortBufs<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
    /// Scanned (digit x block) histogram scratch, indexed `b * DIGITS + d`.
    offsets: Vec<usize>,
}

impl<K, V> Default for SortBufs<K, V> {
    fn default() -> Self {
        SortBufs {
            keys: Vec::new(),
            vals: Vec::new(),
            offsets: Vec::new(),
        }
    }
}

/// One stable counting-sort pass on an 8-bit digit at `shift`, writing the
/// reordered pairs into `out` (buffers are reused across passes).
fn counting_pass_into<K, V>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    shift: u32,
    out: &mut SortBufs<K, V>,
) -> SimGpuResult<SimTime>
where
    K: RadixKey,
    V: Copy + Send + Sync + 'static,
{
    let n = keys.len();
    let cfg = LaunchConfig::for_items(n, SORT_ITEMS_PER_BLOCK, 256)
        .with_shared_bytes((DIGITS * 4) as u32);

    // Kernel 1: per-block digit histogram. The global stable order is
    // digit-major then block-major then local order; with counts per block
    // the scatter below can place every pair directly, so no per-block
    // bucket lists are materialized.
    let (hist, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(n);
        ctx.charge_read::<K>(range.len());
        ctx.charge_read::<V>(range.len());
        ctx.charge_flops(3 * range.len() as u64); // digit extract + shared atomic
        let mut counts = [0usize; DIGITS];
        for i in range {
            let d = ((keys[i].radix() >> shift) & (DIGITS as u64 - 1)) as usize;
            counts[d] += 1;
        }
        counts
    })?;

    // Digit-major exclusive scan over the (digit x block) histogram.
    let blocks = hist.outputs.len();
    let scan_cost = KernelCost {
        flops: (DIGITS * blocks) as u64,
        bytes_coalesced: (2 * DIGITS * blocks * 4) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &scan_cost, 1.0);
    out.offsets.clear();
    out.offsets.resize(blocks * DIGITS, 0);
    let mut running = 0usize;
    for d in 0..DIGITS {
        for (b, counts) in hist.outputs.iter().enumerate() {
            out.offsets[b * DIGITS + d] = running;
            running += counts[d];
        }
    }

    // Kernel 2 (scatter): each pair lands at its scanned offset. Writes are
    // scattered across the output — charged uncoalesced, reads coalesced.
    let pair_bytes = std::mem::size_of::<K>() + std::mem::size_of::<V>();
    let scatter_cost = KernelCost {
        flops: 2 * n as u64,
        bytes_coalesced: (n * pair_bytes) as u64,
        bytes_uncoalesced: (n * pair_bytes) as u64,
        ..KernelCost::ZERO
    };
    let r3 = gpu.charge_compute(r2.end, &scatter_cost, 1.0);

    // A forward scan writes each pair at its block's scanned offset;
    // forward order within a block keeps the sort stable.
    out.keys.clear();
    out.vals.clear();
    out.keys.resize(n, keys[0]);
    out.vals.resize(n, vals[0]);
    let per = n.div_ceil(blocks);
    for b in 0..blocks {
        let start = (b * per).min(n);
        let end = ((b + 1) * per).min(n);
        for i in start..end {
            let d = ((keys[i].radix() >> shift) & (DIGITS as u64 - 1)) as usize;
            let pos = &mut out.offsets[b * DIGITS + d];
            out.keys[*pos] = keys[i];
            out.vals[*pos] = vals[i];
            *pos += 1;
        }
    }
    Ok(r3.end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed.max(1);
        (0..n)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 16) as u32
            })
            .collect()
    }

    #[test]
    fn sorts_random_u32_keys() {
        let mut g = gpu();
        let keys = pseudo_random(50_000, 42);
        let (sorted, end) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn pairs_travel_with_their_keys() {
        let mut g = gpu();
        let keys = pseudo_random(10_000, 7);
        let vals: Vec<u32> = keys.iter().map(|&k| k.wrapping_mul(3)).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        for (k, v) in sk.iter().zip(&sv) {
            assert_eq!(*v, k.wrapping_mul(3));
        }
    }

    #[test]
    fn sort_is_stable() {
        let mut g = gpu();
        // Many duplicate keys; values record original position.
        let keys: Vec<u32> = (0..20_000u32).map(|i| i % 16).collect();
        let vals: Vec<u32> = (0..20_000).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        for w in sk.windows(2).zip(sv.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "stability violated");
            }
        }
    }

    #[test]
    fn narrow_keys_use_fewer_passes() {
        let mut g = gpu();
        let keys: Vec<u32> = (0..30_000u32).map(|i| (i * 37) % 200).collect();
        let k1 = g.stats().kernels;
        let (sorted, _) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let launches_narrow = g.stats().kernels - k1;
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);

        // Full-width keys need four passes; 8-bit keys only one.
        let wide = pseudo_random(30_000, 3);
        let k2 = g.stats().kernels;
        sort_keys(&mut g, SimTime::ZERO, &wide).unwrap();
        let launches_wide = g.stats().kernels - k2;
        assert!(launches_wide > launches_narrow);
    }

    #[test]
    fn explicit_bits_variant_sorts() {
        let mut g = gpu();
        let keys: Vec<u64> = (0..5000u64).rev().collect();
        let vals: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let (sk, sv, _) = sort_pairs_with_bits(&mut g, SimTime::ZERO, &keys, &vals, 13).unwrap();
        assert_eq!(sk[0], 0);
        assert_eq!(sk[4999], 4999);
        assert_eq!(sv[0], (4999 % 256) as u8);
    }

    #[test]
    fn signed_keys_sort_correctly() {
        let mut g = gpu();
        let keys: Vec<i32> = vec![5, -3, 0, -100, 88, -1, i32::MIN, i32::MAX];
        let (sorted, _) = sort_keys(&mut g, SimTime::ZERO, &keys).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn trivial_inputs() {
        let mut g = gpu();
        let (empty, t) = sort_keys::<u32>(&mut g, SimTime::ZERO, &[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(t, SimTime::ZERO);
        let (one, _) = sort_keys(&mut g, SimTime::ZERO, &[9u32]).unwrap();
        assert_eq!(one, vec![9]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut g = gpu();
        let _ = sort_pairs_with_bits(&mut g, SimTime::ZERO, &[1u32, 2], &[1u32], 8);
    }
}
