//! Segmented scan and segmented reduction.
//!
//! CUDPP's segmented scan (Sengupta et al.) is the workhorse behind
//! GPU sparse-matrix products and quicksort; GPMR-style reducers use the
//! segmented *reduction* directly: given values partitioned into
//! contiguous segments (the post-sort layout of a key's values), produce
//! one result per segment in a single pass.

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

use crate::elem::AddElem;
use crate::segments::Segments;

/// Items processed per segmented-op block.
pub const SEGMENTED_ITEMS_PER_BLOCK: usize = 4096;

/// Segmented inclusive scan: within each segment `out[i]` is the running
/// sum from the segment start through `i`. `flags[i]` is true where a new
/// segment begins (`flags[0]` is implicitly a segment start).
pub fn segmented_inclusive_scan<T: AddElem>(
    gpu: &mut Gpu,
    at: SimTime,
    values: &[T],
    flags: &[bool],
) -> SimGpuResult<(Vec<T>, SimTime)> {
    assert_eq!(
        values.len(),
        flags.len(),
        "values and flags must have equal length"
    );
    if values.is_empty() {
        return Ok((Vec::new(), at));
    }
    let n = values.len();
    let cfg = LaunchConfig::for_items(n, SEGMENTED_ITEMS_PER_BLOCK, 256);

    // Phase 1: per-block scan with carry metadata: each block returns its
    // scanned slice plus (sum of its trailing open segment, whether the
    // block contains any segment start).
    let (blocks, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(n);
        ctx.charge_read::<T>(range.len());
        ctx.charge_read::<u8>(range.len());
        ctx.charge_write::<T>(range.len());
        ctx.charge_flops(2 * range.len() as u64);
        let mut out = Vec::with_capacity(range.len());
        let mut acc = T::ZERO;
        let mut open_from_start = true;
        for i in range {
            if flags[i] {
                acc = T::ZERO;
                open_from_start = false;
            }
            acc = T::add(acc, values[i]);
            out.push(acc);
        }
        (out, acc, open_from_start)
    })?;

    // Phase 2: carry propagation across blocks (small, modelled).
    let nb = blocks.outputs.len();
    let carry_cost = KernelCost {
        flops: 2 * nb as u64,
        bytes_coalesced: (2 * nb * std::mem::size_of::<T>()) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &carry_cost, 1.0);

    let mut out = Vec::with_capacity(n);
    let mut carry = T::ZERO;
    for (scanned, block_acc, open_from_start) in blocks.outputs {
        let base = out.len();
        // Elements before the block's first segment start continue the
        // incoming segment: add the carry to them.
        let mut leading = true;
        for (j, v) in scanned.into_iter().enumerate() {
            if flags[base + j] {
                leading = false;
            }
            out.push(if leading { T::add(carry, v) } else { v });
        }
        carry = if open_from_start {
            T::add(carry, block_acc)
        } else {
            block_acc
        };
    }
    Ok((out, r2.end))
}

/// Segmented reduction: one sum per segment of [`Segments`]-described
/// `values` (the post-sort value layout). A single coalesced pass,
/// regardless of segment-length skew — the balanced alternative to
/// thread-per-key when value counts vary wildly.
pub fn segmented_reduce<T: AddElem, K>(
    gpu: &mut Gpu,
    at: SimTime,
    segs: &Segments<K>,
    values: &[T],
) -> SimGpuResult<(Vec<T>, SimTime)> {
    if segs.is_empty() {
        return Ok((Vec::new(), at));
    }
    let n = values.len();
    let cfg = LaunchConfig::for_items(n.max(1), SEGMENTED_ITEMS_PER_BLOCK, 256);

    // One pass over the values; block-local partial sums per overlapping
    // segment are merged on the carry path (charged in the same launch).
    let (_, res) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(n);
        ctx.charge_read::<T>(range.len());
        ctx.charge_flops(range.len() as u64);
    })?;
    let merge_cost = KernelCost {
        flops: segs.len() as u64,
        bytes_coalesced: (segs.len() * (std::mem::size_of::<T>() + 8)) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(res.end, &merge_cost, 1.0);

    let mut out = Vec::with_capacity(segs.len());
    for i in 0..segs.len() {
        let r = segs.range(i);
        let mut acc = T::ZERO;
        for v in &values[r] {
            acc = T::add(acc, *v);
        }
        out.push(acc);
    }
    Ok((out, r2.end))
}

/// Build segment-start flags from a [`Segments`] description (test and
/// interop helper).
pub fn flags_from_segments<K>(segs: &Segments<K>, len: usize) -> Vec<bool> {
    let mut flags = vec![false; len];
    for i in 0..segs.len() {
        let start = segs.offsets[i];
        if start < len {
            flags[start] = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    fn reference_segmented_scan(values: &[u64], flags: &[bool]) -> Vec<u64> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for i in 0..values.len() {
            if flags[i] {
                acc = 0;
            }
            acc += values[i];
            out.push(acc);
        }
        out
    }

    #[test]
    fn segmented_scan_matches_reference() {
        let mut g = gpu();
        let n = 20_000;
        let values: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 113 == 0).collect();
        let (out, end) = segmented_inclusive_scan(&mut g, SimTime::ZERO, &values, &flags).unwrap();
        assert_eq!(out, reference_segmented_scan(&values, &flags));
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn segments_spanning_block_boundaries() {
        let mut g = gpu();
        // One giant segment spanning many blocks: tests carry chains.
        let n = 3 * SEGMENTED_ITEMS_PER_BLOCK + 17;
        let values = vec![1u64; n];
        let mut flags = vec![false; n];
        flags[0] = true;
        let (out, _) = segmented_inclusive_scan(&mut g, SimTime::ZERO, &values, &flags).unwrap();
        assert_eq!(out[n - 1], n as u64);
        assert_eq!(
            out[SEGMENTED_ITEMS_PER_BLOCK],
            (SEGMENTED_ITEMS_PER_BLOCK + 1) as u64
        );
    }

    #[test]
    fn every_element_its_own_segment() {
        let mut g = gpu();
        let values: Vec<u32> = (0..5000).collect();
        let flags = vec![true; 5000];
        let (out, _) = segmented_inclusive_scan(&mut g, SimTime::ZERO, &values, &flags).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn empty_inputs_are_free() {
        let mut g = gpu();
        let (out, t) = segmented_inclusive_scan::<u32>(&mut g, SimTime::ZERO, &[], &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn segmented_reduce_sums_each_segment() {
        let mut g = gpu();
        let segs = Segments {
            keys: vec![1u32, 5, 9],
            offsets: vec![0, 3, 4, 10],
        };
        let values: Vec<u64> = (1..=10).collect();
        let (out, end) = segmented_reduce(&mut g, SimTime::ZERO, &segs, &values).unwrap();
        assert_eq!(out, vec![1 + 2 + 3, 4, (5..=10).sum::<u64>()]);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn flags_round_trip_with_segments() {
        let segs = Segments {
            keys: vec![0u32, 1, 2],
            offsets: vec![0, 2, 5, 9],
        };
        let flags = flags_from_segments(&segs, 9);
        let expect = [true, false, true, false, false, true, false, false, false];
        assert_eq!(flags, expect);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut g = gpu();
        let _ = segmented_inclusive_scan(&mut g, SimTime::ZERO, &[1u32], &[true, false]);
    }
}
