//! Parallel prefix sums (scan), after Harris/Sengupta/Owens — the CUDPP
//! scan GPMR builds on.
//!
//! The device-wide scan is the classic three-phase algorithm: per-block
//! partial sums, a scan of the partials, and a per-block scan seeded with
//! the block offset. All phases run as kernels on the simulated GPU so
//! their cost lands on the compute timeline.
//!
//! Primitives operate on device-*resident* data passed as slices; buffer
//! capacity accounting belongs to the caller that allocated the data.

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

use crate::elem::AddElem;

/// Items processed by one scan block (256 threads, 8 items each).
pub const SCAN_ITEMS_PER_BLOCK: usize = 2048;

fn scan_cfg(items: usize) -> LaunchConfig {
    LaunchConfig::for_items(items, SCAN_ITEMS_PER_BLOCK, 256).with_shared_bytes(
        (SCAN_ITEMS_PER_BLOCK / 8 * std::mem::size_of::<u64>()) as u32, // 2 kB tree scratch
    )
}

/// Exclusive scan: `out[i] = sum(input[..i])`. Returns the output, the
/// grand total, and the simulated completion time.
///
/// ```
/// use gpmr_primitives::exclusive_scan;
/// use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
///
/// let mut gpu = Gpu::new(GpuSpec::gt200());
/// let (out, total, _) =
///     exclusive_scan(&mut gpu, SimTime::ZERO, &[3u32, 1, 4, 1]).unwrap();
/// assert_eq!(out, vec![0, 3, 4, 8]);
/// assert_eq!(total, 9);
/// ```
pub fn exclusive_scan<T: AddElem>(
    gpu: &mut Gpu,
    at: SimTime,
    input: &[T],
) -> SimGpuResult<(Vec<T>, T, SimTime)> {
    if input.is_empty() {
        return Ok((Vec::new(), T::ZERO, at));
    }
    let cfg = scan_cfg(input.len());

    // Phase 1: per-block partial sums.
    let (partials, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(input.len());
        ctx.charge_read::<T>(range.len());
        ctx.charge_flops(range.len() as u64);
        let mut acc = T::ZERO;
        for &v in &input[range] {
            acc = T::add(acc, v);
        }
        acc
    })?;

    // Phase 2: scan of block partials. Small; modelled as one kernel.
    let n_part = partials.outputs.len();
    let scan_cost = KernelCost {
        flops: n_part as u64,
        bytes_coalesced: (2 * n_part * std::mem::size_of::<T>()) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &scan_cost, 1.0);
    let mut offsets = Vec::with_capacity(n_part);
    let mut running = T::ZERO;
    for &p in &partials.outputs {
        offsets.push(running);
        running = T::add(running, p);
    }
    let total = running;

    // Phase 3: per-block exclusive scan seeded with the block offset.
    let (chunks, r3) = gpu.launch(r2.end, &cfg, |ctx| {
        let range = ctx.item_range(input.len());
        ctx.charge_read::<T>(range.len());
        ctx.charge_write::<T>(range.len());
        ctx.charge_flops(range.len() as u64);
        let mut acc = offsets[ctx.block_idx as usize];
        let mut out = Vec::with_capacity(range.len());
        for &v in &input[range] {
            out.push(acc);
            acc = T::add(acc, v);
        }
        out
    })?;

    let mut out = Vec::with_capacity(input.len());
    for c in chunks.outputs {
        out.extend(c);
    }
    Ok((out, total, r3.end))
}

/// Inclusive scan: `out[i] = sum(input[..=i])`.
pub fn inclusive_scan<T: AddElem>(
    gpu: &mut Gpu,
    at: SimTime,
    input: &[T],
) -> SimGpuResult<(Vec<T>, T, SimTime)> {
    let (mut ex, total, end) = exclusive_scan(gpu, at, input)?;
    for (o, &v) in ex.iter_mut().zip(input) {
        *o = T::add(*o, v);
    }
    Ok((ex, total, end))
}

/// Device-wide reduction (sum). Returns the total and completion time.
pub fn reduce<T: AddElem>(gpu: &mut Gpu, at: SimTime, input: &[T]) -> SimGpuResult<(T, SimTime)> {
    if input.is_empty() {
        return Ok((T::ZERO, at));
    }
    let cfg = scan_cfg(input.len());
    let (partials, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(input.len());
        ctx.charge_read::<T>(range.len());
        ctx.charge_flops(range.len() as u64);
        let mut acc = T::ZERO;
        for &v in &input[range] {
            acc = T::add(acc, v);
        }
        acc
    })?;
    let n = partials.outputs.len();
    let final_cost = KernelCost {
        flops: n as u64,
        bytes_coalesced: (n * std::mem::size_of::<T>()) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &final_cost, 1.0);
    let mut total = T::ZERO;
    for &p in &partials.outputs {
        total = T::add(total, p);
    }
    Ok((total, r2.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn exclusive_scan_matches_reference() {
        let mut g = gpu();
        let input: Vec<u64> = (0..10_000).map(|i| (i * 7 + 3) % 100).collect();
        let (out, total, end) = exclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(out[i], acc, "mismatch at {i}");
            acc += v;
        }
        assert_eq!(total, acc);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let mut g = gpu();
        let input: Vec<u32> = (1..=5000).collect();
        let (out, total, _) = inclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(out[4999], 5000 * 5001 / 2);
        assert_eq!(total, 5000 * 5001 / 2);
    }

    #[test]
    fn empty_scan_is_free() {
        let mut g = gpu();
        let (out, total, end) = exclusive_scan::<u32>(&mut g, SimTime::ZERO, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(total, 0);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn single_element_scan() {
        let mut g = gpu();
        let (out, total, _) = exclusive_scan(&mut g, SimTime::ZERO, &[42u32]).unwrap();
        assert_eq!(out, vec![0]);
        assert_eq!(total, 42);
    }

    #[test]
    fn reduce_matches_sum() {
        let mut g = gpu();
        let input: Vec<u64> = (0..100_000).collect();
        let (total, end) = reduce(&mut g, SimTime::ZERO, &input).unwrap();
        assert_eq!(total, 99_999 * 100_000 / 2);
        assert!(end > SimTime::ZERO);
        let (zero, _) = reduce::<u32>(&mut g, SimTime::ZERO, &[]).unwrap();
        assert_eq!(zero, 0);
    }

    #[test]
    fn scan_charges_time_on_compute_timeline() {
        let mut g = gpu();
        let input: Vec<u32> = vec![1; 1 << 20];
        let before = g.compute_busy();
        let (_, _, _) = exclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        assert!(g.compute_busy() > before);
        // Should be at least the roofline time for reading+writing 8 MB.
        assert!(g.compute_busy().as_secs() > (3.0 * (1u64 << 22) as f64) / g.spec.mem_bandwidth);
    }

    #[test]
    fn float_scan_works() {
        let mut g = gpu();
        let input = vec![0.5f64; 1000];
        let (_, total, _) = inclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        assert!((total - 500.0).abs() < 1e-9);
    }
}
