//! Comparator-network (bitonic) sort.
//!
//! GPMR falls back to a custom comparator sort when keys are not
//! integer-based (paper §4.2: "when possible we used radix sort from
//! CUDPP, and when not, we implemented our own"). The Mars baseline also
//! uses bitonic sort — one of its structural handicaps, since bitonic is
//! O(n log² n) in compare-exchanges while radix is O(n) per digit.
//!
//! The produced ordering is exact (host merge sort, stable); the *cost*
//! charged to the device is that of the padded bitonic network.

use std::cmp::Ordering;

use gpmr_sim_gpu::{Gpu, KernelCost, SimGpuResult, SimTime};

/// Sort `data` with `cmp`, charging the cost of a bitonic network run on
/// the device. Stable. Returns the sorted data and completion time.
pub fn bitonic_sort_by<T, F>(
    gpu: &mut Gpu,
    at: SimTime,
    data: &[T],
    cmp: F,
) -> SimGpuResult<(Vec<T>, SimTime)>
where
    T: Copy + Send + Sync + 'static,
    F: Fn(&T, &T) -> Ordering,
{
    if data.len() <= 1 {
        return Ok((data.to_vec(), at));
    }
    let n_pow2 = data.len().next_power_of_two() as u64;
    let stages = n_pow2.trailing_zeros() as u64;
    // A bitonic network performs (n/2) * stages*(stages+1)/2
    // compare-exchange operations, each reading and writing two elements.
    // Bitonic access patterns are stride-regular, so the traffic is
    // charged coalesced — the algorithm's cost is its O(n log^2 n) volume,
    // not scatter.
    let ce = (n_pow2 / 2) * stages * (stages + 1) / 2;
    let elem = std::mem::size_of::<T>() as u64;
    let cost = KernelCost {
        flops: 3 * ce,
        bytes_coalesced: 4 * ce * elem,
        ..KernelCost::ZERO
    };
    // One kernel per stage-step in reality; fold the launch overheads in.
    let launches = stages * (stages + 1) / 2;
    let mut padded_cost = cost;
    padded_cost.flops += launches; // negligible, keeps cost non-trivial
    let res = gpu.charge_compute(at, &padded_cost, 1.0);

    let mut out = data.to_vec();
    out.sort_by(cmp);
    Ok((out, res.end))
}

/// Sort key-value pairs by key with a comparator (bitonic cost model).
pub fn bitonic_sort_pairs_by<K, V, F>(
    gpu: &mut Gpu,
    at: SimTime,
    keys: &[K],
    vals: &[V],
    cmp: F,
) -> SimGpuResult<(Vec<K>, Vec<V>, SimTime)>
where
    K: Copy + Send + Sync + 'static,
    V: Copy + Send + Sync + 'static,
    F: Fn(&K, &K) -> Ordering,
{
    assert_eq!(keys.len(), vals.len());
    let pairs: Vec<(K, V)> = keys.iter().copied().zip(vals.iter().copied()).collect();
    let (sorted, t) = bitonic_sort_by(gpu, at, &pairs, |a, b| cmp(&a.0, &b.0))?;
    let mut ks = Vec::with_capacity(sorted.len());
    let mut vs = Vec::with_capacity(sorted.len());
    for (k, v) in sorted {
        ks.push(k);
        vs.push(v);
    }
    Ok((ks, vs, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::sort_keys;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn sorts_correctly() {
        let mut g = gpu();
        let data: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let (sorted, end) = bitonic_sort_by(&mut g, SimTime::ZERO, &data, |a, b| a.cmp(b)).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn bitonic_costs_more_than_radix_at_scale() {
        let data: Vec<u32> = (0..200_000u32).map(|i| i.wrapping_mul(40503)).collect();
        let mut g1 = gpu();
        let (_, t_bitonic) =
            bitonic_sort_by(&mut g1, SimTime::ZERO, &data, |a, b| a.cmp(b)).unwrap();
        let mut g2 = gpu();
        let (_, t_radix) = sort_keys(&mut g2, SimTime::ZERO, &data).unwrap();
        assert!(
            t_bitonic.as_secs() > t_radix.as_secs(),
            "bitonic {t_bitonic} should exceed radix {t_radix}"
        );
    }

    #[test]
    fn pairs_stay_attached() {
        let mut g = gpu();
        let keys = vec![5u32, 1, 9, 1, 3];
        let vals = vec![50u32, 10, 90, 11, 30];
        let (sk, sv, _) =
            bitonic_sort_pairs_by(&mut g, SimTime::ZERO, &keys, &vals, |a, b| a.cmp(b)).unwrap();
        assert_eq!(sk, vec![1, 1, 3, 5, 9]);
        assert_eq!(sv, vec![10, 11, 30, 50, 90]); // stable
    }

    #[test]
    fn trivial_inputs_are_free() {
        let mut g = gpu();
        let (out, t) =
            bitonic_sort_by::<u32, _>(&mut g, SimTime::ZERO, &[], |a, b| a.cmp(b)).unwrap();
        assert!(out.is_empty());
        assert_eq!(t, SimTime::ZERO);
        let (one, t) = bitonic_sort_by(&mut g, SimTime::ZERO, &[3u8], |a, b| a.cmp(b)).unwrap();
        assert_eq!(one, vec![3]);
        assert_eq!(t, SimTime::ZERO);
    }
}
