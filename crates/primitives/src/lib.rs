//! # gpmr-primitives — CUDPP-equivalent data-parallel primitives
//!
//! GPMR leans on the CUDA Data-Parallel Primitives library for its scan
//! and sort (paper §2.1). This crate provides the same building blocks as
//! kernels on the simulated GPU, so their cost accrues through the same
//! roofline model as application kernels:
//!
//! * [`exclusive_scan`]/[`inclusive_scan`]/[`reduce`] — Harris-style
//!   three-phase device-wide prefix sums;
//! * [`compact()`] — order-preserving stream compaction;
//! * [`histogram()`] — per-block shared-memory histograms, merged;
//! * [`sort_pairs`]/[`sort_keys`] — Satish-style LSD radix sort over
//!   configurable-width digits (default 11-bit with a fused final pass;
//!   see [`SortConfig`]) with CUDPP-like significant-bit detection
//!   (GPMR's default Sorter for integer keys);
//! * [`extract_segments`] — unique keys + contiguous value ranges from a
//!   sorted sequence (GPMR's post-sort key dedup);
//! * [`segmented_inclusive_scan`]/[`segmented_reduce`] — Sengupta-style
//!   segmented operations for skew-tolerant reducers;
//! * [`bitonic_sort_by`] — comparator-network fallback for non-integer
//!   keys (and the Mars baseline's sort).

#![warn(missing_docs)]

pub mod bitonic;
pub mod compact;
pub mod elem;
pub mod histogram;
pub mod radix;
pub mod scan;
pub mod segmented;
pub mod segments;

pub use bitonic::{bitonic_sort_by, bitonic_sort_pairs_by};
pub use compact::compact;
pub use elem::{AddElem, RadixKey};
pub use histogram::histogram;
pub use radix::{
    bits_for_radix, sort_keys, sort_pairs, sort_pairs_config, sort_pairs_with_bits,
    sort_pairs_with_bits_config, SortConfig,
};
pub use scan::{exclusive_scan, inclusive_scan, reduce};
pub use segmented::{flags_from_segments, segmented_inclusive_scan, segmented_reduce};
pub use segments::{extract_segments, Segments};
