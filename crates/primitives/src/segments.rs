//! Segment extraction from sorted key sequences.
//!
//! After GPMR's Sort stage, duplicate keys are discarded: "because of the
//! sort, each key's value is stored contiguously, hence we only need the
//! number of values and the index of the first value to describe each
//! sequence" (paper §4.2). [`extract_segments`] produces exactly that
//! description via a boundary-marking kernel plus a compaction.

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

/// Items processed per boundary-marking block.
pub const SEGMENT_ITEMS_PER_BLOCK: usize = 4096;

/// The unique keys of a sorted sequence and where each key's values live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segments<K> {
    /// Unique keys, ascending.
    pub keys: Vec<K>,
    /// `offsets.len() == keys.len() + 1`; key `i`'s values occupy
    /// `offsets[i]..offsets[i + 1]` in the sorted value array.
    pub offsets: Vec<usize>,
}

impl<K> Segments<K> {
    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if there are no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The value range of segment `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Number of values in segment `i`.
    pub fn count(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Iterate `(key, value_range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, std::ops::Range<usize>)> {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k, self.range(i)))
    }
}

/// Extract unique keys and value segments from `sorted_keys` (which must
/// be sorted; equal keys adjacent). Returns the segments and completion
/// time.
///
/// ```
/// use gpmr_primitives::extract_segments;
/// use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
///
/// let mut gpu = Gpu::new(GpuSpec::gt200());
/// let (segs, _) =
///     extract_segments(&mut gpu, SimTime::ZERO, &[2u32, 2, 7, 7, 7]).unwrap();
/// assert_eq!(segs.keys, vec![2, 7]);
/// assert_eq!(segs.range(1), 2..5); // key 7's values
/// ```
pub fn extract_segments<K>(
    gpu: &mut Gpu,
    at: SimTime,
    sorted_keys: &[K],
) -> SimGpuResult<(Segments<K>, SimTime)>
where
    K: Copy + PartialEq + Send + Sync + 'static,
{
    if sorted_keys.is_empty() {
        return Ok((
            Segments {
                keys: Vec::new(),
                offsets: vec![0],
            },
            at,
        ));
    }
    let n = sorted_keys.len();
    let cfg = LaunchConfig::for_items(n, SEGMENT_ITEMS_PER_BLOCK, 256);

    // Kernel: mark segment starts (k[i] != k[i-1]); each block emits the
    // boundary indices in its range.
    let (bounds, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(n);
        // Reads its range plus one predecessor element.
        ctx.charge_read::<K>(range.len() + 1);
        ctx.charge_flops(range.len() as u64);
        let mut local = Vec::new();
        for i in range {
            if i == 0 || sorted_keys[i] != sorted_keys[i - 1] {
                local.push(i);
            }
        }
        local
    })?;

    // Compact boundary indices (scan + scatter, small).
    let unique: usize = bounds.outputs.iter().map(Vec::len).sum();
    let compact_cost = KernelCost {
        flops: cfg.grid_blocks as u64 + unique as u64,
        bytes_coalesced: (unique * std::mem::size_of::<usize>() * 2) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &compact_cost, 1.0);

    let mut offsets = Vec::with_capacity(unique + 1);
    let mut keys = Vec::with_capacity(unique);
    for block in bounds.outputs {
        for i in block {
            offsets.push(i);
            keys.push(sorted_keys[i]);
        }
    }
    offsets.push(n);
    Ok((Segments { keys, offsets }, r2.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn segments_of_runs() {
        let mut g = gpu();
        let keys = [1u32, 1, 1, 4, 4, 9, 9, 9, 9, 12];
        let (segs, end) = extract_segments(&mut g, SimTime::ZERO, &keys).unwrap();
        assert_eq!(segs.keys, vec![1, 4, 9, 12]);
        assert_eq!(segs.offsets, vec![0, 3, 5, 9, 10]);
        assert_eq!(segs.count(2), 4);
        assert_eq!(segs.range(1), 3..5);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn all_unique_keys() {
        let mut g = gpu();
        let keys: Vec<u32> = (0..10_000).collect();
        let (segs, _) = extract_segments(&mut g, SimTime::ZERO, &keys).unwrap();
        assert_eq!(segs.len(), 10_000);
        assert!(segs.iter().all(|(_, r)| r.len() == 1));
    }

    #[test]
    fn single_giant_run() {
        let mut g = gpu();
        let keys = vec![7u64; 50_000];
        let (segs, _) = extract_segments(&mut g, SimTime::ZERO, &keys).unwrap();
        assert_eq!(segs.keys, vec![7]);
        assert_eq!(segs.offsets, vec![0, 50_000]);
    }

    #[test]
    fn empty_input() {
        let mut g = gpu();
        let (segs, end) = extract_segments::<u32>(&mut g, SimTime::ZERO, &[]).unwrap();
        assert!(segs.is_empty());
        assert_eq!(segs.offsets, vec![0]);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn boundaries_across_block_edges() {
        let mut g = gpu();
        // Runs exactly the size of a block partition stress the i-1 read.
        let mut keys = Vec::new();
        for run in 0..10u32 {
            keys.extend(std::iter::repeat_n(run, SEGMENT_ITEMS_PER_BLOCK));
        }
        let (segs, _) = extract_segments(&mut g, SimTime::ZERO, &keys).unwrap();
        assert_eq!(segs.len(), 10);
        for i in 0..10 {
            assert_eq!(segs.count(i), SEGMENT_ITEMS_PER_BLOCK);
        }
    }
}
