//! Device-wide histogram: per-block shared-memory counters merged across
//! the grid. The GPMR radix sort builds on this, and applications (Sparse
//! Integer Occurrence's reduce sanity checks, tests) use it directly.

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

/// Items processed per histogram block.
pub const HISTOGRAM_ITEMS_PER_BLOCK: usize = 4096;

/// Histogram `input` into `bins` buckets using `bin_of` (values mapping
/// outside `0..bins` are counted in the last bin). Returns counts and the
/// completion time.
pub fn histogram<T, F>(
    gpu: &mut Gpu,
    at: SimTime,
    input: &[T],
    bins: usize,
    bin_of: F,
) -> SimGpuResult<(Vec<u64>, SimTime)>
where
    T: Copy + Send + Sync + 'static,
    F: Fn(&T) -> usize + Sync,
{
    let bins = bins.max(1);
    if input.is_empty() {
        return Ok((vec![0; bins], at));
    }
    // Per-block shared-memory histograms; 4-byte counters.
    let shared = (bins * 4).min(16 * 1024) as u32;
    let cfg = LaunchConfig::for_items(input.len(), HISTOGRAM_ITEMS_PER_BLOCK, 256)
        .with_shared_bytes(shared);

    let (locals, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(input.len());
        ctx.charge_read::<T>(range.len());
        // One shared-memory atomic per item, modelled as 2 ops each.
        ctx.charge_flops(2 * range.len() as u64);
        let mut counts = vec![0u64; bins];
        for i in range {
            let b = bin_of(&input[i]).min(bins - 1);
            counts[b] += 1;
        }
        // Flush local histogram to global memory.
        ctx.charge_write::<u32>(bins);
        counts
    })?;

    // Merge per-block histograms (bins x blocks reads, bins writes).
    let blocks = locals.outputs.len();
    let merge_cost = KernelCost {
        flops: (bins * blocks) as u64,
        bytes_coalesced: ((bins * blocks + bins) * 4) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &merge_cost, 1.0);

    let mut out = vec![0u64; bins];
    for local in locals.outputs {
        for (o, c) in out.iter_mut().zip(local) {
            *o += c;
        }
    }
    Ok((out, r2.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn histogram_counts_correctly() {
        let mut g = gpu();
        let input: Vec<u32> = (0..60_000).map(|i| i % 10).collect();
        let (counts, end) = histogram(&mut g, SimTime::ZERO, &input, 10, |&v| v as usize).unwrap();
        assert_eq!(counts, vec![6000; 10]);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn out_of_range_values_clamp_to_last_bin() {
        let mut g = gpu();
        let input = vec![99u32; 50];
        let (counts, _) = histogram(&mut g, SimTime::ZERO, &input, 4, |&v| v as usize).unwrap();
        assert_eq!(counts, vec![0, 0, 0, 50]);
    }

    #[test]
    fn empty_input_gives_zero_bins() {
        let mut g = gpu();
        let (counts, end) = histogram::<u32, _>(&mut g, SimTime::ZERO, &[], 8, |_| 0).unwrap();
        assert_eq!(counts, vec![0; 8]);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn total_count_is_preserved() {
        let mut g = gpu();
        let input: Vec<u64> = (0..12_345).map(|i| i * 2654435761 % 97).collect();
        let (counts, _) = histogram(&mut g, SimTime::ZERO, &input, 97, |&v| v as usize).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 12_345);
    }
}
