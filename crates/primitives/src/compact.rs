//! Stream compaction: keep the elements that satisfy a predicate,
//! preserving order (scan + scatter, as in CUDPP).

use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};

/// Items processed by one compaction block.
pub const COMPACT_ITEMS_PER_BLOCK: usize = 2048;

/// Compact `input`, keeping elements where `keep` is true. Order is
/// preserved. Returns the kept elements and the completion time.
pub fn compact<T, F>(
    gpu: &mut Gpu,
    at: SimTime,
    input: &[T],
    keep: F,
) -> SimGpuResult<(Vec<T>, SimTime)>
where
    T: Copy + Send + Sync + 'static,
    F: Fn(usize, &T) -> bool + Sync,
{
    if input.is_empty() {
        return Ok((Vec::new(), at));
    }
    let cfg = LaunchConfig::for_items(input.len(), COMPACT_ITEMS_PER_BLOCK, 256);

    // Phase 1: per-block gather of kept elements (flag + local scan fused).
    let (kept_per_block, r1) = gpu.launch(at, &cfg, |ctx| {
        let range = ctx.item_range(input.len());
        ctx.charge_read::<T>(range.len());
        ctx.charge_flops(2 * range.len() as u64); // predicate + local scan
        let mut local = Vec::new();
        for i in range {
            if keep(i, &input[i]) {
                local.push(input[i]);
            }
        }
        local
    })?;

    // Phase 2: scan of per-block counts + coalesced scatter of survivors.
    let kept_total: usize = kept_per_block.outputs.iter().map(Vec::len).sum();
    let scatter_cost = KernelCost {
        flops: cfg.grid_blocks as u64,
        bytes_coalesced: (kept_total * std::mem::size_of::<T>()) as u64,
        ..KernelCost::ZERO
    };
    let r2 = gpu.charge_compute(r1.end, &scatter_cost, 1.0);

    let mut out = Vec::with_capacity(kept_total);
    for block in kept_per_block.outputs {
        out.extend(block);
    }
    Ok((out, r2.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn compact_keeps_matching_in_order() {
        let mut g = gpu();
        let input: Vec<u32> = (0..10_000).collect();
        let (out, end) = compact(&mut g, SimTime::ZERO, &input, |_, &v| v % 3 == 0).unwrap();
        let expect: Vec<u32> = (0..10_000).filter(|v| v % 3 == 0).collect();
        assert_eq!(out, expect);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn compact_with_index_predicate() {
        let mut g = gpu();
        let input = vec![7u8; 100];
        let (out, _) = compact(&mut g, SimTime::ZERO, &input, |i, _| i < 10).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn compact_none_and_all() {
        let mut g = gpu();
        let input: Vec<u64> = (0..5000).collect();
        let (none, _) = compact(&mut g, SimTime::ZERO, &input, |_, _| false).unwrap();
        assert!(none.is_empty());
        let (all, _) = compact(&mut g, SimTime::ZERO, &input, |_, _| true).unwrap();
        assert_eq!(all, input);
    }

    #[test]
    fn compact_empty_is_free() {
        let mut g = gpu();
        let (out, end) = compact::<u32, _>(&mut g, SimTime::ZERO, &[], |_, _| true).unwrap();
        assert!(out.is_empty());
        assert_eq!(end, SimTime::ZERO);
    }
}
