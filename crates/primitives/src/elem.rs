//! Element traits shared by the primitives.

/// A value that scans and reductions can combine with `+`.
///
/// Implemented for the unsigned/signed integers and floats the GPMR
/// pipeline uses. `ZERO` is the additive identity.
pub trait AddElem: Copy + Default + Send + Sync + 'static {
    /// The additive identity.
    const ZERO: Self;
    /// Combine two values.
    fn add(a: Self, b: Self) -> Self;
}

macro_rules! impl_add_elem_int {
    ($($t:ty),*) => {$(
        impl AddElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
        }
    )*};
}

impl_add_elem_int!(u32, u64, i32, i64, usize);

impl AddElem for f32 {
    const ZERO: Self = 0.0;
    #[inline]
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
}

impl AddElem for f64 {
    const ZERO: Self = 0.0;
    #[inline]
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
}

/// A key type a radix sort can process: mapped to an order-preserving
/// unsigned integer.
pub trait RadixKey: Copy + Send + Sync + 'static {
    /// Significant bits in the radix representation.
    const BITS: u32;
    /// Order-preserving mapping into `u64` (ascending key order equals
    /// ascending radix order).
    fn radix(self) -> u64;
}

impl RadixKey for u32 {
    const BITS: u32 = 32;
    #[inline]
    fn radix(self) -> u64 {
        self as u64
    }
}

impl RadixKey for u64 {
    const BITS: u32 = 64;
    #[inline]
    fn radix(self) -> u64 {
        self
    }
}

impl RadixKey for i32 {
    const BITS: u32 = 32;
    #[inline]
    fn radix(self) -> u64 {
        // Bias so that negative numbers order below positive ones.
        (self as u32 ^ 0x8000_0000) as u64
    }
}

impl RadixKey for i64 {
    const BITS: u32 = 64;
    #[inline]
    fn radix(self) -> u64 {
        self as u64 ^ 0x8000_0000_0000_0000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_elem_identity_and_combine() {
        assert_eq!(u32::add(u32::ZERO, 7), 7);
        assert_eq!(f64::add(1.5, 2.5), 4.0);
        assert_eq!(i64::add(-2, 5), 3);
    }

    #[test]
    fn signed_radix_preserves_order() {
        let mut vals = vec![-5i32, 3, -1, 0, i32::MIN, i32::MAX];
        let mut by_radix = vals.clone();
        vals.sort();
        by_radix.sort_by_key(|v| v.radix());
        assert_eq!(vals, by_radix);
    }

    #[test]
    fn signed64_radix_preserves_order() {
        let mut vals = vec![-5i64, 3, -1, 0, i64::MIN, i64::MAX];
        let mut by_radix = vals.clone();
        vals.sort();
        by_radix.sort_by_key(|v| v.radix());
        assert_eq!(vals, by_radix);
    }
}
