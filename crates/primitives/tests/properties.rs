//! Property-based tests for the data-parallel primitives: the invariants
//! CUDPP guarantees, checked on arbitrary inputs.

use gpmr_primitives::{
    bitonic_sort_pairs_by, compact, exclusive_scan, extract_segments, histogram, inclusive_scan,
    reduce, sort_pairs, sort_pairs_with_bits_config, RadixKey, SortConfig,
};
use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::gt200())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exclusive_scan_matches_prefix_sums(input in prop::collection::vec(0u64..1_000_000, 0..2000)) {
        let mut g = gpu();
        let (out, total, _) = exclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_scan_is_exclusive_plus_element(input in prop::collection::vec(0u32..1000, 1..1500)) {
        let mut g = gpu();
        let (ex, _, _) = exclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        let (inc, _, _) = inclusive_scan(&mut g, SimTime::ZERO, &input).unwrap();
        for i in 0..input.len() {
            prop_assert_eq!(inc[i], ex[i].wrapping_add(input[i]));
        }
    }

    #[test]
    fn reduce_equals_sum(input in prop::collection::vec(0u64..1_000_000, 0..3000)) {
        let mut g = gpu();
        let (total, _) = reduce(&mut g, SimTime::ZERO, &input).unwrap();
        prop_assert_eq!(total, input.iter().sum::<u64>());
    }

    #[test]
    fn radix_sort_is_a_sorted_permutation(keys in prop::collection::vec(any::<u32>(), 0..2000)) {
        let mut g = gpu();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        // Sorted.
        prop_assert!(sk.windows(2).all(|w| w[0] <= w[1]));
        // A permutation: every value index appears once, attached to its key.
        let mut seen = vec![false; keys.len()];
        for (k, v) in sk.iter().zip(&sv) {
            prop_assert!(!seen[*v as usize]);
            seen[*v as usize] = true;
            prop_assert_eq!(*k, keys[*v as usize]);
        }
    }

    #[test]
    fn radix_sort_is_stable(keys in prop::collection::vec(0u32..16, 0..1500)) {
        let mut g = gpu();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (sk, sv, _) = sort_pairs(&mut g, SimTime::ZERO, &keys, &vals).unwrap();
        for i in 1..sk.len() {
            if sk[i - 1] == sk[i] {
                prop_assert!(sv[i - 1] < sv[i]);
            }
        }
    }

    #[test]
    fn signed_radix_orders_like_ord(keys in prop::collection::vec(any::<i64>(), 0..1000)) {
        let mut radixes: Vec<u64> = keys.iter().map(|k| k.radix()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        radixes.sort_unstable();
        let resorted: Vec<u64> = sorted.iter().map(|k| k.radix()).collect();
        prop_assert_eq!(radixes, resorted);
    }

    #[test]
    fn compact_preserves_order_and_predicate(input in prop::collection::vec(any::<u16>(), 0..2000)) {
        let mut g = gpu();
        let (out, _) = compact(&mut g, SimTime::ZERO, &input, |_, &v| v % 3 == 0).unwrap();
        let expect: Vec<u16> = input.iter().copied().filter(|v| v % 3 == 0).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn histogram_counts_every_element(input in prop::collection::vec(0u32..64, 0..3000)) {
        let mut g = gpu();
        let (counts, _) = histogram(&mut g, SimTime::ZERO, &input, 64, |&v| v as usize).unwrap();
        prop_assert_eq!(counts.iter().sum::<u64>(), input.len() as u64);
        for (bin, &c) in counts.iter().enumerate() {
            let expect = input.iter().filter(|&&v| v as usize == bin).count() as u64;
            prop_assert_eq!(c, expect);
        }
    }

    #[test]
    fn segments_partition_sorted_keys(mut keys in prop::collection::vec(0u32..50, 0..2000)) {
        keys.sort_unstable();
        let mut g = gpu();
        let (segs, _) = extract_segments(&mut g, SimTime::ZERO, &keys).unwrap();
        // Offsets tile the input exactly.
        prop_assert_eq!(segs.offsets.len(), segs.keys.len() + 1);
        prop_assert_eq!(*segs.offsets.last().unwrap(), keys.len());
        for i in 0..segs.len() {
            let r = segs.range(i);
            prop_assert!(!r.is_empty());
            prop_assert!(keys[r.clone()].iter().all(|&k| k == segs.keys[i]));
        }
        // Unique keys ascend strictly.
        prop_assert!(segs.keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn wide_and_fused_digits_match_8bit_reference(
        keys in prop::collection::vec(any::<u32>(), 0..2000),
        width in 1u32..=32,
    ) {
        // Mask keys to a random significant width so every pass-count path
        // (1..=8 passes depending on digit width) gets exercised.
        let keys: Vec<u32> = keys
            .iter()
            .map(|&k| if width == 32 { k } else { k & ((1u32 << width) - 1) })
            .collect();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let mut g = gpu();
        let (ref_k, ref_v, _) = sort_pairs_with_bits_config(
            &mut g, SimTime::ZERO, &keys, &vals, width, &SortConfig::reference(),
        )
        .unwrap();
        for digit_bits in [4u32, 8, 11] {
            for fuse_final in [false, true] {
                let cfg = SortConfig { digit_bits, fuse_final };
                let mut g = gpu();
                let (k, v, _) = sort_pairs_with_bits_config(
                    &mut g, SimTime::ZERO, &keys, &vals, width, &cfg,
                )
                .unwrap();
                prop_assert_eq!(&k, &ref_k, "keys diverged at {:?}", cfg);
                // Value agreement proves stability: values are original
                // indices, so any instability reorders equal keys' values.
                prop_assert_eq!(&v, &ref_v, "values diverged at {:?}", cfg);
            }
        }
    }

    #[test]
    fn bitonic_agrees_with_radix(keys in prop::collection::vec(any::<u32>(), 0..1200)) {
        let vals = vec![0u8; keys.len()];
        let mut g1 = gpu();
        let (bk, _, _) =
            bitonic_sort_pairs_by(&mut g1, SimTime::ZERO, &keys, &vals, |a, b| a.cmp(b)).unwrap();
        let mut g2 = gpu();
        let (rk, _, _) = sort_pairs(&mut g2, SimTime::ZERO, &keys, &vals).unwrap();
        prop_assert_eq!(bk, rk);
    }
}

mod segmented_props {
    use gpmr_primitives::{
        extract_segments, flags_from_segments, segmented_inclusive_scan, segmented_reduce,
    };
    use gpmr_sim_gpu::{Gpu, GpuSpec, SimTime};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn segmented_scan_matches_reference(
            values in prop::collection::vec(0u64..1000, 0..3000),
            starts in prop::collection::vec(any::<bool>(), 0..3000),
        ) {
            let n = values.len().min(starts.len());
            let (values, flags) = (&values[..n], &starts[..n]);
            let mut gpu = Gpu::new(GpuSpec::gt200());
            let (out, _) =
                segmented_inclusive_scan(&mut gpu, SimTime::ZERO, values, flags).unwrap();
            let mut acc = 0u64;
            for i in 0..n {
                if flags[i] { acc = 0; }
                acc += values[i];
                prop_assert_eq!(out[i], acc, "index {}", i);
            }
        }

        #[test]
        fn segmented_reduce_agrees_with_per_segment_sums(
            mut keys in prop::collection::vec(0u32..40, 1..2000),
        ) {
            keys.sort_unstable();
            let values: Vec<u64> = (0..keys.len() as u64).collect();
            let mut gpu = Gpu::new(GpuSpec::gt200());
            let (segs, _) = extract_segments(&mut gpu, SimTime::ZERO, &keys).unwrap();
            let (sums, _) = segmented_reduce(&mut gpu, SimTime::ZERO, &segs, &values).unwrap();
            prop_assert_eq!(sums.len(), segs.len());
            for i in 0..segs.len() {
                let expect: u64 = values[segs.range(i)].iter().sum();
                prop_assert_eq!(sums[i], expect);
            }
            // Scan with flags built from the same segments ends each
            // segment at its reduce sum.
            let flags = flags_from_segments(&segs, values.len());
            let (scan, _) =
                segmented_inclusive_scan(&mut gpu, SimTime::ZERO, &values, &flags).unwrap();
            for (i, &sum) in sums.iter().enumerate() {
                let r = segs.range(i);
                prop_assert_eq!(scan[r.end - 1], sum);
            }
        }
    }
}
