//! Small-job batching: merge several compatible SIO jobs into one
//! cluster pass with bit-identical per-member outputs.
//!
//! The trick is key tagging. Each member gets a batch slot `s`; its map
//! emissions become `(s << 32) | key` in a shared `u64` key space. The
//! partitioner routes on the *low* 32 bits only, so every pair lands on
//! exactly the rank it would have reached in a standalone run, and the
//! radix sort orders pairs slot-major then key-ascending — each member's
//! pairs form a contiguous, ascending run inside every rank's reduce
//! output. Un-tagging that run reproduces the standalone per-rank output
//! byte for byte: same keys in the same order with the same sums.
//! (Simulated *times* differ — a shared pass amortizes setup across
//! members — which is the point of batching.)

use gpmr_core::{Chunk, GpmrJob, KvSet, PartitionMode, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};

/// A member's chunk wrapped with its batch slot. Transfer size equals the
/// inner chunk's so scheduling weight and memory admission match the
/// standalone run; the slot tag rides in chunk metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchChunk {
    /// Which batch member this chunk belongs to.
    pub slot: u32,
    /// The member's own chunk.
    pub inner: SliceChunk<u32>,
}

impl Chunk for BatchChunk {
    fn item_count(&self) -> usize {
        self.inner.item_count()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.size_bytes()
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 16 + self.inner.items.len() * 4);
        out.extend_from_slice(&self.slot.to_le_bytes());
        out.extend(self.inner.serialize());
        out
    }

    fn deserialize(bytes: &[u8]) -> Self {
        let slot = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        BatchChunk {
            slot,
            inner: SliceChunk::deserialize(&bytes[4..]),
        }
    }
}

/// Tag a member key with its batch slot.
pub fn tag_key(slot: u32, key: u32) -> u64 {
    (u64::from(slot) << 32) | u64::from(key)
}

/// The member key under a tag.
pub fn untag_key(tagged: u64) -> u32 {
    (tagged & 0xFFFF_FFFF) as u32
}

/// The batch slot of a tagged key.
pub fn slot_of(tagged: u64) -> u32 {
    (tagged >> 32) as u32
}

/// The shared-pass SIO job: plain map over tagged keys, low-bit
/// partitioning, radix sort, serial-sum reduce — the per-member pipeline
/// of [`gpmr_apps::SioJob`] lifted into the tagged key space.
#[derive(Clone, Copy, Debug, Default)]
pub struct SioBatchJob;

/// Items handled per map block (matches `SioJob`).
const ITEMS_PER_MAP_BLOCK: usize = 4096;

impl GpmrJob for SioBatchJob {
    type Chunk = BatchChunk;
    type Key = u64;
    type Value = u32;

    fn pipeline(&self) -> PipelineConfig {
        // Custom partitioning: routing must ignore the slot tag.
        PipelineConfig::default().with_partition(PartitionMode::Custom)
    }

    fn partition(&self, key: &u64, ranks: u32) -> u32 {
        // Standalone SIO routes `key % ranks`; routing on the untagged
        // low bits preserves every pair's destination rank.
        (u64::from(untag_key(*key)) % u64::from(ranks.max(1))) as u32
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u64, u32>, SimTime)> {
        let slot = chunk.slot;
        let n = chunk.inner.items.len();
        let cfg = LaunchConfig::for_items(n, ITEMS_PER_MAP_BLOCK, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            // Same read pattern as standalone SIO; the emitted pair is 4
            // bytes wider (u64 key + u32 value), charged honestly.
            ctx.charge_read::<u32>(range.len());
            ctx.charge_write::<u32>(3 * range.len());
            ctx.charge_flops(range.len() as u64);
            let mut out: KvSet<u64, u32> = KvSet::with_capacity(range.len());
            for &x in &chunk.inner.items[range] {
                out.push(tag_key(slot, x), 1);
            }
            out
        })?;
        let mut pairs = KvSet::with_capacity(n);
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u64>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u64, u32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        let cfg = LaunchConfig::for_items(segs.len(), 2048, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u64, u32> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<u32>(r.len());
                ctx.charge_flops(r.len() as u64);
                let sum = vals[r].iter().sum::<u32>();
                out.push(segs.keys[s], sum);
            }
            ctx.charge_write::<u32>(3 * out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// Wrap one member's chunks with its slot tag. Chunk ids are offset by
/// `id_base` so every chunk in the merged pass has a distinct id (the
/// scheduler and journal key on it).
pub fn tag_chunks(slot: u32, id_base: u32, chunks: Vec<SliceChunk<u32>>) -> Vec<BatchChunk> {
    chunks
        .into_iter()
        .map(|mut c| {
            c.id += id_base;
            BatchChunk { slot, inner: c }
        })
        .collect()
}

/// Split a shared pass's per-rank outputs back into per-member, per-rank
/// outputs. `members` is the batch size; the result is indexed
/// `[member][rank]` and each `KvSet<u32, u32>` is bit-identical to the
/// member's standalone per-rank reducer output.
pub fn split_outputs(outputs: &[KvSet<u64, u32>], members: usize) -> Vec<Vec<KvSet<u32, u32>>> {
    let mut per_member: Vec<Vec<KvSet<u32, u32>>> = (0..members)
        .map(|_| vec![KvSet::new(); outputs.len()])
        .collect();
    for (rank, out) in outputs.iter().enumerate() {
        for (&k, &v) in out.iter() {
            let slot = slot_of(k) as usize;
            if slot < members {
                per_member[slot][rank].push(untag_key(k), v);
            }
        }
    }
    per_member
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_round_trips() {
        let t = tag_key(3, 0xDEAD_BEEF);
        assert_eq!(slot_of(t), 3);
        assert_eq!(untag_key(t), 0xDEAD_BEEF);
    }

    #[test]
    fn batch_chunk_serialization_round_trips() {
        let c = BatchChunk {
            slot: 2,
            inner: SliceChunk::new(5, 100, vec![1u32, 2, 3]),
        };
        assert_eq!(BatchChunk::deserialize(&c.serialize()), c);
        assert_eq!(c.size_bytes(), 12, "tag must not change transfer size");
    }

    #[test]
    fn partition_ignores_slot_tag() {
        let job = SioBatchJob;
        for slot in 0..4u32 {
            for key in [0u32, 1, 7, 100, u32::MAX] {
                assert_eq!(job.partition(&tag_key(slot, key), 4), key % 4);
            }
        }
    }

    #[test]
    fn split_outputs_preserves_order_and_values() {
        // Rank output sorted slot-major, key-ascending (what radix sort
        // over tagged keys produces).
        let mut rank0: KvSet<u64, u32> = KvSet::new();
        rank0.push(tag_key(0, 4), 2);
        rank0.push(tag_key(0, 8), 1);
        rank0.push(tag_key(1, 4), 7);
        let split = split_outputs(&[rank0], 2);
        assert_eq!(split[0][0].keys, vec![4, 8]);
        assert_eq!(split[0][0].vals, vec![2, 1]);
        assert_eq!(split[1][0].keys, vec![4]);
        assert_eq!(split[1][0].vals, vec![7]);
    }
}
