//! Scripted multi-tenant workloads: a tiny line-oriented language for
//! driving a [`JobService`] deterministically, used by `gpmr serve` and
//! the multi-tenant test suite.
//!
//! ```text
//! # tenants first: name plus optional quota keys
//! tenant alice max_concurrent=2 gpu_seconds=1.5 mem_share=0.5
//! tenant bob
//!
//! # timed actions (seconds are service/simulated time)
//! at 0.000 submit alice sio n=20000 seed=1 chunk_kb=16 batch
//! at 0.001 submit alice sio n=20000 seed=2 chunk_kb=16 batch
//! at 0.002 submit bob   wo  bytes=65536 dict=512 seed=3 chunk_kb=16 deadline=0.004
//! at 0.003 submit bob   sio n=40000 seed=4 chunk_kb=16 kill=1@0.0005 priority=2
//! at 0.004 cancel job3
//! ```
//!
//! Flags: `batch` opts a job into small-job batching, `journal` runs it
//! through the write-ahead journal, `kill=R@T` fail-stops GPU `R` at `T`
//! seconds into the job, `deadline=D` cancels it `D` seconds after
//! submission if unfinished, `priority=P` orders the queue.

use std::fmt;

use gpmr_telemetry::Telemetry;

use crate::service::{JobService, ServiceConfig};
use crate::spec::{JobId, JobKind, JobSpec, JobStatus, TenantConfig};

/// A parsed workload: tenants plus timed actions in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Tenant declarations, in file order (order fixes telemetry tracks).
    pub tenants: Vec<TenantConfig>,
    /// Timed actions; ties in time preserve file order.
    pub events: Vec<(f64, Action)>,
}

/// One timed action in a workload script.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Submit a job.
    Submit(JobSpec),
    /// Cancel a job by its `job{N}` name.
    Cancel(String),
}

/// A parse failure, with its 1-based script line.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadError {
    /// 1-based line number in the script.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WorkloadError {}

fn err(line: usize, message: impl Into<String>) -> WorkloadError {
    WorkloadError {
        line,
        message: message.into(),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, val: &str) -> Result<T, WorkloadError> {
    val.parse()
        .map_err(|_| err(line, format!("bad value for {key}: {val:?}")))
}

/// Parse a workload script. Comments (`#`) and blank lines are ignored.
pub fn parse(text: &str) -> Result<Workload, WorkloadError> {
    let mut tenants: Vec<TenantConfig> = Vec::new();
    let mut events = Vec::new();
    for (ix, raw) in text.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "tenant" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "tenant needs a name"))?;
                let mut cfg = TenantConfig::unlimited(name);
                for tok in &toks[2..] {
                    let (k, v) = tok
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("expected key=value, got {tok:?}")))?;
                    match k {
                        "max_concurrent" => cfg.max_concurrent = parse_num(lineno, k, v)?,
                        "gpu_seconds" => cfg.gpu_seconds = parse_num(lineno, k, v)?,
                        "mem_share" => cfg.mem_share = parse_num(lineno, k, v)?,
                        _ => return Err(err(lineno, format!("unknown tenant key {k:?}"))),
                    }
                }
                tenants.push(cfg);
            }
            "at" => {
                let t: f64 = parse_num(
                    lineno,
                    "at",
                    toks.get(1).ok_or_else(|| err(lineno, "at needs a time"))?,
                )?;
                match toks.get(2) {
                    Some(&"submit") => {
                        let spec = parse_submit(lineno, &toks[3..])?;
                        events.push((t, Action::Submit(spec)));
                    }
                    Some(&"cancel") => {
                        let name = *toks
                            .get(3)
                            .ok_or_else(|| err(lineno, "cancel needs a job name"))?;
                        events.push((t, Action::Cancel(name.to_string())));
                    }
                    other => {
                        return Err(err(lineno, format!("unknown action {other:?}")));
                    }
                }
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }
    Ok(Workload { tenants, events })
}

fn parse_submit(lineno: usize, toks: &[&str]) -> Result<JobSpec, WorkloadError> {
    let tenant = *toks
        .first()
        .ok_or_else(|| err(lineno, "submit needs a tenant"))?;
    let kind_name = *toks
        .get(1)
        .ok_or_else(|| err(lineno, "submit needs a kind (sio|wo)"))?;
    let mut n = None;
    let mut bytes = None;
    let mut dict = 512usize;
    let mut seed = 0u64;
    let mut chunk_kb = 16usize;
    let mut priority = 0u32;
    let mut deadline = None;
    let mut batch = false;
    let mut journal = false;
    let mut kill = None;
    let mut stall = None;
    for tok in &toks[2..] {
        match *tok {
            "batch" => {
                batch = true;
                continue;
            }
            "journal" => {
                journal = true;
                continue;
            }
            _ => {}
        }
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected key=value, got {tok:?}")))?;
        match k {
            "n" => n = Some(parse_num(lineno, k, v)?),
            "bytes" => bytes = Some(parse_num(lineno, k, v)?),
            "dict" => dict = parse_num(lineno, k, v)?,
            "seed" => seed = parse_num(lineno, k, v)?,
            "chunk_kb" => chunk_kb = parse_num(lineno, k, v)?,
            "priority" => priority = parse_num(lineno, k, v)?,
            "deadline" => deadline = Some(parse_num(lineno, k, v)?),
            "kill" => {
                let (r, at) = v
                    .split_once('@')
                    .ok_or_else(|| err(lineno, format!("kill needs rank@time, got {v:?}")))?;
                kill = Some((
                    parse_num(lineno, "kill rank", r)?,
                    parse_num(lineno, "kill time", at)?,
                ));
            }
            "stall" => {
                let (r, rest) = v
                    .split_once('@')
                    .ok_or_else(|| err(lineno, format!("stall needs rank@time+dur, got {v:?}")))?;
                let (at, dur) = rest
                    .split_once('+')
                    .ok_or_else(|| err(lineno, format!("stall needs rank@time+dur, got {v:?}")))?;
                stall = Some((
                    parse_num(lineno, "stall rank", r)?,
                    parse_num(lineno, "stall time", at)?,
                    parse_num(lineno, "stall duration", dur)?,
                ));
            }
            _ => return Err(err(lineno, format!("unknown submit key {k:?}"))),
        }
    }
    let kind = match kind_name {
        "sio" => JobKind::Sio {
            n: n.ok_or_else(|| err(lineno, "sio needs n=..."))?,
            seed,
            chunk_kb,
        },
        "wo" => JobKind::Wo {
            bytes: bytes.ok_or_else(|| err(lineno, "wo needs bytes=..."))?,
            dict_words: dict,
            seed,
            chunk_kb,
        },
        other => return Err(err(lineno, format!("unknown job kind {other:?}"))),
    };
    let mut spec = JobSpec::new(tenant, kind);
    spec.priority = priority;
    spec.deadline_s = deadline;
    spec.batchable = batch;
    spec.kill = kill;
    spec.stall = stall;
    spec.journal = journal;
    Ok(spec)
}

/// Run a parsed workload against a fresh service and render a
/// deterministic plain-text report (one line per action outcome and per
/// job, then tenant and service summaries).
pub fn run(wl: &Workload, cfg: ServiceConfig, tel: Telemetry) -> (JobService, Vec<String>) {
    let mut svc = JobService::new(cfg, wl.tenants.clone(), tel);
    let mut order: Vec<usize> = (0..wl.events.len()).collect();
    // Stable by time: ties keep file order.
    order.sort_by(|&a, &b| {
        wl.events[a]
            .0
            .partial_cmp(&wl.events[b].0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut lines = Vec::new();
    for ix in order {
        let (t, action) = &wl.events[ix];
        svc.advance_to(*t);
        match action {
            Action::Submit(spec) => {
                let id = svc.submit(spec.clone());
                lines.push(format!(
                    "at {t:.6} submit {} {} -> {id} {}",
                    spec.tenant,
                    spec.kind.name(),
                    svc.poll(id).expect("just submitted").word()
                ));
            }
            Action::Cancel(name) => {
                let outcome = match JobId::parse(name) {
                    Some(id) => match svc.cancel(id) {
                        Ok(()) => "cancelled".to_string(),
                        Err(e) => e.to_string(),
                    },
                    None => format!("bad job name {name:?}"),
                };
                lines.push(format!("at {t:.6} cancel {name} -> {outcome}"));
            }
        }
    }
    let final_t = svc.drain();
    for id in svc.job_ids().collect::<Vec<_>>() {
        lines.push(job_line(&svc, id));
    }
    for t in &wl.tenants {
        lines.push(format!(
            "tenant {} spent={:.6} running={}",
            t.name,
            svc.tenant_spent(&t.name).unwrap_or(0.0),
            svc.tenant_running(&t.name).unwrap_or(0),
        ));
    }
    let by_word = |word: &str| {
        svc.job_ids()
            .filter(|&id| svc.poll(id).map(|s| s.word() == word).unwrap_or(false))
            .count()
    };
    let stats = svc.stats();
    lines.push(format!(
        "service passes={} batches={} batched_jobs={} completed={} cancelled={} deadline_missed={} failed={} rejected={} queued={} final_t={:.6}",
        stats.cluster_passes,
        stats.batches_formed,
        stats.batched_jobs,
        by_word("completed"),
        by_word("cancelled"),
        by_word("deadline-missed"),
        by_word("failed"),
        by_word("rejected"),
        svc.queue_depth(),
        final_t,
    ));
    for line in svc.slo_report().render_text().lines() {
        lines.push(line.to_string());
    }
    for a in svc.alerts() {
        lines.push(format!(
            "alert fired rule={} at={:.6} value={} threshold={}",
            a.rule, a.at_s, a.value, a.threshold
        ));
    }
    for pm in svc.postmortems() {
        lines.push(format!(
            "flight {} reason={} at={:.6}",
            pm.file_name(),
            pm.reason,
            pm.at_s
        ));
    }
    (svc, lines)
}

fn job_line(svc: &JobService, id: JobId) -> String {
    let spec = svc.spec(id).expect("known job");
    let status = svc.poll(id).expect("known job");
    let mut line = format!(
        "{id} tenant={} kind={} submit={:.6} status={}",
        spec.tenant,
        spec.kind.name(),
        svc.submitted_at(id).unwrap_or(0.0),
        status.word(),
    );
    match status {
        JobStatus::Completed {
            started_s,
            finished_s,
            wait_s,
            batched,
        } => {
            let pairs: usize = svc
                .outputs(id)
                .map(|o| o.iter().map(|k| k.len()).sum())
                .unwrap_or(0);
            line.push_str(&format!(
                " start={started_s:.6} finish={finished_s:.6} wait={wait_s:.6} batched={} pairs={pairs}",
                if batched { "yes" } else { "no" },
            ));
        }
        JobStatus::Cancelled {
            at_s,
            chunks_committed,
            chunks_released,
        } => {
            line.push_str(&format!(
                " at={at_s:.6} committed={chunks_committed} released={chunks_released}"
            ));
        }
        JobStatus::DeadlineMissed {
            deadline_s,
            chunks_committed,
            chunks_released,
        } => {
            line.push_str(&format!(
                " deadline={deadline_s:.6} committed={chunks_committed} released={chunks_released}"
            ));
        }
        JobStatus::Failed { error } => line.push_str(&format!(" error={error:?}")),
        JobStatus::Rejected(reason) => line.push_str(&format!(" reason=\"{reason}\"")),
        JobStatus::Queued | JobStatus::Running { .. } => {}
    }
    line
}

/// Parse and run a script in one step.
pub fn run_script(
    text: &str,
    cfg: ServiceConfig,
    tel: Telemetry,
) -> Result<(JobService, Vec<String>), WorkloadError> {
    let wl = parse(text)?;
    Ok(run(&wl, cfg, tel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tenants_actions_and_flags() {
        let wl = parse(
            "# demo\n\
             tenant a max_concurrent=2 gpu_seconds=1.5 mem_share=0.5\n\
             tenant b\n\
             at 0.0 submit a sio n=100 seed=1 chunk_kb=8 batch priority=3\n\
             at 0.1 submit b wo bytes=4096 dict=64 seed=2 chunk_kb=16 kill=1@0.05 deadline=0.2\n\
             at 0.2 cancel job1 # trailing comment\n",
        )
        .expect("parses");
        assert_eq!(wl.tenants.len(), 2);
        assert_eq!(wl.tenants[0].max_concurrent, 2);
        assert_eq!(wl.tenants[1].max_concurrent, u32::MAX);
        assert_eq!(wl.events.len(), 3);
        let Action::Submit(s0) = &wl.events[0].1 else {
            panic!("expected submit");
        };
        assert!(s0.batchable);
        assert_eq!(s0.priority, 3);
        let Action::Submit(s1) = &wl.events[1].1 else {
            panic!("expected submit");
        };
        assert_eq!(s1.kill, Some((1, 0.05)));
        assert_eq!(s1.deadline_s, Some(0.2));
        assert_eq!(wl.events[2].1, Action::Cancel("job1".to_string()));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        assert_eq!(parse("bogus directive").unwrap_err().line, 1);
        assert_eq!(
            parse("tenant a\nat x submit a sio n=1").unwrap_err().line,
            2
        );
        assert!(parse("at 0 submit a sio seed=1")
            .unwrap_err()
            .message
            .contains("n="));
    }
}
