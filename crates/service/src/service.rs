//! The job service: a virtual-time front end multiplexing many tenants'
//! jobs onto a pool of simulated clusters.
//!
//! ## Execution model
//!
//! The service owns a clock in simulated seconds (`now`) and a pool of
//! engine slots, each with its own [`Cluster`] — per-slot isolation is
//! what keeps a killed or journaled job from corrupting its neighbors.
//! `submit` admits (or rejects) a job and queues it; dispatch runs the
//! job's engine pass eagerly through the deterministic simulator to learn
//! its makespan, then hides the result until the clock passes the finish
//! instant. `advance_to`/`drain` replay completion and deadline events in
//! time order, so polling at any instant observes exactly the state a
//! real service would expose at that moment.
//!
//! Cancellation and deadlines stop a running job *mid-flight*: the
//! engine pass is re-run deterministically with
//! [`RunControl::stop_at`] at the cancel instant, which halts every rank
//! at a chunk boundary, drains the work queues, and returns
//! [`EngineError::Cancelled`] carrying conservation accounting
//! (committed + released chunks cover the whole input).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpmr_apps::sio::{generate_integers, sio_chunks};
use gpmr_apps::text::{chunk_text, generate_text, Dictionary};
use gpmr_apps::{SioJob, WoJob};
use gpmr_core::{
    run_job_controlled, run_job_controlled_journaled, EngineError, EngineResult, EngineTuning,
    GpmrJob, JobResult, Journal, KvSet, Pod, RunControl,
};
use gpmr_sim_gpu::{FaultPlan, GpuSpec, SimTime};
use gpmr_sim_net::Cluster;
use gpmr_telemetry::alerts::Alert;
use gpmr_telemetry::{
    AlertEngine, AlertRule, Counter, FlightRecorder, Postmortem, Telemetry, TelemetrySnapshot,
    TimeSeriesStore,
};

use crate::batch::{split_outputs, tag_chunks, SioBatchJob};
use crate::slo::{SloAccountant, SloPolicy, SloReport};
use crate::spec::{JobId, JobKind, JobSpec, JobStatus, RejectReason, ServiceError, TenantConfig};

/// Histogram bucket bounds for `service.queue_wait_s` (seconds).
pub const QUEUE_WAIT_BOUNDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Service-wide configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// GPUs per engine slot (every job sees a cluster of this size).
    pub gpus: u32,
    /// Engine-pool size: jobs running concurrently.
    pub engines: usize,
    /// Maximum queued (admitted, not yet running) jobs; submissions
    /// beyond this are rejected with [`RejectReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Batching window: queued batchable jobs submitted within this many
    /// seconds of each other may share one cluster pass.
    pub batch_window_s: f64,
    /// Maximum members in one batched pass.
    pub batch_max: usize,
    /// Engine tuning shared by every pass.
    pub tuning: EngineTuning,
    /// Continuous-observability layer: time series, alerts, SLO policy,
    /// flight recorder.
    pub obs: ObsConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            gpus: 4,
            engines: 2,
            max_queue_depth: 64,
            batch_window_s: 0.05,
            batch_max: 4,
            tuning: EngineTuning::default(),
            obs: ObsConfig::default(),
        }
    }
}

/// Observability configuration. The windowed time-series layer (and with
/// it the alert engine) is active only when the service's [`Telemetry`]
/// handle is enabled — disabled telemetry keeps the pre-observability
/// fast path bit-for-bit. The flight recorder owns its own bounded ring
/// and works regardless.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsConfig {
    /// Sliding-window length for windowed series, simulated seconds.
    pub window_s: f64,
    /// Ring buckets per window (time resolution of windowed queries).
    pub resolution: usize,
    /// Alert rules evaluated at every event boundary.
    pub alerts: Vec<AlertRule>,
    /// Flight-recorder ring capacity in spans; 0 disables postmortems.
    pub flight_capacity: usize,
    /// Error-budget policy for SLO reports.
    pub slo: SloPolicy,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            window_s: 1.0,
            resolution: 20,
            alerts: Vec::new(),
            flight_capacity: 0,
            slo: SloPolicy::default(),
        }
    }
}

struct TenantState {
    cfg: TenantConfig,
    track: u32,
    running: u32,
    gpu_seconds_spent: f64,
}

struct JobRecord {
    spec: JobSpec,
    submit_s: f64,
    status: JobStatus,
    outputs: Option<Vec<KvSet<u32, u32>>>,
}

/// One occupied engine slot: a (possibly batched) cluster pass whose
/// result is known to the simulator but hidden from the API until the
/// clock reaches `finish_s`.
struct Pass {
    members: Vec<JobId>,
    started_s: f64,
    finish_s: f64,
    batched: bool,
    /// Speculative per-member, per-rank outputs, aligned with `members`.
    results: Vec<Vec<KvSet<u32, u32>>>,
    /// Engine-scoped telemetry captured for the pass (flight recorder
    /// enabled and the solo spec injects a fault), for postmortem splice.
    capture: Option<TelemetrySnapshot>,
}

/// Plain pass/batch tallies, kept independently of telemetry so reports
/// work with a disabled registry too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cluster passes dispatched (a batch counts once).
    pub cluster_passes: u64,
    /// Batched passes among them.
    pub batches_formed: u64,
    /// Jobs that rode in a batched pass.
    pub batched_jobs: u64,
    /// Jobs that reached [`JobStatus::Completed`].
    pub completed: u64,
    /// Jobs that reached [`JobStatus::Cancelled`].
    pub cancelled: u64,
    /// Jobs that reached [`JobStatus::DeadlineMissed`].
    pub deadline_missed: u64,
    /// Jobs that reached [`JobStatus::Failed`].
    pub failed: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Alerts fired so far.
    pub alerts_fired: u64,
    /// Postmortem traces dumped so far.
    pub postmortems: u64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Event {
    /// A pass on slot `.0` completes.
    Finish(usize),
    /// A live job's deadline passes.
    Deadline(JobId),
}

/// The multi-tenant job service. See the module docs for the model.
pub struct JobService {
    cfg: ServiceConfig,
    tel: Telemetry,
    now: f64,
    tenants: Vec<TenantState>,
    tenant_ix: HashMap<String, usize>,
    jobs: Vec<JobRecord>,
    /// Admitted jobs awaiting dispatch, in submission order.
    queue: Vec<JobId>,
    clusters: Vec<Cluster>,
    running: Vec<Option<Pass>>,
    service_track: u32,
    stats: ServiceStats,
    slo: SloAccountant,
    ts: Option<TimeSeriesStore>,
    alert_eng: Option<AlertEngine>,
    flight: Option<FlightRecorder>,
}

impl JobService {
    /// Build a service with its tenant set. Tenant `i` owns telemetry
    /// track `i` (named `tenant <name>`); the service's own samples go to
    /// the track after the last tenant.
    pub fn new(cfg: ServiceConfig, tenants: Vec<TenantConfig>, tel: Telemetry) -> Self {
        let engines = cfg.engines.max(1);
        let clusters = (0..engines)
            .map(|_| Cluster::accelerator(cfg.gpus.max(1), GpuSpec::gt200()))
            .collect();
        let mut tenant_ix = HashMap::new();
        let tenants: Vec<TenantState> = tenants
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| {
                tel.set_track_name(i as u32, &format!("tenant {}", cfg.name));
                tenant_ix.insert(cfg.name.clone(), i);
                TenantState {
                    cfg,
                    track: i as u32,
                    running: 0,
                    gpu_seconds_spent: 0.0,
                }
            })
            .collect();
        let service_track = tenants.len() as u32;
        tel.set_track_name(service_track, "service");
        let names: Vec<String> = tenants.iter().map(|t| t.cfg.name.clone()).collect();
        let slo = SloAccountant::new(cfg.obs.slo, &names);
        let ts = (cfg.obs.window_s > 0.0 && tel.is_enabled())
            .then(|| TimeSeriesStore::new(cfg.obs.window_s, cfg.obs.resolution));
        let alert_eng = (ts.is_some() && !cfg.obs.alerts.is_empty())
            .then(|| AlertEngine::new(cfg.obs.alerts.clone()));
        let flight = (cfg.obs.flight_capacity > 0).then(|| {
            let fr = FlightRecorder::new(cfg.obs.flight_capacity);
            for t in &tenants {
                fr.ring()
                    .set_track_name(t.track, &format!("tenant {}", t.cfg.name));
            }
            fr.ring().set_track_name(service_track, "service");
            fr
        });
        JobService {
            cfg,
            tel,
            now: 0.0,
            tenants,
            tenant_ix,
            jobs: Vec::new(),
            queue: Vec::new(),
            clusters,
            running: (0..engines).map(|_| None).collect(),
            service_track,
            stats: ServiceStats::default(),
            slo,
            ts,
            alert_eng,
            flight,
        }
    }

    /// Pass and batching tallies.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The service clock, in simulated seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Jobs admitted but not yet running.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// A tenant's currently-running job count (for quota tests).
    pub fn tenant_running(&self, name: &str) -> Option<u32> {
        self.tenant_ix.get(name).map(|&i| self.tenants[i].running)
    }

    /// GPU-seconds charged to a tenant so far.
    pub fn tenant_spent(&self, name: &str) -> Option<f64> {
        self.tenant_ix
            .get(name)
            .map(|&i| self.tenants[i].gpu_seconds_spent)
    }

    /// The service's telemetry handle (counters, spans, tracks).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Point-in-time per-tenant SLO report as of the current clock.
    pub fn slo_report(&self) -> SloReport {
        self.slo.report(self.now)
    }

    /// Alerts fired so far, in firing order (empty when no rules).
    pub fn alerts(&self) -> &[Alert] {
        self.alert_eng.as_ref().map_or(&[], AlertEngine::fired)
    }

    /// Postmortem traces dumped so far (empty when the flight recorder
    /// is off).
    pub fn postmortems(&self) -> &[Postmortem] {
        self.flight
            .as_ref()
            .map_or(&[], FlightRecorder::postmortems)
    }

    /// The windowed time-series store, when observability is active.
    pub fn timeseries(&self) -> Option<&TimeSeriesStore> {
        self.ts.as_ref()
    }

    /// Submit a job. Always returns an id; rejected submissions surface
    /// through [`JobService::poll`] as [`JobStatus::Rejected`].
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.jobs.len() as u64 + 1);
        let status = match self.admit(&spec) {
            Ok(()) => JobStatus::Queued,
            Err(reason) => JobStatus::Rejected(reason),
        };
        let admitted = status == JobStatus::Queued;
        self.jobs.push(JobRecord {
            spec,
            submit_s: self.now,
            status,
            outputs: None,
        });
        if let Some(t) = self.tenant_of(id) {
            let track = self.tenants[t].track;
            if admitted {
                self.counter(&format!("service.tenant{track}.jobs_admitted"))
                    .inc();
            } else {
                self.counter(&format!("service.tenant{track}.jobs_rejected"))
                    .inc();
            }
        }
        if let Some(t) = self.tenant_of(id) {
            self.slo.record_submit(t, admitted);
        }
        if admitted {
            self.queue.push(id);
            self.sample_queue_depth();
            self.try_dispatch();
        } else {
            self.stats.rejected += 1;
            self.counter("service.jobs_rejected").inc();
        }
        self.observe_boundary();
        id
    }

    /// Current status of a job.
    pub fn poll(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        self.record(id)
            .map(|r| r.status.clone())
            .ok_or(ServiceError::UnknownJob(id))
    }

    /// Cancel a queued or running job at the current instant. A running
    /// solo job is stopped mid-flight (its engine pass re-runs
    /// deterministically with `stop_at`, releasing queued chunks and
    /// device memory); a batched member is discarded while its pass
    /// continues for the other members.
    pub fn cancel(&mut self, id: JobId) -> Result<(), ServiceError> {
        let rec = self.record(id).ok_or(ServiceError::UnknownJob(id))?;
        if !rec.status.is_live() {
            return Err(ServiceError::NotCancellable(id));
        }
        let at = self.now;
        match rec.status.clone() {
            JobStatus::Queued => {
                self.remove_queued(id);
                self.finalize(
                    id,
                    JobStatus::Cancelled {
                        at_s: at,
                        chunks_committed: 0,
                        chunks_released: 0,
                    },
                    None,
                    0.0,
                );
                self.dump_postmortem("cancelled", id, at, None);
            }
            JobStatus::Running { started_s } => {
                let (committed, released, cost, capture) = self.stop_running(id, started_s, at);
                self.finalize(
                    id,
                    JobStatus::Cancelled {
                        at_s: at,
                        chunks_committed: committed,
                        chunks_released: released,
                    },
                    Some(started_s),
                    cost,
                );
                self.dump_postmortem("cancelled", id, at, capture.map(|c| (c, started_s)));
                self.try_dispatch();
            }
            _ => unreachable!("is_live checked above"),
        }
        self.stats.cancelled += 1;
        self.counter("service.jobs_cancelled").inc();
        self.observe_boundary();
        Ok(())
    }

    /// Per-rank outputs of a completed job.
    pub fn outputs(&self, id: JobId) -> Option<&[KvSet<u32, u32>]> {
        self.record(id)?.outputs.as_deref()
    }

    /// All output pairs of a completed job, concatenated in rank order.
    pub fn merged_output(&self, id: JobId) -> Option<KvSet<u32, u32>> {
        let outs = self.outputs(id)?;
        let mut merged = KvSet::new();
        for o in outs {
            merged.extend_from_set(o);
        }
        Some(merged)
    }

    /// When a job was submitted (service seconds).
    pub fn submitted_at(&self, id: JobId) -> Option<f64> {
        self.record(id).map(|r| r.submit_s)
    }

    /// The job's spec, as submitted.
    pub fn spec(&self, id: JobId) -> Option<&JobSpec> {
        self.record(id).map(|r| &r.spec)
    }

    /// Ids of every job ever submitted, in submission order.
    pub fn job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        (1..=self.jobs.len() as u64).map(JobId)
    }

    /// Advance the clock to `t`, replaying completion and deadline events
    /// in time order.
    pub fn advance_to(&mut self, t: f64) {
        while let Some((te, ev)) = self.next_event_at_or_before(t) {
            self.now = self.now.max(te);
            self.handle(ev);
            // Sample at every event boundary, not just on transitions:
            // the queue-depth series must integrate to the total queue
            // wait (Little's law) rather than going stale between events.
            self.sample_queue_depth();
            self.observe_boundary();
        }
        self.now = self.now.max(t);
    }

    /// Run the clock forward until no completion or deadline event
    /// remains. Jobs blocked behind an exhausted budget or concurrency
    /// cap stay `Queued` (they are reported, not dropped). Returns the
    /// final clock.
    pub fn drain(&mut self) -> f64 {
        while let Some((te, ev)) = self.next_event_at_or_before(f64::INFINITY) {
            self.now = self.now.max(te);
            self.handle(ev);
            self.sample_queue_depth();
            self.observe_boundary();
        }
        self.now
    }

    // --- admission -------------------------------------------------------

    fn admit(&self, spec: &JobSpec) -> Result<(), RejectReason> {
        let Some(&tix) = self.tenant_ix.get(&spec.tenant) else {
            return Err(RejectReason::UnknownTenant);
        };
        let tenant = &self.tenants[tix];
        if self.queue.len() >= self.cfg.max_queue_depth {
            return Err(RejectReason::QueueFull {
                depth: self.queue.len(),
                max: self.cfg.max_queue_depth,
            });
        }
        // The engine's ChunkTooLarge staging formula, against the
        // tenant's memory share instead of raw capacity.
        let slots = self.cfg.tuning.staging_slots(false);
        let budget_bytes =
            (GpuSpec::gt200().mem_capacity as f64 * tenant.cfg.mem_share.clamp(0.0, 1.0)) as u64;
        let chunk_bytes = spec.kind.chunk_bytes();
        if chunk_bytes.saturating_mul(slots) > budget_bytes {
            return Err(RejectReason::MemoryExceeded {
                chunk_bytes,
                slots,
                budget_bytes,
            });
        }
        if tenant.gpu_seconds_spent >= tenant.cfg.gpu_seconds {
            return Err(RejectReason::BudgetExhausted {
                spent_s: tenant.gpu_seconds_spent,
                budget_s: tenant.cfg.gpu_seconds,
            });
        }
        Ok(())
    }

    // --- event loop ------------------------------------------------------

    /// Earliest pending event at or before `t`. Ties break finish before
    /// deadline (a job finishing exactly at its deadline met it), then by
    /// slot/job id — fully deterministic.
    fn next_event_at_or_before(&self, t: f64) -> Option<(f64, Event)> {
        let mut best: Option<(f64, u8, u64, Event)> = None;
        let mut consider = |time: f64, rank: u8, id: u64, ev: Event| {
            if time > t {
                return;
            }
            let key = (time, rank, id);
            if best.is_none_or(|(bt, br, bi, _)| key < (bt, br, bi)) {
                best = Some((time, rank, id, ev));
            }
        };
        for (slot, pass) in self.running.iter().enumerate() {
            if let Some(p) = pass {
                consider(p.finish_s, 0, slot as u64, Event::Finish(slot));
            }
        }
        for (ix, rec) in self.jobs.iter().enumerate() {
            if !rec.status.is_live() {
                continue;
            }
            if let Some(d) = rec.spec.deadline_s {
                let id = JobId(ix as u64 + 1);
                consider(rec.submit_s + d, 1, id.0, Event::Deadline(id));
            }
        }
        best.map(|(time, _, _, ev)| (time, ev))
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Finish(slot) => self.finish_pass(slot),
            Event::Deadline(id) => self.miss_deadline(id),
        }
        self.try_dispatch();
    }

    fn finish_pass(&mut self, slot: usize) {
        let pass = self.running[slot]
            .take()
            .expect("finish event for empty slot");
        let n = pass.members.len() as f64;
        let pass_cost = (pass.finish_s - pass.started_s) * f64::from(self.cfg.gpus);
        for (member, outputs) in pass.members.iter().zip(pass.results) {
            let rec = self.record(*member).expect("pass member exists");
            // A member cancelled or deadline-missed mid-pass is already
            // terminal; its share of the pass is discarded.
            if !matches!(rec.status, JobStatus::Running { .. }) {
                continue;
            }
            let submit_s = rec.submit_s;
            let lost_gpu = rec.spec.kill.is_some();
            self.jobs[(member.0 - 1) as usize].outputs = Some(outputs);
            self.finalize(
                *member,
                JobStatus::Completed {
                    started_s: pass.started_s,
                    finished_s: pass.finish_s,
                    wait_s: pass.started_s - submit_s,
                    batched: pass.batched,
                },
                Some(pass.started_s),
                pass_cost / n,
            );
            self.stats.completed += 1;
            self.counter("service.jobs_completed").inc();
            // The pass survived a GPU fail-stop: the job completed, but
            // the loss itself is postmortem-worthy.
            if lost_gpu {
                self.dump_postmortem(
                    "gpu-lost",
                    *member,
                    pass.finish_s,
                    pass.capture.clone().map(|c| (c, pass.started_s)),
                );
            }
        }
    }

    fn miss_deadline(&mut self, id: JobId) {
        let rec = self.record(id).expect("deadline event for known job");
        let deadline_s = rec.submit_s + rec.spec.deadline_s.expect("deadline event needs deadline");
        let track = self.tenant_of(id).map(|t| self.tenants[t].track);
        match rec.status.clone() {
            JobStatus::Queued => {
                self.remove_queued(id);
                self.finalize(
                    id,
                    JobStatus::DeadlineMissed {
                        deadline_s,
                        chunks_committed: 0,
                        chunks_released: 0,
                    },
                    None,
                    0.0,
                );
                // No engine pass to splice; the service ring already
                // holds the job's QueueWait span.
                self.dump_postmortem("deadline-missed", id, deadline_s, None);
            }
            JobStatus::Running { started_s } => {
                let (committed, released, cost, capture) =
                    self.stop_running(id, started_s, deadline_s);
                self.finalize(
                    id,
                    JobStatus::DeadlineMissed {
                        deadline_s,
                        chunks_committed: committed,
                        chunks_released: released,
                    },
                    Some(started_s),
                    cost,
                );
                self.dump_postmortem(
                    "deadline-missed",
                    id,
                    deadline_s,
                    capture.map(|c| (c, started_s)),
                );
            }
            _ => return,
        }
        self.stats.deadline_missed += 1;
        self.counter("service.deadline_missed").inc();
        if let Some(track) = track {
            self.counter(&format!("service.tenant{track}.deadline_missed"))
                .inc();
        }
    }

    /// Stop a running job at `at` (absolute service seconds). For a solo
    /// pass the engine re-runs deterministically with `stop_at` and the
    /// slot frees at the stop instant; a batched member is discarded from
    /// its pass (which keeps running for the other members). Returns the
    /// engine's conservation accounting, the GPU-seconds to charge, and —
    /// when the flight recorder is on — the engine-scoped telemetry of
    /// the stopped pass for the postmortem splice.
    fn stop_running(
        &mut self,
        id: JobId,
        started_s: f64,
        at: f64,
    ) -> (u32, u32, f64, Option<TelemetrySnapshot>) {
        let slot = self
            .running
            .iter()
            .position(|p| p.as_ref().is_some_and(|p| p.members.contains(&id)))
            .expect("running job has a slot");
        let elapsed = (at - started_s).max(0.0);
        let members = self.running[slot].as_ref().map_or(1, |p| p.members.len());
        if members > 1 {
            let pass = self.running[slot].as_mut().expect("slot occupied");
            let ix = pass.members.iter().position(|m| *m == id).expect("member");
            pass.results[ix] = Vec::new();
            let cost = elapsed * f64::from(self.cfg.gpus) / members as f64;
            return (0, 0, cost, None);
        }
        self.running[slot] = None;
        let spec = self.jobs[(id.0 - 1) as usize].spec.clone();
        let control = RunControl::stop_at(SimTime::from_secs(elapsed));
        let cost = elapsed * f64::from(self.cfg.gpus);
        let capture = self.engine_capture();
        let outcome = run_solo(
            &mut self.clusters[slot],
            &spec,
            self.cfg.gpus,
            &self.cfg.tuning,
            &capture,
            &control,
        );
        let snap = capture.is_enabled().then(|| capture.snapshot());
        match outcome {
            Err(EngineError::Cancelled {
                chunks_committed,
                chunks_released,
                ..
            }) => (chunks_committed, chunks_released, cost, snap),
            // The stop instant landed after the job's own completion or
            // the job failed before reaching it; nothing left to release.
            Ok(result) => (result.timings.chunks_per_rank.iter().sum(), 0, cost, snap),
            Err(_) => (0, 0, cost, snap),
        }
    }

    // --- dispatch --------------------------------------------------------

    /// A queued job is dispatchable when its tenant is under its
    /// concurrency cap and still has budget.
    fn dispatchable(&self, id: JobId, extra_running: &HashMap<usize, u32>) -> bool {
        let Some(tix) = self.tenant_of(id) else {
            return false;
        };
        let t = &self.tenants[tix];
        let running = t.running + extra_running.get(&tix).copied().unwrap_or(0);
        running < t.cfg.max_concurrent && t.gpu_seconds_spent < t.cfg.gpu_seconds
    }

    fn try_dispatch(&mut self) {
        loop {
            let Some(slot) = self.running.iter().position(Option::is_none) else {
                return;
            };
            let none = HashMap::new();
            // Highest priority first; submission order breaks ties.
            let Some(&lead) = self
                .queue
                .iter()
                .filter(|&&id| self.dispatchable(id, &none))
                .max_by_key(|&&id| {
                    (
                        self.jobs[(id.0 - 1) as usize].spec.priority,
                        std::cmp::Reverse(id.0),
                    )
                })
            else {
                return;
            };
            let members = self.gather_batch(lead);
            self.dispatch_pass(slot, members);
        }
    }

    /// Starting from the chosen lead job, gather queued batchable jobs
    /// submitted within the batching window (respecting every tenant's
    /// concurrency cap as members accumulate), up to `batch_max`.
    fn gather_batch(&self, lead: JobId) -> Vec<JobId> {
        let lead_rec = &self.jobs[(lead.0 - 1) as usize];
        if !lead_rec.spec.can_batch() || self.cfg.batch_max < 2 {
            return vec![lead];
        }
        let window = self.cfg.batch_window_s;
        let lead_submit = lead_rec.submit_s;
        let mut members = vec![lead];
        let mut extra: HashMap<usize, u32> = HashMap::new();
        if let Some(t) = self.tenant_of(lead) {
            *extra.entry(t).or_default() += 1;
        }
        for &id in &self.queue {
            if members.len() >= self.cfg.batch_max {
                break;
            }
            if id == lead {
                continue;
            }
            let rec = &self.jobs[(id.0 - 1) as usize];
            if !rec.spec.can_batch()
                || (rec.submit_s - lead_submit).abs() > window
                || !self.dispatchable(id, &extra)
            {
                continue;
            }
            members.push(id);
            if let Some(t) = self.tenant_of(id) {
                *extra.entry(t).or_default() += 1;
            }
        }
        members
    }

    fn dispatch_pass(&mut self, slot: usize, members: Vec<JobId>) {
        let started_s = self.now;
        for &id in &members {
            self.remove_queued(id);
        }
        let batched = members.len() > 1;
        let mut capture = None;
        let outcome = if batched {
            let specs: Vec<JobSpec> = members
                .iter()
                .map(|id| self.jobs[(id.0 - 1) as usize].spec.clone())
                .collect();
            run_batch(&mut self.clusters[slot], &specs, &self.cfg.tuning)
        } else {
            let spec = self.jobs[(members[0].0 - 1) as usize].spec.clone();
            // Capture engine telemetry only for fault-injected passes —
            // they are the GpuLost postmortem candidates.
            let tel = if spec.kill.is_some() || spec.stall.is_some() {
                self.engine_capture()
            } else {
                Telemetry::disabled()
            };
            let result = run_solo(
                &mut self.clusters[slot],
                &spec,
                self.cfg.gpus,
                &self.cfg.tuning,
                &tel,
                &RunControl::unrestricted(),
            );
            capture = tel.is_enabled().then(|| tel.snapshot());
            result.map(|r| {
                let makespan = r.timings.total.as_secs();
                (vec![r.outputs], makespan)
            })
        };
        match outcome {
            Ok((results, makespan_s)) => {
                for &id in &members {
                    self.jobs[(id.0 - 1) as usize].status = JobStatus::Running { started_s };
                    if let Some(t) = self.tenant_of(id) {
                        self.tenants[t].running += 1;
                    }
                    let wait = started_s - self.jobs[(id.0 - 1) as usize].submit_s;
                    self.tel
                        .histogram("service.queue_wait_s", QUEUE_WAIT_BOUNDS)
                        .observe(wait);
                }
                self.stats.cluster_passes += 1;
                self.counter("service.cluster_passes").inc();
                if batched {
                    self.stats.batches_formed += 1;
                    self.stats.batched_jobs += members.len() as u64;
                    self.counter("service.batches_formed").inc();
                    self.counter("service.batched_jobs")
                        .add(members.len() as u64);
                }
                self.running[slot] = Some(Pass {
                    members,
                    started_s,
                    finish_s: started_s + makespan_s,
                    batched,
                    results,
                    capture,
                });
            }
            Err(e) => {
                for &id in &members {
                    self.finalize(
                        id,
                        JobStatus::Failed {
                            error: e.to_string(),
                        },
                        Some(started_s),
                        0.0,
                    );
                    self.stats.failed += 1;
                    self.counter("service.jobs_failed").inc();
                }
            }
        }
    }

    // --- bookkeeping -----------------------------------------------------

    /// Move a job to a terminal state: set the status, emit its queue-wait
    /// and execution spans, release its tenant concurrency slot if it was
    /// running, and charge `gpu_seconds` to the tenant's budget.
    /// `started_s` is the dispatch instant for jobs that ran (None for
    /// jobs that never left the queue).
    fn finalize(&mut self, id: JobId, status: JobStatus, started_s: Option<f64>, gpu_seconds: f64) {
        let ix = (id.0 - 1) as usize;
        let was_running = matches!(self.jobs[ix].status, JobStatus::Running { .. });
        let submit_s = self.jobs[ix].submit_s;
        let kind = self.jobs[ix].spec.kind.name();
        self.jobs[ix].status = status.clone();
        let Some(t) = self.tenant_of(id) else {
            return;
        };
        if was_running {
            self.tenants[t].running = self.tenants[t].running.saturating_sub(1);
        }
        self.tenants[t].gpu_seconds_spent += gpu_seconds;
        let track = self.tenants[t].track;
        let end_s = match status {
            JobStatus::Completed { finished_s, .. } => finished_s,
            JobStatus::Cancelled { at_s, .. } => at_s,
            JobStatus::DeadlineMissed { deadline_s, .. } => deadline_s,
            _ => self.now,
        };
        self.slo
            .record_terminal(t, &status, submit_s, started_s, end_s, gpu_seconds);
        // Queue wait is a first-class stage: `gpmr analyze` attributes it
        // separately from engine execution time. The same spans are
        // mirrored into the flight ring so a postmortem dump always
        // carries the triggering job.
        let wait_end = started_s.unwrap_or(end_s).max(submit_s);
        let emit = |tel: &Telemetry| {
            tel.span(track, "QueueWait", submit_s, wait_end)
                .name(format!("{id} wait"))
                .attr("job", id.to_string())
                .attr("kind", kind)
                .record();
            if let Some(s) = started_s {
                tel.span(track, "Job", s.min(end_s), end_s)
                    .name(id.to_string())
                    .attr("job", id.to_string())
                    .attr("kind", kind)
                    .attr("outcome", status.word())
                    .record();
            }
        };
        emit(&self.tel);
        if let Some(f) = &self.flight {
            emit(f.ring());
        }
    }

    fn remove_queued(&mut self, id: JobId) {
        self.queue.retain(|&q| q != id);
        self.sample_queue_depth();
    }

    fn sample_queue_depth(&self) {
        let depth = self.queue.len() as f64;
        self.tel.gauge("service.queue_depth").set(depth);
        self.tel
            .sample(self.service_track, "service.queue_depth", self.now, depth);
        if let Some(f) = &self.flight {
            f.ring()
                .sample(self.service_track, "service.queue_depth", self.now, depth);
        }
    }

    /// Feed the windowed time series from the registry and evaluate the
    /// alert rules. Called at every event boundary (submit, cancel, and
    /// each replayed completion/deadline event), so windows and alert
    /// firings are a deterministic function of the virtual clock.
    fn observe_boundary(&mut self) {
        let Some(ts) = &mut self.ts else {
            return;
        };
        if let Some(reg) = self.tel.registry() {
            ts.collect(self.now, &reg.snapshot());
        }
        let Some(eng) = &mut self.alert_eng else {
            return;
        };
        for alert in eng.eval(self.now, ts) {
            self.stats.alerts_fired += 1;
            if let Some(f) = &mut self.flight {
                f.dump("alert", &alert.rule, alert.at_s, None);
                self.stats.postmortems += 1;
            }
        }
    }

    /// A bounded telemetry handle for capturing one engine pass when the
    /// flight recorder is on; disabled otherwise (zero engine overhead).
    fn engine_capture(&self) -> Telemetry {
        match &self.flight {
            Some(_) => Telemetry::with_capacity(self.cfg.obs.flight_capacity),
            None => Telemetry::disabled(),
        }
    }

    /// Dump a postmortem for `id`, splicing in the engine telemetry of
    /// the triggering pass when captured (`started_s` places the engine's
    /// zero-based clock on the service timeline; engine rank tracks land
    /// past the service track).
    fn dump_postmortem(
        &mut self,
        reason: &str,
        id: JobId,
        at_s: f64,
        engine: Option<(TelemetrySnapshot, f64)>,
    ) {
        let track_offset = self.service_track + 1;
        let Some(f) = &mut self.flight else {
            return;
        };
        let subject = id.to_string();
        let engine = engine
            .as_ref()
            .map(|(snap, started_s)| (snap, *started_s, track_offset));
        f.dump(reason, &subject, at_s, engine);
        self.stats.postmortems += 1;
    }

    fn counter(&self, name: &str) -> Counter {
        self.tel.counter(name)
    }

    fn record(&self, id: JobId) -> Option<&JobRecord> {
        if id.0 == 0 {
            return None;
        }
        self.jobs.get((id.0 - 1) as usize)
    }

    fn tenant_of(&self, id: JobId) -> Option<usize> {
        self.record(id)
            .and_then(|r| self.tenant_ix.get(&r.spec.tenant).copied())
    }
}

// --- engine pass helpers -------------------------------------------------

static JOURNAL_SEQ: AtomicU64 = AtomicU64::new(0);

fn journal_temp_path() -> PathBuf {
    let seq = JOURNAL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gpmr-service-{}-{}.jnl", std::process::id(), seq))
}

fn run_engine<J>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    tel: &Telemetry,
    journaled: bool,
    control: &RunControl,
) -> EngineResult<JobResult<J::Key, J::Value>>
where
    J: GpmrJob,
    J::Key: Pod,
    J::Value: Pod,
{
    if journaled {
        // The journal layer is file-based; service-managed jobs journal
        // into a throwaway path that lives only for the pass.
        let path = journal_temp_path();
        let mut journal = Journal::create(&path, 1)?;
        let result =
            run_job_controlled_journaled(cluster, job, chunks, tuning, tel, &mut journal, control);
        drop(journal);
        let _ = std::fs::remove_file(&path);
        result
    } else {
        run_job_controlled(cluster, job, chunks, tuning, tel, control)
    }
}

/// Run one job's engine pass on `cluster`, regenerating its input from
/// the spec (deterministic: a rerun sees bit-identical chunks).
fn run_solo(
    cluster: &mut Cluster,
    spec: &JobSpec,
    gpus: u32,
    tuning: &EngineTuning,
    tel: &Telemetry,
    control: &RunControl,
) -> EngineResult<JobResult<u32, u32>> {
    let mut plan: Option<FaultPlan> = None;
    if let Some((rank, at_s)) = spec.kill.filter(|&(rank, _)| rank < gpus) {
        plan = Some(plan.unwrap_or_default().kill(rank, at_s));
    }
    if let Some((rank, at_s, dur_s)) = spec.stall.filter(|&(rank, _, _)| rank < gpus) {
        plan = Some(plan.unwrap_or_default().stall(rank, at_s, dur_s));
    }
    cluster.set_fault_plan(plan);
    let result = match spec.kind {
        JobKind::Sio { n, seed, chunk_kb } => {
            let data = generate_integers(n, seed);
            let chunks = sio_chunks(&data, chunk_kb * 1024);
            run_engine(
                cluster,
                &SioJob::default(),
                chunks,
                tuning,
                tel,
                spec.journal,
                control,
            )
        }
        JobKind::Wo {
            bytes,
            dict_words,
            seed,
            chunk_kb,
        } => {
            let dict = Arc::new(Dictionary::generate(dict_words, seed));
            let text = generate_text(&dict, bytes, seed + 1);
            let chunks = chunk_text(&text, chunk_kb * 1024);
            let job = WoJob::new(dict, gpus);
            run_engine(cluster, &job, chunks, tuning, tel, spec.journal, control)
        }
    };
    cluster.set_fault_plan(None);
    result
}

/// Run a batched pass: tag every member's chunks with its batch slot,
/// run one merged SIO pipeline, and split the outputs back per member.
/// Returns per-member, per-rank outputs plus the shared makespan.
#[allow(clippy::type_complexity)]
fn run_batch(
    cluster: &mut Cluster,
    specs: &[JobSpec],
    tuning: &EngineTuning,
) -> EngineResult<(Vec<Vec<KvSet<u32, u32>>>, f64)> {
    let mut all = Vec::new();
    let mut id_base = 0u32;
    for (slot, spec) in specs.iter().enumerate() {
        let JobKind::Sio { n, seed, chunk_kb } = spec.kind else {
            unreachable!("only SIO jobs are batchable");
        };
        let data = generate_integers(n, seed);
        let chunks = sio_chunks(&data, chunk_kb * 1024);
        let count = chunks.len() as u32;
        all.extend(tag_chunks(slot as u32, id_base, chunks));
        id_base += count;
    }
    cluster.set_fault_plan(None);
    let result = run_engine(
        cluster,
        &SioBatchJob,
        all,
        tuning,
        &Telemetry::disabled(),
        false,
        &RunControl::unrestricted(),
    )?;
    let makespan = result.timings.total.as_secs();
    Ok((split_outputs(&result.outputs, specs.len()), makespan))
}
