//! Job specifications, tenant quotas, and the status/error vocabulary of
//! the service API.

use std::fmt;

/// Opaque handle returned by [`JobService::submit`](crate::JobService::submit).
///
/// Displays as `job{N}` with `N` starting at 1 in submission order, which
/// is also the name used by workload scripts (`cancel job3`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl JobId {
    /// Parse a `job{N}` name back into an id (used by workload scripts).
    pub fn parse(s: &str) -> Option<JobId> {
        let n = s.strip_prefix("job")?.parse().ok()?;
        Some(JobId(n))
    }
}

/// What workload a job runs. Both kinds regenerate their input
/// deterministically from the seed, so a job is fully described by its
/// spec — reruns (cancellation replay, standalone comparison) see
/// bit-identical inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobKind {
    /// Sparse-integer-occurrence count (the paper's SIO benchmark):
    /// `n` random integers, chunked at `chunk_kb` KiB.
    Sio {
        /// Number of input integers.
        n: usize,
        /// Input generator seed.
        seed: u64,
        /// Chunk size in KiB.
        chunk_kb: usize,
    },
    /// Word occurrence (the paper's WO benchmark): `bytes` of generated
    /// text over a `dict_words`-word dictionary, chunked at `chunk_kb` KiB.
    Wo {
        /// Text size in bytes.
        bytes: usize,
        /// Dictionary size in words.
        dict_words: usize,
        /// Input generator seed.
        seed: u64,
        /// Chunk size in KiB.
        chunk_kb: usize,
    },
}

impl JobKind {
    /// Short kind name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Sio { .. } => "sio",
            JobKind::Wo { .. } => "wo",
        }
    }

    /// The largest chunk the job will stage, in bytes — the quantity the
    /// `ChunkTooLarge` admission formula multiplies by the staging-slot
    /// count.
    pub fn chunk_bytes(&self) -> u64 {
        match self {
            JobKind::Sio { chunk_kb, .. } | JobKind::Wo { chunk_kb, .. } => {
                (*chunk_kb as u64) * 1024
            }
        }
    }

    /// Whether this kind is eligible for small-job batching. Only plain
    /// SIO qualifies: WO runs in Accumulate mode (per-job resident device
    /// state) which cannot share a cluster pass.
    pub fn batchable_kind(&self) -> bool {
        matches!(self, JobKind::Sio { .. })
    }
}

/// A job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Owning tenant (must be registered with the service).
    pub tenant: String,
    /// The workload.
    pub kind: JobKind,
    /// Dispatch priority among queued jobs (higher first; ties break by
    /// submission order).
    pub priority: u32,
    /// Deadline in seconds after submission. A job that has not finished
    /// by its deadline is cancelled mid-flight and surfaced as
    /// [`JobStatus::DeadlineMissed`].
    pub deadline_s: Option<f64>,
    /// Opt in to small-job batching (only honored for batchable kinds
    /// with no fault plan and no journal).
    pub batchable: bool,
    /// Inject a GPU fail-stop: kill `rank` at `at_s` seconds after the
    /// job starts (fault-tolerance exercise; the job recovers on the
    /// surviving ranks with output unchanged).
    pub kill: Option<(u32, f64)>,
    /// Inject a stall: freeze `rank` at `at_s` for `dur_s` seconds. Like
    /// `kill`, a per-job fault plan (excludes the job from batching).
    pub stall: Option<(u32, f64, f64)>,
    /// Run with a write-ahead journal (the journal lives for the run and
    /// is dropped after; exercises the journaled engine path under
    /// multi-tenancy).
    pub journal: bool,
}

impl JobSpec {
    /// A plain spec with defaults: priority 0, no deadline, no batching,
    /// no faults, no journal.
    pub fn new(tenant: impl Into<String>, kind: JobKind) -> Self {
        JobSpec {
            tenant: tenant.into(),
            kind,
            priority: 0,
            deadline_s: None,
            batchable: false,
            kill: None,
            stall: None,
            journal: false,
        }
    }

    /// Whether the job may share a cluster pass with other jobs: the kind
    /// must be batchable, the spec must opt in, and fault injection or
    /// journaling (both per-job concerns) must be off.
    pub fn can_batch(&self) -> bool {
        self.batchable
            && self.kind.batchable_kind()
            && self.kill.is_none()
            && self.stall.is_none()
            && !self.journal
    }
}

/// Per-tenant resource quotas.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Tenant name (the `JobSpec::tenant` key).
    pub name: String,
    /// Maximum jobs running at once; further admitted jobs wait in the
    /// queue (they are *not* rejected).
    pub max_concurrent: u32,
    /// GPU-seconds budget (simulated seconds × GPUs). Once spent, new
    /// submissions are rejected and already-queued jobs stay queued.
    pub gpu_seconds: f64,
    /// Fraction of per-GPU memory the tenant's chunks may stage into
    /// (`0.0..=1.0`); the `ChunkTooLarge` formula is evaluated against
    /// `capacity × mem_share`.
    pub mem_share: f64,
}

impl TenantConfig {
    /// An unconstrained tenant (useful defaults for tests).
    pub fn unlimited(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            max_concurrent: u32::MAX,
            gpu_seconds: f64::INFINITY,
            mem_share: 1.0,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// The spec names a tenant the service does not know.
    UnknownTenant,
    /// The service queue is at capacity.
    QueueFull {
        /// Jobs queued at submission time.
        depth: usize,
        /// The configured queue-depth limit.
        max: usize,
    },
    /// The job's chunks cannot be staged inside the tenant's memory
    /// share — the engine's `ChunkTooLarge` formula, evaluated before the
    /// job ever reaches a cluster.
    MemoryExceeded {
        /// The job's chunk size in bytes.
        chunk_bytes: u64,
        /// Staging slots the chunk must fit simultaneously.
        slots: u64,
        /// The tenant's memory budget in bytes (`capacity × mem_share`).
        budget_bytes: u64,
    },
    /// The tenant's GPU-seconds budget is spent.
    BudgetExhausted {
        /// GPU-seconds charged so far.
        spent_s: f64,
        /// The configured budget.
        budget_s: f64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownTenant => write!(f, "unknown tenant"),
            RejectReason::QueueFull { depth, max } => {
                write!(f, "queue full ({depth} of {max} slots)")
            }
            RejectReason::MemoryExceeded {
                chunk_bytes,
                slots,
                budget_bytes,
            } => write!(
                f,
                "chunk of {chunk_bytes} bytes cannot be staged {slots} times in the \
                 tenant's {budget_bytes}-byte memory share"
            ),
            RejectReason::BudgetExhausted { spent_s, budget_s } => {
                write!(
                    f,
                    "GPU-seconds budget spent ({spent_s:.4}s of {budget_s:.4}s)"
                )
            }
        }
    }
}

/// Where a job is in its lifecycle; the `poll` return value.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a pool slot (and for its tenant to drop
    /// below `max_concurrent` / back under budget).
    Queued,
    /// Executing on a pool slot since `started_s`.
    Running {
        /// Dispatch instant in service seconds.
        started_s: f64,
    },
    /// Finished; output available through
    /// [`JobService::outputs`](crate::JobService::outputs).
    Completed {
        /// Dispatch instant.
        started_s: f64,
        /// Completion instant.
        finished_s: f64,
        /// Time spent queued before dispatch.
        wait_s: f64,
        /// Whether the job shared its cluster pass with other jobs.
        batched: bool,
    },
    /// Cancelled by the user. For a mid-flight cancel the engine's
    /// conservation accounting is attached; a queued cancel reports zero
    /// for both counts.
    Cancelled {
        /// Cancellation instant.
        at_s: f64,
        /// Chunks whose map work committed before the stop.
        chunks_committed: u32,
        /// Chunks drained back out of the work queues.
        chunks_released: u32,
    },
    /// The typed deadline error: the job missed its deadline and was
    /// cancelled (mid-flight if running, silently if still queued).
    DeadlineMissed {
        /// The absolute deadline instant that passed.
        deadline_s: f64,
        /// Chunks committed before the stop (0 if never dispatched).
        chunks_committed: u32,
        /// Chunks released by the stop (0 if never dispatched).
        chunks_released: u32,
    },
    /// The engine failed the job (e.g. every GPU lost).
    Failed {
        /// The engine error, rendered.
        error: String,
    },
    /// Refused at admission; never queued.
    Rejected(RejectReason),
}

impl JobStatus {
    /// Short status word for reports.
    pub fn word(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running { .. } => "running",
            JobStatus::Completed { .. } => "completed",
            JobStatus::Cancelled { .. } => "cancelled",
            JobStatus::DeadlineMissed { .. } => "deadline-missed",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Rejected(_) => "rejected",
        }
    }

    /// Whether the job can still change state.
    pub fn is_live(&self) -> bool {
        matches!(self, JobStatus::Queued | JobStatus::Running { .. })
    }
}

/// Errors from service calls themselves (not job outcomes).
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// No job with that id.
    UnknownJob(JobId),
    /// The job already reached a terminal state and cannot be cancelled.
    NotCancellable(JobId),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServiceError::NotCancellable(id) => {
                write!(f, "{id} already finished and cannot be cancelled")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_round_trips_through_display() {
        let id = JobId(17);
        assert_eq!(id.to_string(), "job17");
        assert_eq!(JobId::parse("job17"), Some(id));
        assert_eq!(JobId::parse("17"), None);
        assert_eq!(JobId::parse("jobx"), None);
    }

    #[test]
    fn batching_eligibility_rules() {
        let sio = JobKind::Sio {
            n: 1000,
            seed: 1,
            chunk_kb: 16,
        };
        let wo = JobKind::Wo {
            bytes: 1000,
            dict_words: 64,
            seed: 1,
            chunk_kb: 16,
        };
        let mut spec = JobSpec::new("t", sio);
        assert!(!spec.can_batch(), "must opt in");
        spec.batchable = true;
        assert!(spec.can_batch());
        spec.kill = Some((1, 0.001));
        assert!(!spec.can_batch(), "fault plans are per-job");
        spec.kill = None;
        spec.journal = true;
        assert!(!spec.can_batch(), "journals are per-job");
        let mut wo_spec = JobSpec::new("t", wo);
        wo_spec.batchable = true;
        assert!(!wo_spec.can_batch(), "accumulate-mode WO never batches");
    }

    #[test]
    fn chunk_bytes_is_kib() {
        let sio = JobKind::Sio {
            n: 1,
            seed: 0,
            chunk_kb: 16,
        };
        assert_eq!(sio.chunk_bytes(), 16 * 1024);
    }
}
