//! Per-tenant SLO accounting: deadline hit rates, queue-wait and
//! end-to-end latency percentiles, GPU-seconds burn, and a configurable
//! error-budget policy.
//!
//! The accountant keeps exact per-tenant outcome counts and the full
//! (virtual-time) wait/latency samples, so report quantiles are exact
//! order statistics, not histogram estimates — the service is the serial
//! fast path the ISSUE's quantile contract refers to. Rates are defined
//! over *terminal dispatched* outcomes: for every tenant,
//! `hit + miss + cancel + fail == 1` exactly (rejected submissions never
//! enter the race and are reported separately).
//!
//! [`render_prometheus`] renders a registry snapshot (plus the SLO view)
//! in the Prometheus text exposition format for scrape-style export.

use std::fmt::Write as _;

use gpmr_telemetry::json::Value;
use gpmr_telemetry::MetricsSnapshot;

use crate::spec::JobStatus;

/// Error-budget policy for deadline SLOs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// Target fraction of terminal jobs that must complete (the SLO);
    /// `1 - deadline_target` is the error budget.
    pub deadline_target: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            deadline_target: 0.95,
        }
    }
}

/// Exact `q`-quantile of a sorted sample set (linear interpolation
/// between order statistics). `None` for empty samples or non-finite `q`.
fn exact_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !q.is_finite() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// One tenant's running SLO tallies.
#[derive(Clone, Debug, Default)]
pub struct TenantSlo {
    /// Tenant name.
    pub tenant: String,
    /// Submissions seen (admitted or rejected).
    pub submitted: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Terminal outcomes by class.
    pub completed: u64,
    /// Jobs cancelled before completing.
    pub cancelled: u64,
    /// Jobs stopped by their deadline.
    pub deadline_missed: u64,
    /// Jobs whose engine pass failed.
    pub failed: u64,
    /// GPU-seconds charged to the tenant.
    pub gpu_seconds: f64,
    /// Queue waits of terminal jobs, kept sorted.
    waits: Vec<f64>,
    /// Submit→terminal latencies, kept sorted.
    e2e: Vec<f64>,
}

impl TenantSlo {
    /// Terminal outcomes so far (the rate denominator).
    pub fn terminal(&self) -> u64 {
        self.completed + self.cancelled + self.deadline_missed + self.failed
    }

    fn rate(&self, n: u64) -> f64 {
        let d = self.terminal();
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Fraction of terminal jobs that completed.
    pub fn hit_rate(&self) -> f64 {
        self.rate(self.completed)
    }

    /// Fraction of terminal jobs stopped by their deadline.
    pub fn miss_rate(&self) -> f64 {
        self.rate(self.deadline_missed)
    }

    /// Fraction of terminal jobs cancelled.
    pub fn cancel_rate(&self) -> f64 {
        self.rate(self.cancelled)
    }

    /// Fraction of terminal jobs that failed.
    pub fn fail_rate(&self) -> f64 {
        self.rate(self.failed)
    }

    /// Exact queue-wait quantile over terminal jobs.
    pub fn wait_quantile(&self, q: f64) -> Option<f64> {
        exact_quantile(&self.waits, q)
    }

    /// Exact submit→terminal latency quantile.
    pub fn e2e_quantile(&self, q: f64) -> Option<f64> {
        exact_quantile(&self.e2e, q)
    }

    /// Fraction of the error budget burned: non-hit rate over the
    /// allowance `1 - deadline_target`. Infinite when the policy allows
    /// no errors but some occurred; ≥ 1 means the budget is spent.
    pub fn budget_burn(&self, policy: &SloPolicy) -> f64 {
        let errors = 1.0 - self.hit_rate();
        let allowance = 1.0 - policy.deadline_target.clamp(0.0, 1.0);
        if self.terminal() == 0 || errors <= 0.0 {
            0.0
        } else if allowance <= 0.0 {
            f64::INFINITY
        } else {
            errors / allowance
        }
    }
}

/// Accumulates per-tenant SLO tallies as the service runs. Indexed by
/// tenant track (submission order of the tenant set).
#[derive(Clone, Debug)]
pub struct SloAccountant {
    policy: SloPolicy,
    tenants: Vec<TenantSlo>,
}

impl SloAccountant {
    /// An accountant for the named tenants under `policy`.
    pub fn new(policy: SloPolicy, names: &[String]) -> SloAccountant {
        SloAccountant {
            policy,
            tenants: names
                .iter()
                .map(|n| TenantSlo {
                    tenant: n.clone(),
                    ..TenantSlo::default()
                })
                .collect(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// A tenant's tallies, by index.
    pub fn tenant(&self, ix: usize) -> Option<&TenantSlo> {
        self.tenants.get(ix)
    }

    /// Record a submission outcome for tenant `ix`.
    pub fn record_submit(&mut self, ix: usize, admitted: bool) {
        if let Some(t) = self.tenants.get_mut(ix) {
            t.submitted += 1;
            if !admitted {
                t.rejected += 1;
            }
        }
    }

    /// Record a terminal outcome for tenant `ix`. `started_s` is the
    /// dispatch instant when the job ran (None when it never left the
    /// queue — its whole life counts as queue wait).
    pub fn record_terminal(
        &mut self,
        ix: usize,
        status: &JobStatus,
        submit_s: f64,
        started_s: Option<f64>,
        end_s: f64,
        gpu_seconds: f64,
    ) {
        let Some(t) = self.tenants.get_mut(ix) else {
            return;
        };
        match status {
            JobStatus::Completed { .. } => t.completed += 1,
            JobStatus::Cancelled { .. } => t.cancelled += 1,
            JobStatus::DeadlineMissed { .. } => t.deadline_missed += 1,
            JobStatus::Failed { .. } => t.failed += 1,
            _ => return,
        }
        t.gpu_seconds += gpu_seconds;
        let wait = (started_s.unwrap_or(end_s) - submit_s).max(0.0);
        let e2e = (end_s - submit_s).max(0.0);
        let ins = |v: &mut Vec<f64>, x: f64| {
            let pos = v.partition_point(|&y| y <= x);
            v.insert(pos, x);
        };
        ins(&mut t.waits, wait);
        ins(&mut t.e2e, e2e);
    }

    /// Snapshot the current SLO state as of `at_s`.
    pub fn report(&self, at_s: f64) -> SloReport {
        SloReport {
            at_s,
            policy: self.policy,
            tenants: self.tenants.clone(),
        }
    }
}

/// A point-in-time SLO report across every tenant.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// The service clock when the report was taken.
    pub at_s: f64,
    /// The policy the burn figures are computed against.
    pub policy: SloPolicy,
    /// Per-tenant tallies, in track order.
    pub tenants: Vec<TenantSlo>,
}

fn opt_s(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"))
}

impl SloReport {
    /// Stable one-line-per-tenant text render (the `gpmr serve` /
    /// `gpmr slo report` format).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "slo report at={:.6} target={:.4}\n",
            self.at_s, self.policy.deadline_target
        );
        for t in &self.tenants {
            let burn = t.budget_burn(&self.policy);
            let _ = writeln!(
                out,
                "slo tenant {} terminal={} hit={:.4} miss={:.4} cancel={:.4} fail={:.4} \
                 rejected={} wait_p50={} wait_p95={} wait_p99={} e2e_p99={} gpu_s={:.6} \
                 burn={:.4} budget={}",
                t.tenant,
                t.terminal(),
                t.hit_rate(),
                t.miss_rate(),
                t.cancel_rate(),
                t.fail_rate(),
                t.rejected,
                opt_s(t.wait_quantile(0.50)),
                opt_s(t.wait_quantile(0.95)),
                opt_s(t.wait_quantile(0.99)),
                opt_s(t.e2e_quantile(0.99)),
                t.gpu_seconds,
                burn,
                if burn > 1.0 { "violated" } else { "ok" },
            );
        }
        out
    }

    /// Stable JSON form.
    pub fn to_value(&self) -> Value {
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let mut fields = vec![
                    ("tenant".into(), Value::str(t.tenant.clone())),
                    ("submitted".into(), Value::Num(t.submitted as f64)),
                    ("rejected".into(), Value::Num(t.rejected as f64)),
                    ("completed".into(), Value::Num(t.completed as f64)),
                    ("cancelled".into(), Value::Num(t.cancelled as f64)),
                    (
                        "deadline_missed".into(),
                        Value::Num(t.deadline_missed as f64),
                    ),
                    ("failed".into(), Value::Num(t.failed as f64)),
                    ("hit_rate".into(), Value::Num(t.hit_rate())),
                    ("miss_rate".into(), Value::Num(t.miss_rate())),
                    ("cancel_rate".into(), Value::Num(t.cancel_rate())),
                    ("fail_rate".into(), Value::Num(t.fail_rate())),
                    ("gpu_seconds".into(), Value::Num(t.gpu_seconds)),
                    (
                        "budget_burn".into(),
                        Value::Num(t.budget_burn(&self.policy)),
                    ),
                ];
                for (label, q) in [
                    ("wait_p50", 0.50),
                    ("wait_p95", 0.95),
                    ("wait_p99", 0.99),
                    ("e2e_p50", 0.50),
                    ("e2e_p99", 0.99),
                ] {
                    let v = if label.starts_with("wait") {
                        t.wait_quantile(q)
                    } else {
                        t.e2e_quantile(q)
                    };
                    if let Some(v) = v {
                        fields.push((label.into(), Value::Num(v)));
                    }
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("at_s".into(), Value::Num(self.at_s)),
            (
                "deadline_target".into(),
                Value::Num(self.policy.deadline_target),
            ),
            ("tenants".into(), Value::Arr(tenants)),
        ])
    }

    /// Rendered JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Self-contained HTML report (no external assets).
    pub fn render_html(&self) -> String {
        let mut rows = String::new();
        for t in &self.tenants {
            let burn = t.budget_burn(&self.policy);
            let _ = writeln!(
                rows,
                "<tr class=\"{}\"><td>{}</td><td>{}</td><td>{:.2}%</td>\
                 <td>{:.2}%</td><td>{:.2}%</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{:.6}</td><td>{:.2}</td></tr>",
                if burn > 1.0 { "bad" } else { "ok" },
                t.tenant,
                t.terminal(),
                t.hit_rate() * 100.0,
                t.miss_rate() * 100.0,
                t.cancel_rate() * 100.0,
                opt_s(t.wait_quantile(0.50)),
                opt_s(t.wait_quantile(0.95)),
                opt_s(t.wait_quantile(0.99)),
                t.gpu_seconds,
                burn,
            );
        }
        format!(
            "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
             <title>gpmr SLO report</title>\n<style>\n\
             body{{font:14px system-ui,sans-serif;margin:2em}}\n\
             table{{border-collapse:collapse}}\n\
             td,th{{border:1px solid #ccc;padding:4px 10px;text-align:right}}\n\
             th{{background:#f0f0f0}}td:first-child{{text-align:left}}\n\
             tr.bad td{{background:#ffe5e5}}\n</style></head><body>\n\
             <h1>gpmr SLO report</h1>\n\
             <p>at {:.6}s &middot; deadline target {:.2}%</p>\n\
             <table>\n<tr><th>tenant</th><th>terminal</th><th>hit</th>\
             <th>miss</th><th>cancel</th><th>wait p50 (s)</th>\
             <th>wait p95 (s)</th><th>wait p99 (s)</th><th>gpu-s</th>\
             <th>budget burn</th></tr>\n{}</table>\n</body></html>\n",
            self.at_s,
            self.policy.deadline_target * 100.0,
            rows
        )
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("gpmr_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Render a metrics snapshot (and, when given, an SLO report) in the
/// Prometheus text exposition format: counters and gauges as-is,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`, SLO figures as labeled gauges.
pub fn render_prometheus(snap: &MetricsSnapshot, slo: Option<&SloReport>) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, &v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_num(v));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (bound, &count) in h.bounds.iter().zip(&h.counts) {
            cum += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", prom_num(*bound));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", prom_num(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    if let Some(report) = slo {
        type TenantGauge = fn(&TenantSlo, &SloPolicy) -> f64;
        let series: &[(&str, TenantGauge)] = &[
            ("gpmr_slo_hit_rate", |t, _| t.hit_rate()),
            ("gpmr_slo_miss_rate", |t, _| t.miss_rate()),
            ("gpmr_slo_cancel_rate", |t, _| t.cancel_rate()),
            ("gpmr_slo_budget_burn", |t, p| t.budget_burn(p)),
            ("gpmr_slo_gpu_seconds", |t, _| t.gpu_seconds),
        ];
        for (name, f) in series {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for t in &report.tenants {
                let _ = writeln!(
                    out,
                    "{name}{{tenant=\"{}\"}} {}",
                    t.tenant,
                    prom_num(f(t, &report.policy))
                );
            }
        }
        let name = "gpmr_slo_wait_seconds";
        let _ = writeln!(out, "# TYPE {name} gauge");
        for t in &report.tenants {
            for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                if let Some(v) = t.wait_quantile(q) {
                    let _ = writeln!(
                        out,
                        "{name}{{tenant=\"{}\",quantile=\"{label}\"}} {}",
                        t.tenant,
                        prom_num(v)
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_telemetry::Registry;

    fn status_completed() -> JobStatus {
        JobStatus::Completed {
            started_s: 0.0,
            finished_s: 1.0,
            wait_s: 0.0,
            batched: false,
        }
    }

    #[test]
    fn rates_partition_terminal_outcomes() {
        let mut acc = SloAccountant::new(SloPolicy::default(), &["a".to_string()]);
        acc.record_submit(0, true);
        acc.record_submit(0, true);
        acc.record_submit(0, true);
        acc.record_submit(0, false);
        acc.record_terminal(0, &status_completed(), 0.0, Some(0.1), 1.0, 0.4);
        acc.record_terminal(
            0,
            &JobStatus::Cancelled {
                at_s: 0.5,
                chunks_committed: 0,
                chunks_released: 2,
            },
            0.0,
            None,
            0.5,
            0.0,
        );
        acc.record_terminal(
            0,
            &JobStatus::DeadlineMissed {
                deadline_s: 0.3,
                chunks_committed: 1,
                chunks_released: 1,
            },
            0.0,
            Some(0.05),
            0.3,
            0.2,
        );
        let t = acc.tenant(0).unwrap();
        assert_eq!(t.terminal(), 3);
        assert_eq!(t.rejected, 1);
        let sum = t.hit_rate() + t.miss_rate() + t.cancel_rate() + t.fail_rate();
        assert_eq!(sum, 1.0, "rates must partition terminal outcomes");
        assert!((t.gpu_seconds - 0.6).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut acc = SloAccountant::new(SloPolicy::default(), &["a".to_string()]);
        // Waits 0.1, 0.2, 0.3, 0.4 (inserted out of order).
        for (submit, start) in [(0.0, 0.3), (0.0, 0.1), (0.0, 0.4), (0.0, 0.2)] {
            acc.record_terminal(0, &status_completed(), submit, Some(start), 1.0, 0.0);
        }
        let t = acc.tenant(0).unwrap();
        assert!((t.wait_quantile(0.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((t.wait_quantile(1.0).unwrap() - 0.4).abs() < 1e-12);
        assert!((t.wait_quantile(0.5).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(t.wait_quantile(f64::NAN), None);
        assert_eq!(exact_quantile(&[], 0.5), None);
    }

    #[test]
    fn budget_burn_tracks_policy() {
        let mut acc = SloAccountant::new(
            SloPolicy {
                deadline_target: 0.9,
            },
            &["a".to_string()],
        );
        for _ in 0..8 {
            acc.record_terminal(0, &status_completed(), 0.0, Some(0.0), 1.0, 0.0);
        }
        acc.record_terminal(
            0,
            &JobStatus::DeadlineMissed {
                deadline_s: 0.5,
                chunks_committed: 0,
                chunks_released: 0,
            },
            0.0,
            None,
            0.5,
            0.0,
        );
        acc.record_terminal(
            0,
            &JobStatus::Failed {
                error: "boom".into(),
            },
            0.0,
            None,
            0.5,
            0.0,
        );
        let t = acc.tenant(0).unwrap();
        // 2 of 10 missed against a 10% allowance: budget exactly spent ×2.
        assert!((t.budget_burn(acc.policy()) - 2.0).abs() < 1e-12);
        let report = acc.report(1.0);
        assert!(report.render_text().contains("budget=violated"));
        let zero_allow = SloPolicy {
            deadline_target: 1.0,
        };
        assert_eq!(t.budget_burn(&zero_allow), f64::INFINITY);
    }

    #[test]
    fn report_renders_text_json_and_html() {
        let mut acc = SloAccountant::new(SloPolicy::default(), &["a".into(), "b".into()]);
        acc.record_terminal(0, &status_completed(), 0.0, Some(0.25), 1.0, 0.5);
        let report = acc.report(2.0);
        let text = report.render_text();
        assert!(text.contains("slo tenant a "));
        assert!(text.contains("wait_p50=0.250000"));
        assert!(text.contains("slo tenant b terminal=0"));
        let json = report.to_json();
        let v = gpmr_telemetry::json::parse(&json).expect("valid JSON");
        let tenants = v.get("tenants").and_then(Value::as_arr).unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(
            tenants[0].get("hit_rate").and_then(Value::as_f64),
            Some(1.0)
        );
        let html = report.render_html();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<td>a</td>"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = Registry::new();
        reg.counter("service.jobs_completed").add(3);
        reg.gauge("service.queue_depth").set(2.0);
        let h = reg.histogram("service.queue_wait_s", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(5.0);
        let mut acc = SloAccountant::new(SloPolicy::default(), &["a".to_string()]);
        acc.record_terminal(0, &status_completed(), 0.0, Some(0.1), 1.0, 0.25);
        let text = render_prometheus(&reg.snapshot(), Some(&acc.report(1.0)));
        assert!(text.contains("# TYPE gpmr_service_jobs_completed counter"));
        assert!(text.contains("gpmr_service_jobs_completed 3"));
        assert!(text.contains("# TYPE gpmr_service_queue_depth gauge"));
        assert!(text.contains("gpmr_service_queue_wait_s_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("gpmr_service_queue_wait_s_bucket{le=\"0.01\"} 2"));
        assert!(text.contains("gpmr_service_queue_wait_s_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gpmr_service_queue_wait_s_count 3"));
        assert!(text.contains("gpmr_slo_hit_rate{tenant=\"a\"} 1"));
        assert!(text.contains("gpmr_slo_wait_seconds{tenant=\"a\",quantile=\"0.5\"} 0.1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
        }
    }
}
