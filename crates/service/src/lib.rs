//! # gpmr-service — multi-tenant job service for GPMR
//!
//! A long-running job service in front of the GPMR engine: tenants
//! `submit` jobs, `poll` their status, and `cancel` them; the service
//! admits or rejects work against per-tenant quotas (concurrent jobs,
//! GPU-seconds budget, memory share) and cluster limits (queue depth,
//! the engine's `ChunkTooLarge` staging formula), runs up to N jobs
//! concurrently on a shared engine pool, enforces per-job deadlines
//! (missed deadlines surface as a typed [`JobStatus::DeadlineMissed`]),
//! and batches compatible small jobs into a single cluster pass with
//! bit-identical per-member outputs.
//!
//! Everything runs in simulated time on the deterministic GPMR engine:
//! the same workload script always produces the same admissions,
//! dispatch order, outputs, and telemetry.
//!
//! ```
//! use gpmr_service::{JobKind, JobService, JobSpec, JobStatus, ServiceConfig, TenantConfig};
//! use gpmr_telemetry::Telemetry;
//!
//! let mut svc = JobService::new(
//!     ServiceConfig::default(),
//!     vec![TenantConfig::unlimited("alice")],
//!     Telemetry::disabled(),
//! );
//! let id = svc.submit(JobSpec::new(
//!     "alice",
//!     JobKind::Sio { n: 10_000, seed: 7, chunk_kb: 16 },
//! ));
//! svc.drain();
//! assert!(matches!(svc.poll(id), Ok(JobStatus::Completed { .. })));
//! assert!(svc.merged_output(id).is_some());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod service;
pub mod slo;
pub mod spec;
pub mod workload;

pub use batch::{BatchChunk, SioBatchJob};
pub use service::{JobService, ObsConfig, ServiceConfig, ServiceStats, QUEUE_WAIT_BOUNDS};
pub use slo::{render_prometheus, SloAccountant, SloPolicy, SloReport, TenantSlo};
pub use spec::{JobId, JobKind, JobSpec, JobStatus, RejectReason, ServiceError, TenantConfig};
pub use workload::{parse, run, run_script, Action, Workload, WorkloadError};
