//! `gpmr` binary entry point.

fn main() {
    match gpmr_cli::dispatch(std::env::args().skip(1)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `gpmr help`");
            std::process::exit(2);
        }
    }
}
