//! A small, dependency-free command-line argument parser.
//!
//! Supports `gpmr <subcommand> [--key value]... [--flag]...`. Values may
//! also be given as `--key=value`. Unknown keys are an error (catching
//! typos beats silently ignoring them).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus key/value options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The first positional token.
    pub subcommand: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingSubcommand,
    /// `--key` without a value where one was expected.
    MissingValue(String),
    /// An option not in the accepted set.
    UnknownOption(String),
    /// A value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingSubcommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgError::BadValue { key, value } => {
                write!(f, "option --{key} has invalid value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw tokens (without the program name). `valued` lists
    /// options that take a value; `boolean` lists bare flags.
    pub fn parse<I, S>(tokens: I, valued: &[&str], boolean: &[&str]) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = tokens.into_iter().map(Into::into).peekable();
        let subcommand = it.next().ok_or(ArgError::MissingSubcommand)?;
        if subcommand.starts_with("--") {
            return Err(ArgError::MissingSubcommand);
        }
        let mut args = Args {
            subcommand,
            ..Args::default()
        };
        while let Some(tok) = it.next() {
            let Some(body) = tok.strip_prefix("--") else {
                return Err(ArgError::UnknownOption(tok));
            };
            let (key, inline) = match body.split_once('=') {
                Some((k, v)) => (k.to_string(), Some(v.to_string())),
                None => (body.to_string(), None),
            };
            if boolean.contains(&key.as_str()) {
                args.flags.push(key);
            } else if valued.contains(&key.as_str()) {
                let value = match inline {
                    Some(v) => v,
                    None => it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.clone()))?,
                };
                args.options.insert(key, value);
            } else {
                return Err(ArgError::UnknownOption(key));
            }
        }
        Ok(args)
    }

    /// Raw string value of an option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Parsed value of an option, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALUED: &[&str] = &["gpus", "size", "scale"];
    const BOOLEAN: &[&str] = &["trace", "verbose"];

    fn parse(toks: &[&str]) -> Result<Args, ArgError> {
        Args::parse(toks.iter().copied(), VALUED, BOOLEAN)
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse(&["run", "--gpus", "8", "--size=1000", "--trace"]).unwrap();
        assert_eq!(a.subcommand, "run");
        assert_eq!(a.get("gpus"), Some("8"));
        assert_eq!(a.get_or("size", 0usize).unwrap(), 1000);
        assert!(a.flag("trace"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["run"]).unwrap();
        assert_eq!(a.get_or("gpus", 4u32).unwrap(), 4);
        assert_eq!(a.get("size"), None);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert_eq!(
            parse(&["run", "--bogus", "1"]).unwrap_err(),
            ArgError::UnknownOption("bogus".into())
        );
        assert_eq!(
            parse(&["run", "--gpus"]).unwrap_err(),
            ArgError::MissingValue("gpus".into())
        );
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingSubcommand);
        assert_eq!(
            parse(&["--gpus", "4"]).unwrap_err(),
            ArgError::MissingSubcommand
        );
        assert_eq!(
            parse(&["run", "positional"]).unwrap_err(),
            ArgError::UnknownOption("positional".into())
        );
    }

    #[test]
    fn bad_values_are_reported() {
        let a = parse(&["run", "--gpus", "many"]).unwrap();
        assert_eq!(
            a.get_or("gpus", 1u32),
            Err(ArgError::BadValue {
                key: "gpus".into(),
                value: "many".into()
            })
        );
    }

    #[test]
    fn errors_display_helpfully() {
        assert!(ArgError::MissingValue("gpus".into())
            .to_string()
            .contains("--gpus"));
        assert!(ArgError::UnknownOption("x".into())
            .to_string()
            .contains("--x"));
    }
}
