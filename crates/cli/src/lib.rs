//! # gpmr-cli — command-line front end for the GPMR simulator
//!
//! ```text
//! gpmr run   --benchmark sio --gpus 8 --size 1000000 [--scale 64] [--trace]
//!            [--metrics-out m.json] [--trace-out t.json] [--events-out e.jsonl]
//! gpmr analyze --events e.jsonl [--json]
//! gpmr trace export --in e.jsonl --out t.json
//! gpmr perf  diff --baseline BENCH_PR6.json
//! gpmr info  [--gpus 8]
//! gpmr help
//! ```
//!
//! `run` executes one benchmark on a simulated cluster and prints the
//! simulated runtime, throughput, and stage breakdown; `--trace` adds an
//! ASCII Gantt chart of the schedule, and the `--*-out` flags export the
//! telemetry recording (metrics snapshot, Chrome/Perfetto trace JSON, raw
//! JSONL stream). `trace` converts, validates, and summarises those
//! exports. `analyze` runs the performance-diagnosis layer (critical path,
//! stragglers, overlap, findings) over a recording or a live run, and
//! `perf` records/gates the deterministic benchmark baselines. `info`
//! prints the modelled hardware.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, CliError, HELP};
