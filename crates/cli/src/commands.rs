//! Subcommand implementations. All output goes through the returned
//! `String` so commands are unit-testable without capturing stdout.

use std::sync::Arc;

use gpmr_apps::kmc::{self, KmcJob};
use gpmr_apps::lr::{self, LrJob};
use gpmr_apps::mm::{run_mm_auto, Matrix};
use gpmr_apps::sio::{self, SioJob};
use gpmr_apps::text::{chunk_text, generate_text, generate_zipf_text, Dictionary};
use gpmr_apps::wo::{sample_word_keys, WoJob};
use gpmr_bench::perf as perfsuite;
use gpmr_core::{
    derive_splitters, run_job_instrumented, run_job_journaled, EngineTuning, GpmrJob, JobResult,
    JobTrace, Journal, PartitionMode, Pod,
};
use gpmr_sim_gpu::{FaultPlan, GpuSpec, PcieLink};
use gpmr_sim_net::{Cluster, CpuSpec, Nic, Topology};
use gpmr_telemetry::analyze;
use gpmr_telemetry::baseline::{diff_sets, BaselineSet, Verdict};
use gpmr_telemetry::{export, Telemetry, TelemetrySnapshot};

use crate::args::{ArgError, Args};

/// The help text.
pub const HELP: &str = "\
gpmr — Multi-GPU MapReduce on a simulated GPU cluster

USAGE:
    gpmr run    --benchmark <mm|sio|wo|kmc|lr> [--gpus N] [--size X]
                [--scale K] [--seed S] [--trace]
                [--partition <rr|range>] [--zipf S]
                [--pipeline-depth K] [--gpu-direct]
                [--metrics-out F] [--trace-out F] [--events-out F]
                [--fault-plan SPEC | --fault-seed S]
                [--journal F [--resume] [--checkpoint-every N]]
    gpmr kmeans [--points N] [--k K] [--gpus N] [--iterations I] [--seed S]
                [--journal F [--resume] [--checkpoint-every N]]
    gpmr analyze --events events.jsonl [--json]
    gpmr analyze --benchmark <sio|wo|kmc|lr> [run options] [--json]
    gpmr trace  export --in events.jsonl --out trace.json
    gpmr trace  check  --in trace.json
    gpmr trace  summary --in events.jsonl
    gpmr perf   record [--out F] [--scale N]
    gpmr perf   diff --baseline F [--against F] [--tolerance T] [--json]
    gpmr serve  --workload FILE [--gpus N] [--engines N] [--queue-depth N]
                [--batch-window S] [--batch-max N] [--slo-target T]
                [--alerts RULES] [--flight-dir DIR]
                [--metrics-out F] [--trace-out F] [--events-out F]
    gpmr slo    report --workload FILE [serve options] [--json | --html]
                [--out F]
    gpmr metrics export --workload FILE [serve options]
                [--format prom|json] [--out F]
    gpmr info   [--gpus N]
    gpmr help

RUN OPTIONS:
    --benchmark   which paper benchmark to run (required)
    --gpus        cluster size in GPUs                    [default: 4]
    --size        elements (or matrix order for mm)       [default: per benchmark]
    --scale       workload/hardware scale divisor         [default: 1]
    --seed        workload generator seed                 [default: 42]
    --trace       print an ASCII Gantt chart of the schedule
    --partition   shuffle partitioner for sio/wo: rr hashes keys
                  round-robin; range samples the input, derives
                  load-balancing splitters, and routes by key range
                  (the skew-aware choice)                 [default: rr]
    --zipf        draw the sio/wo workload from a Zipf(S) distribution
                  instead of uniform — a few hot keys dominate, the
                  workload --partition=range exists for
    --pipeline-depth
                  upload pipeline depth: H2D copy buffers in flight per
                  rank; 1 disables pipelining             [default: 4]
    --gpu-direct  shuffle pairs GPU-to-GPU over the fabric instead of
                  bouncing through host staging buffers
    --metrics-out write a metrics snapshot to F (JSON when F ends in
                  .json, text otherwise)
    --trace-out   write a Chrome/Perfetto trace-event JSON to F
                  (open in https://ui.perfetto.dev)
    --events-out  write the raw telemetry stream (spans, counter samples,
                  metrics) to F as JSONL; feed to `gpmr trace export`
    --fault-plan  inject faults from an explicit plan. `;`-separated:
                  kill:R@T (lose rank R's GPU at T seconds),
                  add:R@T (rank R's GPU joins the running job at T;
                  it steals map work but is not a reducer),
                  stall:R@T+D (freeze rank R at T for D seconds),
                  xfail:F->T@S..U*N (fail first N tries of F->T transfers
                  ready in [S,U); `*` = any rank, `..U` optional),
                  delay:F->T@S..U+D (delay matching transfers by D).
                  Example: --fault-plan 'kill:1@2e-3; xfail:0->2@0..1e-2*2'
    --fault-seed  generate a random fault plan from seed S (deterministic;
                  always leaves at least one GPU alive)
    --journal     write-ahead job journal: append every scheduling
                  decision and stage commit (content-hashed) to F so an
                  interrupted run can be resumed bit-identically
    --resume      verify-replay the journal at F to its last consistent
                  record, then run the rest of the job; torn tails are
                  trimmed, a mismatched job aborts with a divergence error
    --checkpoint-every
                  flush the journal every N records (stage-barrier
                  records always flush immediately)      [default: 1]

ANALYZE:
    Performance diagnosis: critical-path extraction with per-stage
    attribution, per-rank busy/blocked/idle breakdown, imbalance score,
    map/send overlap, and named findings (stragglers, poor overlap,
    sort-bound jobs, transfer-retry hotspots). Reads a recorded
    --events-out JSONL stream (--events F) or runs a benchmark live
    (--benchmark plus the RUN OPTIONS above). --json emits the
    machine-readable twin of the report.

TRACE SUBCOMMAND:
    export        convert a --events-out JSONL stream to Perfetto JSON
    check         validate a Perfetto JSON file (structure, monotonic ts)
    summary       print per-track busy-time/utilization from a JSONL stream

SERVE:
    Multi-tenant job service over a scripted workload in simulated time.
    The workload file declares tenants with quotas and timed actions:
        tenant alice max_concurrent=2 gpu_seconds=1.5 mem_share=0.5
        at 0.000 submit alice sio n=20000 seed=1 chunk_kb=16 batch
        at 0.002 submit bob   wo  bytes=65536 dict=512 seed=3 chunk_kb=16 deadline=0.004
        at 0.004 cancel job1
    Submit flags: batch (small-job batching), journal (write-ahead
    journal), kill=R@T (fail-stop GPU R at T seconds into the job),
    deadline=D (cancel D seconds after submission), priority=P.
    --gpus GPUs per engine slot [default: 4]; --engines concurrent jobs
    [default: 2]; --queue-depth admission limit [default: 64];
    --batch-window seconds [default: 0.05]; --batch-max members
    [default: 4]. Prints one line per action and per job, then tenant
    and service summaries, the per-tenant SLO report, and any alert and
    postmortem lines; per-tenant activity exports as separate Perfetto
    tracks via --trace-out/--events-out.
    --slo-target  deadline hit-rate objective; 1 - T is the error
                  budget in the SLO report               [default: 0.95]
    --alerts      `;`-separated alert rules evaluated at every event
                  boundary over sliding-window series, e.g.
                  'deep: last(service.queue_depth) > 8 for 0.001;
                   misses: sum(service.deadline_missed) > 0'
                  (fn: rate|sum|last|pNN|ratio; implies telemetry)
    --flight-dir  keep a flight-recorder ring and write a Perfetto
                  postmortem trace into DIR on every deadline miss,
                  GPU loss, cancellation, and alert firing

SLO SUBCOMMAND:
    report        run a workload and print the per-tenant SLO report:
                  deadline hit/miss/cancel/fail rates, queue-wait and
                  end-to-end latency percentiles (p50/p95/p99),
                  GPU-seconds burnt, and the error-budget verdict
                  against --slo-target. --json emits the machine-
                  readable twin, --html a self-contained page; --out
                  writes to a file instead of stdout.

METRICS SUBCOMMAND:
    export        run a workload and export its final metrics snapshot.
                  --format prom renders Prometheus text exposition
                  (counters, gauges, histogram _bucket/_sum/_count
                  series, and labeled per-tenant SLO gauges); --format
                  json the raw snapshot                [default: prom]

PERF SUBCOMMAND:
    record        run the WO+SIO gate suite — 1/4/8 ranks plus the
                  GPU-direct and pipelining-off variants at 8 ranks —
                  and write the baseline set (--out, default
                  BENCH_PR6.json; --scale, default 64)
    diff          compare against a recorded baseline set. With --against
                  it diffs two recordings; otherwise it re-runs the suite
                  live at the baseline's scale. Exits non-zero when the
                  makespan regresses beyond the tolerance (--tolerance,
                  default: the baseline file's, ±10%).
";

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// A semantic problem with the request.
    Invalid(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Option names the subcommands accept.
pub const VALUED: &[&str] = &[
    "benchmark",
    "gpus",
    "size",
    "scale",
    "seed",
    "points",
    "k",
    "iterations",
    "fault-plan",
    "fault-seed",
    "journal",
    "checkpoint-every",
    "pipeline-depth",
    "metrics-out",
    "trace-out",
    "events-out",
    "events",
    "workload",
    "engines",
    "queue-depth",
    "batch-window",
    "batch-max",
    "partition",
    "zipf",
    "slo-target",
    "alerts",
    "flight-dir",
];
/// Boolean flags.
pub const BOOLEAN: &[&str] = &["trace", "json", "gpu-direct", "resume"];

/// Parse tokens and execute; returns the text to print.
pub fn dispatch<I, S>(tokens: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let tokens: Vec<String> = tokens.into_iter().map(Into::into).collect();
    // `trace` takes a mode positional (`export`/`check`/`summary`), which
    // the generic parser would reject; route it before Args::parse.
    if tokens.first().map(String::as_str) == Some("trace") {
        return cmd_trace(&tokens[1..]);
    }
    // `perf` takes a mode positional too (`record`/`diff`).
    if tokens.first().map(String::as_str) == Some("perf") {
        return cmd_perf(&tokens[1..]);
    }
    // So do `slo` (`report`) and `metrics` (`export`).
    if tokens.first().map(String::as_str) == Some("slo") {
        return cmd_slo(&tokens[1..]);
    }
    if tokens.first().map(String::as_str) == Some("metrics") {
        return cmd_metrics(&tokens[1..]);
    }
    let args = match Args::parse(tokens, VALUED, BOOLEAN) {
        Ok(a) => a,
        Err(ArgError::MissingSubcommand) => return Ok(HELP.to_string()),
        Err(e) => return Err(e.into()),
    };
    match args.subcommand.as_str() {
        "run" => cmd_run(&args),
        "kmeans" => cmd_kmeans(&args),
        "analyze" => cmd_analyze(&args),
        "serve" => cmd_serve(&args),
        "info" => cmd_info(&args),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(CliError::Invalid(format!(
            "unknown subcommand {other:?}; try `gpmr help`"
        ))),
    }
}

fn report(
    label: &str,
    gpus: u32,
    items: u64,
    result: &JobResult<u32, impl gpmr_core::Value>,
) -> String {
    let p = result.timings.mean_percentages();
    let t = result.total_time();
    let throughput = if t.as_secs() > 0.0 {
        items as f64 / t.as_secs() / 1e6
    } else {
        0.0
    };
    let tm = &result.timings;
    let recovery =
        if tm.gpus_lost + tm.chunks_requeued + tm.transfer_retries + tm.stalls_injected > 0 {
            format!(
            "recovery       : {} GPU(s) lost, {} chunks requeued, {} transfer retries, {} stalls\n",
            tm.gpus_lost, tm.chunks_requeued, tm.transfer_retries, tm.stalls_injected,
        )
        } else {
            String::new()
        };
    let elastic = if tm.gpus_added > 0 {
        format!("elasticity     : {} GPU(s) joined mid-job\n", tm.gpus_added)
    } else {
        String::new()
    };
    format!(
        "{label} on {gpus} GPU(s)\n\
         simulated time : {t}\n\
         throughput     : {throughput:.1} M items/s\n\
         pairs          : {} emitted, {} shuffled, {} chunks stolen\n\
         {recovery}{elastic}breakdown      : map {:.1}%  bin {:.1}%  sort {:.1}%  reduce {:.1}%  sched {:.1}%\n",
        tm.pairs_emitted,
        tm.pairs_shuffled,
        tm.chunks_stolen,
        p[0],
        p[1],
        p[2],
        p[3],
        p[4],
    )
}

/// Output files requested with `--metrics-out`/`--trace-out`/`--events-out`.
struct OutFiles {
    metrics: Option<String>,
    trace: Option<String>,
    events: Option<String>,
}

impl OutFiles {
    fn from_args(args: &Args) -> OutFiles {
        OutFiles {
            metrics: args.get("metrics-out").map(str::to_string),
            trace: args.get("trace-out").map(str::to_string),
            events: args.get("events-out").map(str::to_string),
        }
    }

    fn any(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some() || self.events.is_some()
    }
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::Invalid(format!("cannot write {path}: {e}")))
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Invalid(format!("cannot read {path}: {e}")))
}

/// A finished job plus the telemetry handle that recorded it.
type RunOutcome<J> = (
    JobResult<<J as GpmrJob>::Key, <J as GpmrJob>::Value>,
    Telemetry,
);

/// Run one job with telemetry on when the Gantt chart or any output file
/// needs it, off otherwise (zero recording overhead).
fn run_with_tel<J: GpmrJob>(
    cluster: &mut Cluster,
    job: &J,
    chunks: Vec<J::Chunk>,
    tuning: &EngineTuning,
    need_tel: bool,
    journal: Option<&mut Journal>,
) -> Result<RunOutcome<J>, CliError>
where
    J::Key: Pod,
    J::Value: Pod,
{
    let tel = if need_tel {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let result = match journal {
        Some(j) => run_job_journaled(cluster, job, chunks, tuning, &tel, j),
        None => run_job_instrumented(cluster, job, chunks, tuning, &tel),
    }
    .map_err(|e| CliError::Invalid(e.to_string()))?;
    Ok((result, tel))
}

/// `--journal`/`--resume`/`--checkpoint-every`, validated together.
struct JournalOpts {
    path: Option<String>,
    resume: bool,
    every: u32,
}

impl JournalOpts {
    fn from_args(args: &Args) -> Result<JournalOpts, CliError> {
        let path = args.get("journal").map(str::to_string);
        let resume = args.flag("resume");
        let every: u32 = args.get_or("checkpoint-every", 1)?;
        if path.is_none() && (resume || args.get("checkpoint-every").is_some()) {
            return Err(CliError::Invalid(
                "--resume/--checkpoint-every need --journal <file>".into(),
            ));
        }
        if every == 0 {
            return Err(CliError::Invalid(
                "--checkpoint-every must be positive".into(),
            ));
        }
        Ok(JournalOpts {
            path,
            resume,
            every,
        })
    }

    /// Open the journal: truncate-and-create for a fresh run, scan and
    /// trim the valid prefix for `--resume`.
    fn open(&self) -> Result<Option<Journal>, CliError> {
        let Some(p) = &self.path else { return Ok(None) };
        let journal = if self.resume {
            Journal::resume(p, self.every)
        } else {
            Journal::create(p, self.every)
        };
        journal
            .map(Some)
            .map_err(|e| CliError::Invalid(format!("cannot open journal {p}: {e}")))
    }
}

/// Append the journal status line to the run report.
fn journal_line(out: &mut String, journal: &Option<Journal>) {
    if let Some(j) = journal {
        let torn = if j.torn_bytes() > 0 {
            format!(", {} torn byte(s) trimmed", j.torn_bytes())
        } else {
            String::new()
        };
        out.push_str(&format!(
            "journal        : {} record(s) replayed, {} appended, {} flush(es){torn} ({})\n",
            j.replayed(),
            j.appended(),
            j.flushes(),
            j.path().display(),
        ));
    }
}

/// Append the Gantt chart and write any requested output files from the
/// telemetry recording.
fn finish_run(
    out: &mut String,
    tel: &Telemetry,
    want_trace: bool,
    outs: &OutFiles,
    gpus: u32,
) -> Result<(), CliError> {
    if !tel.is_enabled() {
        return Ok(());
    }
    let snap = tel.snapshot();
    write_outputs(out, &snap, outs)?;
    if want_trace {
        let tr = JobTrace::from_telemetry(&snap);
        out.push('\n');
        out.push_str(&tr.gantt(gpus, 100));
    }
    Ok(())
}

fn write_outputs(
    out: &mut String,
    snap: &TelemetrySnapshot,
    outs: &OutFiles,
) -> Result<(), CliError> {
    if let Some(path) = &outs.metrics {
        let text = if path.ends_with(".json") {
            snap.metrics.to_json()
        } else {
            snap.metrics.render_text()
        };
        write_file(path, &text)?;
        out.push_str(&format!("metrics        : written to {path}\n"));
    }
    if let Some(path) = &outs.trace {
        write_file(path, &export::to_perfetto_json(snap))?;
        out.push_str(&format!(
            "trace          : written to {path} (open in https://ui.perfetto.dev)\n"
        ));
    }
    if let Some(path) = &outs.events {
        write_file(path, &export::to_jsonl(snap))?;
        out.push_str(&format!("events         : written to {path}\n"));
    }
    Ok(())
}

fn cmd_trace(tokens: &[String]) -> Result<String, CliError> {
    const TRACE_VALUED: &[&str] = &["in", "out"];
    let args = Args::parse(tokens.iter().cloned(), TRACE_VALUED, &[]).map_err(|e| match e {
        ArgError::MissingSubcommand => {
            CliError::Invalid("trace needs a mode: export, check, or summary".into())
        }
        other => CliError::Args(other),
    })?;
    let input = args
        .get("in")
        .ok_or_else(|| CliError::Invalid("trace needs --in <file>".into()))?;
    match args.subcommand.as_str() {
        "export" => {
            let out_path = args
                .get("out")
                .ok_or_else(|| CliError::Invalid("trace export needs --out <file>".into()))?;
            let snap =
                export::snapshot_from_jsonl(&read_file(input)?).map_err(CliError::Invalid)?;
            write_file(out_path, &export::to_perfetto_json(&snap))?;
            Ok(format!(
                "exported {} span(s), {} sample(s), {} track(s) -> {out_path} \
                 (open in https://ui.perfetto.dev)\n",
                snap.spans.len(),
                snap.samples.len(),
                snap.tracks.len(),
            ))
        }
        "check" => {
            let stats = export::validate_perfetto(&read_file(input)?).map_err(CliError::Invalid)?;
            Ok(format!(
                "{input}: OK — {} complete event(s), {} counter event(s), \
                 {} named track(s), ends at {:.1} us\n",
                stats.complete_events, stats.counter_events, stats.named_tracks, stats.end_ts_us,
            ))
        }
        "summary" => {
            let snap =
                export::snapshot_from_jsonl(&read_file(input)?).map_err(CliError::Invalid)?;
            Ok(export::summary_report(&snap, &["Chunk"]).render_text())
        }
        other => Err(CliError::Invalid(format!(
            "unknown trace mode {other:?}; expected export, check, or summary"
        ))),
    }
}

/// Apply `--fault-plan`/`--fault-seed` to a freshly built cluster.
fn apply_faults(cluster: &mut Cluster, args: &Args, gpus: u32) -> Result<(), CliError> {
    match (args.get("fault-plan"), args.get("fault-seed")) {
        (Some(spec), _) => {
            let plan = FaultPlan::parse(spec).map_err(|e| CliError::Invalid(e.to_string()))?;
            cluster.set_fault_plan(Some(plan));
        }
        (None, Some(_)) => {
            let fault_seed: u64 = args.get_or("fault-seed", 0)?;
            // Horizon covers the first ~10 simulated ms, where the default
            // benchmark sizes do most of their work.
            cluster.set_fault_plan(Some(FaultPlan::generate(fault_seed, gpus, 10e-3)));
        }
        (None, None) => {}
    }
    Ok(())
}

/// The engine tuning requested on the command line: `--pipeline-depth`
/// and `--gpu-direct` over the defaults.
fn tuning_from_args(args: &Args) -> Result<EngineTuning, CliError> {
    let depth: u32 = args.get_or("pipeline-depth", EngineTuning::default().pipeline_depth)?;
    if !(1..=64).contains(&depth) {
        return Err(CliError::Invalid(
            "--pipeline-depth must be in 1..=64".into(),
        ));
    }
    Ok(EngineTuning {
        pipeline_depth: depth,
        gpu_direct: args.flag("gpu-direct"),
        ..EngineTuning::default()
    })
}

/// Items per chunk, autotuned to the upload pipeline: target `2 * depth`
/// chunks per rank so every copy-engine slot stays fed, clamped to
/// [64 KiB, 64 MiB / depth] of payload (both ends shrunk by the scale
/// divisor) — the mirror of `gpmr_bench::harness::chunk_bytes_tuned`.
fn chunk_items(elem_bytes: u64, n: usize, gpus: u32, scale: u64, depth: u32) -> usize {
    let d = u64::from(depth.max(1));
    let per = (n as u64 * elem_bytes) / (2 * d * u64::from(gpus));
    let min = 64 * 1024 / scale.max(1);
    let max = ((64 << 20) / (d * scale.max(1))).max(min);
    (per.clamp(min, max) / elem_bytes).max(1) as usize
}

/// `gpmr analyze`: performance diagnosis over a recorded JSONL stream or a
/// live instrumented run.
fn cmd_analyze(args: &Args) -> Result<String, CliError> {
    let snap = match (args.get("events"), args.get("benchmark")) {
        (Some(path), None) => {
            export::snapshot_from_jsonl(&read_file(path)?).map_err(CliError::Invalid)?
        }
        (None, Some(_)) => live_snapshot(args)?,
        _ => {
            return Err(CliError::Invalid(
                "analyze needs exactly one of --events <file.jsonl> or \
                 --benchmark <sio|wo|kmc|lr>"
                    .into(),
            ))
        }
    };
    let analysis = analyze::analyze(&snap);
    Ok(if args.flag("json") {
        analysis.to_json()
    } else {
        analysis.render_text()
    })
}

/// Run one benchmark with telemetry on and hand back the recording.
fn live_snapshot(args: &Args) -> Result<TelemetrySnapshot, CliError> {
    let bench = args
        .get("benchmark")
        .unwrap_or_default()
        .to_ascii_lowercase();
    let gpus: u32 = args.get_or("gpus", 4)?;
    let scale: u64 = args.get_or("scale", 1)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if gpus == 0 || gpus > 1024 {
        return Err(CliError::Invalid("--gpus must be in 1..=1024".into()));
    }
    let mut cluster = Cluster::accelerator_scaled(gpus, GpuSpec::gt200(), scale as f64);
    apply_faults(&mut cluster, args, gpus)?;
    let tel = Telemetry::enabled();
    let tuning = tuning_from_args(args)?;
    let depth = tuning.pipeline_depth;
    let fail = |e: gpmr_core::EngineError| CliError::Invalid(e.to_string());
    match bench.as_str() {
        "sio" => {
            let n: usize = args.get_or("size", 1_000_000)?;
            let data = sio::generate_integers(n, seed);
            let chunks = gpmr_core::SliceChunk::split(&data, chunk_items(4, n, gpus, scale, depth));
            run_job_instrumented(&mut cluster, &SioJob::default(), chunks, &tuning, &tel)
                .map_err(fail)?;
        }
        "wo" => {
            let n: usize = args.get_or("size", 4 << 20)?;
            let dict = Arc::new(Dictionary::generate(
                (43_000 / scale.max(1) as usize).max(64),
                seed,
            ));
            let text = generate_text(&dict, n, seed + 1);
            let chunks = chunk_text(&text, chunk_items(1, n, gpus, scale, depth));
            let job = WoJob::new(dict, gpus);
            run_job_instrumented(&mut cluster, &job, chunks, &tuning, &tel).map_err(fail)?;
        }
        "kmc" => {
            let n: usize = args.get_or("size", 500_000)?;
            let centers = kmc::initial_centers(32, seed);
            let data = kmc::generate_points(n, 32, seed + 1);
            let chunks =
                gpmr_core::SliceChunk::split(&data, chunk_items(16, n, gpus, scale, depth));
            run_job_instrumented(&mut cluster, &KmcJob::new(centers), chunks, &tuning, &tel)
                .map_err(fail)?;
        }
        "lr" => {
            let n: usize = args.get_or("size", 1_000_000)?;
            let data = lr::generate_samples(n, 2.0, -1.0, seed);
            let chunks = gpmr_core::SliceChunk::split(&data, chunk_items(8, n, gpus, scale, depth));
            run_job_instrumented(&mut cluster, &LrJob, chunks, &tuning, &tel).map_err(fail)?;
        }
        other => {
            return Err(CliError::Invalid(format!(
                "analyze supports sio, wo, kmc, or lr; got {other:?} \
                 (mm runs outside the instrumented engine)"
            )))
        }
    }
    Ok(tel.snapshot())
}

/// `gpmr perf`: record the gate baseline suite or diff against one.
fn cmd_perf(tokens: &[String]) -> Result<String, CliError> {
    const PERF_VALUED: &[&str] = &["out", "scale", "baseline", "against", "tolerance"];
    const PERF_BOOLEAN: &[&str] = &["json"];
    let args =
        Args::parse(tokens.iter().cloned(), PERF_VALUED, PERF_BOOLEAN).map_err(|e| match e {
            ArgError::MissingSubcommand => {
                CliError::Invalid("perf needs a mode: record or diff".into())
            }
            other => CliError::Args(other),
        })?;
    match args.subcommand.as_str() {
        "record" => {
            let out_path = args.get("out").unwrap_or("BENCH_PR6.json");
            let scale: u64 = args.get_or("scale", gpmr_bench::DEFAULT_SCALE)?;
            let mut out = format!("recording perf baselines (scale {scale})\n");
            let set = perfsuite::record_suite(scale, |b, a| {
                out.push_str(&format!(
                    "  {:<10} makespan {:.6}s  bounding {} ({:.1}%)  imbalance CV {:.3}\n",
                    b.name,
                    a.makespan_s,
                    b.bounding_stage,
                    a.bounding_share * 100.0,
                    b.imbalance_cv,
                ));
            });
            write_file(out_path, &set.to_json())?;
            out.push_str(&format!("wrote {out_path}\n"));
            Ok(out)
        }
        "diff" => {
            let base_path = args
                .get("baseline")
                .ok_or_else(|| CliError::Invalid("perf diff needs --baseline <file>".into()))?;
            let old = BaselineSet::from_json(&read_file(base_path)?).map_err(CliError::Invalid)?;
            let default_tol = if old.tolerance > 0.0 {
                old.tolerance
            } else {
                perfsuite::DEFAULT_TOLERANCE
            };
            let tolerance: f64 = args.get_or("tolerance", default_tol)?;
            let (new, provenance) = match args.get("against") {
                Some(path) => (
                    BaselineSet::from_json(&read_file(path)?).map_err(CliError::Invalid)?,
                    format!("recorded set {path}"),
                ),
                None => {
                    let scale = if old.scale > 0 {
                        old.scale
                    } else {
                        gpmr_bench::DEFAULT_SCALE
                    };
                    (
                        perfsuite::record_suite(scale, |_, _| {}),
                        format!("live re-run at scale {scale}"),
                    )
                }
            };
            let report = diff_sets(&old, &new, tolerance);
            let body = if args.flag("json") {
                report.to_json()
            } else {
                format!(
                    "comparing {base_path} against {provenance}\n{}",
                    report.render_text()
                )
            };
            // A Fail verdict must surface as a non-zero exit for CI gating.
            if report.verdict == Verdict::Fail {
                Err(CliError::Invalid(body))
            } else {
                Ok(body)
            }
        }
        other => Err(CliError::Invalid(format!(
            "unknown perf mode {other:?}; expected record or diff"
        ))),
    }
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let bench = args
        .get("benchmark")
        .ok_or_else(|| CliError::Invalid("run needs --benchmark <mm|sio|wo|kmc|lr>".into()))?
        .to_ascii_lowercase();
    let gpus: u32 = args.get_or("gpus", 4)?;
    let scale: u64 = args.get_or("scale", 1)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let want_trace = args.flag("trace");
    let outs = OutFiles::from_args(args);
    let need_tel = want_trace || outs.any();
    if gpus == 0 || gpus > 1024 {
        return Err(CliError::Invalid("--gpus must be in 1..=1024".into()));
    }

    let mut cluster = Cluster::accelerator_scaled(gpus, GpuSpec::gt200(), scale as f64);
    apply_faults(&mut cluster, args, gpus)?;
    let tuning = tuning_from_args(args)?;
    let depth = tuning.pipeline_depth;
    let chunk_items = |elem_bytes: u64, n: usize| chunk_items(elem_bytes, n, gpus, scale, depth);
    let jopts = JournalOpts::from_args(args)?;
    if jopts.path.is_some() && bench == "mm" {
        return Err(CliError::Invalid(
            "--journal/--resume are not supported for mm \
             (it runs outside the journaled MapReduce engine)"
                .into(),
        ));
    }
    let mut journal = jopts.open()?;

    let partition = args.get("partition").unwrap_or("rr").to_ascii_lowercase();
    let range_partition = match partition.as_str() {
        "rr" | "roundrobin" => false,
        "range" => true,
        other => {
            return Err(CliError::Invalid(format!(
                "unknown --partition {other:?}; expected rr or range"
            )))
        }
    };
    let zipf: Option<f64> = if args.get("zipf").is_some() {
        let s: f64 = args.get_or("zipf", 1.05)?;
        if !s.is_finite() || s <= 0.0 {
            return Err(CliError::Invalid(
                "--zipf must be a positive exponent".into(),
            ));
        }
        Some(s)
    } else {
        None
    };
    if (range_partition || zipf.is_some()) && !matches!(bench.as_str(), "sio" | "wo") {
        return Err(CliError::Invalid(
            "--partition=range/--zipf apply only to the shuffling benchmarks (sio, wo)".into(),
        ));
    }
    // Sampling stride for `--partition=range` splitter derivation.
    const SPLITTER_STRIDE: usize = 101;

    match bench.as_str() {
        "sio" => {
            let n: usize = args.get_or("size", 1_000_000)?;
            let data = match zipf {
                Some(s) => sio::generate_zipf_integers(n, 1 << 16, s, seed),
                None => sio::generate_integers(n, seed),
            };
            let chunks = gpmr_core::SliceChunk::split(&data, chunk_items(4, n));
            let mut job = SioJob::default();
            let mut partition_note = String::new();
            if range_partition {
                let samples: Vec<u64> = data
                    .iter()
                    .step_by(SPLITTER_STRIDE)
                    .map(|&v| u64::from(v))
                    .collect();
                let splitters = derive_splitters(&samples, gpus);
                partition_note = format!(
                    "partition      : range ({} splitters from {} samples)\n",
                    splitters.len(),
                    samples.len()
                );
                job = job.with_range_partition(splitters);
            }
            let (result, tel) = run_with_tel(
                &mut cluster,
                &job,
                chunks,
                &tuning,
                need_tel,
                journal.as_mut(),
            )?;
            let mut out = report("Sparse Integer Occurrence", gpus, n as u64, &result);
            out.push_str(&partition_note);
            journal_line(&mut out, &journal);
            finish_run(&mut out, &tel, want_trace, &outs, gpus)?;
            Ok(out)
        }
        "wo" => {
            let n: usize = args.get_or("size", 4 << 20)?;
            let dict = Arc::new(Dictionary::generate(
                (43_000 / scale.max(1) as usize).max(64),
                seed,
            ));
            let text = match zipf {
                Some(s) => generate_zipf_text(&dict, n, s, seed + 1),
                None => generate_text(&dict, n, seed + 1),
            };
            let chunks = chunk_text(&text, chunk_items(1, n));
            let mut job = WoJob::new(dict.clone(), gpus);
            let mut partition_note = String::new();
            if range_partition {
                let samples = sample_word_keys(&dict, &text, SPLITTER_STRIDE);
                let splitters = derive_splitters(&samples, gpus);
                partition_note = format!(
                    "partition      : range ({} splitters from {} samples)\n",
                    splitters.len(),
                    samples.len()
                );
                job = job.with_partition(PartitionMode::Range { splitters });
            }
            let (result, tel) = run_with_tel(
                &mut cluster,
                &job,
                chunks,
                &tuning,
                need_tel,
                journal.as_mut(),
            )?;
            let mut out = report("Word Occurrence", gpus, n as u64, &result);
            out.push_str(&partition_note);
            journal_line(&mut out, &journal);
            finish_run(&mut out, &tel, want_trace, &outs, gpus)?;
            Ok(out)
        }
        "kmc" => {
            let n: usize = args.get_or("size", 500_000)?;
            let centers = kmc::initial_centers(32, seed);
            let data = kmc::generate_points(n, 32, seed + 1);
            let chunks = gpmr_core::SliceChunk::split(&data, chunk_items(16, n));
            let (result, tel) = run_with_tel(
                &mut cluster,
                &KmcJob::new(centers),
                chunks,
                &tuning,
                need_tel,
                journal.as_mut(),
            )?;
            let mut out = report(
                "K-Means Clustering (one iteration)",
                gpus,
                n as u64,
                &result,
            );
            journal_line(&mut out, &journal);
            finish_run(&mut out, &tel, want_trace, &outs, gpus)?;
            Ok(out)
        }
        "lr" => {
            let n: usize = args.get_or("size", 1_000_000)?;
            let data = lr::generate_samples(n, 2.0, -1.0, seed);
            let chunks = gpmr_core::SliceChunk::split(&data, chunk_items(8, n));
            let (result, tel) = run_with_tel(
                &mut cluster,
                &LrJob,
                chunks,
                &tuning,
                need_tel,
                journal.as_mut(),
            )?;
            let mut out = report("Linear Regression", gpus, n as u64, &result);
            journal_line(&mut out, &journal);
            let model = lr::model_from_stats(&lr::stats_from_output(&result.into_merged_output()));
            out.push_str(&format!(
                "model          : y = {:.4}x + {:.4} (r = {:.5})\n",
                model.slope, model.intercept, model.correlation
            ));
            finish_run(&mut out, &tel, want_trace, &outs, gpus)?;
            Ok(out)
        }
        "mm" => {
            if outs.any() {
                return Err(CliError::Invalid(
                    "--metrics-out/--trace-out/--events-out are not supported for mm \
                     (it runs outside the instrumented MapReduce engine)"
                        .into(),
                ));
            }
            let n: usize = args.get_or("size", 512)?;
            if !n.is_multiple_of(16) {
                return Err(CliError::Invalid(
                    "--size for mm must be a multiple of 16".into(),
                ));
            }
            let a = Matrix::random(n, seed);
            let b = Matrix::random(n, seed + 1);
            let result =
                run_mm_auto(&mut cluster, &a, &b).map_err(|e| CliError::Invalid(e.to_string()))?;
            Ok(format!(
                "Matrix Multiplication {n}x{n} on {gpus} GPU(s)\n\
                 simulated time : {}\n\
                 phase 1 (map)  : {}\n\
                 phase 2 (sum)  : {}\n\
                 effective rate : {:.1} simulated GFLOP/s\n",
                result.total_time,
                result.phase1.total,
                result.phase2.total,
                2.0 * (n as f64).powi(3) / result.total_time.as_secs().max(1e-12) / 1e9,
            ))
        }
        other => Err(CliError::Invalid(format!(
            "unknown benchmark {other:?}; expected mm, sio, wo, kmc, or lr"
        ))),
    }
}

fn cmd_kmeans(args: &Args) -> Result<String, CliError> {
    let points: usize = args.get_or("points", 200_000)?;
    let k: usize = args.get_or("k", 8)?;
    let gpus: u32 = args.get_or("gpus", 4)?;
    let iterations: usize = args.get_or("iterations", 20)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if k == 0 {
        return Err(CliError::Invalid("--k must be positive".into()));
    }
    let data = kmc::generate_points(points, k, seed);
    let init = kmc::initial_centers(k, seed + 1);
    let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
    let chunk_points = (points / (4 * gpus as usize)).max(1024);
    let jopts = JournalOpts::from_args(args)?;
    let mut journal = jopts.open()?;
    let result = match journal.as_mut() {
        Some(j) => gpmr_apps::iterative::run_kmeans_journaled(
            &mut cluster,
            &data,
            init,
            chunk_points,
            iterations,
            1e-4,
            j,
        ),
        None => gpmr_apps::iterative::run_kmeans(
            &mut cluster,
            &data,
            init,
            chunk_points,
            iterations,
            1e-4,
        ),
    }
    .map_err(|e| CliError::Invalid(e.to_string()))?;
    let mut out = format!(
        "Iterative K-Means: {points} points, k={k}, {gpus} GPU(s)
         iterations     : {} (tolerance 1e-4, {} device-resident)
         simulated time : {}
         convergence    : {:?}
         final centers  :
",
        result.iterations,
        result.resident_rounds,
        result.total_time,
        result
            .movement
            .iter()
            .map(|m| (m * 1e4).round() / 1e4)
            .collect::<Vec<_>>(),
    );
    for (i, c) in result.centers.iter().enumerate() {
        out.push_str(&format!(
            "  c{i:<2} [{:+.3}, {:+.3}, {:+.3}, {:+.3}]
",
            c[0], c[1], c[2], c[3]
        ));
    }
    journal_line(&mut out, &journal);
    Ok(out)
}

/// The service + observability config shared by `serve`, `slo report`,
/// and `metrics export`: cluster/queue/batch knobs plus `--slo-target`,
/// `--alerts`, and a flight ring when `--flight-dir` is given.
fn service_cfg_from_args(args: &Args) -> Result<gpmr_service::ServiceConfig, CliError> {
    use gpmr_service::{ObsConfig, ServiceConfig, SloPolicy};
    let alerts = match args.get("alerts") {
        Some(spec) => gpmr_telemetry::AlertRule::parse_list(spec)
            .map_err(|e| CliError::Invalid(format!("invalid --alerts: {e}")))?,
        None => Vec::new(),
    };
    let deadline_target: f64 = args.get_or("slo-target", SloPolicy::default().deadline_target)?;
    if !(0.0..1.0).contains(&deadline_target) {
        return Err(CliError::Invalid("--slo-target must be in [0, 1)".into()));
    }
    Ok(ServiceConfig {
        gpus: args.get_or("gpus", 4u32)?,
        engines: args.get_or("engines", 2usize)?,
        max_queue_depth: args.get_or("queue-depth", 64usize)?,
        batch_window_s: args.get_or("batch-window", 0.05f64)?,
        batch_max: args.get_or("batch-max", 4usize)?,
        tuning: EngineTuning::default(),
        obs: ObsConfig {
            alerts,
            flight_capacity: if args.get("flight-dir").is_some() {
                4096
            } else {
                0
            },
            slo: SloPolicy { deadline_target },
            ..ObsConfig::default()
        },
    })
}

/// Run the `--workload` script through a [`gpmr_service::JobService`].
/// `need_tel` forces an enabled telemetry handle (windowed series and
/// alert evaluation feed off the metrics registry).
fn run_service_workload(
    args: &Args,
    label: &str,
    need_tel: bool,
) -> Result<(gpmr_service::JobService, Vec<String>), CliError> {
    let path = args
        .get("workload")
        .ok_or_else(|| CliError::Invalid(format!("{label} needs --workload <file>")))?;
    let script = read_file(path)?;
    let cfg = service_cfg_from_args(args)?;
    let tel = if need_tel || !cfg.obs.alerts.is_empty() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    gpmr_service::run_script(&script, cfg, tel).map_err(|e| CliError::Invalid(e.to_string()))
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let outs = OutFiles::from_args(args);
    let (svc, lines) = run_service_workload(args, "serve", outs.any())?;
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(dir) = args.get("flight-dir") {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Invalid(format!("cannot create {dir}: {e}")))?;
        for pm in svc.postmortems() {
            let path = std::path::Path::new(dir).join(pm.file_name());
            let path = path.to_string_lossy();
            write_file(&path, &pm.trace_json)?;
            out.push_str(&format!("postmortem     : written to {path}\n"));
        }
    }
    if outs.any() {
        let snap = svc.telemetry().snapshot();
        write_outputs(&mut out, &snap, &outs)?;
    }
    Ok(out)
}

/// Render to stdout or, with `--out`, to a file.
fn emit_report(args: &Args, label: &str, body: String) -> Result<String, CliError> {
    match args.get("out") {
        Some(path) => {
            write_file(path, &body)?;
            Ok(format!("{label} written to {path}\n"))
        }
        None => Ok(body),
    }
}

/// `gpmr slo report`: per-tenant SLO accounting over a workload.
fn cmd_slo(tokens: &[String]) -> Result<String, CliError> {
    const SLO_VALUED: &[&str] = &[
        "workload",
        "out",
        "gpus",
        "engines",
        "queue-depth",
        "batch-window",
        "batch-max",
        "slo-target",
        "alerts",
    ];
    const SLO_BOOLEAN: &[&str] = &["json", "html"];
    let args =
        Args::parse(tokens.iter().cloned(), SLO_VALUED, SLO_BOOLEAN).map_err(|e| match e {
            ArgError::MissingSubcommand => CliError::Invalid("slo needs a mode: report".into()),
            other => CliError::Args(other),
        })?;
    match args.subcommand.as_str() {
        "report" => {
            let (svc, _) = run_service_workload(&args, "slo report", false)?;
            let report = svc.slo_report();
            let body = if args.flag("json") {
                report.to_json()
            } else if args.flag("html") {
                report.render_html()
            } else {
                report.render_text()
            };
            emit_report(&args, "slo report", body)
        }
        other => Err(CliError::Invalid(format!(
            "unknown slo mode {other:?}; expected report"
        ))),
    }
}

/// `gpmr metrics export`: the final metrics snapshot of a workload run,
/// as Prometheus text exposition or raw JSON.
fn cmd_metrics(tokens: &[String]) -> Result<String, CliError> {
    const METRICS_VALUED: &[&str] = &[
        "workload",
        "format",
        "out",
        "gpus",
        "engines",
        "queue-depth",
        "batch-window",
        "batch-max",
        "slo-target",
        "alerts",
    ];
    let args = Args::parse(tokens.iter().cloned(), METRICS_VALUED, &[]).map_err(|e| match e {
        ArgError::MissingSubcommand => CliError::Invalid("metrics needs a mode: export".into()),
        other => CliError::Args(other),
    })?;
    match args.subcommand.as_str() {
        "export" => {
            let (svc, _) = run_service_workload(&args, "metrics export", true)?;
            let snap = svc.telemetry().snapshot();
            let body = match args.get("format").unwrap_or("prom") {
                "prom" => gpmr_service::render_prometheus(&snap.metrics, Some(&svc.slo_report())),
                "json" => snap.metrics.to_json(),
                other => {
                    return Err(CliError::Invalid(format!(
                        "unknown --format {other:?}; expected prom or json"
                    )))
                }
            };
            emit_report(&args, "metrics", body)
        }
        other => Err(CliError::Invalid(format!(
            "unknown metrics mode {other:?}; expected export"
        ))),
    }
}

fn cmd_info(args: &Args) -> Result<String, CliError> {
    let gpus: u32 = args.get_or("gpus", 4)?;
    let spec = GpuSpec::gt200();
    let topo = Topology::accelerator(gpus);
    let link = PcieLink::gen1_x16();
    let nic = Nic::qdr_infiniband();
    let cpu = CpuSpec::dual_opteron_2216();
    Ok(format!(
        "Modelled hardware (the paper's NCSA Accelerator cluster)\n\
         GPU        : {} — {} SMs x {} cores @ {:.3} GHz = {:.0} GFLOP/s peak\n\
         GPU memory : {} MB usable, {:.0} GB/s\n\
         PCI-e      : gen-1 x16, {:.1} GB/s per direction\n\
         network    : QDR InfiniBand, {:.1} GB/s per node, {:.0} us latency\n\
         host CPU   : {} ({:.1} GFLOP/s, {:.1} GB/s)\n\
         topology   : {} GPU(s) over {} node(s), {} per node\n",
        spec.name,
        spec.sm_count,
        spec.cores_per_sm,
        spec.clock_ghz,
        spec.peak_flops() / 1e9,
        spec.mem_capacity >> 20,
        spec.mem_bandwidth / 1e9,
        link.bandwidth / 1e9,
        nic.bandwidth / 1e9,
        nic.latency_s * 1e6,
        cpu.name,
        cpu.peak_ops() / 1e9,
        cpu.mem_bandwidth / 1e9,
        topo.total_gpus,
        topo.nodes,
        topo.gpus_per_node,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, CliError> {
        dispatch(tokens.iter().copied())
    }

    #[test]
    fn help_on_empty_or_help() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"));
    }

    #[test]
    fn info_prints_hardware() {
        let out = run(&["info", "--gpus", "8"]).unwrap();
        assert!(out.contains("GT200"));
        assert!(out.contains("8 GPU(s) over 2 node(s)"));
    }

    #[test]
    fn run_requires_benchmark() {
        let err = run(&["run"]).unwrap_err();
        assert!(err.to_string().contains("--benchmark"));
    }

    #[test]
    fn run_sio_small() {
        let out = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
        ])
        .unwrap();
        assert!(out.contains("Sparse Integer Occurrence"));
        assert!(out.contains("simulated time"));
        assert!(out.contains("breakdown"));
    }

    #[test]
    fn run_lr_reports_model() {
        let out = run(&["run", "--benchmark", "lr", "--size", "30000"]).unwrap();
        assert!(out.contains("model"));
        assert!(out.contains("y = 2.0"));
    }

    #[test]
    fn run_mm_validates_size() {
        let err = run(&["run", "--benchmark", "mm", "--size", "100"]).unwrap_err();
        assert!(err.to_string().contains("multiple of 16"));
        let out = run(&["run", "--benchmark", "mm", "--size", "64"]).unwrap();
        assert!(out.contains("phase 1"));
    }

    #[test]
    fn run_with_trace_prints_gantt() {
        let out = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--trace",
        ])
        .unwrap();
        assert!(out.contains("rank   0 |"));
        assert!(out.contains("legend"));
    }

    #[test]
    fn bad_benchmark_and_gpus_rejected() {
        assert!(run(&["run", "--benchmark", "nope"])
            .unwrap_err()
            .to_string()
            .contains("unknown benchmark"));
        assert!(run(&["run", "--benchmark", "sio", "--gpus", "0"])
            .unwrap_err()
            .to_string()
            .contains("1..=1024"));
    }

    #[test]
    fn kmeans_subcommand_converges() {
        let out = run(&["kmeans", "--points", "5000", "--k", "4", "--gpus", "2"]).unwrap();
        assert!(out.contains("Iterative K-Means"));
        assert!(out.contains("final centers"));
        assert!(out.contains("c0"));
    }

    #[test]
    fn kmeans_rejects_zero_k() {
        assert!(run(&["kmeans", "--k", "0"])
            .unwrap_err()
            .to_string()
            .contains("--k"));
    }

    #[test]
    fn run_with_fault_plan_reports_recovery() {
        let out = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--fault-plan",
            "kill:1@1e-4",
        ])
        .unwrap();
        assert!(out.contains("recovery"), "missing recovery line:\n{out}");
        assert!(out.contains("1 GPU(s) lost"), "{out}");
    }

    #[test]
    fn faulted_run_matches_fault_free_output() {
        let clean = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
        ])
        .unwrap();
        let faulted = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--fault-plan",
            "xfail:0->1@0..1*2",
        ])
        .unwrap();
        // Pair accounting is identical; only timing and recovery differ.
        let pairs = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("pairs"))
                .map(str::to_string)
        };
        assert_eq!(pairs(&clean), pairs(&faulted));
        assert!(faulted.contains("transfer retries"), "{faulted}");
    }

    #[test]
    fn bad_fault_plan_rejected() {
        let err = run(&[
            "run",
            "--benchmark",
            "sio",
            "--size",
            "20000",
            "--fault-plan",
            "explode:1@0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid fault plan"), "{err}");
    }

    #[test]
    fn fault_seed_generates_deterministic_plans() {
        let args = [
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "4",
            "--size",
            "20000",
            "--fault-seed",
            "7",
        ];
        let a = run(&args).unwrap();
        let b = run(&args).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn run_writes_metrics_trace_and_events_files() {
        let dir = std::env::temp_dir().join("gpmr_cli_tel_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.json");
        let events = dir.join("events.jsonl");
        let out = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("metrics        : written to"), "{out}");
        assert!(out.contains("ui.perfetto.dev"), "{out}");

        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("engine.chunks_dispatched"), "{m}");
        let t = std::fs::read_to_string(&trace).unwrap();
        let stats = gpmr_telemetry::export::validate_perfetto(&t).unwrap();
        assert!(stats.complete_events > 0);
        assert!(stats.named_tracks >= 2);

        // The JSONL stream round-trips through `trace export` + `check`.
        let trace2 = dir.join("trace2.json");
        let exported = run(&[
            "trace",
            "export",
            "--in",
            events.to_str().unwrap(),
            "--out",
            trace2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(exported.contains("exported"), "{exported}");
        let checked = run(&["trace", "check", "--in", trace2.to_str().unwrap()]).unwrap();
        assert!(checked.contains("OK"), "{checked}");
        let summary = run(&["trace", "summary", "--in", events.to_str().unwrap()]).unwrap();
        assert!(summary.contains("rank 0"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_subcommand_validates_usage() {
        assert!(run(&["trace"])
            .unwrap_err()
            .to_string()
            .contains("export, check, or summary"));
        assert!(run(&["trace", "frob", "--in", "x"])
            .unwrap_err()
            .to_string()
            .contains("unknown trace mode"));
        assert!(run(&["trace", "check"])
            .unwrap_err()
            .to_string()
            .contains("--in"));
        assert!(run(&["trace", "check", "--in", "/nonexistent/gpmr.json"])
            .unwrap_err()
            .to_string()
            .contains("cannot read"));
    }

    #[test]
    fn mm_rejects_telemetry_out_flags() {
        let err = run(&[
            "run",
            "--benchmark",
            "mm",
            "--size",
            "64",
            "--trace-out",
            "/tmp/unused.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not supported for mm"), "{err}");
    }

    #[test]
    fn analyze_live_run_reports_bounding_stage() {
        let out = run(&[
            "analyze",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
        ])
        .unwrap();
        assert!(out.contains("performance analysis"), "{out}");
        assert!(out.contains("bounding stage:"), "{out}");
        assert!(out.contains("rank 0:"), "{out}");
        assert!(out.contains("imbalance"), "{out}");
    }

    #[test]
    fn analyze_json_output_parses() {
        let out = run(&[
            "analyze",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--json",
        ])
        .unwrap();
        let v = gpmr_telemetry::json::parse(&out).unwrap();
        assert!(v.get("makespan_s").and_then(|m| m.as_f64()).unwrap() > 0.0);
        assert!(v.get("bounding_stage").is_some());
        assert!(v.get("findings").is_some());
    }

    #[test]
    fn analyze_events_file_matches_live_schema() {
        let dir = std::env::temp_dir().join("gpmr_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&["analyze", "--events", events.to_str().unwrap()]).unwrap();
        assert!(out.contains("bounding stage:"), "{out}");
        assert!(out.contains("critical path:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_validates_usage() {
        let err = run(&["analyze"]).unwrap_err();
        assert!(err.to_string().contains("--events"), "{err}");
        let err = run(&["analyze", "--benchmark", "mm"]).unwrap_err();
        assert!(err.to_string().contains("analyze supports"), "{err}");
    }

    #[test]
    fn perf_record_then_self_diff_passes() {
        let dir = std::env::temp_dir().join("gpmr_cli_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let out = run(&[
            "perf",
            "record",
            "--scale",
            "4096",
            "--out",
            base.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wo_8rank"), "{out}");
        assert!(out.contains("wrote"), "{out}");

        // A recording diffed against itself is identical: PASS, exit 0.
        let diffed = run(&[
            "perf",
            "diff",
            "--baseline",
            base.to_str().unwrap(),
            "--against",
            base.to_str().unwrap(),
        ])
        .unwrap();
        assert!(diffed.contains("verdict: PASS"), "{diffed}");

        // Doubling a makespan in the new measurement is a regression: the
        // gate must surface it as an error (non-zero process exit).
        let mut set = BaselineSet::from_json(&std::fs::read_to_string(&base).unwrap()).unwrap();
        set.baselines[0].makespan_ns *= 2;
        let worse = dir.join("worse.json");
        std::fs::write(&worse, set.to_json()).unwrap();
        let err = run(&[
            "perf",
            "diff",
            "--baseline",
            base.to_str().unwrap(),
            "--against",
            worse.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("FAIL"), "{err}");
        assert!(err.to_string().contains("regressed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_diff_reruns_live_and_reproduces_exactly() {
        let dir = std::env::temp_dir().join("gpmr_cli_perf_live_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        run(&[
            "perf",
            "record",
            "--scale",
            "4096",
            "--out",
            base.to_str().unwrap(),
        ])
        .unwrap();
        // No --against: the suite re-runs live at the recorded scale. The
        // sim is deterministic, so an unchanged tree matches bit-exactly.
        let diffed = run(&["perf", "diff", "--baseline", base.to_str().unwrap()]).unwrap();
        assert!(diffed.contains("live re-run at scale 4096"), "{diffed}");
        assert!(diffed.contains("verdict: PASS"), "{diffed}");
        for line in diffed.lines().filter(|l| l.contains("makespan_ns")) {
            assert!(
                line.contains("+0.00%"),
                "drift in deterministic sim: {line}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_validates_usage() {
        assert!(run(&["perf"])
            .unwrap_err()
            .to_string()
            .contains("record or diff"));
        assert!(run(&["perf", "frob"])
            .unwrap_err()
            .to_string()
            .contains("unknown perf mode"));
        assert!(run(&["perf", "diff"])
            .unwrap_err()
            .to_string()
            .contains("--baseline"));
    }

    #[test]
    fn run_accepts_transfer_tuning_flags() {
        let base = [
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "4",
            "--size",
            "40000",
        ];
        let plain = run(&base).unwrap();
        let tuned = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "4",
            "--size",
            "40000",
            "--pipeline-depth",
            "1",
            "--gpu-direct",
        ])
        .unwrap();
        // Same pair accounting; only the schedule (and so the simulated
        // time) may differ between transfer modes.
        let pairs = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("pairs"))
                .map(str::to_string)
        };
        assert_eq!(pairs(&plain), pairs(&tuned));
    }

    #[test]
    fn run_rejects_bad_pipeline_depth() {
        let err = run(&[
            "run",
            "--benchmark",
            "sio",
            "--size",
            "20000",
            "--pipeline-depth",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("1..=64"), "{err}");
    }

    #[test]
    fn run_wo_and_kmc_small() {
        assert!(run(&[
            "run",
            "--benchmark",
            "wo",
            "--size",
            "20000",
            "--scale",
            "64"
        ])
        .unwrap()
        .contains("Word Occurrence"));
        assert!(run(&["run", "--benchmark", "kmc", "--size", "10000"])
            .unwrap()
            .contains("K-Means"));
    }

    #[test]
    fn journaled_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("gpmr_cli_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("job.gpj");
        let jpath = journal.to_str().unwrap();
        let base = [
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "2",
            "--size",
            "20000",
        ];
        let plain = run(&base).unwrap();

        let mut fresh_args = base.to_vec();
        fresh_args.extend(["--journal", jpath]);
        let fresh = run(&fresh_args).unwrap();
        assert!(fresh.contains("journal        :"), "{fresh}");
        assert!(fresh.contains("0 record(s) replayed"), "{fresh}");
        // Journaling never charges simulated time.
        let time = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("simulated time"))
                .map(str::to_string)
        };
        assert_eq!(time(&plain), time(&fresh));
        let bytes = std::fs::read(&journal).unwrap();
        assert!(!bytes.is_empty());

        // Truncate mid-journal (a crash), then --resume: verified replay
        // re-runs the job and re-appends the identical suffix.
        std::fs::write(&journal, &bytes[..bytes.len() / 2]).unwrap();
        let mut resume_args = fresh_args.clone();
        resume_args.push("--resume");
        let resumed = run(&resume_args).unwrap();
        assert_eq!(time(&fresh), time(&resumed));
        assert!(!resumed.contains("0 record(s) replayed"), "{resumed}");
        assert_eq!(std::fs::read(&journal).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_flags_are_validated() {
        let err = run(&["run", "--benchmark", "sio", "--size", "20000", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("--journal"), "{err}");
        let err = run(&[
            "run",
            "--benchmark",
            "sio",
            "--size",
            "20000",
            "--checkpoint-every",
            "4",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--journal"), "{err}");
        let err = run(&[
            "run",
            "--benchmark",
            "sio",
            "--size",
            "20000",
            "--journal",
            "/tmp/j.gpj",
            "--checkpoint-every",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
        let err = run(&[
            "run",
            "--benchmark",
            "mm",
            "--size",
            "64",
            "--journal",
            "/tmp/j.gpj",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not supported for mm"), "{err}");
    }

    #[test]
    fn elastic_add_plan_reports_joined_gpus() {
        let out = run(&[
            "run",
            "--benchmark",
            "sio",
            "--gpus",
            "3",
            "--size",
            "20000",
            "--fault-plan",
            "add:2@1e-4",
        ])
        .unwrap();
        assert!(
            out.contains("elasticity     : 1 GPU(s) joined mid-job"),
            "{out}"
        );
        // The recovery line only reports losses; a pure add shows none.
        assert!(!out.contains("recovery"), "{out}");
    }

    const DEMO_WL: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../workloads/service_demo.wl"
    );

    #[test]
    fn serve_prints_slo_report() {
        let out = run(&["serve", "--workload", DEMO_WL]).unwrap();
        assert!(out.contains("service passes="), "{out}");
        assert!(out.contains("slo report at="), "{out}");
        assert!(out.contains("slo tenant alice"), "{out}");
        assert!(out.contains("wait_p99="), "{out}");
    }

    #[test]
    fn serve_alerts_and_flight_dir_write_postmortems() {
        let dir = std::env::temp_dir().join("gpmr_cli_flight_test");
        std::fs::remove_dir_all(&dir).ok();
        let out = run(&[
            "serve",
            "--workload",
            DEMO_WL,
            "--alerts",
            "misses: sum(service.deadline_missed) > 0",
            "--flight-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        // The demo workload misses a deadline, cancels a job, and kills a
        // GPU: the alert fires and the recorder dumps postmortems.
        assert!(out.contains("alert fired rule=misses"), "{out}");
        assert!(out.contains("flight postmortem-"), "{out}");
        assert!(out.contains("postmortem     : written to"), "{out}");
        let mut wrote = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let trace = std::fs::read_to_string(&path).unwrap();
            gpmr_telemetry::export::validate_perfetto(&trace)
                .unwrap_or_else(|e| panic!("{path:?}: {e}"));
            wrote += 1;
        }
        assert!(wrote >= 3, "expected miss+cancel+gpu-lost+alert dumps");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slo_report_text_json_and_html() {
        let text = run(&["slo", "report", "--workload", DEMO_WL]).unwrap();
        assert!(text.contains("slo tenant bob"), "{text}");
        assert!(text.contains("budget="), "{text}");

        let json = run(&["slo", "report", "--workload", DEMO_WL, "--json"]).unwrap();
        let v = gpmr_telemetry::json::parse(&json).unwrap();
        let tenants = v.get("tenants").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(tenants.len(), 3);
        // Terminal outcomes partition: the four rates sum to exactly 1.
        for t in tenants {
            let num = |k: &str| t.get(k).and_then(|x| x.as_f64()).unwrap();
            let terminal =
                num("completed") + num("cancelled") + num("deadline_missed") + num("failed");
            if terminal > 0.0 {
                let sum =
                    num("hit_rate") + num("miss_rate") + num("cancel_rate") + num("fail_rate");
                assert!((sum - 1.0).abs() < 1e-12, "rates sum to {sum}");
            }
        }

        let html = run(&["slo", "report", "--workload", DEMO_WL, "--html"]).unwrap();
        assert!(html.contains("<html"), "{html}");
        assert!(html.contains("alice"), "{html}");
    }

    #[test]
    fn slo_report_is_deterministic() {
        let a = run(&["slo", "report", "--workload", DEMO_WL, "--json"]).unwrap();
        let b = run(&["slo", "report", "--workload", DEMO_WL, "--json"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_export_prom_and_json() {
        let prom = run(&["metrics", "export", "--workload", DEMO_WL]).unwrap();
        assert!(
            prom.contains("# TYPE gpmr_service_jobs_completed counter"),
            "{prom}"
        );
        assert!(
            prom.contains("gpmr_slo_hit_rate{tenant=\"alice\"}"),
            "{prom}"
        );
        assert!(prom.contains("_bucket{le=\"+Inf\"}"), "{prom}");

        let json = run(&[
            "metrics",
            "export",
            "--workload",
            DEMO_WL,
            "--format",
            "json",
        ])
        .unwrap();
        let v = gpmr_telemetry::json::parse(&json).unwrap();
        assert!(v.get("counters").is_some());
    }

    #[test]
    fn slo_and_metrics_validate_usage() {
        assert!(run(&["slo"]).unwrap_err().to_string().contains("report"));
        assert!(run(&["slo", "frob", "--workload", DEMO_WL])
            .unwrap_err()
            .to_string()
            .contains("unknown slo mode"));
        assert!(run(&["slo", "report"])
            .unwrap_err()
            .to_string()
            .contains("--workload"));
        assert!(run(&["metrics"])
            .unwrap_err()
            .to_string()
            .contains("export"));
        assert!(run(&[
            "metrics",
            "export",
            "--workload",
            DEMO_WL,
            "--format",
            "xml"
        ])
        .unwrap_err()
        .to_string()
        .contains("unknown --format"));
        assert!(
            run(&["serve", "--workload", DEMO_WL, "--slo-target", "1.5"])
                .unwrap_err()
                .to_string()
                .contains("--slo-target")
        );
        assert!(
            run(&["serve", "--workload", DEMO_WL, "--alerts", "nonsense"])
                .unwrap_err()
                .to_string()
                .contains("invalid --alerts")
        );
    }
}
