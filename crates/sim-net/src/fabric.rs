//! The interconnect fabric: timed point-to-point messages between ranks.
//!
//! GPMR's Bin substage runs on the CPU and pushes partitioned key-value
//! buckets to their reducer ranks. The fabric computes *when* such a
//! message arrives: cross-node messages reserve the sender's NIC send
//! engine and the receiver's NIC receive engine (after wire latency);
//! intra-node messages go through host memory on a per-node copy timeline.
//! Payloads themselves travel through a [`Mailbox`] so data stays
//! bit-exact.

use std::fmt;

use crate::nic::{CpuSpec, Nic};
use crate::topology::Topology;
use gpmr_sim_gpu::{FaultPlan, SimDuration, SimTime, Timeline, TransferOutcome};
use gpmr_telemetry::{Counter, Histogram, Telemetry};

/// Cached telemetry handles for the fabric (boxed so an uninstrumented
/// `Fabric` pays only a pointer-sized `None`).
#[derive(Debug)]
struct FabricTelemetry {
    tel: Telemetry,
    /// First track index reserved for NIC lanes; node `n` draws on track
    /// `track_base + n`.
    track_base: u32,
    sends: Counter,
    local_sends: Counter,
    bytes: Counter,
    faults: Counter,
    bytes_on_wire: Histogram,
}

impl FabricTelemetry {
    fn new(tel: &Telemetry, track_base: u32) -> Self {
        FabricTelemetry {
            tel: tel.clone(),
            track_base,
            sends: tel.counter("fabric.sends"),
            local_sends: tel.counter("fabric.local_sends"),
            bytes: tel.counter("fabric.bytes"),
            faults: tel.counter("fabric.faults_injected"),
            bytes_on_wire: tel.histogram(
                "fabric.bytes_on_wire",
                &[1024.0, 65536.0, 1048576.0, 16777216.0, 268435456.0],
            ),
        }
    }
}

/// A transfer attempt rejected by the active [`FaultPlan`].
///
/// Carries only the route (no timestamp) so it can sit inside `Eq` error
/// types; the failing attempt's timing context lives with the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferFault {
    /// Sender rank of the rejected transfer.
    pub from: u32,
    /// Receiver rank of the rejected transfer.
    pub to: u32,
}

impl fmt::Display for TransferFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fabric transfer {} -> {} failed", self.from, self.to)
    }
}

impl std::error::Error for TransferFault {}

/// Timing model for the whole cluster interconnect.
#[derive(Debug)]
pub struct Fabric {
    topology: Topology,
    nics: Vec<Nic>,
    /// Per-node host-memory copy engine used for intra-node exchanges.
    local_copy: Vec<Timeline>,
    cpu: CpuSpec,
    fault_plan: Option<FaultPlan>,
    telem: Option<Box<FabricTelemetry>>,
}

impl Fabric {
    /// Build the fabric for `topology` with QDR InfiniBand NICs and the
    /// paper's Opteron hosts.
    pub fn new(topology: Topology) -> Self {
        Self::with_hardware(topology, Nic::qdr_infiniband, CpuSpec::dual_opteron_2216())
    }

    /// Build with every throughput scaled down by `s` (workload-scaling
    /// mode; see `gpmr_sim_gpu::GpuSpec::scaled`).
    pub fn scaled(topology: Topology, s: f64) -> Self {
        Self::with_hardware(
            topology,
            || Nic::qdr_infiniband().scaled(s),
            CpuSpec::dual_opteron_2216().scaled(s),
        )
    }

    /// Build with custom NIC and host models.
    pub fn with_hardware(topology: Topology, mut nic: impl FnMut() -> Nic, cpu: CpuSpec) -> Self {
        Fabric {
            topology,
            nics: (0..topology.nodes).map(|_| nic()).collect(),
            local_copy: (0..topology.nodes).map(|_| Timeline::new()).collect(),
            cpu,
            fault_plan: None,
            telem: None,
        }
    }

    /// Attach telemetry: sends are counted (`fabric.sends`,
    /// `fabric.local_sends`, `fabric.bytes`, `fabric.bytes_on_wire`),
    /// plan-injected failures increment `fabric.faults_injected`, and every
    /// cross-node transfer draws a `NetSend` span on the sender node's NIC
    /// track (`track_base + node`). Attaching a disabled handle detaches.
    pub fn attach_telemetry(&mut self, tel: &Telemetry, track_base: u32) {
        self.telem = tel
            .is_enabled()
            .then(|| Box::new(FabricTelemetry::new(tel, track_base)));
    }

    /// Cluster shape this fabric serves.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Install (or clear) the fault plan consulted by [`Fabric::try_send`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Deliver `bytes` from `from` to `to`, with the payload available at
    /// the sender no earlier than `ready`. Returns the arrival instant at
    /// the receiver.
    pub fn send(&mut self, from: u32, to: u32, ready: SimTime, bytes: u64) -> SimTime {
        if from == to {
            // Rank-local handoff: stays in the process; free.
            return ready;
        }
        if self.topology.same_node(from, to) {
            // Through host memory on the node's copy engine. The node has
            // two Opteron sockets with independent memory controllers, so
            // aggregate copy bandwidth is twice the per-stream STREAM
            // figure recorded in `CpuSpec::mem_bandwidth`.
            let node = self.topology.node_of(from) as usize;
            let dur =
                SimDuration::from_secs(0.5e-6 + bytes as f64 / (2.0 * self.cpu.mem_bandwidth));
            let end = self.local_copy[node].reserve(ready, dur).end;
            if let Some(t) = &self.telem {
                t.sends.inc();
                t.local_sends.inc();
                t.bytes.add(bytes);
            }
            return end;
        }
        let (sn, rn) = (
            self.topology.node_of(from) as usize,
            self.topology.node_of(to) as usize,
        );
        let latency = SimDuration::from_secs(self.nics[sn].latency_s);
        let sent = self.nics[sn].reserve_send(ready, bytes);
        let recv = self.nics[rn].reserve_recv(sent.start + latency, bytes);
        if let Some(t) = &self.telem {
            t.sends.inc();
            t.bytes.add(bytes);
            t.bytes_on_wire.observe(bytes as f64);
            t.tel
                .span(
                    t.track_base + sn as u32,
                    "NetSend",
                    sent.start.as_secs(),
                    recv.end.as_secs(),
                )
                .name(format!("send {from}->{to}"))
                .attr_with("bytes", || bytes.to_string())
                .record();
        }
        recv.end
    }

    /// Like [`Fabric::send`], but consulting the fault plan first.
    ///
    /// `attempt` numbers retries of the same logical transfer from zero.
    /// A plan-decreed failure returns `Err` *without* reserving any
    /// timeline (the wire never carried the payload); a decreed delay
    /// pushes `ready` later before the normal send. Rank-local handoffs
    /// never touch the wire, so faults do not apply to them.
    pub fn try_send(
        &mut self,
        from: u32,
        to: u32,
        ready: SimTime,
        bytes: u64,
        attempt: u32,
    ) -> Result<SimTime, TransferFault> {
        if from == to {
            return Ok(ready);
        }
        match self
            .fault_plan
            .as_ref()
            .map_or(TransferOutcome::Deliver, |p| {
                p.transfer_outcome(from, to, ready, attempt)
            }) {
            TransferOutcome::Fail => {
                if let Some(t) = &self.telem {
                    t.faults.inc();
                }
                Err(TransferFault { from, to })
            }
            TransferOutcome::Delay(extra) => Ok(self.send(from, to, ready + extra, bytes)),
            TransferOutcome::Deliver => Ok(self.send(from, to, ready, bytes)),
        }
    }

    /// Total NIC busy time over the whole fabric (for utilization stats).
    pub fn network_busy(&self) -> SimDuration {
        self.nics.iter().map(|n| n.busy_time()).sum()
    }

    /// Reset all timelines to idle.
    pub fn reset(&mut self) {
        for n in &mut self.nics {
            n.reset();
        }
        for t in &mut self.local_copy {
            t.reset();
        }
    }
}

/// Typed, timestamped message queues, one per rank.
///
/// The fabric times deliveries; the mailbox carries the actual payloads so
/// receivers obtain bit-exact data along with its arrival instant.
#[derive(Debug)]
pub struct Mailbox<T> {
    queues: Vec<Vec<Delivery<T>>>,
}

/// One delivered message.
#[derive(Debug)]
pub struct Delivery<T> {
    /// Sender rank.
    pub from: u32,
    /// Canonical sequence number assigned by the sender (the chunk's
    /// global index, for the engine). Zero for plain [`Mailbox::send`].
    pub seq: u64,
    /// Simulated arrival instant at the receiver.
    pub arrival: SimTime,
    /// The payload.
    pub payload: T,
}

impl<T> Mailbox<T> {
    /// A mailbox for `ranks` receivers.
    pub fn new(ranks: u32) -> Self {
        Mailbox {
            queues: (0..ranks).map(|_| Vec::new()).collect(),
        }
    }

    /// Send `payload` from `from` to `to` over `fabric`; the payload is
    /// `bytes` long on the wire and ready at `ready`. Returns the arrival
    /// instant.
    pub fn send(
        &mut self,
        fabric: &mut Fabric,
        from: u32,
        to: u32,
        ready: SimTime,
        bytes: u64,
        payload: T,
    ) -> SimTime {
        let arrival = fabric.send(from, to, ready, bytes);
        self.deliver(to, from, 0, arrival, payload);
        arrival
    }

    /// Enqueue an already-timed delivery for `to`. Used by callers that
    /// time the transfer themselves (e.g. via [`Fabric::try_send`] with
    /// retries) and want a canonical `seq` attached.
    pub fn deliver(&mut self, to: u32, from: u32, seq: u64, arrival: SimTime, payload: T) {
        self.queues[to as usize].push(Delivery {
            from,
            seq,
            arrival,
            payload,
        });
    }

    /// Drain everything delivered to `rank`, in arrival order
    /// (ties broken by sender rank for determinism).
    pub fn drain(&mut self, rank: u32) -> Vec<Delivery<T>> {
        let mut msgs = std::mem::take(&mut self.queues[rank as usize]);
        msgs.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.from.cmp(&b.from))
        });
        msgs
    }

    /// Drain everything delivered to `rank` in *canonical* order —
    /// `(seq, from)`, independent of arrival times — so receivers that
    /// concatenate payloads produce bit-identical results no matter how
    /// faults, retries, or stalls reshuffled the arrivals.
    pub fn drain_canonical(&mut self, rank: u32) -> Vec<Delivery<T>> {
        let mut msgs = std::mem::take(&mut self.queues[rank as usize]);
        msgs.sort_by(|a, b| a.seq.cmp(&b.seq).then(a.from.cmp(&b.from)));
        msgs
    }

    /// Number of undelivered messages queued for `rank`.
    pub fn pending(&self, rank: u32) -> usize {
        self.queues[rank as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(gpus: u32) -> Fabric {
        Fabric::new(Topology::accelerator(gpus))
    }

    #[test]
    fn self_send_is_free() {
        let mut f = fabric(4);
        let t = f.send(1, 1, SimTime::from_secs(1.0), 1 << 30);
        assert_eq!(t.as_secs(), 1.0);
        assert_eq!(f.network_busy(), SimDuration::ZERO);
    }

    #[test]
    fn intra_node_skips_the_network() {
        let mut f = fabric(8);
        // Small messages: host-memory handoff beats the wire's latency.
        let local = f.send(0, 1, SimTime::ZERO, 1 << 10);
        let mut f2 = fabric(8);
        let remote = f2.send(0, 4, SimTime::ZERO, 1 << 10);
        assert!(local < remote, "local {local} remote {remote}");
        // Large messages still never touch the NICs when staying local.
        f.send(0, 1, SimTime::ZERO, 64 << 20);
        assert_eq!(f.network_busy(), SimDuration::ZERO);
        assert!(f2.network_busy().as_secs() > 0.0);
    }

    #[test]
    fn sender_nic_serializes_messages() {
        let mut f = fabric(12);
        // Two large cross-node sends from the same node.
        let a = f.send(0, 4, SimTime::ZERO, 32 << 20);
        let b = f.send(0, 8, SimTime::ZERO, 32 << 20);
        assert!(b > a);
        // Roughly double the single-message time.
        assert!(b.as_secs() > a.as_secs() * 1.9);
    }

    #[test]
    fn receiver_nic_is_a_bottleneck_for_fan_in() {
        let mut f = fabric(12);
        // Many nodes sending to rank 0 simultaneously.
        let t1 = f.send(4, 0, SimTime::ZERO, 32 << 20);
        let t2 = f.send(8, 0, SimTime::ZERO, 32 << 20);
        assert!(t2 > t1);
    }

    #[test]
    fn mailbox_delivers_in_arrival_order() {
        let mut f = fabric(12);
        let mut mb: Mailbox<&'static str> = Mailbox::new(12);
        // The receiver NIC serializes: first-requested is first-delivered,
        // and a big message delays everything queued behind it.
        mb.send(&mut f, 4, 0, SimTime::ZERO, 1 << 10, "small");
        mb.send(&mut f, 8, 0, SimTime::ZERO, 256 << 20, "big");
        assert_eq!(mb.pending(0), 2);
        let got = mb.drain(0);
        assert_eq!(got[0].payload, "small");
        assert_eq!(got[1].payload, "big");
        assert!(got[1].arrival > got[0].arrival);
        assert_eq!(mb.pending(0), 0);
    }

    #[test]
    fn try_send_honours_the_fault_plan() {
        let mut f = fabric(8);
        f.set_fault_plan(Some(
            FaultPlan::new()
                .transfer_fail(Some(0), Some(4), 0.0, 1.0, 2)
                .transfer_delay(Some(0), Some(5), 0.0, 1.0, 1e-3),
        ));
        // Failing window: first two attempts rejected, third goes through.
        let t = SimTime::from_secs(0.5);
        assert_eq!(
            f.try_send(0, 4, t, 1 << 10, 0),
            Err(TransferFault { from: 0, to: 4 })
        );
        assert_eq!(f.network_busy(), SimDuration::ZERO, "failed send used wire");
        assert_eq!(
            f.try_send(0, 4, t, 1 << 10, 1),
            Err(TransferFault { from: 0, to: 4 })
        );
        let ok = f.try_send(0, 4, t, 1 << 10, 2).unwrap();
        assert!(ok > t);
        // Delay window: arrival is pushed past the healthy-route arrival.
        let mut healthy = fabric(8);
        let base = healthy.try_send(0, 5, t, 1 << 10, 0).unwrap();
        let mut delayed = fabric(8);
        delayed.set_fault_plan(Some(FaultPlan::new().transfer_delay(
            Some(0),
            Some(5),
            0.0,
            1.0,
            1e-3,
        )));
        let late = delayed.try_send(0, 5, t, 1 << 10, 0).unwrap();
        assert!((late.as_secs() - base.as_secs() - 1e-3).abs() < 1e-9);
        // Self-sends bypass faults entirely.
        let mut f2 = fabric(8);
        f2.set_fault_plan(Some(
            FaultPlan::new().transfer_fail(None, None, 0.0, 1.0, 99),
        ));
        assert_eq!(f2.try_send(3, 3, t, 1 << 20, 0), Ok(t));
    }

    #[test]
    fn try_send_without_plan_matches_send() {
        let mut a = fabric(8);
        let mut b = fabric(8);
        let t1 = a.try_send(0, 4, SimTime::ZERO, 1 << 20, 0).unwrap();
        let t2 = b.send(0, 4, SimTime::ZERO, 1 << 20);
        assert_eq!(t1, t2);
    }

    #[test]
    fn canonical_drain_orders_by_seq_not_arrival() {
        let mut mb: Mailbox<&'static str> = Mailbox::new(4);
        // seq 7 arrives first, seq 2 arrives later; ties on seq break by
        // sender rank.
        mb.deliver(0, 3, 7, SimTime::from_secs(0.1), "late-seq-early-arrival");
        mb.deliver(0, 1, 2, SimTime::from_secs(0.9), "early-seq-late-arrival");
        mb.deliver(0, 2, 2, SimTime::from_secs(0.5), "early-seq-mid-arrival");
        let got = mb.drain_canonical(0);
        assert_eq!(got[0].payload, "early-seq-late-arrival");
        assert_eq!(got[1].payload, "early-seq-mid-arrival");
        assert_eq!(got[2].payload, "late-seq-early-arrival");
        assert_eq!(mb.pending(0), 0);
    }

    #[test]
    fn attached_telemetry_counts_sends_and_faults() {
        let tel = Telemetry::enabled();
        let mut f = fabric(8);
        f.attach_telemetry(&tel, 8);
        f.send(0, 1, SimTime::ZERO, 1 << 10); // intra-node
        f.send(0, 4, SimTime::ZERO, 1 << 20); // cross-node
        f.send(2, 2, SimTime::ZERO, 1 << 20); // self: free, uncounted
        f.set_fault_plan(Some(FaultPlan::new().transfer_fail(
            Some(0),
            Some(4),
            0.0,
            1.0,
            1,
        )));
        assert!(f.try_send(0, 4, SimTime::ZERO, 1 << 10, 0).is_err());
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counter("fabric.sends"), 2);
        assert_eq!(snap.metrics.counter("fabric.local_sends"), 1);
        assert_eq!(snap.metrics.counter("fabric.bytes"), (1 << 10) + (1 << 20));
        assert_eq!(snap.metrics.counter("fabric.faults_injected"), 1);
        assert_eq!(snap.metrics.histograms["fabric.bytes_on_wire"].count, 1);
        // One NetSend span for the cross-node transfer, on node 0's NIC
        // track (track_base 8 + node 0).
        let spans: Vec<_> = snap.spans_of("NetSend").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].track, 8);
        assert_eq!(spans[0].name, "send 0->4");
        assert_eq!(spans[0].attr("bytes"), Some("1048576"));
    }

    #[test]
    fn reset_clears_timelines() {
        let mut f = fabric(8);
        f.send(0, 4, SimTime::ZERO, 1 << 20);
        f.reset();
        assert_eq!(f.network_busy(), SimDuration::ZERO);
    }
}
