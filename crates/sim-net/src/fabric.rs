//! The interconnect fabric: timed point-to-point messages between ranks.
//!
//! GPMR's Bin substage runs on the CPU and pushes partitioned key-value
//! buckets to their reducer ranks. The fabric computes *when* such a
//! message arrives: cross-node messages reserve the sender's NIC send
//! engine and the receiver's NIC receive engine (after wire latency);
//! intra-node messages go through host memory on a per-node copy timeline.
//! Payloads themselves travel through a [`Mailbox`] so data stays
//! bit-exact.

use crate::nic::{CpuSpec, Nic};
use crate::topology::Topology;
use gpmr_sim_gpu::{SimDuration, SimTime, Timeline};

/// Timing model for the whole cluster interconnect.
#[derive(Debug)]
pub struct Fabric {
    topology: Topology,
    nics: Vec<Nic>,
    /// Per-node host-memory copy engine used for intra-node exchanges.
    local_copy: Vec<Timeline>,
    cpu: CpuSpec,
}

impl Fabric {
    /// Build the fabric for `topology` with QDR InfiniBand NICs and the
    /// paper's Opteron hosts.
    pub fn new(topology: Topology) -> Self {
        Self::with_hardware(topology, Nic::qdr_infiniband, CpuSpec::dual_opteron_2216())
    }

    /// Build with every throughput scaled down by `s` (workload-scaling
    /// mode; see `gpmr_sim_gpu::GpuSpec::scaled`).
    pub fn scaled(topology: Topology, s: f64) -> Self {
        Self::with_hardware(
            topology,
            || Nic::qdr_infiniband().scaled(s),
            CpuSpec::dual_opteron_2216().scaled(s),
        )
    }

    /// Build with custom NIC and host models.
    pub fn with_hardware(topology: Topology, mut nic: impl FnMut() -> Nic, cpu: CpuSpec) -> Self {
        Fabric {
            topology,
            nics: (0..topology.nodes).map(|_| nic()).collect(),
            local_copy: (0..topology.nodes).map(|_| Timeline::new()).collect(),
            cpu,
        }
    }

    /// Cluster shape this fabric serves.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Deliver `bytes` from `from` to `to`, with the payload available at
    /// the sender no earlier than `ready`. Returns the arrival instant at
    /// the receiver.
    pub fn send(&mut self, from: u32, to: u32, ready: SimTime, bytes: u64) -> SimTime {
        if from == to {
            // Rank-local handoff: stays in the process; free.
            return ready;
        }
        if self.topology.same_node(from, to) {
            // Through host memory on the node's copy engine. The node has
            // two Opteron sockets with independent memory controllers, so
            // aggregate copy bandwidth is twice the per-stream STREAM
            // figure recorded in `CpuSpec::mem_bandwidth`.
            let node = self.topology.node_of(from) as usize;
            let dur =
                SimDuration::from_secs(0.5e-6 + bytes as f64 / (2.0 * self.cpu.mem_bandwidth));
            return self.local_copy[node].reserve(ready, dur).end;
        }
        let (sn, rn) = (
            self.topology.node_of(from) as usize,
            self.topology.node_of(to) as usize,
        );
        let latency = SimDuration::from_secs(self.nics[sn].latency_s);
        let sent = self.nics[sn].reserve_send(ready, bytes);
        let recv = self.nics[rn].reserve_recv(sent.start + latency, bytes);
        recv.end
    }

    /// Total NIC busy time over the whole fabric (for utilization stats).
    pub fn network_busy(&self) -> SimDuration {
        self.nics.iter().map(|n| n.busy_time()).sum()
    }

    /// Reset all timelines to idle.
    pub fn reset(&mut self) {
        for n in &mut self.nics {
            n.reset();
        }
        for t in &mut self.local_copy {
            t.reset();
        }
    }
}

/// Typed, timestamped message queues, one per rank.
///
/// The fabric times deliveries; the mailbox carries the actual payloads so
/// receivers obtain bit-exact data along with its arrival instant.
#[derive(Debug)]
pub struct Mailbox<T> {
    queues: Vec<Vec<Delivery<T>>>,
}

/// One delivered message.
#[derive(Debug)]
pub struct Delivery<T> {
    /// Sender rank.
    pub from: u32,
    /// Simulated arrival instant at the receiver.
    pub arrival: SimTime,
    /// The payload.
    pub payload: T,
}

impl<T> Mailbox<T> {
    /// A mailbox for `ranks` receivers.
    pub fn new(ranks: u32) -> Self {
        Mailbox {
            queues: (0..ranks).map(|_| Vec::new()).collect(),
        }
    }

    /// Send `payload` from `from` to `to` over `fabric`; the payload is
    /// `bytes` long on the wire and ready at `ready`. Returns the arrival
    /// instant.
    pub fn send(
        &mut self,
        fabric: &mut Fabric,
        from: u32,
        to: u32,
        ready: SimTime,
        bytes: u64,
        payload: T,
    ) -> SimTime {
        let arrival = fabric.send(from, to, ready, bytes);
        self.queues[to as usize].push(Delivery {
            from,
            arrival,
            payload,
        });
        arrival
    }

    /// Drain everything delivered to `rank`, in arrival order
    /// (ties broken by sender rank for determinism).
    pub fn drain(&mut self, rank: u32) -> Vec<Delivery<T>> {
        let mut msgs = std::mem::take(&mut self.queues[rank as usize]);
        msgs.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.from.cmp(&b.from))
        });
        msgs
    }

    /// Number of undelivered messages queued for `rank`.
    pub fn pending(&self, rank: u32) -> usize {
        self.queues[rank as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(gpus: u32) -> Fabric {
        Fabric::new(Topology::accelerator(gpus))
    }

    #[test]
    fn self_send_is_free() {
        let mut f = fabric(4);
        let t = f.send(1, 1, SimTime::from_secs(1.0), 1 << 30);
        assert_eq!(t.as_secs(), 1.0);
        assert_eq!(f.network_busy(), SimDuration::ZERO);
    }

    #[test]
    fn intra_node_skips_the_network() {
        let mut f = fabric(8);
        // Small messages: host-memory handoff beats the wire's latency.
        let local = f.send(0, 1, SimTime::ZERO, 1 << 10);
        let mut f2 = fabric(8);
        let remote = f2.send(0, 4, SimTime::ZERO, 1 << 10);
        assert!(local < remote, "local {local} remote {remote}");
        // Large messages still never touch the NICs when staying local.
        f.send(0, 1, SimTime::ZERO, 64 << 20);
        assert_eq!(f.network_busy(), SimDuration::ZERO);
        assert!(f2.network_busy().as_secs() > 0.0);
    }

    #[test]
    fn sender_nic_serializes_messages() {
        let mut f = fabric(12);
        // Two large cross-node sends from the same node.
        let a = f.send(0, 4, SimTime::ZERO, 32 << 20);
        let b = f.send(0, 8, SimTime::ZERO, 32 << 20);
        assert!(b > a);
        // Roughly double the single-message time.
        assert!(b.as_secs() > a.as_secs() * 1.9);
    }

    #[test]
    fn receiver_nic_is_a_bottleneck_for_fan_in() {
        let mut f = fabric(12);
        // Many nodes sending to rank 0 simultaneously.
        let t1 = f.send(4, 0, SimTime::ZERO, 32 << 20);
        let t2 = f.send(8, 0, SimTime::ZERO, 32 << 20);
        assert!(t2 > t1);
    }

    #[test]
    fn mailbox_delivers_in_arrival_order() {
        let mut f = fabric(12);
        let mut mb: Mailbox<&'static str> = Mailbox::new(12);
        // The receiver NIC serializes: first-requested is first-delivered,
        // and a big message delays everything queued behind it.
        mb.send(&mut f, 4, 0, SimTime::ZERO, 1 << 10, "small");
        mb.send(&mut f, 8, 0, SimTime::ZERO, 256 << 20, "big");
        assert_eq!(mb.pending(0), 2);
        let got = mb.drain(0);
        assert_eq!(got[0].payload, "small");
        assert_eq!(got[1].payload, "big");
        assert!(got[1].arrival > got[0].arrival);
        assert_eq!(mb.pending(0), 0);
    }

    #[test]
    fn reset_clears_timelines() {
        let mut f = fabric(8);
        f.send(0, 4, SimTime::ZERO, 1 << 20);
        f.reset();
        assert_eq!(f.network_busy(), SimDuration::ZERO);
    }
}
