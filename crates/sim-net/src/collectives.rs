//! Collective communication patterns on top of the point-to-point fabric.
//!
//! GPMR itself only needs point-to-point Bin sends, but jobs composed
//! *around* GPMR do: iterative K-Means broadcasts updated centers to every
//! rank each iteration, and a shuffle-heavy job's Bin stage is effectively
//! an all-to-all. These helpers time such patterns faithfully (tree
//! broadcast, pairwise all-to-all) without carrying payloads — callers
//! pair them with their own data movement.

use crate::fabric::Fabric;
use gpmr_sim_gpu::SimTime;

/// Binomial-tree broadcast of `bytes` from `root` to every rank, starting
/// no earlier than `at`. Returns the instant each rank has the data
/// (indexed by rank; the root's entry is `at`).
///
/// ```
/// use gpmr_sim_net::{broadcast, Fabric, Topology};
/// use gpmr_sim_gpu::SimTime;
///
/// let mut fabric = Fabric::new(Topology::accelerator(8));
/// let ready = broadcast(&mut fabric, 0, SimTime::ZERO, 1 << 20);
/// assert_eq!(ready[0], SimTime::ZERO);
/// assert!(ready[7] > SimTime::ZERO);
/// ```
pub fn broadcast(fabric: &mut Fabric, root: u32, at: SimTime, bytes: u64) -> Vec<SimTime> {
    let ranks = fabric.topology().total_gpus;
    let mut ready: Vec<Option<SimTime>> = vec![None; ranks as usize];
    ready[root as usize] = Some(at);
    // Binomial tree on the rank index rotated so `root` is virtual rank 0.
    let rel = |r: u32| (r + ranks - root) % ranks;
    let unrel = |v: u32| (v + root) % ranks;
    let mut step = 1u32;
    while step < ranks {
        for v in 0..step.min(ranks) {
            let dst_v = v + step;
            if dst_v >= ranks {
                continue;
            }
            let src = unrel(v);
            let dst = unrel(dst_v);
            let src_ready = ready[src as usize].expect("source ready by construction");
            let arrival = fabric.send(src, dst, src_ready, bytes);
            ready[dst as usize] = Some(arrival);
        }
        step *= 2;
    }
    let _ = rel; // rel documents the virtual numbering
    ready
        .into_iter()
        .map(|t| t.expect("all ranks reached"))
        .collect()
}

/// Pairwise all-to-all: every rank sends `bytes_per_pair` to every other
/// rank, all transfers requested at `at`. Returns, per rank, the instant
/// it has received from everyone.
pub fn all_to_all(fabric: &mut Fabric, at: SimTime, bytes_per_pair: u64) -> Vec<SimTime> {
    let ranks = fabric.topology().total_gpus;
    let mut done = vec![at; ranks as usize];
    // Round-robin pairing (each round r, rank i sends to (i + r) % ranks)
    // spreads load over senders like MPI's pairwise exchange.
    for round in 1..ranks {
        for src in 0..ranks {
            let dst = (src + round) % ranks;
            let arrival = fabric.send(src, dst, at, bytes_per_pair);
            done[dst as usize] = done[dst as usize].max(arrival);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn fabric(gpus: u32) -> Fabric {
        Fabric::new(Topology::accelerator(gpus))
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let mut f = fabric(16);
        let ready = broadcast(&mut f, 0, SimTime::ZERO, 1 << 20);
        assert_eq!(ready.len(), 16);
        assert_eq!(ready[0], SimTime::ZERO);
        for (r, t) in ready.iter().enumerate().skip(1) {
            assert!(t.as_secs() > 0.0, "rank {r} never received");
        }
    }

    #[test]
    fn tree_broadcast_beats_naive_fan_out() {
        // Tree: O(log n) serialized sends from the root. Naive: root sends
        // n-1 times back-to-back.
        let bytes = 8 << 20;
        let mut f1 = fabric(16);
        let tree_done = broadcast(&mut f1, 0, SimTime::ZERO, bytes)
            .into_iter()
            .fold(SimTime::ZERO, SimTime::max);
        let mut f2 = fabric(16);
        let mut naive_done = SimTime::ZERO;
        for dst in 1..16 {
            naive_done = naive_done.max(f2.send(0, dst, SimTime::ZERO, bytes));
        }
        assert!(
            tree_done < naive_done,
            "tree {tree_done} should beat naive {naive_done}"
        );
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let mut f = fabric(8);
        let ready = broadcast(&mut f, 5, SimTime::from_secs(1.0), 1024);
        assert_eq!(ready[5], SimTime::from_secs(1.0));
        assert!(ready.iter().all(|t| t.as_secs() >= 1.0));
    }

    #[test]
    fn broadcast_single_rank_is_immediate() {
        let mut f = fabric(1);
        let ready = broadcast(&mut f, 0, SimTime::ZERO, 1 << 30);
        assert_eq!(ready, vec![SimTime::ZERO]);
    }

    #[test]
    fn all_to_all_completes_everywhere() {
        let mut f = fabric(8);
        let done = all_to_all(&mut f, SimTime::ZERO, 1 << 20);
        assert_eq!(done.len(), 8);
        assert!(done.iter().all(|t| t.as_secs() > 0.0));
        // Cross-node traffic exists.
        assert!(f.network_busy().as_secs() > 0.0);
    }

    #[test]
    fn all_to_all_scales_with_message_size() {
        let mut f1 = fabric(8);
        let small = all_to_all(&mut f1, SimTime::ZERO, 1 << 16)
            .into_iter()
            .fold(SimTime::ZERO, SimTime::max);
        let mut f2 = fabric(8);
        let large = all_to_all(&mut f2, SimTime::ZERO, 1 << 24)
            .into_iter()
            .fold(SimTime::ZERO, SimTime::max);
        assert!(large.as_secs() > small.as_secs() * 10.0);
    }
}
