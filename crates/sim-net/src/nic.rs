//! Network interface model.
//!
//! Each node owns one NIC with independent send and receive engines
//! (full-duplex InfiniBand). A message reserves the sender's send engine,
//! then the receiver's receive engine after the wire latency; contention on
//! either side delays delivery. The preset matches the paper's QDR
//! InfiniBand fabric.

use gpmr_sim_gpu::{Reservation, SimDuration, SimTime, Timeline};

/// A full-duplex network interface.
#[derive(Debug)]
pub struct Nic {
    /// Effective bandwidth per direction, bytes/second.
    pub bandwidth: f64,
    /// One-way wire + stack latency, seconds.
    pub latency_s: f64,
    send: Timeline,
    recv: Timeline,
}

impl Nic {
    /// Create a NIC with the given bandwidth and latency.
    pub fn new(bandwidth: f64, latency_s: f64) -> Self {
        Nic {
            bandwidth,
            latency_s,
            send: Timeline::new(),
            recv: Timeline::new(),
        }
    }

    /// QDR InfiniBand as deployed on the paper's cluster: ~3.2 GB/s
    /// effective per node, ~2 microsecond latency.
    pub fn qdr_infiniband() -> Self {
        Self::new(3.2e9, 2.0e-6)
    }

    /// Scale bandwidth down by `s`, keeping latency (workload-scaling
    /// mode; see `GpuSpec::scaled`).
    pub fn scaled(mut self, s: f64) -> Self {
        self.bandwidth /= s.max(1.0);
        self
    }

    /// Serialization time for `bytes` on the wire.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.bandwidth)
    }

    /// Reserve the send engine for `bytes` starting no earlier than `at`.
    pub fn reserve_send(&mut self, at: SimTime, bytes: u64) -> Reservation {
        self.send.reserve(at, self.wire_time(bytes))
    }

    /// Reserve the receive engine for `bytes` starting no earlier than `at`.
    pub fn reserve_recv(&mut self, at: SimTime, bytes: u64) -> Reservation {
        self.recv.reserve(at, self.wire_time(bytes))
    }

    /// Instant after which the send engine is idle.
    pub fn send_free_at(&self) -> SimTime {
        self.send.free_at()
    }

    /// Instant after which the receive engine is idle.
    pub fn recv_free_at(&self) -> SimTime {
        self.recv.free_at()
    }

    /// Total busy time across both engines.
    pub fn busy_time(&self) -> SimDuration {
        self.send.busy_time() + self.recv.busy_time()
    }

    /// Reset both engines to idle.
    pub fn reset(&mut self) {
        self.send.reset();
        self.recv.reset();
    }
}

/// Host CPU and memory description for a cluster node. Used by the Bin
/// stage (intra-node copies through host memory) and by the Phoenix-style
/// CPU baseline's cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSpec {
    /// Display name.
    pub name: &'static str,
    /// Worker cores available.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Useful scalar operations per core-cycle (ILP + SSE folded in).
    pub ops_per_cycle: f64,
    /// Sustained memory bandwidth, bytes/second (shared by all cores).
    pub mem_bandwidth: f64,
}

impl CpuSpec {
    /// The paper's node host: two dual-core 2.4 GHz AMD Opterons, 8 GB RAM.
    /// Memory bandwidth is the era's measured STREAM figure (~3 GB/s per
    /// node), not the DDR2 theoretical peak.
    pub fn dual_opteron_2216() -> Self {
        CpuSpec {
            name: "2x dual-core Opteron 2.4 GHz",
            cores: 4,
            clock_ghz: 2.4,
            ops_per_cycle: 2.0,
            mem_bandwidth: 3.0e9,
        }
    }

    /// Peak scalar throughput over all cores, ops/second.
    pub fn peak_ops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.ops_per_cycle
    }

    /// Scale clock and memory bandwidth down by `s` (workload-scaling
    /// mode; see `GpuSpec::scaled`).
    pub fn scaled(mut self, s: f64) -> Self {
        let s = s.max(1.0);
        self.clock_ghz /= s;
        self.mem_bandwidth /= s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let nic = Nic::new(1e9, 0.0);
        assert!((nic.wire_time(1_000_000).as_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn send_engine_serializes() {
        let mut nic = Nic::qdr_infiniband();
        let a = nic.reserve_send(SimTime::ZERO, 32 << 20);
        let b = nic.reserve_send(SimTime::ZERO, 32 << 20);
        assert_eq!(b.start, a.end);
        assert_eq!(nic.send_free_at(), b.end);
    }

    #[test]
    fn send_and_recv_are_full_duplex() {
        let mut nic = Nic::qdr_infiniband();
        let s = nic.reserve_send(SimTime::ZERO, 32 << 20);
        let r = nic.reserve_recv(SimTime::ZERO, 32 << 20);
        assert_eq!(s.start, SimTime::ZERO);
        assert_eq!(r.start, SimTime::ZERO);
        assert!(nic.busy_time().as_secs() > 0.0);
        nic.reset();
        assert_eq!(nic.recv_free_at(), SimTime::ZERO);
    }

    #[test]
    fn opteron_peak_ops() {
        let c = CpuSpec::dual_opteron_2216();
        assert!((c.peak_ops() - 4.0 * 2.4e9 * 2.0).abs() < 1.0);
    }
}
