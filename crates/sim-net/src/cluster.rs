//! A whole simulated GPU cluster: devices wired to shared PCI-e links and
//! an interconnect fabric.
//!
//! This is the object the GPMR engine runs against. It owns one [`Gpu`]
//! per rank, with the paper's S1070 link sharing (two GPUs per host PCI-e
//! link) and one NIC per node.

use crate::fabric::Fabric;
use crate::topology::Topology;
use gpmr_sim_gpu::{FaultPlan, Gpu, GpuSpec, PcieLink, SharedLink};
use gpmr_telemetry::Telemetry;

/// A simulated cluster of GPUs.
pub struct Cluster {
    topology: Topology,
    gpus: Vec<Gpu>,
    fabric: Fabric,
    gpu_direct: bool,
    fault_plan: Option<FaultPlan>,
}

impl Cluster {
    /// Build the paper's cluster shape for `gpu_count` GPUs of type `spec`.
    pub fn accelerator(gpu_count: u32, spec: GpuSpec) -> Self {
        Self::new(Topology::accelerator(gpu_count), spec)
    }

    /// Build a cluster with an explicit topology.
    pub fn new(topology: Topology, spec: GpuSpec) -> Self {
        Self::build(topology, spec, 1.0)
    }

    /// Build the paper's cluster shape with every hardware throughput
    /// scaled down by `scale` (workload-scaling mode: run workloads
    /// shrunk by `scale` and obtain full-scale simulated times; see
    /// [`GpuSpec::scaled`]). The GPU spec is scaled too.
    pub fn accelerator_scaled(gpu_count: u32, spec: GpuSpec, scale: f64) -> Self {
        Self::build(Topology::accelerator(gpu_count), spec.scaled(scale), scale)
    }

    /// Build with an explicitly pre-scaled GPU spec and a separate scale
    /// for the transfer fabric (PCI-e links, NICs, host memory). Used by
    /// workloads whose compute and traffic scale differently — Matrix
    /// Multiplication scales compute by `d^3` but traffic by `d^2` when
    /// matrix order shrinks by `d`.
    pub fn custom_scaled(topology: Topology, spec: GpuSpec, transfer_scale: f64) -> Self {
        Self::build(topology, spec, transfer_scale)
    }

    fn build(topology: Topology, spec: GpuSpec, scale: f64) -> Self {
        // One shared PCI-e link per (node, link-slot) pair.
        let mut links: Vec<Vec<SharedLink>> = (0..topology.nodes)
            .map(|_| {
                (0..topology.pcie_links_per_node)
                    .map(|_| SharedLink::new(PcieLink::gen1_x16().scaled(scale)))
                    .collect()
            })
            .collect();
        let gpus = topology
            .ranks()
            .map(|rank| {
                let node = topology.node_of(rank) as usize;
                let link = topology.pcie_link_of(rank) as usize;
                Gpu::with_link(spec.clone(), links[node][link].clone())
            })
            .collect();
        // `links` handles stay alive inside the GPUs.
        links.clear();
        Cluster {
            topology,
            gpus,
            fabric: Fabric::scaled(topology, scale),
            gpu_direct: false,
            fault_plan: None,
        }
    }

    /// Install (or clear) a fault plan for jobs run on this cluster. The
    /// plan is forwarded to the fabric (transfer faults) and read by the
    /// engine (GPU kills, rank stalls).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fabric.set_fault_plan(plan.clone());
        self.fault_plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Enable GPU-direct networking: the what-if hardware of the paper's
    /// conclusion ("we hope GPU and network vendors work together to allow
    /// sourcing and sinking by the GPU for network I/O ... GPMR would
    /// benefit by moving intermediate data between nodes without having to
    /// route through CPU memory"). With it on, the engine skips the PCI-e
    /// round trips that bracket every network transfer of intermediate
    /// pairs.
    pub fn with_gpu_direct(mut self, enabled: bool) -> Self {
        self.gpu_direct = enabled;
        self
    }

    /// Whether GPU-direct networking is enabled.
    pub fn gpu_direct(&self) -> bool {
        self.gpu_direct
    }

    /// The cluster shape.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of ranks (GPUs).
    pub fn size(&self) -> u32 {
        self.topology.total_gpus
    }

    /// Borrow the GPU for `rank`.
    pub fn gpu(&mut self, rank: u32) -> &mut Gpu {
        &mut self.gpus[rank as usize]
    }

    /// Borrow the fabric.
    pub fn fabric(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Borrow a GPU and the fabric at once (the engine frequently needs
    /// both while binning).
    pub fn gpu_and_fabric(&mut self, rank: u32) -> (&mut Gpu, &mut Fabric) {
        (&mut self.gpus[rank as usize], &mut self.fabric)
    }

    /// Attach `tel` to every device and the fabric. Track layout: GPU rank
    /// `r` draws on track `r` ("rank {r}"), and node `n`'s NIC draws on
    /// track `ranks + n` ("node {n} NIC"). Attaching a disabled handle
    /// detaches everything.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        let ranks = self.size();
        for r in 0..ranks {
            tel.set_track_name(r, &format!("rank {r}"));
            self.gpus[r as usize].attach_telemetry(tel, r);
        }
        for n in 0..self.topology.nodes {
            tel.set_track_name(ranks + n, &format!("node {n} NIC"));
        }
        self.fabric.attach_telemetry(tel, ranks);
    }

    /// Reset every timeline in the cluster (between jobs).
    pub fn reset_clocks(&mut self) {
        for g in &mut self.gpus {
            g.reset_clock();
        }
        self.fabric.reset();
    }

    /// Publish every device's memory high-water mark to its telemetry
    /// gauge (see [`Gpu::flush_telemetry`]). Called by the engine at job
    /// teardown; a no-op for uninstrumented clusters.
    pub fn flush_telemetry(&self) {
        for g in &self.gpus {
            g.flush_telemetry();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::SimTime;

    #[test]
    fn cluster_builds_all_ranks() {
        let mut c = Cluster::accelerator(8, GpuSpec::gt200());
        assert_eq!(c.size(), 8);
        assert_eq!(c.topology().nodes, 2);
        assert_eq!(c.gpu(7).spec.sm_count, 30);
    }

    #[test]
    fn accelerator_gpus_have_dedicated_links() {
        let mut c = Cluster::accelerator(4, GpuSpec::gt200());
        let r0 = c.gpu(0).h2d(SimTime::ZERO, 64 << 20);
        let r1 = c.gpu(1).h2d(SimTime::ZERO, 64 << 20);
        assert_eq!(r0.start, SimTime::ZERO);
        assert_eq!(r1.start, SimTime::ZERO);
    }

    #[test]
    fn paired_gpus_share_a_pcie_link_in_ablation_topology() {
        // The physical S1070 wiring: two GPUs per host link.
        let mut c = Cluster::new(Topology::new(1, 4, 2), GpuSpec::gt200());
        let r0 = c.gpu(0).h2d(SimTime::ZERO, 64 << 20);
        let r1 = c.gpu(1).h2d(SimTime::ZERO, 64 << 20);
        assert_eq!(r1.start, r0.end);
        // Rank 2 is on link 1: starts immediately.
        let r2 = c.gpu(2).h2d(SimTime::ZERO, 64 << 20);
        assert_eq!(r2.start, SimTime::ZERO);
    }

    #[test]
    fn gpu_direct_flag_round_trips() {
        let c = Cluster::accelerator(2, GpuSpec::gt200());
        assert!(!c.gpu_direct());
        let c = c.with_gpu_direct(true);
        assert!(c.gpu_direct());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cluster::accelerator(4, GpuSpec::gt200());
        c.gpu(0).h2d(SimTime::ZERO, 1 << 20);
        c.fabric().send(0, 4 - 1, SimTime::ZERO, 1 << 20);
        c.reset_clocks();
        assert_eq!(c.gpu(0).compute_free_at(), SimTime::ZERO);
    }

    #[test]
    fn attach_telemetry_names_rank_and_nic_tracks() {
        let tel = Telemetry::enabled();
        let mut c = Cluster::accelerator(8, GpuSpec::gt200());
        c.attach_telemetry(&tel);
        c.gpu(2).h2d(SimTime::ZERO, 1 << 10);
        c.fabric().send(0, 4, SimTime::ZERO, 1 << 10);
        let snap = tel.snapshot();
        assert_eq!(snap.tracks[&0], "rank 0");
        assert_eq!(snap.tracks[&7], "rank 7");
        assert_eq!(snap.tracks[&8], "node 0 NIC");
        assert_eq!(snap.tracks[&9], "node 1 NIC");
        assert_eq!(snap.metrics.counter("gpu.rank2.h2d_bytes"), 1 << 10);
        assert_eq!(snap.metrics.counter("fabric.sends"), 1);
        assert_eq!(snap.spans_of("NetSend").count(), 1);
    }

    #[test]
    fn gpu_and_fabric_split_borrow() {
        let mut c = Cluster::accelerator(8, GpuSpec::gt200());
        let (gpu, fabric) = c.gpu_and_fabric(0);
        let r = gpu.d2h(SimTime::ZERO, 1 << 20);
        let arrival = fabric.send(0, 4, r.end, 1 << 20);
        assert!(arrival > r.end);
    }
}
