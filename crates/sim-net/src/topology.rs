//! Cluster shape: nodes, GPUs per node, and PCI-e link sharing.
//!
//! The paper's testbed is the NCSA *Accelerator* cluster: 32 nodes, each
//! with an NVIDIA Tesla S1070 (4 GPUs) attached over generation-1 PCI-e,
//! QDR InfiniBand between nodes, experiments on up to 64 GPUs. One MPI
//! process drives each GPU; process *ranks* are numbered GPU-major within
//! nodes (`rank = node * gpus_per_node + local`). On an S1070, pairs of
//! GPUs share one host PCI-e connection — the topology records that too.

/// Shape of a GPU cluster.
///
/// ```
/// use gpmr_sim_net::Topology;
///
/// // A 10-GPU run on the paper's 4-GPUs-per-node cluster.
/// let t = Topology::accelerator(10);
/// assert_eq!(t.nodes, 3);
/// assert_eq!(t.node_of(9), 2);
/// assert!(t.same_node(4, 7));
/// assert_eq!(t.imbalance(), 2); // last node only half used
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of nodes used.
    pub nodes: u32,
    /// GPUs per fully-populated node.
    pub gpus_per_node: u32,
    /// GPUs actually used (ranks); the last node may be partially used.
    pub total_gpus: u32,
    /// Host PCI-e links per node; GPUs on a node share them round-robin in
    /// pairs (S1070: 4 GPUs over 2 links).
    pub pcie_links_per_node: u32,
}

impl Topology {
    /// The paper's cluster shape for a run using `gpus` GPUs: nodes of 4
    /// GPUs, filled greedily (so 6 GPUs = one full node plus a half-used
    /// one — the imbalance the paper blames for the LR efficiency dip).
    ///
    /// Calibration note: each GPU gets its own host PCI-e link. The
    /// physical S1070 pairs two GPUs per host connection, but strict
    /// pairing caps every PCI-e-streaming workload at 50 % single-node
    /// efficiency, contradicting the paper's measured 4-GPU results; the
    /// effective per-GPU bandwidth of the testbed is better modelled by
    /// dedicated links. Use [`Topology::new`] with 2 links for the
    /// link-sharing ablation.
    pub fn accelerator(gpus: u32) -> Self {
        let gpus = gpus.max(1);
        Topology {
            nodes: gpus.div_ceil(4),
            gpus_per_node: 4,
            total_gpus: gpus,
            pcie_links_per_node: 4,
        }
    }

    /// A custom shape.
    pub fn new(nodes: u32, gpus_per_node: u32, pcie_links_per_node: u32) -> Self {
        Topology {
            nodes: nodes.max(1),
            gpus_per_node: gpus_per_node.max(1),
            total_gpus: nodes.max(1) * gpus_per_node.max(1),
            pcie_links_per_node: pcie_links_per_node.max(1),
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.gpus_per_node
    }

    /// The GPU slot of `rank` within its node.
    pub fn local_of(&self, rank: u32) -> u32 {
        rank % self.gpus_per_node
    }

    /// The host PCI-e link index (within the node) used by `rank`.
    pub fn pcie_link_of(&self, rank: u32) -> u32 {
        let per_link = self.gpus_per_node.div_ceil(self.pcie_links_per_node);
        self.local_of(rank) / per_link.max(1)
    }

    /// True if two ranks live on the same node (messages between them skip
    /// the network).
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterate over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = u32> {
        0..self.total_gpus
    }

    /// Number of ranks on the busiest node minus the emptiest used node —
    /// nonzero when a run does not fill nodes evenly.
    pub fn imbalance(&self) -> u32 {
        if self.total_gpus.is_multiple_of(self.gpus_per_node) || self.nodes == 1 {
            0
        } else {
            self.gpus_per_node - self.total_gpus % self.gpus_per_node
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerator_fills_nodes_greedily() {
        let t = Topology::accelerator(64);
        assert_eq!(t.nodes, 16);
        assert_eq!(t.total_gpus, 64);
        assert_eq!(t.imbalance(), 0);

        let t = Topology::accelerator(6);
        assert_eq!(t.nodes, 2);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.local_of(5), 1);
        assert_eq!(t.imbalance(), 2);
    }

    #[test]
    fn accelerator_gives_each_gpu_its_own_link() {
        let t = Topology::accelerator(8);
        assert_eq!(t.pcie_link_of(0), 0);
        assert_eq!(t.pcie_link_of(1), 1);
        assert_eq!(t.pcie_link_of(3), 3);
        assert_eq!(t.pcie_link_of(4), 0); // next node
    }

    #[test]
    fn paired_links_for_the_sharing_ablation() {
        // The physical S1070 wiring: 4 GPUs over 2 host links.
        let t = Topology::new(2, 4, 2);
        assert_eq!(t.pcie_link_of(0), 0);
        assert_eq!(t.pcie_link_of(1), 0);
        assert_eq!(t.pcie_link_of(2), 1);
        assert_eq!(t.pcie_link_of(3), 1);
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::accelerator(8);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.ranks().count(), 8);
    }

    #[test]
    fn single_gpu_cluster() {
        let t = Topology::accelerator(1);
        assert_eq!(t.nodes, 1);
        assert_eq!(t.total_gpus, 1);
        assert_eq!(t.imbalance(), 0);
    }
}
