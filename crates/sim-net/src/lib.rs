//! # gpmr-sim-net — cluster interconnect simulator
//!
//! Models the parts of the GPMR paper's testbed that live *outside* the
//! GPU: node topology (NCSA Accelerator: 4 GPUs per node over 2 shared
//! PCI-e links), QDR InfiniBand NICs with full-duplex send/receive
//! engines, timed point-to-point messaging ([`Fabric`]) with real payload
//! delivery ([`Mailbox`]), host CPU description ([`CpuSpec`]) and a whole
//! assembled [`Cluster`].
//!
//! GPUs cannot source or sink network I/O (the paper's motivating
//! constraint): every network byte first crosses PCI-e to the host, which
//! the GPMR engine models by chaining a device D2H reservation into a
//! fabric send.

#![warn(missing_docs)]

pub mod cluster;
pub mod collectives;
pub mod fabric;
pub mod nic;
pub mod topology;

pub use cluster::Cluster;
pub use collectives::{all_to_all, broadcast};
pub use fabric::{Delivery, Fabric, Mailbox, TransferFault};
pub use nic::{CpuSpec, Nic};
pub use topology::Topology;
