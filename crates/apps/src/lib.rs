//! # gpmr-apps — the five GPMR paper benchmarks
//!
//! Every benchmark of Stuart & Owens (IPDPS 2011) §5, implemented as a
//! [`gpmr_core::GpmrJob`] with the paper's GPU-specific adaptations, plus
//! seeded workload generators and sequential CPU references:
//!
//! | Benchmark | Module | Pipeline shape |
//! |---|---|---|
//! | Matrix Multiplication | [`mm`] | two-phase, tiled, bypasses Sort/Reduce |
//! | Sparse Integer Occurrence | [`sio`] | plain map, full shuffle, radix sort |
//! | Word Occurrence | [`wo`] | Accumulation, MPH keys, partitioner crossover |
//! | K-Means Clustering | [`kmc`] | Accumulation, per-block pools, per-center partition |
//! | Linear Regression | [`lr`] | Accumulation, six keys, no partitioner |
//!
//! [`datasets`] encodes the paper's Table 1; [`mph`] and [`text`] are the
//! Word Occurrence substrates (minimal perfect hashing, corpus
//! generation).

#![warn(missing_docs)]

pub mod cpair;
pub mod datasets;
pub mod iterative;
pub mod kmc;
pub mod lr;
pub mod mm;
pub mod mph;
pub mod sio;
pub mod ssort;
pub mod text;
pub mod wo;

pub use cpair::{CpairJob, CpairRounds};
pub use datasets::{strong_workload, Benchmark, Workload};
pub use iterative::{run_kmeans, run_kmeans_journaled, KmcRounds, KmeansResult};
pub use kmc::KmcJob;
pub use lr::LrJob;
pub use mm::{run_mm, run_mm_default, Matrix, MmMapJob, MmResult, MmSumJob};
pub use mph::MinimalPerfectHash;
pub use sio::SioJob;
pub use ssort::{SsortJob, SsortRounds};
pub use text::Dictionary;
pub use wo::WoJob;
