//! Dictionary and text-corpus generation for Word Occurrence.
//!
//! The paper's WO input is "randomly generated text from a forty-three
//! thousand word dictionary, separated at line boundaries", with each
//! chunk containing millions of bytes. The generators here are seeded and
//! deterministic; chunks are cut at line boundaries so no word straddles
//! a chunk (exactly the property the paper's mapper relies on).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gpmr_core::SliceChunk;

use crate::mph::MinimalPerfectHash;

/// The paper's dictionary size.
pub const PAPER_DICTIONARY_WORDS: usize = 43_000;

/// A fixed word list plus its minimal perfect hash.
#[derive(Clone, Debug)]
pub struct Dictionary {
    /// The words (distinct, lowercase ASCII).
    pub words: Vec<Vec<u8>>,
    /// Minimal perfect hash assigning each word a dense `u32` id.
    pub mph: MinimalPerfectHash,
}

impl Dictionary {
    /// Generate `n` distinct pseudo-random words (3–12 lowercase letters)
    /// and build their minimal perfect hash.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::with_capacity(n);
        let mut words = Vec::with_capacity(n);
        while words.len() < n {
            let len = rng.gen_range(3..=12);
            let w: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
            if set.insert(w.clone()) {
                words.push(w);
            }
        }
        let refs: Vec<&[u8]> = words.iter().map(Vec::as_slice).collect();
        let mph = MinimalPerfectHash::build(&refs);
        Dictionary { words, mph }
    }

    /// Build a dictionary from an explicit word list (e.g. loaded from a
    /// system word file). Words must be distinct; duplicates panic during
    /// minimal-perfect-hash construction.
    pub fn from_words(words: Vec<Vec<u8>>) -> Self {
        let refs: Vec<&[u8]> = words.iter().map(Vec::as_slice).collect();
        let mph = MinimalPerfectHash::build(&refs);
        Dictionary { words, mph }
    }

    /// Load a dictionary from newline-separated words in a text file
    /// (blank lines skipped, duplicates removed, order preserved).
    pub fn from_word_file(path: &std::path::Path) -> std::io::Result<Self> {
        let content = std::fs::read(path)?;
        let mut seen = std::collections::HashSet::new();
        let words: Vec<Vec<u8>> = content
            .split(|&b| b == b'\n' || b == b'\r')
            .filter(|w| !w.is_empty())
            .filter(|w| seen.insert(w.to_vec()))
            .map(<[u8]>::to_vec)
            .collect();
        Ok(Self::from_words(words))
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Generate roughly `total_bytes` of text: dictionary words separated by
/// spaces, newline about every 64 bytes.
pub fn generate_text(dict: &Dictionary, total_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7465_7874);
    let mut out = Vec::with_capacity(total_bytes + 16);
    let mut line = 0usize;
    while out.len() < total_bytes {
        let w = &dict.words[rng.gen_range(0..dict.words.len())];
        out.extend_from_slice(w);
        line += w.len() + 1;
        if line >= 64 {
            out.push(b'\n');
            line = 0;
        } else {
            out.push(b' ');
        }
    }
    if *out.last().unwrap_or(&b'\n') != b'\n' {
        out.push(b'\n');
    }
    out
}

/// Generate roughly `total_bytes` of *skewed* text: words drawn from the
/// dictionary with Zipf(`s`) frequencies (dictionary order is rank order
/// — word 0 is the hottest). The workload the skew-aware shuffle exists
/// for: a handful of words dominate the corpus, so their keys dominate
/// the pair stream.
pub fn generate_zipf_text(dict: &Dictionary, total_bytes: usize, s: f64, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7a69_7066);
    // Inverse-CDF table over word ranks.
    let mut cdf = Vec::with_capacity(dict.words.len());
    let mut acc = 0.0f64;
    for k in 1..=dict.words.len() {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let mut out = Vec::with_capacity(total_bytes + 16);
    let mut line = 0usize;
    while out.len() < total_bytes {
        let u = rng.gen_range(0.0..total);
        let w = &dict.words[cdf.partition_point(|&c| c < u)];
        out.extend_from_slice(w);
        line += w.len() + 1;
        if line >= 64 {
            out.push(b'\n');
            line = 0;
        } else {
            out.push(b' ');
        }
    }
    if *out.last().unwrap_or(&b'\n') != b'\n' {
        out.push(b'\n');
    }
    out
}

/// Split text into chunks of roughly `chunk_bytes`, cut at line
/// boundaries so words never straddle chunks.
pub fn chunk_text(text: &[u8], chunk_bytes: usize) -> Vec<SliceChunk<u8>> {
    let chunk_bytes = chunk_bytes.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut id = 0u32;
    while start < text.len() {
        let mut end = (start + chunk_bytes).min(text.len());
        if end < text.len() {
            // Extend to the next newline.
            while end < text.len() && text[end - 1] != b'\n' {
                end += 1;
            }
        }
        chunks.push(SliceChunk::new(id, start as u64, text[start..end].to_vec()));
        id += 1;
        start = end;
    }
    chunks
}

/// Iterate the words of a text buffer (split on spaces and newlines).
pub fn words_of(text: &[u8]) -> impl Iterator<Item = &[u8]> {
    text.split(|&b| b == b' ' || b == b'\n')
        .filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_core::Chunk as _;

    #[test]
    fn dictionary_words_are_distinct() {
        let d = Dictionary::generate(500, 1);
        assert_eq!(d.len(), 500);
        let set: std::collections::HashSet<_> = d.words.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(!d.is_empty());
    }

    #[test]
    fn dictionary_from_words_and_file() {
        let words: Vec<Vec<u8>> = ["alpha", "beta", "gamma", "delta"]
            .iter()
            .map(|w| w.as_bytes().to_vec())
            .collect();
        let d = Dictionary::from_words(words.clone());
        assert_eq!(d.len(), 4);
        assert!(crate::mph::verify_perfect(
            &d.mph,
            &words.iter().map(Vec::as_slice).collect::<Vec<_>>()
        )
        .is_some());

        // Round-trip through a word file (with duplicates and blanks).
        let path = std::env::temp_dir().join("gpmr_dict_test.txt");
        std::fs::write(&path, "alpha\nbeta\n\ngamma\nbeta\ndelta\n").unwrap();
        let d2 = Dictionary::from_word_file(&path).unwrap();
        assert_eq!(d2.len(), 4);
        assert_eq!(d2.words, d.words);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_contains_only_dictionary_words() {
        let d = Dictionary::generate(100, 2);
        let text = generate_text(&d, 10_000, 3);
        assert!(text.len() >= 10_000);
        let dict_set: std::collections::HashSet<&[u8]> =
            d.words.iter().map(Vec::as_slice).collect();
        for w in words_of(&text) {
            assert!(dict_set.contains(w), "unknown word {:?}", w);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = Dictionary::generate(100, 2);
        assert_eq!(generate_text(&d, 5000, 9), generate_text(&d, 5000, 9));
    }

    #[test]
    fn chunks_cut_at_line_boundaries() {
        let d = Dictionary::generate(100, 2);
        let text = generate_text(&d, 50_000, 4);
        let chunks = chunk_text(&text, 8_000);
        assert!(chunks.len() >= 6);
        let mut rebuilt = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                assert_eq!(*c.items.last().unwrap(), b'\n', "chunk {i} mid-line");
            }
            assert_eq!(c.global_offset as usize, rebuilt.len());
            rebuilt.extend_from_slice(&c.items);
        }
        assert_eq!(rebuilt, text);
    }

    #[test]
    fn chunk_word_counts_match_whole_text() {
        let d = Dictionary::generate(50, 5);
        let text = generate_text(&d, 20_000, 6);
        let whole = words_of(&text).count();
        let chunks = chunk_text(&text, 3_000);
        let split: usize = chunks.iter().map(|c| words_of(&c.items).count()).sum();
        assert_eq!(whole, split);
        let _ = chunks[0].size_bytes();
    }
}
