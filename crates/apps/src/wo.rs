//! Word Occurrence (WO): count occurrences of each dictionary word in a
//! text corpus (paper §5.3.3).
//!
//! The paper's GPU adaptations, all reproduced here:
//!
//! * **No string keys** — a minimal perfect hash assigns each dictionary
//!   word a dense 4-byte id; the map kernel emits `(hash(w), 1)`.
//! * **Accumulation** — an initial emission seeds all dictionary keys with
//!   value 0; map kernels then increment GPU-resident counters with
//!   fire-and-forget atomics, almost completely removing communication.
//! * **Partitioner crossover** — below a GPU-count threshold all pairs go
//!   to a single reducer (one kernel handles 43 k keys easily); past the
//!   threshold that reducer becomes the bottleneck and the default
//!   round-robin partitioner is enabled.
//! * **Warp-per-key reduce** — each warp sums one key's values with
//!   coalesced reads then a warp-wide reduction (the paper saw an order of
//!   magnitude improvement over thread-per-key here).

use std::collections::HashMap;
use std::sync::Arc;

use gpmr_core::{GpmrJob, KvSet, MapMode, PartitionMode, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};

use crate::text::{words_of, Dictionary};

/// GPU count past which WO switches from the single-reducer configuration
/// to round-robin partitioning (the paper's crossover).
pub const DEFAULT_PARTITION_CROSSOVER: u32 = 8;

/// The WO job.
#[derive(Clone)]
pub struct WoJob {
    dict: Arc<Dictionary>,
    gpus: u32,
    crossover: u32,
    accumulate: bool,
    partition_override: Option<PartitionMode>,
}

impl WoJob {
    /// Build the job for a run on `gpus` GPUs with the default crossover.
    pub fn new(dict: Arc<Dictionary>, gpus: u32) -> Self {
        WoJob {
            dict,
            gpus,
            crossover: DEFAULT_PARTITION_CROSSOVER,
            accumulate: true,
            partition_override: None,
        }
    }

    /// Override the partitioner crossover threshold (for the ablation
    /// bench that sweeps it).
    pub fn with_crossover(mut self, crossover: u32) -> Self {
        self.crossover = crossover;
        self
    }

    /// Disable Accumulation (ablation): every word emission ships through
    /// the full shuffle, giving WO "similar characteristics to SIO" — the
    /// paper saw dramatically worse performance before adding
    /// Accumulation.
    pub fn with_accumulation(mut self, accumulate: bool) -> Self {
        self.accumulate = accumulate;
        self
    }

    /// Force a specific partition mode instead of the crossover rule —
    /// how the skew bench pins round-robin vs sampled range splitters on
    /// the same Zipf corpus. Derive splitters from
    /// [`sample_word_keys`] + [`gpmr_core::derive_splitters`].
    pub fn with_partition(mut self, mode: PartitionMode) -> Self {
        self.partition_override = Some(mode);
        self
    }

    /// The dictionary in use.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Scan the words starting within `range` of `text`, calling `f` with
    /// each word's dictionary index.
    fn scan_words(
        &self,
        text: &[u8],
        range: std::ops::Range<usize>,
        mut f: impl FnMut(u32),
    ) -> u64 {
        let sep = |b: u8| b == b' ' || b == b'\n';
        let mut i = range.start;
        let mut words = 0u64;
        while i < range.end {
            if sep(text[i]) || (i > 0 && !sep(text[i - 1])) {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < text.len() && !sep(text[j]) {
                j += 1;
            }
            f(self.dict.mph.index(&text[i..j]));
            words += 1;
            i = j;
        }
        words
    }
}

/// Text bytes handled per map block (each thread scans one line; a block
/// covers a few kilobytes of lines).
const BYTES_PER_MAP_BLOCK: usize = 16 * 1024;

impl GpmrJob for WoJob {
    type Chunk = SliceChunk<u8>;
    type Key = u32;
    type Value = u32;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            map_mode: if self.accumulate {
                MapMode::Accumulate
            } else {
                MapMode::Plain
            },
            combine: false,
            partition: match &self.partition_override {
                Some(mode) => mode.clone(),
                None if self.gpus > self.crossover => PartitionMode::RoundRobin,
                None => PartitionMode::None,
            },
            ..PipelineConfig::default()
        }
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        // Plain (non-accumulating) WO, used by the ablation bench: emit
        // one pair per word and ship them all.
        let text = &chunk.items;
        let n = text.len();
        let cfg = LaunchConfig::for_items(n, BYTES_PER_MAP_BLOCK, 256);
        let (locals, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<u8>(range.len());
            ctx.charge_flops(range.len() as u64);
            let mut out: KvSet<u32, u32> = KvSet::new();
            let words = self.scan_words(text, range.clone(), |idx| out.push(idx, 1));
            ctx.charge_write::<u32>(2 * words as usize);
            out
        })?;
        let mut pairs = KvSet::new();
        for p in locals.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn accumulate_init(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let n = self.dict.len();
        // Initial map: emit every dictionary key with value 0.
        let cfg = LaunchConfig::for_items(n.max(1), 2048, 256);
        let (_, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_write::<u32>(2 * range.len());
        })?;
        let state: KvSet<u32, u32> = (0..n as u32).map(|k| (k, 0)).collect();
        Ok((state, res.end))
    }

    fn map_accumulate(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
        state: &mut KvSet<u32, u32>,
    ) -> SimGpuResult<SimTime> {
        let text = &chunk.items;
        let n = text.len();
        let cfg = LaunchConfig::for_items(n, BYTES_PER_MAP_BLOCK, 256);
        let (locals, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<u8>(range.len());
            // Words *starting* in this block's byte range belong to it; a
            // word may extend past the range end.
            let mut map: HashMap<u32, u32> = HashMap::new();
            let words = self.scan_words(text, range.clone(), |idx| {
                *map.entry(idx).or_insert(0) += 1;
            });
            // Hashing is ~1 op per byte; one fire-and-forget atomic per
            // word into the resident emit space.
            ctx.charge_flops(range.len() as u64);
            ctx.charge_atomics(words);
            let mut counts: Vec<(u32, u32)> = map.into_iter().collect();
            counts.sort_unstable();
            counts
        })?;
        for block in locals.outputs {
            for (idx, c) in block {
                state.vals[idx as usize] += c;
            }
        }
        Ok(res.end)
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        // One key per *warp*: lanes read the key's values coalesced, then a
        // warp-wide reduction finishes the sum.
        let warps_per_block = 8usize;
        let cfg = LaunchConfig::for_items(segs.len(), warps_per_block, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                let sum = ctx.warp_sum_u32(&vals[r]) as u32;
                out.push(segs.keys[s], sum);
            }
            ctx.charge_write::<u32>(2 * out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// Sequential reference: counts per minimal-perfect-hash index.
pub fn cpu_reference(dict: &Dictionary, text: &[u8]) -> Vec<u32> {
    let mut counts = vec![0u32; dict.len()];
    for w in words_of(text) {
        counts[dict.mph.index(w) as usize] += 1;
    }
    counts
}

/// Host-side sampling pass for the skew-aware shuffle: the minimal
/// perfect hash key of every `stride`-th word of `text`. Feed the result
/// to [`gpmr_core::derive_splitters`] and pin the splitters with
/// [`WoJob::with_partition`].
pub fn sample_word_keys(dict: &Dictionary, text: &[u8], stride: usize) -> Vec<u64> {
    words_of(text)
        .step_by(stride.max(1))
        .map(|w| u64::from(dict.mph.index(w)))
        .collect()
}

/// Fold a WO job result back into dense per-word counts.
pub fn counts_from_output(dict: &Dictionary, output: &KvSet<u32, u32>) -> Vec<u32> {
    let mut counts = vec![0u32; dict.len()];
    for (k, v) in output.iter() {
        counts[*k as usize] += *v;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{chunk_text, generate_text};
    use gpmr_core::run_job;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;

    fn setup(words: usize, bytes: usize, seed: u64) -> (Arc<Dictionary>, Vec<u8>) {
        let dict = Arc::new(Dictionary::generate(words, seed));
        let text = generate_text(&dict, bytes, seed + 1);
        (dict, text)
    }

    #[test]
    fn wo_matches_reference_single_gpu() {
        let (dict, text) = setup(200, 40_000, 11);
        let mut cluster = Cluster::accelerator(1, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), 1);
        let result = run_job(&mut cluster, &job, chunk_text(&text, 8_000)).unwrap();
        assert_eq!(
            counts_from_output(&dict, &result.merged_output()),
            cpu_reference(&dict, &text)
        );
    }

    #[test]
    fn wo_below_crossover_uses_single_reducer() {
        let (dict, text) = setup(150, 30_000, 12);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), 4);
        assert_eq!(job.pipeline().partition, PartitionMode::None);
        let result = run_job(&mut cluster, &job, chunk_text(&text, 4_000)).unwrap();
        // All final pairs land on rank 0.
        assert!(result.outputs[1..].iter().all(KvSet::is_empty));
        assert_eq!(
            counts_from_output(&dict, &result.outputs[0]),
            cpu_reference(&dict, &text)
        );
    }

    #[test]
    fn wo_above_crossover_partitions() {
        let (dict, text) = setup(150, 60_000, 13);
        let gpus = 12;
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), gpus);
        assert_eq!(job.pipeline().partition, PartitionMode::RoundRobin);
        let result = run_job(&mut cluster, &job, chunk_text(&text, 4_000)).unwrap();
        // Work is spread: multiple ranks produce output.
        let nonempty = result.outputs.iter().filter(|o| !o.is_empty()).count();
        assert!(nonempty > 1);
        assert_eq!(
            counts_from_output(&dict, &result.merged_output()),
            cpu_reference(&dict, &text)
        );
    }

    #[test]
    fn wo_total_words_preserved() {
        let (dict, text) = setup(100, 25_000, 14);
        let whole_words = words_of(&text).count() as u64;
        let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), 2);
        let result = run_job(&mut cluster, &job, chunk_text(&text, 5_000)).unwrap();
        let total: u64 = result
            .merged_output()
            .vals
            .iter()
            .map(|&v| u64::from(v))
            .sum();
        assert_eq!(total, whole_words);
    }

    #[test]
    fn plain_mode_matches_accumulating_mode() {
        let (dict, text) = setup(120, 30_000, 15);
        let expect = cpu_reference(&dict, &text);

        let mut c1 = Cluster::accelerator(4, GpuSpec::gt200());
        let acc = run_job(
            &mut c1,
            &WoJob::new(dict.clone(), 4),
            chunk_text(&text, 5_000),
        )
        .unwrap();
        let mut c2 = Cluster::accelerator(4, GpuSpec::gt200());
        let plain = run_job(
            &mut c2,
            &WoJob::new(dict.clone(), 4).with_accumulation(false),
            chunk_text(&text, 5_000),
        )
        .unwrap();

        assert_eq!(counts_from_output(&dict, &acc.merged_output()), expect);
        assert_eq!(counts_from_output(&dict, &plain.merged_output()), expect);
        // Accumulation is the paper's headline WO optimization: it ships
        // at most one pair per dictionary word per rank, while plain mode
        // ships one pair per word occurrence.
        assert!(acc.timings.pairs_shuffled < plain.timings.pairs_shuffled);
    }

    #[test]
    fn crossover_override() {
        let dict = Arc::new(Dictionary::generate(10, 1));
        let job = WoJob::new(dict, 4).with_crossover(2);
        assert_eq!(job.pipeline().partition, PartitionMode::RoundRobin);
        assert_eq!(job.dictionary().len(), 10);
    }

    #[test]
    fn range_partition_balances_zipf_corpus() {
        // Plain-mode WO on a Zipf corpus: one pair per word occurrence,
        // so hot words translate directly into reducer load. Round-robin
        // scatters the hot keys wherever `mph(word) % R` lands them;
        // sampled splitters equalize pair mass.
        // s = 1.05 over 5k words keeps the hottest word near 13% of the
        // corpus — heavy enough to unbalance round-robin, but still small
        // enough that key-granularity splitters *can* reach balance. (At
        // s >= 1.2 the hot key alone exceeds the 1/8 fair share and no
        // key-level partitioner can bound the ratio; ssort's test covers
        // that regime.)
        let dict = Arc::new(Dictionary::generate(5_000, 21));
        let text = crate::text::generate_zipf_text(&dict, 200_000, 1.05, 22);
        let expect = cpu_reference(&dict, &text);
        let gpus = 8u32;

        let loads = |outputs: &[KvSet<u32, u32>]| -> Vec<u64> {
            outputs
                .iter()
                .map(|o| o.vals.iter().map(|&v| u64::from(v)).sum())
                .collect()
        };
        let ratio = |loads: &[u64]| -> f64 {
            let max = *loads.iter().max().unwrap() as f64;
            let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            max / mean
        };

        let mut c1 = Cluster::accelerator(gpus, GpuSpec::gt200());
        let rr = run_job(
            &mut c1,
            &WoJob::new(dict.clone(), gpus)
                .with_accumulation(false)
                .with_partition(PartitionMode::RoundRobin),
            chunk_text(&text, 16_000),
        )
        .unwrap();

        let splitters = gpmr_core::derive_splitters(&sample_word_keys(&dict, &text, 13), gpus);
        let mut c2 = Cluster::accelerator(gpus, GpuSpec::gt200());
        let range = run_job(
            &mut c2,
            &WoJob::new(dict.clone(), gpus)
                .with_accumulation(false)
                .with_partition(PartitionMode::Range { splitters }),
            chunk_text(&text, 16_000),
        )
        .unwrap();

        assert_eq!(counts_from_output(&dict, &rr.merged_output()), expect);
        assert_eq!(counts_from_output(&dict, &range.merged_output()), expect);

        let rr_ratio = ratio(&loads(&rr.outputs));
        let range_ratio = ratio(&loads(&range.outputs));
        assert!(
            range_ratio <= 1.5,
            "range partition must bound skew: {range_ratio:.3} (rr was {rr_ratio:.3})"
        );
        assert!(
            range_ratio < rr_ratio,
            "range ({range_ratio:.3}) should beat round-robin ({rr_ratio:.3})"
        );
    }
}
