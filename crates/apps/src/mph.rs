//! Minimal perfect hashing for the Word Occurrence dictionary.
//!
//! Strings make poor GPU keys (paper §5.3.3): variable length, wasted
//! fixed-size storage, atomics for emission. GPMR's WO instead assigns
//! each dictionary word a unique dense integer with a minimal perfect
//! hash, so the map kernel emits 4-byte keys that index directly into the
//! accumulation space. The paper cites Cichelli's construction; we use the
//! equivalent modern hash-and-displace scheme (CHD), which handles 43 k
//! words comfortably.

use std::collections::HashMap;

/// A minimal perfect hash over a fixed word list: maps each word to a
/// unique index in `0..n`, and any non-dictionary string to an arbitrary
/// index (callers that need exactness keep the word list for verification).
///
/// ```
/// use gpmr_apps::MinimalPerfectHash;
///
/// let words: Vec<&[u8]> = vec![b"map", b"reduce", b"sort"];
/// let mph = MinimalPerfectHash::build(&words);
/// let ids: std::collections::HashSet<u32> =
///     words.iter().map(|w| mph.index(w)).collect();
/// assert_eq!(ids.len(), 3); // distinct
/// assert!(ids.iter().all(|&i| i < 3)); // dense in 0..3
/// ```
#[derive(Clone, Debug)]
pub struct MinimalPerfectHash {
    /// Displacement seed per bucket.
    displacements: Vec<u32>,
    n: usize,
}

fn hash_with_seed(word: &[u8], seed: u64) -> u64 {
    // FNV-1a, seeded.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in word {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

impl MinimalPerfectHash {
    /// Build a minimal perfect hash for `words`. Words must be distinct.
    ///
    /// Uses CHD: words are bucketed by a first-level hash; buckets are
    /// processed largest-first, searching for a per-bucket displacement
    /// seed that maps all of its words to unoccupied slots.
    ///
    /// # Panics
    /// Panics if `words` contains duplicates (no perfect hash exists).
    pub fn build(words: &[&[u8]]) -> Self {
        let n = words.len();
        if n == 0 {
            return MinimalPerfectHash {
                displacements: Vec::new(),
                n: 0,
            };
        }
        // ~4 words per bucket keeps displacement searches short.
        let buckets_len = n.div_ceil(4).max(1);
        let mut buckets: Vec<Vec<&[u8]>> = vec![Vec::new(); buckets_len];
        for &w in words {
            let b = (hash_with_seed(w, 0) % buckets_len as u64) as usize;
            buckets[b].push(w);
        }
        let mut order: Vec<usize> = (0..buckets_len).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(buckets[b].len()));

        let mut displacements = vec![0u32; buckets_len];
        let mut occupied = vec![false; n];
        for &b in &order {
            let bucket = &buckets[b];
            if bucket.is_empty() {
                continue;
            }
            let mut seed = 1u32;
            'search: loop {
                let mut slots = Vec::with_capacity(bucket.len());
                for &w in bucket {
                    let s = (hash_with_seed(w, u64::from(seed)) % n as u64) as usize;
                    if occupied[s] || slots.contains(&s) {
                        seed = seed
                            .checked_add(1)
                            .expect("MPH displacement search exhausted: duplicate words?");
                        continue 'search;
                    }
                    slots.push(s);
                }
                for &s in &slots {
                    occupied[s] = true;
                }
                displacements[b] = seed;
                break;
            }
        }
        debug_assert!(occupied.iter().all(|&o| o));
        MinimalPerfectHash { displacements, n }
    }

    /// Hash a word to its index in `0..len()`. Perfect (collision-free and
    /// minimal) for dictionary words.
    pub fn index(&self, word: &[u8]) -> u32 {
        if self.n == 0 {
            return 0;
        }
        let b = (hash_with_seed(word, 0) % self.displacements.len() as u64) as usize;
        let seed = u64::from(self.displacements[b]);
        (hash_with_seed(word, seed) % self.n as u64) as u32
    }

    /// Number of dictionary words.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty dictionary.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Approximate device-side table size in bytes (the paper: "43 k
    /// integer-integer pairs requires less than 350 kB").
    pub fn table_bytes(&self) -> u64 {
        (self.displacements.len() * 4) as u64
    }
}

/// Verify perfection on a word list (test/diagnostic helper): returns the
/// inverse mapping index → word if the hash is perfect and minimal.
pub fn verify_perfect<'a>(
    mph: &MinimalPerfectHash,
    words: &[&'a [u8]],
) -> Option<HashMap<u32, &'a [u8]>> {
    let mut seen = HashMap::with_capacity(words.len());
    for &w in words {
        let i = mph.index(w);
        if i as usize >= words.len() || seen.insert(i, w).is_some() {
            return None;
        }
    }
    Some(seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<Vec<u8>> {
        // Deterministic distinct pseudo-words.
        (0..n).map(|i| format!("word{i:06}").into_bytes()).collect()
    }

    #[test]
    fn small_dictionary_is_perfect() {
        let ws = words(100);
        let refs: Vec<&[u8]> = ws.iter().map(Vec::as_slice).collect();
        let mph = MinimalPerfectHash::build(&refs);
        assert_eq!(mph.len(), 100);
        assert!(verify_perfect(&mph, &refs).is_some());
    }

    #[test]
    fn dictionary_scale_43k_is_perfect() {
        let ws = words(43_000);
        let refs: Vec<&[u8]> = ws.iter().map(Vec::as_slice).collect();
        let mph = MinimalPerfectHash::build(&refs);
        assert!(verify_perfect(&mph, &refs).is_some());
        // The paper's observation: the table is small (< 350 kB).
        assert!(mph.table_bytes() < 350 * 1024);
    }

    #[test]
    fn empty_and_singleton() {
        let mph = MinimalPerfectHash::build(&[]);
        assert!(mph.is_empty());
        assert_eq!(mph.index(b"anything"), 0);

        let mph = MinimalPerfectHash::build(&[b"only".as_slice()]);
        assert_eq!(mph.len(), 1);
        assert_eq!(mph.index(b"only"), 0);
    }

    #[test]
    fn indices_are_dense() {
        let ws = words(1000);
        let refs: Vec<&[u8]> = ws.iter().map(Vec::as_slice).collect();
        let mph = MinimalPerfectHash::build(&refs);
        let mut hit = vec![false; 1000];
        for w in &refs {
            hit[mph.index(w) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }
}
