//! Linear Regression (LR): fit `y = a*x + b` over a point set
//! (paper §5.3.5).
//!
//! LR stores chunks like KMC (tightly-packed point arrays) and uses the
//! same optimizations: persistent threads and internal Accumulation. The
//! mapper emits only six keys — the sufficient statistics `n, Σx, Σy,
//! Σxx, Σxy, Σyy` — so no Partitioner is used ("the network overhead is
//! minimal in both cases") and reduction is key-per-thread with virtually
//! nil cost. Per element the map does very little work, which is exactly
//! why the paper finds LR scales poorly past one node: fixed overheads
//! and light communication dominate.

use gpmr_core::{GpmrJob, KvSet, MapMode, PartitionMode, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The six statistic keys, in emission order.
pub const STAT_KEYS: usize = 6;
const KEY_N: usize = 0;
const KEY_SX: usize = 1;
const KEY_SY: usize = 2;
const KEY_SXX: usize = 3;
const KEY_SXY: usize = 4;
const KEY_SYY: usize = 5;

/// An input sample: 8-byte element (Table 1) = (x, y) as f32.
pub type Sample = (f32, f32);

/// The LR job.
#[derive(Clone, Copy, Debug, Default)]
pub struct LrJob;

/// Samples handled per map block (persistent threads).
const SAMPLES_PER_MAP_BLOCK: usize = 8192;

impl GpmrJob for LrJob {
    type Chunk = SliceChunk<Sample>;
    type Key = u32;
    type Value = f64;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            map_mode: MapMode::Accumulate,
            partition: PartitionMode::None,
            ..PipelineConfig::default()
        }
    }

    fn map(
        &self,
        _gpu: &mut Gpu,
        at: SimTime,
        _chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        // LR always runs in Accumulate mode; plain map is unused.
        Ok((KvSet::new(), at))
    }

    fn accumulate_init(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        let cfg = LaunchConfig::grid(1, 32);
        let (_, res) = gpu.launch(at, &cfg, |ctx| {
            ctx.charge_write::<f32>(STAT_KEYS);
        })?;
        let state: KvSet<u32, f64> = (0..STAT_KEYS as u32).map(|k| (k, 0.0)).collect();
        Ok((state, res.end))
    }

    fn map_accumulate(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
        state: &mut KvSet<u32, f64>,
    ) -> SimGpuResult<SimTime> {
        let samples = &chunk.items;
        let n = samples.len();
        let cfg = LaunchConfig::for_items(n, SAMPLES_PER_MAP_BLOCK, 256)
            .with_shared_bytes((STAT_KEYS * 8) as u32);
        let (locals, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<Sample>(range.len());
            // 3 mults + 5 adds per sample, then block-wide reductions.
            ctx.charge_flops(8 * range.len() as u64 + STAT_KEYS as u64);
            let mut s = [0.0f64; STAT_KEYS];
            for &(x, y) in &samples[range] {
                let (x, y) = (f64::from(x), f64::from(y));
                s[KEY_N] += 1.0;
                s[KEY_SX] += x;
                s[KEY_SY] += y;
                s[KEY_SXX] += x * x;
                s[KEY_SXY] += x * y;
                s[KEY_SYY] += y * y;
            }
            s
        })?;
        // Per-block pools (no FP atomics on GT200), same as KMC.
        let blocks = locals.outputs.len() as u64;
        let pool_cost = if gpu.spec.has_fp_atomics {
            KernelCost {
                atomic_ops: blocks * STAT_KEYS as u64,
                ..KernelCost::ZERO
            }
        } else {
            KernelCost {
                flops: blocks * STAT_KEYS as u64,
                bytes_coalesced: 2 * blocks * STAT_KEYS as u64 * 4,
                ..KernelCost::ZERO
            }
        };
        let r2 = gpu.charge_compute(res.end, &pool_cost, 1.0);
        for block in locals.outputs {
            for (i, v) in block.into_iter().enumerate() {
                state.vals[i] += v;
            }
        }
        Ok(r2.end)
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[f64],
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        // Key-per-thread; reduction time is "virtually nil" (paper).
        let cfg = LaunchConfig::grid(1, 32);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let mut out: KvSet<u32, f64> = KvSet::with_capacity(segs.len());
            for s in 0..segs.len() {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<f64>(r.len());
                ctx.charge_flops(r.len() as u64);
                out.push(segs.keys[s], vals[r].iter().sum());
            }
            ctx.charge_write::<f64>(out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// The fitted model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearModel {
    /// Slope `a` of `y = a*x + b`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Pearson correlation coefficient.
    pub correlation: f64,
}

/// Fit the model from the six accumulated statistics (key-major order).
pub fn model_from_stats(stats: &[f64]) -> LinearModel {
    let (n, sx, sy, sxx, sxy, syy) = (
        stats[KEY_N],
        stats[KEY_SX],
        stats[KEY_SY],
        stats[KEY_SXX],
        stats[KEY_SXY],
        stats[KEY_SYY],
    );
    let denom = n * sxx - sx * sx;
    let slope = if denom.abs() > f64::EPSILON {
        (n * sxy - sx * sy) / denom
    } else {
        0.0
    };
    let intercept = if n > 0.0 { (sy - slope * sx) / n } else { 0.0 };
    let var = (n * sxx - sx * sx) * (n * syy - sy * sy);
    let correlation = if var > f64::EPSILON {
        (n * sxy - sx * sy) / var.sqrt()
    } else {
        0.0
    };
    LinearModel {
        slope,
        intercept,
        correlation,
    }
}

/// Dense statistics vector from a job result.
pub fn stats_from_output(output: &KvSet<u32, f64>) -> Vec<f64> {
    let mut stats = vec![0.0f64; STAT_KEYS];
    for (k, v) in output.iter() {
        stats[*k as usize] += *v;
    }
    stats
}

/// Generate `n` samples around the line `y = slope*x + intercept` with
/// uniform noise.
pub fn generate_samples(n: usize, slope: f32, intercept: f32, seed: u64) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4c52);
    (0..n)
        .map(|_| {
            let x: f32 = rng.gen_range(-100.0..100.0);
            let y = slope * x + intercept + rng.gen_range(-1.0..1.0);
            (x, y)
        })
        .collect()
}

/// Sequential reference statistics.
pub fn cpu_reference(samples: &[Sample]) -> Vec<f64> {
    let mut s = vec![0.0f64; STAT_KEYS];
    for &(x, y) in samples {
        let (x, y) = (f64::from(x), f64::from(y));
        s[KEY_N] += 1.0;
        s[KEY_SX] += x;
        s[KEY_SY] += y;
        s[KEY_SXX] += x * x;
        s[KEY_SXY] += x * y;
        s[KEY_SYY] += y * y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_core::run_job;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                "stat {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn lr_matches_reference() {
        let samples = generate_samples(30_000, 2.0, -3.0, 1);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let chunks = SliceChunk::split(&samples, 8192);
        let result = run_job(&mut cluster, &LrJob, chunks).unwrap();
        let stats = stats_from_output(&result.merged_output());
        assert_close(&stats, &cpu_reference(&samples));
    }

    #[test]
    fn model_recovers_line() {
        let samples = generate_samples(50_000, 2.0, -3.0, 2);
        let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
        let chunks = SliceChunk::split(&samples, 8192);
        let result = run_job(&mut cluster, &LrJob, chunks).unwrap();
        let model = model_from_stats(&stats_from_output(&result.merged_output()));
        assert!((model.slope - 2.0).abs() < 0.01, "slope {}", model.slope);
        assert!(
            (model.intercept + 3.0).abs() < 0.05,
            "intercept {}",
            model.intercept
        );
        assert!(model.correlation > 0.99);
    }

    #[test]
    fn lr_output_lands_on_rank_zero() {
        let samples = generate_samples(10_000, 1.0, 0.0, 3);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let chunks = SliceChunk::split(&samples, 4096);
        let result = run_job(&mut cluster, &LrJob, chunks).unwrap();
        assert!(!result.outputs[0].is_empty());
        assert!(result.outputs[1..].iter().all(KvSet::is_empty));
        assert_eq!(result.outputs[0].len(), STAT_KEYS);
    }

    #[test]
    fn degenerate_model_inputs() {
        let m = model_from_stats(&[0.0; STAT_KEYS]);
        assert_eq!(m.slope, 0.0);
        assert_eq!(m.intercept, 0.0);
        assert_eq!(m.correlation, 0.0);
        // Vertical data (all x equal) does not divide by zero.
        let samples = vec![(1.0f32, 2.0f32); 100];
        let m = model_from_stats(&cpu_reference(&samples));
        assert_eq!(m.slope, 0.0);
    }
}
