//! The paper's dataset catalogue (Table 1).
//!
//! Two input sets per benchmark: set one tests strong scaling (fixed
//! total size), set two tests weak scaling (fixed size *per GPU*). All
//! datasets are synthetic and seeded, exactly as in the paper (random
//! integers, random dictionary text, random points). A global scale
//! divisor shrinks element counts for simulation-feasible runs; the
//! *shape* of every experiment is preserved and the divisor is recorded
//! in EXPERIMENTS.md.

/// The five paper benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Matrix Multiplication.
    Mm,
    /// Sparse Integer Occurrence.
    Sio,
    /// Word Occurrence.
    Wo,
    /// K-Means Clustering.
    Kmc,
    /// Linear Regression.
    Lr,
}

impl Benchmark {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Mm,
        Benchmark::Sio,
        Benchmark::Wo,
        Benchmark::Kmc,
        Benchmark::Lr,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mm => "MM",
            Benchmark::Sio => "SIO",
            Benchmark::Wo => "WO",
            Benchmark::Kmc => "KMC",
            Benchmark::Lr => "LR",
        }
    }

    /// Input element size in bytes (Table 1 row 1; MM is dimensioned by
    /// matrix order instead).
    pub fn element_bytes(self) -> Option<u64> {
        match self {
            Benchmark::Mm => None,
            Benchmark::Sio => Some(4),
            Benchmark::Wo => Some(1),
            Benchmark::Kmc => Some(16),
            Benchmark::Lr => Some(8),
        }
    }

    /// Strong-scaling input sizes (Table 1 set one). For MM these are
    /// matrix orders; for the rest, element counts in millions.
    pub fn strong_sizes(self) -> &'static [u64] {
        match self {
            Benchmark::Mm => &[1024, 2048, 4096, 16384],
            Benchmark::Sio => &[1, 8, 32, 128],
            Benchmark::Wo => &[1, 16, 64, 512],
            Benchmark::Kmc => &[1, 8, 32, 512],
            Benchmark::Lr => &[1, 16, 64, 512],
        }
    }

    /// Weak-scaling per-GPU sizes in millions of elements (Table 1 set
    /// two; MM has none).
    pub fn weak_sizes_per_gpu(self) -> &'static [u64] {
        match self {
            Benchmark::Mm => &[],
            Benchmark::Sio => &[1, 2, 4, 8, 16, 32],
            Benchmark::Wo => &[1, 2, 4, 8, 16, 32, 64, 128, 256],
            Benchmark::Kmc => &[1, 2, 4, 8, 16, 32],
            Benchmark::Lr => &[1, 2, 4, 8, 16, 32, 64],
        }
    }
}

/// A concrete workload: benchmark + total element count (or matrix order
/// for MM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Elements (or matrix order for MM) after scaling.
    pub size: u64,
    /// Generator seed.
    pub seed: u64,
}

/// The dimension divisor used for MM under workload scale `scale`:
/// matrix orders shrink by `sqrt(scale)` rounded to a power of two
/// (compute then shrinks by its cube, traffic by its square — the MM
/// hardware-scaling law).
pub fn mm_dim_factor(scale: u64) -> u64 {
    let f = (scale.max(1) as f64).sqrt() as u64;
    f.next_power_of_two().max(1)
}

/// Build the strong-scaling workload for size index `idx` (0 = smallest),
/// dividing element counts by `scale` (MM matrix orders divide by
/// [`mm_dim_factor`]).
pub fn strong_workload(bench: Benchmark, idx: usize, scale: u64, seed: u64) -> Workload {
    let raw = bench.strong_sizes()[idx];
    let size = match bench {
        Benchmark::Mm => (raw / mm_dim_factor(scale)).max(64),
        _ => (raw * 1_000_000 / scale.max(1)).max(1024),
    };
    Workload {
        benchmark: bench,
        size,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_element_sizes_match_paper() {
        assert_eq!(Benchmark::Sio.element_bytes(), Some(4));
        assert_eq!(Benchmark::Wo.element_bytes(), Some(1));
        assert_eq!(Benchmark::Kmc.element_bytes(), Some(16));
        assert_eq!(Benchmark::Lr.element_bytes(), Some(8));
        assert_eq!(Benchmark::Mm.element_bytes(), None);
    }

    #[test]
    fn table1_strong_sizes_match_paper() {
        assert_eq!(Benchmark::Mm.strong_sizes(), &[1024, 2048, 4096, 16384]);
        assert_eq!(Benchmark::Sio.strong_sizes(), &[1, 8, 32, 128]);
        assert_eq!(Benchmark::Wo.strong_sizes(), &[1, 16, 64, 512]);
        assert_eq!(Benchmark::Kmc.strong_sizes(), &[1, 8, 32, 512]);
        assert_eq!(Benchmark::Lr.strong_sizes(), &[1, 16, 64, 512]);
    }

    #[test]
    fn scaling_divides_element_counts() {
        let w = strong_workload(Benchmark::Sio, 3, 64, 1);
        assert_eq!(w.size, 2_000_000);
        let w = strong_workload(Benchmark::Sio, 0, 1, 1);
        assert_eq!(w.size, 1_000_000);
    }

    #[test]
    fn mm_scaling_divides_order_by_sqrt() {
        let w = strong_workload(Benchmark::Mm, 3, 64, 1);
        assert_eq!(w.size, 16384 / 8);
        let w = strong_workload(Benchmark::Mm, 0, 1, 1);
        assert_eq!(w.size, 1024);
    }

    #[test]
    fn tiny_scale_floors_apply() {
        let w = strong_workload(Benchmark::Sio, 0, u64::MAX, 1);
        assert_eq!(w.size, 1024);
        let w = strong_workload(Benchmark::Mm, 0, 1 << 60, 1);
        assert_eq!(w.size, 64);
    }
}
