//! Closest pair (1-D) on the round driver — a Goodrich-style
//! constant-round MapReduce geometry kernel, and the exercise for
//! [`PairChunk`]-chained rounds.
//!
//! Two rounds:
//!
//! * **Round 0 — bands.** Points (as `(quantized key, exact coordinate)`
//!   pairs) are range-partitioned into coordinate bands, one per rank;
//!   the engine's radix sort orders each band and reduce scans it once,
//!   emitting three pairs per band: the minimum adjacent gap inside the
//!   band, and the band's extreme coordinates (for gaps that straddle a
//!   band boundary).
//! * **Round 1 — merge.** The per-band candidates are re-chunked
//!   ([`gpmr_core::rounds::RoundDecision::Chain`]) into one rank-tagged
//!   [`PairChunk`] headed for rank 0, whose mapper folds within-band gaps
//!   and cross-boundary gaps into the global answer. This rechunk
//!   *concentrates* data (everything to rank 0), so the driver keeps
//!   [`gpmr_core::rounds::RoundJob::rechunk_preserves_affinity`] at its
//!   `false` default and the merge round honestly pays its one upload.
//!
//! The candidate set is exact, not heuristic: the closest pair is either
//! inside some band (covered by that band's min gap) or straddles a
//! boundary (covered by the neighbouring extremes), because bands tile
//! the coordinate axis in order.

use gpmr_core::rounds::{RoundJob, RoundStep};
use gpmr_core::{derive_splitters, GpmrJob, KvSet, PairChunk, PartitionMode, PipelineConfig};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};

/// Fields emitted per band in round 0, tagged `rank * FIELDS + field` by
/// the rechunk.
const FIELDS: u32 = 3;
const F_GAP: u32 = 0;
const F_MIN: u32 = 1;
const F_MAX: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Band,
    Merge,
}

/// One pass of the closest-pair computation; built per round by
/// [`CpairRounds`].
#[derive(Clone, Debug)]
pub struct CpairJob {
    phase: Phase,
    splitters: Vec<u64>,
}

impl GpmrJob for CpairJob {
    type Chunk = PairChunk<u32, f32>;
    type Key = u32;
    type Value = f32;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            partition: match self.phase {
                Phase::Band => PartitionMode::Range {
                    splitters: self.splitters.clone(),
                },
                Phase::Merge => PartitionMode::None,
            },
            ..PipelineConfig::default()
        }
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, f32>, SimTime)> {
        let n = chunk.pairs.len();
        let cfg = LaunchConfig::for_items(n.max(1), 4096, 256);
        let phase = self.phase;
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<(u32, f32)>(range.len());
            let mut out: KvSet<u32, f32> = KvSet::new();
            match phase {
                // Identity: ship every point into its coordinate band.
                Phase::Band => {
                    for i in range.clone() {
                        out.push(chunk.pairs.keys[i], chunk.pairs.vals[i]);
                    }
                }
                // The whole candidate chunk is in this one map call:
                // fold per-band gaps and cross-boundary gaps directly.
                Phase::Merge => {
                    if ctx.item_range(n).start == 0 {
                        out.push(0, merge_candidates(&chunk.pairs));
                    }
                }
            }
            ctx.charge_write::<(u32, f32)>(out.len());
            ctx.charge_flops(range.len() as u64);
            out
        })?;
        let mut pairs = KvSet::new();
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[f32],
    ) -> SimGpuResult<(KvSet<u32, f32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        match self.phase {
            Phase::Band => {
                // One sorted scan over the band. Segments arrive in radix
                // (= coordinate-bucket) order; values inside one bucket
                // are sorted locally, so the concatenation is the band in
                // ascending coordinate order.
                let cfg = LaunchConfig::grid(1, 256);
                let (launch, res) = gpu.launch(at, &cfg, |ctx| {
                    let mut band: Vec<f32> = Vec::new();
                    for s in 0..segs.len() {
                        let r = segs.range(s);
                        ctx.charge_read_uncoalesced::<f32>(r.len());
                        let mut bucket = vals[r].to_vec();
                        bucket.sort_by(f32::total_cmp);
                        band.extend_from_slice(&bucket);
                    }
                    ctx.charge_flops(band.len() as u64);
                    let mut gap = f32::INFINITY;
                    for w in band.windows(2) {
                        gap = gap.min(w[1] - w[0]);
                    }
                    let mut out: KvSet<u32, f32> = KvSet::new();
                    out.push(F_GAP, gap);
                    out.push(F_MIN, band[0]);
                    out.push(F_MAX, *band.last().expect("segs non-empty"));
                    ctx.charge_write::<(u32, f32)>(out.len());
                    out
                })?;
                let mut out = KvSet::new();
                for p in launch.outputs {
                    out.append(p);
                }
                Ok((out, res.end))
            }
            Phase::Merge => {
                // Fold the (single) candidate key's values to their min.
                let cfg = LaunchConfig::grid(1, 256);
                let (launch, res) = gpu.launch(at, &cfg, |ctx| {
                    let mut out: KvSet<u32, f32> = KvSet::new();
                    for s in 0..segs.len() {
                        let r = segs.range(s);
                        ctx.charge_read_uncoalesced::<f32>(r.len());
                        ctx.charge_flops(r.len() as u64);
                        let min = vals[r].iter().copied().fold(f32::INFINITY, f32::min);
                        out.push(segs.keys[s], min);
                    }
                    out
                })?;
                let mut out = KvSet::new();
                for p in launch.outputs {
                    out.append(p);
                }
                Ok((out, res.end))
            }
        }
    }
}

/// Fold a rank-tagged candidate set (`rank * FIELDS + field` keys) into
/// the global minimum gap: band-internal gaps plus the boundary gap
/// between each pair of *consecutive non-empty* bands.
fn merge_candidates(pairs: &KvSet<u32, f32>) -> f32 {
    let mut ranks: Vec<u32> = pairs.keys.iter().map(|k| k / FIELDS).collect();
    ranks.sort_unstable();
    ranks.dedup();
    let field = |rank: u32, f: u32| -> Option<f32> {
        pairs
            .iter()
            .find(|(k, _)| **k == rank * FIELDS + f)
            .map(|(_, v)| *v)
    };
    let mut best = f32::INFINITY;
    for (i, &r) in ranks.iter().enumerate() {
        if let Some(g) = field(r, F_GAP) {
            best = best.min(g);
        }
        if i + 1 < ranks.len() {
            if let (Some(hi), Some(lo)) = (field(r, F_MAX), field(ranks[i + 1], F_MIN)) {
                best = best.min(lo - hi);
            }
        }
    }
    best
}

/// The two-round closest-pair driver.
pub struct CpairRounds {
    splitters: Vec<u64>,
    /// The answer after the run: the minimum gap between any two input
    /// coordinates.
    pub min_gap: Option<f32>,
}

impl CpairRounds {
    /// Derive band splitters for `ranks` bands from a stride-sample of
    /// the coordinates (every `sample_every`-th point, quantized).
    pub fn new(coords: &[f32], ranks: u32, sample_every: usize) -> Self {
        let sample: Vec<u64> = coords
            .iter()
            .step_by(sample_every.max(1))
            .map(|&c| u64::from(quantize(c)))
            .collect();
        CpairRounds {
            splitters: derive_splitters(&sample, ranks),
            min_gap: None,
        }
    }
}

impl RoundJob for CpairRounds {
    type Job = CpairJob;

    fn max_rounds(&self) -> u32 {
        2
    }

    fn job(&self, round: u32) -> CpairJob {
        CpairJob {
            phase: if round == 0 {
                Phase::Band
            } else {
                Phase::Merge
            },
            splitters: self.splitters.clone(),
        }
    }

    fn control_hash(&self) -> u64 {
        let mut h = gpmr_core::journal::Fnv64::new();
        for &s in &self.splitters {
            h.write_u64(s);
        }
        h.write_u64(u64::from(self.min_gap.unwrap_or(0.0).to_bits()));
        h.finish()
    }

    fn absorb(&mut self, round: u32, outputs: &[KvSet<u32, f32>]) -> RoundStep {
        if round == 0 {
            return RoundStep::chain(0);
        }
        for o in outputs {
            for (k, v) in o.iter() {
                if *k == 0 {
                    self.min_gap = Some(*v);
                }
            }
        }
        RoundStep::done()
    }

    fn rechunk(&self, _round: u32, outputs: Vec<KvSet<u32, f32>>) -> Vec<PairChunk<u32, f32>> {
        // Tag every band's candidates with its rank and pack them into a
        // single chunk — chunk 0 dispatches to rank 0, which is exactly
        // where the merge must happen.
        let mut pairs: KvSet<u32, f32> = KvSet::new();
        for (rank, o) in outputs.iter().enumerate() {
            for (k, v) in o.iter() {
                pairs.push(rank as u32 * FIELDS + *k, *v);
            }
        }
        vec![PairChunk::new(0, pairs)]
    }
}

/// Monotone quantization of a non-negative coordinate to a radix key.
fn quantize(c: f32) -> u32 {
    debug_assert!(c >= 0.0, "cpair expects non-negative coordinates");
    c as u32
}

/// Build round-0 input chunks from raw coordinates.
pub fn cpair_chunks(coords: &[f32], chunk_points: usize) -> Vec<PairChunk<u32, f32>> {
    let pairs: KvSet<u32, f32> = coords.iter().map(|&c| (quantize(c), c)).collect();
    PairChunk::split(&pairs, chunk_points.max(1), 0)
}

/// Sequential reference: sort and scan.
pub fn cpu_reference(coords: &[f32]) -> f32 {
    let mut sorted = coords.to_vec();
    sorted.sort_by(f32::total_cmp);
    let mut best = f32::INFINITY;
    for w in sorted.windows(2) {
        best = best.min(w[1] - w[0]);
    }
    best
}

/// Generate `n` coordinates scattered over `[0, span)`.
pub fn generate_coords(n: usize, span: f32, seed: u64) -> Vec<f32> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4350_4152);
    (0..n).map(|_| rng.gen_range(0.0..span)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_core::rounds::run_rounds;
    use gpmr_core::EngineTuning;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;
    use gpmr_telemetry::Telemetry;

    fn run_cpair(coords: &[f32], gpus: u32) -> f32 {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let mut driver = CpairRounds::new(coords, gpus, 64);
        let res = run_rounds(
            &mut cluster,
            &mut driver,
            cpair_chunks(coords, 16 * 1024),
            &EngineTuning::default(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(res.rounds, 2);
        assert!(res.converged);
        driver.min_gap.expect("merge round produced an answer")
    }

    #[test]
    fn closest_pair_matches_reference() {
        let coords = generate_coords(50_000, 1.0e6, 11);
        let expected = cpu_reference(&coords);
        assert_eq!(run_cpair(&coords, 4), expected);
    }

    #[test]
    fn closest_pair_single_rank() {
        let coords = generate_coords(5_000, 1.0e4, 13);
        assert_eq!(run_cpair(&coords, 1), cpu_reference(&coords));
    }

    #[test]
    fn closest_pair_with_planted_twins() {
        // Plant two points closer than anything random will produce
        // (coincident at f32 precision — distance exactly zero).
        let mut coords = generate_coords(20_000, 1.0e6, 17);
        coords.push(123_456.25);
        coords.push(123_456.25);
        let expected = cpu_reference(&coords);
        let got = run_cpair(&coords, 8);
        assert_eq!(got, expected);
        assert!(got <= 1e-3);
    }
}
