//! K-Means Clustering (KMC): assign points to their nearest center and
//! compute per-center coordinate sums and counts — one iteration of
//! k-means, as benchmarked in the paper (§5.3.4).
//!
//! The paper's GPU adaptations, all reproduced here:
//!
//! * **Persistent threads** — each block reads many points coalesced and
//!   processes them in a loop, instead of one thread per point;
//! * **Atomic-free Accumulation** — the GT200 has no floating-point
//!   atomics, so each block folds its sums into a per-block global-memory
//!   pool and a second kernel reduces the pools (on a Fermi-class device
//!   with FP atomics the pools are skipped — the ablation bench measures
//!   the difference);
//! * **Coalesced emission** — the GPU emits `(center * (D+1) + dim, sum)`
//!   per dimension plus one count key per center, rather than the CPU's
//!   `(center, point)` pairs;
//! * **Per-center partitioning** — all keys of one center go to one GPU.

use gpmr_core::{GpmrJob, KvSet, MapMode, PartitionMode, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, KernelCost, LaunchConfig, SimGpuResult, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Point dimensionality: 16-byte input elements (Table 1) = 4 x f32.
pub const DIMS: usize = 4;

/// A point.
pub type Point = [f32; DIMS];

/// The KMC job: one k-means iteration against a fixed set of centers.
#[derive(Clone, Debug)]
pub struct KmcJob {
    centers: Vec<Point>,
}

/// Points handled per map block (persistent threads: 256 threads loop
/// over the block's strip).
const POINTS_PER_MAP_BLOCK: usize = 4096;

impl KmcJob {
    /// Build the job with the given cluster centers.
    pub fn new(centers: Vec<Point>) -> Self {
        assert!(!centers.is_empty(), "k-means needs at least one center");
        KmcJob { centers }
    }

    /// The centers.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// Number of keys the job emits: `k * (DIMS + 1)` — per-dimension sums
    /// plus one count per center.
    pub fn key_count(&self) -> usize {
        self.centers.len() * (DIMS + 1)
    }
}

/// Nearest center by squared Euclidean distance (ties to the lower index).
fn nearest_center(centers: &[Point], p: &Point) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let mut d = 0.0f32;
        for dim in 0..DIMS {
            let diff = p[dim] - center[dim];
            d += diff * diff;
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

impl GpmrJob for KmcJob {
    type Chunk = SliceChunk<Point>;
    type Key = u32;
    type Value = f64;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            map_mode: MapMode::Accumulate,
            partition: PartitionMode::Custom,
            ..PipelineConfig::default()
        }
    }

    fn map(
        &self,
        _gpu: &mut Gpu,
        at: SimTime,
        _chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        // KMC always runs in Accumulate mode; plain map is unused.
        Ok((KvSet::new(), at))
    }

    fn accumulate_init(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        let n = self.key_count();
        let cfg = LaunchConfig::grid(1, 256);
        let (_, res) = gpu.launch(at, &cfg, |ctx| {
            ctx.charge_write::<f32>(n);
        })?;
        let state: KvSet<u32, f64> = (0..n as u32).map(|k| (k, 0.0)).collect();
        Ok((state, res.end))
    }

    fn map_accumulate(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
        state: &mut KvSet<u32, f64>,
    ) -> SimGpuResult<SimTime> {
        let points = &chunk.items;
        let n = points.len();
        let k = self.centers.len();
        let keys = self.key_count();
        let cfg = LaunchConfig::for_items(n, POINTS_PER_MAP_BLOCK, 256)
            .with_shared_bytes((keys.min(3000) * 4) as u32);

        let (locals, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            // Coalesced block-wide point reads.
            ctx.charge_read::<Point>(range.len());
            // Distance to every center: DIMS mul + 2*DIMS add/sub per
            // center, plus the block reductions per emitted key.
            ctx.charge_flops((range.len() * k * (3 * DIMS)) as u64);
            let mut sums = vec![0.0f64; keys];
            for p in &points[range] {
                let c = nearest_center(&self.centers, p);
                let base = c * (DIMS + 1);
                for dim in 0..DIMS {
                    sums[base + dim] += f64::from(p[dim]);
                }
                sums[base + DIMS] += 1.0;
            }
            ctx.charge_flops(keys as u64); // block-wide reductions
            sums
        })?;

        // Atomic-free accumulation: per-block pools flushed to global
        // memory, then reduced by a second kernel (GT200 path). With FP
        // atomics (Fermi) the pools are skipped and atomics are charged
        // instead.
        let blocks = locals.outputs.len() as u64;
        if gpu.spec.has_fp_atomics {
            let cost = KernelCost {
                atomic_ops: blocks * keys as u64,
                ..KernelCost::ZERO
            };
            gpu.charge_compute(res.end, &cost, 1.0);
        } else {
            let pool_cost = KernelCost {
                flops: blocks * keys as u64,
                bytes_coalesced: 2 * blocks * keys as u64 * 4,
                ..KernelCost::ZERO
            };
            gpu.charge_compute(res.end, &pool_cost, 1.0);
        }
        let t_end = gpu.compute_free_at();

        for block in locals.outputs {
            for (i, s) in block.into_iter().enumerate() {
                state.vals[i] += s;
            }
        }
        Ok(t_end)
    }

    fn partition(&self, key: &u32, ranks: u32) -> u32 {
        // All keys of one center to one GPU.
        (key / (DIMS as u32 + 1)) % ranks.max(1)
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[f64],
    ) -> SimGpuResult<(KvSet<u32, f64>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        // Thread-per-key sum; few centers and dimensions keep this
        // negligible (paper: "full Reduce time negligible").
        let cfg = LaunchConfig::for_items(segs.len(), 1024, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u32, f64> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<f64>(r.len());
                ctx.charge_flops(r.len() as u64);
                out.push(segs.keys[s], vals[r].iter().sum());
            }
            ctx.charge_write::<f64>(out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// Generate `n` points scattered around `k` true cluster locations.
pub fn generate_points(n: usize, k: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4b4d43);
    let truths: Vec<Point> = (0..k)
        .map(|_| std::array::from_fn(|_| rng.gen_range(-10.0..10.0)))
        .collect();
    (0..n)
        .map(|_| {
            let t = &truths[rng.gen_range(0..k)];
            std::array::from_fn(|d| t[d] + rng.gen_range(-0.5..0.5))
        })
        .collect()
}

/// Random initial centers (fixed at job startup, as in the paper).
pub fn initial_centers(k: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x43454e);
    (0..k)
        .map(|_| std::array::from_fn(|_| rng.gen_range(-10.0..10.0)))
        .collect()
}

/// Sequential reference: per-key (center-major) sums and counts.
pub fn cpu_reference(centers: &[Point], points: &[Point]) -> Vec<f64> {
    let mut sums = vec![0.0f64; centers.len() * (DIMS + 1)];
    for p in points {
        let c = nearest_center(centers, p);
        let base = c * (DIMS + 1);
        for dim in 0..DIMS {
            sums[base + dim] += f64::from(p[dim]);
        }
        sums[base + DIMS] += 1.0;
    }
    sums
}

/// Dense per-key sums from a job result.
pub fn sums_from_output(k: usize, output: &KvSet<u32, f64>) -> Vec<f64> {
    let mut sums = vec![0.0f64; k * (DIMS + 1)];
    for (key, v) in output.iter() {
        sums[*key as usize] += *v;
    }
    sums
}

/// New centers from accumulated sums (the k-means update step).
///
/// An *empty cluster* (no point mapped to the center this iteration) has
/// `count == 0`; dividing by it would turn the center into `[NaN; 4]`,
/// and NaN centers are absorbing — every later distance comparison
/// against NaN is false, so the center can never win a point back and the
/// poison spreads into the movement metric (and, journaled, into the
/// round's control hash). The guard keeps the previous center instead,
/// the standard Lloyd's fallback.
pub fn centers_from_sums(old: &[Point], sums: &[f64]) -> Vec<Point> {
    old.iter()
        .enumerate()
        .map(|(c, center)| {
            let base = c * (DIMS + 1);
            let count = sums[base + DIMS];
            if count > 0.0 {
                std::array::from_fn(|d| (sums[base + d] / count) as f32)
            } else {
                *center
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_core::run_job;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn kmc_matches_reference_single_gpu() {
        let centers = initial_centers(8, 1);
        let points = generate_points(20_000, 8, 2);
        let job = KmcJob::new(centers.clone());
        let mut cluster = Cluster::accelerator(1, GpuSpec::gt200());
        let chunks = SliceChunk::split(&points, 4096);
        let result = run_job(&mut cluster, &job, chunks).unwrap();
        let sums = sums_from_output(centers.len(), &result.merged_output());
        assert_close(&sums, &cpu_reference(&centers, &points));
    }

    #[test]
    fn kmc_matches_reference_multi_gpu() {
        let centers = initial_centers(16, 3);
        let points = generate_points(40_000, 16, 4);
        let job = KmcJob::new(centers.clone());
        let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
        let chunks = SliceChunk::split(&points, 4096);
        let result = run_job(&mut cluster, &job, chunks).unwrap();
        let sums = sums_from_output(centers.len(), &result.merged_output());
        assert_close(&sums, &cpu_reference(&centers, &points));
        // Per-center partitioning: each rank only holds whole centers.
        for (r, out) in result.outputs.iter().enumerate() {
            for k in &out.keys {
                assert_eq!((k / (DIMS as u32 + 1)) % 8, r as u32);
            }
        }
    }

    #[test]
    fn centers_update_moves_toward_truth() {
        let centers = initial_centers(4, 5);
        let points = generate_points(10_000, 4, 6);
        let sums = cpu_reference(&centers, &points);
        let updated = centers_from_sums(&centers, &sums);
        assert_eq!(updated.len(), 4);
        // Total count equals the number of points.
        let total: f64 = (0..4).map(|c| sums[c * (DIMS + 1) + DIMS]).sum();
        assert_eq!(total, 10_000.0);
    }

    #[test]
    fn fermi_uses_atomics_instead_of_pools() {
        // Both paths must produce identical sums; Fermi should be faster
        // per map because the pool-reduce pass disappears.
        let centers = initial_centers(8, 7);
        let points = generate_points(30_000, 8, 8);
        let job = KmcJob::new(centers.clone());
        let chunks = SliceChunk::split(&points, 4096);

        let mut gt200 = Cluster::accelerator(1, GpuSpec::gt200());
        let r1 = run_job(&mut gt200, &job, chunks.clone()).unwrap();
        let mut fermi = Cluster::accelerator(1, GpuSpec::fermi());
        let r2 = run_job(&mut fermi, &job, chunks).unwrap();
        assert_close(
            &sums_from_output(8, &r1.merged_output()),
            &sums_from_output(8, &r2.merged_output()),
        );
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn empty_centers_rejected() {
        let _ = KmcJob::new(Vec::new());
    }

    #[test]
    fn empty_cluster_keeps_previous_center_not_nan() {
        // Regression: a center that captures no points must survive the
        // update unchanged — a 0/0 here would poison it to NaN forever.
        let old = vec![[0.0f32; DIMS], [100.0; DIMS]];
        // All ten points sit at the origin; center 1 is empty.
        let points = vec![[0.0f32; DIMS]; 10];
        let sums = cpu_reference(&old, &points);
        assert_eq!(sums[(DIMS + 1) + DIMS], 0.0, "cluster 1 is empty");
        let updated = centers_from_sums(&old, &sums);
        assert_eq!(updated[0], [0.0; DIMS]);
        assert_eq!(updated[1], [100.0; DIMS], "empty cluster keeps its center");
        for c in &updated {
            assert!(c.iter().all(|x| x.is_finite()), "no NaN/inf centers");
        }
        // And the iterative driver stays finite end-to-end with an
        // unlucky initial center far outside the data.
        let far = vec![[0.5f32; DIMS], [1e6; DIMS]];
        let updated = centers_from_sums(&far, &cpu_reference(&far, &points));
        assert!(updated.iter().flatten().all(|x| x.is_finite()));
    }
}
