//! Distributed sample sort on the round driver.
//!
//! The classic two-round MapReduce sort (Goodrich et al.'s
//! sorting-in-MapReduce construction, and the backbone of TeraSort):
//!
//! * **Round 0 — sample.** Every chunk's mapper emits each `p`-th element
//!   (by global position); [`gpmr_core::PartitionMode::None`] routes all
//!   samples to rank 0, whose reduce collapses them to `(key, count)`.
//!   [`SsortRounds::absorb`] expands the histogram back into a sample
//!   multiset and derives range splitters with
//!   [`gpmr_core::derive_splitters`].
//! * **Round 1 — sort.** The *same* input chunks run again
//!   ([`gpmr_core::rounds::RoundDecision::Again`], device-resident after
//!   a quiet fitting round 0), now shuffled with
//!   [`gpmr_core::PartitionMode::Range`]: reducer `r` receives exactly
//!   the keys in its sampled range, the engine's radix sort orders them,
//!   and reduce emits the rank's sorted `(key, count)` run. Concatenating
//!   the per-rank runs in rank order yields the globally sorted multiset
//!   — no merge step.
//!
//! Sampling is what makes the shuffle skew-aware: under a Zipf key
//! distribution, round-robin (`k % R`) lands the hot keys on whichever
//! ranks their low bits pick, while sampled splitters equalize pair
//! *mass* per reducer (the splitters crowd together where the data
//! crowds).

use gpmr_core::rounds::{RoundJob, RoundStep};
use gpmr_core::{derive_splitters, GpmrJob, KvSet, PartitionMode, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};

/// Items handled per map block (SIO's mapper geometry: 256 threads, two
/// integers per thread, 8 rounds).
const ITEMS_PER_MAP_BLOCK: usize = 4096;

/// Which pass of the sort a [`SsortJob`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Emit every `p`-th element, all to rank 0.
    Sample,
    /// Emit everything, range-partitioned by the sampled splitters.
    Sort,
}

/// One pass of the distributed sample sort. Built per round by
/// [`SsortRounds`]; not usually constructed directly.
#[derive(Clone, Debug)]
pub struct SsortJob {
    phase: Phase,
    sample_every: usize,
    splitters: Vec<u64>,
}

impl GpmrJob for SsortJob {
    type Chunk = SliceChunk<u32>;
    type Key = u32;
    type Value = u32;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            partition: match self.phase {
                Phase::Sample => PartitionMode::None,
                Phase::Sort => PartitionMode::Range {
                    splitters: self.splitters.clone(),
                },
            },
            ..PipelineConfig::default()
        }
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let n = chunk.items.len();
        let cfg = LaunchConfig::for_items(n, ITEMS_PER_MAP_BLOCK, 256);
        let stride = self.sample_every.max(1);
        let phase = self.phase;
        let offset = chunk.global_offset as usize;
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<u32>(range.len());
            let mut out: KvSet<u32, u32> = KvSet::new();
            match phase {
                Phase::Sample => {
                    // Strided sample by *global* position, so the sample
                    // set is independent of the chunking.
                    for i in range.clone() {
                        if (offset + i).is_multiple_of(stride) {
                            out.push(chunk.items[i], 1);
                        }
                    }
                }
                Phase::Sort => {
                    for &x in &chunk.items[range.clone()] {
                        out.push(x, 1);
                    }
                }
            }
            ctx.charge_write::<u32>(2 * out.len());
            ctx.charge_flops(range.len() as u64);
            out
        })?;
        let mut pairs = KvSet::new();
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        // One key per thread, serial count sum: the output is the rank's
        // sorted run as (key, multiplicity).
        let cfg = LaunchConfig::for_items(segs.len(), 2048, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<u32>(r.len());
                ctx.charge_flops(r.len() as u64);
                out.push(segs.keys[s], vals[r].iter().sum::<u32>());
            }
            ctx.charge_write::<u32>(2 * out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// The two-round sample-sort driver.
pub struct SsortRounds {
    ranks: u32,
    sample_every: usize,
    /// Splitters derived from round 0's sample (empty until then).
    pub splitters: Vec<u64>,
}

impl SsortRounds {
    /// Sort across `ranks` reducers, sampling every `sample_every`-th
    /// element in round 0.
    pub fn new(ranks: u32, sample_every: usize) -> Self {
        SsortRounds {
            ranks: ranks.max(1),
            sample_every: sample_every.max(1),
            splitters: Vec::new(),
        }
    }
}

impl RoundJob for SsortRounds {
    type Job = SsortJob;

    fn max_rounds(&self) -> u32 {
        2
    }

    fn job(&self, round: u32) -> SsortJob {
        SsortJob {
            phase: if round == 0 {
                Phase::Sample
            } else {
                Phase::Sort
            },
            sample_every: self.sample_every,
            splitters: self.splitters.clone(),
        }
    }

    fn control_hash(&self) -> u64 {
        let mut h = gpmr_core::journal::Fnv64::new();
        h.write_u64(self.splitters.len() as u64);
        for &s in &self.splitters {
            h.write_u64(s);
        }
        h.finish()
    }

    fn absorb(&mut self, round: u32, outputs: &[KvSet<u32, u32>]) -> RoundStep {
        if round > 0 {
            return RoundStep::done();
        }
        // Expand the sample histogram back to a multiset: duplicate keys
        // must weigh as heavily in the quantiles as they do in the data.
        let mut samples = Vec::new();
        for o in outputs {
            for (k, c) in o.iter() {
                for _ in 0..*c {
                    samples.push(u64::from(*k));
                }
            }
        }
        self.splitters = derive_splitters(&samples, self.ranks);
        // The splitters are the control state every mapper needs next
        // round.
        RoundStep::again((self.splitters.len() as u64) * 8)
    }
}

/// Concatenate per-rank sorted runs in rank order into one `(key, count)`
/// sequence — the globally sorted multiset if the sort worked.
pub fn concatenated_runs(outputs: &[KvSet<u32, u32>]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for o in outputs {
        for (k, c) in o.iter() {
            out.push((*k, *c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sio::{generate_integers, generate_zipf_integers, sio_chunks};
    use gpmr_core::rounds::run_rounds;
    use gpmr_core::EngineTuning;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;
    use gpmr_telemetry::Telemetry;
    use std::collections::HashMap;

    fn run_ssort(data: &[u32], gpus: u32, sample_every: usize) -> Vec<KvSet<u32, u32>> {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let mut driver = SsortRounds::new(gpus, sample_every);
        let res = run_rounds(
            &mut cluster,
            &mut driver,
            sio_chunks(data, 1 << 18),
            &EngineTuning::default(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(res.rounds, 2);
        res.outputs
    }

    fn assert_sorted_and_complete(data: &[u32], outputs: &[KvSet<u32, u32>]) {
        let runs = concatenated_runs(outputs);
        for w in runs.windows(2) {
            assert!(w[0].0 < w[1].0, "global order broken: {:?}", w);
        }
        let mut hist: HashMap<u32, u32> = HashMap::new();
        for &x in data {
            *hist.entry(x).or_default() += 1;
        }
        assert_eq!(runs.len(), hist.len(), "distinct key count");
        for (k, c) in runs {
            assert_eq!(hist.get(&k), Some(&c), "multiplicity of {k}");
        }
    }

    #[test]
    fn sample_sort_produces_globally_sorted_output() {
        let data = generate_integers(120_000, 77);
        let outputs = run_ssort(&data, 4, 97);
        assert_sorted_and_complete(&data, &outputs);
    }

    #[test]
    fn sample_sort_handles_zipf_skew() {
        // s = 1.1 keeps the hottest key under 1/8 of total mass; a single
        // key heavier than a whole reducer share is unsplittable at key
        // granularity and no partitioner could meet the bound.
        let data = generate_zipf_integers(150_000, 1 << 16, 1.1, 5);
        let outputs = run_ssort(&data, 8, 101);
        assert_sorted_and_complete(&data, &outputs);
        // Load balance: pairs received per reducer (sum of counts) must
        // not collapse onto a few ranks despite the hot head of the Zipf.
        let loads: Vec<u64> = outputs
            .iter()
            .map(|o| o.vals.iter().map(|&c| u64::from(c)).sum())
            .collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        assert!(
            max / mean <= 1.5,
            "range partition should bound skew: loads {loads:?}"
        );
    }

    #[test]
    fn one_rank_sort_degenerates_gracefully() {
        let data = generate_integers(10_000, 3);
        let outputs = run_ssort(&data, 1, 50);
        assert_sorted_and_complete(&data, &outputs);
    }
}
