//! Matrix Multiplication (MM): the paper's compute-bound, strongly-scaling
//! benchmark (§5.3.1).
//!
//! The CPU-MapReduce formulation (one vector-vector product per output
//! element) falls short on GPUs — no coalescing, no shared-memory reuse —
//! so the paper uses the cache-oblivious hierarchical approach: matrices
//! are tiled; each block computes an output tile as an inner product of
//! 16x16 tile multiplications staged through shared memory.
//!
//! Because a single-key reduction must fit in core, the paper splits the
//! computation into **two GPMR tasks** (its footnote 2):
//!
//! 1. [`MmMapJob`] — map items are (output-tile, k-slab) partial products;
//!    each emits `(tile_key, partial_tile)`. Sort and Reduce are
//!    *bypassed*; partial tiles are binned straight to their owner rank.
//! 2. [`MmSumJob`] — a second Map sums the partial tiles per key
//!    (again bypassing Sort/Reduce), producing the final tiles.

use gpmr_core::JobTimings;
use gpmr_core::{
    Chunk, EngineResult, GpmrJob, KvSet, PartitionMode, PipelineConfig, Pod, SliceChunk,
};
use gpmr_sim_gpu::SimDuration;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};
use gpmr_sim_net::Cluster;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tile edge length: blocks of 256 threads multiply 16x16 tiles with
/// coalesced reads (paper: "we stop the division here because a block of
/// 256 threads can read 16^2 values in a coalesced manner").
pub const TILE: usize = 16;
/// Elements per tile.
pub const TILE_ELEMS: usize = TILE * TILE;

/// One 16x16 tile, row-major.
pub type TileData = [f32; TILE_ELEMS];

/// A dense square matrix, row-major, order divisible by [`TILE`].
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Order (rows = cols = n).
    pub n: usize,
    /// Row-major elements.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of order `n` (must be a multiple of [`TILE`]).
    pub fn zeros(n: usize) -> Self {
        assert_eq!(n % TILE, 0, "matrix order must be a multiple of {TILE}");
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Seeded random matrix with entries in `[-1, 1)`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut m = Self::zeros(n);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d4d);
        for v in &mut m.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        m
    }

    /// Number of tiles per dimension.
    pub fn n_tiles(&self) -> usize {
        self.n / TILE
    }

    /// Extract tile `(ti, tj)`.
    pub fn tile(&self, ti: usize, tj: usize) -> TileData {
        let mut t = [0.0f32; TILE_ELEMS];
        for r in 0..TILE {
            let src = (ti * TILE + r) * self.n + tj * TILE;
            t[r * TILE..(r + 1) * TILE].copy_from_slice(&self.data[src..src + TILE]);
        }
        t
    }

    /// Write tile `(ti, tj)`.
    pub fn set_tile(&mut self, ti: usize, tj: usize, t: &TileData) {
        for r in 0..TILE {
            let dst = (ti * TILE + r) * self.n + tj * TILE;
            self.data[dst..dst + TILE].copy_from_slice(&t[r * TILE..(r + 1) * TILE]);
        }
    }

    /// Reference sequential multiply (tile-ordered accumulation, matching
    /// the GPMR phase order bit-for-bit).
    pub fn multiply_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n);
        let nt = self.n_tiles();
        let mut c = Matrix::zeros(self.n);
        for ti in 0..nt {
            for tj in 0..nt {
                let mut acc = [0.0f32; TILE_ELEMS];
                for tk in 0..nt {
                    let a = self.tile(ti, tk);
                    let b = other.tile(tk, tj);
                    tile_multiply_add(&a, &b, &mut acc);
                }
                c.set_tile(ti, tj, &acc);
            }
        }
        c
    }
}

/// `acc += a * b` for 16x16 tiles.
fn tile_multiply_add(a: &TileData, b: &TileData, acc: &mut TileData) {
    for r in 0..TILE {
        for k in 0..TILE {
            let av = a[r * TILE + k];
            let brow = &b[k * TILE..(k + 1) * TILE];
            let crow = &mut acc[r * TILE..(r + 1) * TILE];
            for c in 0..TILE {
                crow[c] += av * brow[c];
            }
        }
    }
}

/// Pack an output-tile coordinate into a key.
pub fn tile_key(ti: u32, tj: u32) -> u32 {
    (ti << 16) | tj
}

/// Unpack a tile key.
pub fn tile_coords(key: u32) -> (u32, u32) {
    (key >> 16, key & 0xffff)
}

/// A phase-1 chunk: an A slab (`row_len x k_len`) and a B slab
/// (`k_len x col_len`) — everything needed to produce partial tiles for
/// the `row_len x col_len` output-tile block over `k_len` of the inner
/// dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct MmChunk {
    /// Tiles per dimension of the full matrices.
    pub n_tiles: u32,
    /// First tile-row covered.
    pub row_start: u32,
    /// Number of tile-rows covered.
    pub row_len: u32,
    /// First tile-column covered.
    pub col_start: u32,
    /// Number of tile-columns covered.
    pub col_len: u32,
    /// First tile of the k-slab.
    pub k_start: u32,
    /// Tiles in the k-slab.
    pub k_len: u32,
    /// A tiles, `row_len x k_len`, row-major.
    pub a: Vec<TileData>,
    /// B tiles, `k_len x col_len`, row-major.
    pub b: Vec<TileData>,
}

impl Chunk for MmChunk {
    fn item_count(&self) -> usize {
        (self.row_len * self.col_len * self.k_len) as usize
    }

    fn size_bytes(&self) -> u64 {
        ((self.a.len() + self.b.len()) * TILE_ELEMS * 4) as u64
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.n_tiles.write_le(&mut out);
        self.row_start.write_le(&mut out);
        self.row_len.write_le(&mut out);
        self.col_start.write_le(&mut out);
        self.col_len.write_le(&mut out);
        self.k_start.write_le(&mut out);
        self.k_len.write_le(&mut out);
        gpmr_core::pod::write_slice(&self.a, &mut out);
        gpmr_core::pod::write_slice(&self.b, &mut out);
        out
    }

    fn deserialize(bytes: &[u8]) -> Self {
        let n_tiles = u32::read_le(bytes);
        let row_start = u32::read_le(&bytes[4..]);
        let row_len = u32::read_le(&bytes[8..]);
        let col_start = u32::read_le(&bytes[12..]);
        let col_len = u32::read_le(&bytes[16..]);
        let k_start = u32::read_le(&bytes[20..]);
        let k_len = u32::read_le(&bytes[24..]);
        let (a, used) = gpmr_core::pod::read_slice(&bytes[28..]);
        let (b, _) = gpmr_core::pod::read_slice(&bytes[28 + used..]);
        MmChunk {
            n_tiles,
            row_start,
            row_len,
            col_start,
            col_len,
            k_start,
            k_len,
            a,
            b,
        }
    }
}

fn owner_of(key: u32, n_tiles: u32, ranks: u32) -> u32 {
    let (i, j) = tile_coords(key);
    (i * n_tiles + j) % ranks.max(1)
}

/// Phase 1: partial tile products.
#[derive(Clone, Copy, Debug)]
pub struct MmMapJob {
    n_tiles: u32,
}

impl MmMapJob {
    /// Job for matrices with `n_tiles` tiles per dimension.
    pub fn new(n_tiles: u32) -> Self {
        MmMapJob { n_tiles }
    }
}

impl GpmrJob for MmMapJob {
    type Chunk = MmChunk;
    type Key = u32;
    type Value = TileData;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            partition: PartitionMode::Custom,
            sort_and_reduce: false,
            ..PipelineConfig::default()
        }
    }

    fn partition(&self, key: &u32, ranks: u32) -> u32 {
        owner_of(*key, self.n_tiles, ranks)
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, TileData>, SimTime)> {
        let (rows, cols, klen) = (
            chunk.row_len as usize,
            chunk.col_len as usize,
            chunk.k_len as usize,
        );
        let out_tiles = rows * cols;
        // One block per output tile; 256 threads; two tiles staged in
        // shared memory per step.
        let cfg = LaunchConfig::grid(out_tiles as u32, 256)
            .with_shared_bytes((2 * TILE_ELEMS * 4) as u32)
            .with_regs_per_thread(20);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let b = ctx.block_idx as usize;
            let (ri, ci) = (b / cols, b % cols);
            // Full inner product over the chunk's k-slab: k_len staged
            // tile multiplications; shared-memory tile reads are stride-1
            // (conflict-free by construction).
            ctx.charge_read::<f32>(2 * TILE_ELEMS * klen);
            ctx.charge_shared::<f32>(2 * TILE * TILE_ELEMS * klen, 1);
            ctx.charge_flops((2 * TILE * TILE_ELEMS * klen) as u64);
            ctx.charge_write::<f32>(TILE_ELEMS);
            let mut acc = [0.0f32; TILE_ELEMS];
            for k in 0..klen {
                let a = &chunk.a[ri * klen + k];
                let bt = &chunk.b[k * cols + ci];
                tile_multiply_add(a, bt, &mut acc);
            }
            (
                tile_key(chunk.row_start + ri as u32, chunk.col_start + ci as u32),
                acc,
            )
        })?;
        let mut pairs = KvSet::with_capacity(out_tiles);
        for (k, t) in launch.outputs {
            pairs.push(k, t);
        }
        Ok((pairs, res.end))
    }
}

/// Phase 2: sum partial tiles per key ("another Map in a separate
/// MapReduce", bypassing Sort and Reduce again).
#[derive(Clone, Copy, Debug)]
pub struct MmSumJob {
    n_tiles: u32,
}

impl MmSumJob {
    /// Job for matrices with `n_tiles` tiles per dimension.
    pub fn new(n_tiles: u32) -> Self {
        MmSumJob { n_tiles }
    }
}

impl GpmrJob for MmSumJob {
    type Chunk = SliceChunk<(u32, TileData)>;
    type Key = u32;
    type Value = TileData;

    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            partition: PartitionMode::Custom,
            sort_and_reduce: false,
            ..PipelineConfig::default()
        }
    }

    fn partition(&self, key: &u32, ranks: u32) -> u32 {
        owner_of(*key, self.n_tiles, ranks)
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, TileData>, SimTime)> {
        // Chunks contain whole key-groups (guaranteed by `run_mm`'s
        // grouping); find group boundaries, then one block per group.
        let items = &chunk.items;
        let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        for i in 1..=items.len() {
            if i == items.len() || items[i].0 != items[start].0 {
                groups.push(start..i);
                start = i;
            }
        }
        if groups.is_empty() {
            return Ok((KvSet::new(), at));
        }
        let cfg =
            LaunchConfig::grid(groups.len() as u32, 256).with_shared_bytes((TILE_ELEMS * 4) as u32);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let g = &groups[ctx.block_idx as usize];
            ctx.charge_read::<f32>(TILE_ELEMS * g.len());
            ctx.charge_flops((TILE_ELEMS * (g.len() - 1)) as u64);
            ctx.charge_write::<f32>(TILE_ELEMS);
            let mut acc = [0.0f32; TILE_ELEMS];
            for (_, t) in &items[g.clone()] {
                for (a, v) in acc.iter_mut().zip(t) {
                    *a += v;
                }
            }
            (items[g.start].0, acc)
        })?;
        let mut pairs = KvSet::with_capacity(groups.len());
        for (k, t) in launch.outputs {
            pairs.push(k, t);
        }
        Ok((pairs, res.end))
    }
}

/// Result of a full two-phase GPMR matrix multiplication.
#[derive(Debug)]
pub struct MmResult {
    /// The product matrix.
    pub c: Matrix,
    /// Sum of both phases' makespans.
    pub total_time: SimDuration,
    /// Phase-1 timing breakdown.
    pub phase1: JobTimings,
    /// Phase-2 timing breakdown.
    pub phase2: JobTimings,
}

/// Build the phase-1 chunks for `a * b`: one chunk per
/// (row-slab, column-slab, k-slab) cell.
pub fn mm_chunks(
    a: &Matrix,
    b: &Matrix,
    row_block: usize,
    col_block: usize,
    k_block: usize,
) -> Vec<MmChunk> {
    assert_eq!(a.n, b.n, "matrix orders must match");
    let nt = a.n_tiles();
    let row_block = row_block.clamp(1, nt);
    let col_block = col_block.clamp(1, nt);
    let k_block = k_block.clamp(1, nt);
    let mut chunks = Vec::new();
    for row_start in (0..nt).step_by(row_block) {
        let rows = row_block.min(nt - row_start);
        for col_start in (0..nt).step_by(col_block) {
            let cols = col_block.min(nt - col_start);
            for k_start in (0..nt).step_by(k_block) {
                let klen = k_block.min(nt - k_start);
                let mut at = Vec::with_capacity(rows * klen);
                for r in 0..rows {
                    for k in 0..klen {
                        at.push(a.tile(row_start + r, k_start + k));
                    }
                }
                let mut bt = Vec::with_capacity(klen * cols);
                for k in 0..klen {
                    for c in 0..cols {
                        bt.push(b.tile(k_start + k, col_start + c));
                    }
                }
                chunks.push(MmChunk {
                    n_tiles: nt as u32,
                    row_start: row_start as u32,
                    row_len: rows as u32,
                    col_start: col_start as u32,
                    col_len: cols as u32,
                    k_start: k_start as u32,
                    k_len: klen as u32,
                    a: at,
                    b: bt,
                });
            }
        }
    }
    chunks
}

/// Run the full two-phase multiplication on a cluster. The block sizes
/// control chunk granularity in tiles ([`run_mm_auto`] picks them).
pub fn run_mm(
    cluster: &mut Cluster,
    a: &Matrix,
    b: &Matrix,
    row_block: usize,
    col_block: usize,
    k_block: usize,
) -> EngineResult<MmResult> {
    let nt = a.n_tiles() as u32;
    let chunks = mm_chunks(a, b, row_block, col_block, k_block);

    // Phase 1: partial products, binned to their owner ranks.
    let phase1 = gpmr_core::run_job(cluster, &MmMapJob::new(nt), chunks)?;

    // Between the two GPMR tasks: group each rank's partials by key
    // (GPMR is storage-agnostic between jobs).
    let mut pairs: Vec<(u32, TileData)> = Vec::new();
    for out in &phase1.outputs {
        pairs.extend(out.iter().map(|(k, v)| (*k, *v)));
    }
    pairs.sort_by_key(|(k, _)| *k);
    // Size phase-2 chunks to quarter of device memory (double buffer +
    // output headroom).
    let pair_bytes = 4 + TILE_ELEMS * 4;
    let max_items = (cluster.gpu(0).mem.capacity() as usize / 4 / pair_bytes).clamp(16, 2048);
    let chunks2 = group_chunks(&pairs, max_items);

    let phase2 = gpmr_core::run_job(cluster, &MmSumJob::new(nt), chunks2)?;

    // Assemble C.
    let mut c = Matrix::zeros(a.n);
    for out in &phase2.outputs {
        for (key, tile) in out.iter() {
            let (ti, tj) = tile_coords(*key);
            c.set_tile(ti as usize, tj as usize, tile);
        }
    }
    Ok(MmResult {
        c,
        total_time: phase1.timings.total + phase2.timings.total,
        phase1: phase1.timings,
        phase2: phase2.timings,
    })
}

/// [`run_mm`] with a generic default granularity (32x32x32 tile blocks).
pub fn run_mm_default(cluster: &mut Cluster, a: &Matrix, b: &Matrix) -> EngineResult<MmResult> {
    run_mm(cluster, a, b, 32, 32, 32)
}

/// Pick chunk granularity for `n_tiles` on `gpus` GPUs with
/// `capacity_bytes` of device memory. A chunk's PCI-e arithmetic
/// intensity is `8 * side * kb / (2 * kb + side)` flops per byte, so the
/// row/column blocks are kept large (up to 256 tiles — well past the
/// GT200's compute/PCI-e balance point of ~194 flops per byte); the
/// k-block mainly tunes chunk *count* toward the ~4 chunks per GPU the
/// dynamic scheduler wants.
pub fn mm_auto_blocks(n_tiles: usize, gpus: u32, capacity_bytes: u64) -> (usize, usize, usize) {
    let tile_bytes = (TILE_ELEMS * 4) as u64;
    let mut side = 256.min(n_tiles).max(1);
    let mut kb = 64.min(n_tiles).max(1);
    let fits = |side: usize, kb: usize| {
        let resident = (2 * side * kb + side * side) as u64 * tile_bytes;
        2 * resident <= capacity_bytes
    };
    while !fits(side, kb) {
        if kb > 8 {
            kb /= 2;
        } else if side > 1 {
            side = side * 3 / 4;
        } else {
            break;
        }
    }
    let target = (4 * gpus as usize).max(8);
    let chunks = |side: usize, kb: usize| {
        n_tiles.div_ceil(side) * n_tiles.div_ceil(side) * n_tiles.div_ceil(kb)
    };
    while chunks(side, kb) < target && kb > 1 {
        kb /= 2;
    }
    while chunks(side, kb) < target && side > 1 {
        side = (side * 2) / 3;
    }
    (side.max(1), side.max(1), kb.max(1))
}

/// [`run_mm`] with granularity adapted to the cluster size and device
/// memory.
pub fn run_mm_auto(cluster: &mut Cluster, a: &Matrix, b: &Matrix) -> EngineResult<MmResult> {
    let capacity = cluster.gpu(0).mem.capacity();
    let (rb, cb, kb) = mm_auto_blocks(a.n_tiles(), cluster.size(), capacity);
    run_mm(cluster, a, b, rb, cb, kb)
}

/// Pack sorted (key, tile) pairs into chunks of at most `max_items`
/// without splitting a key-group across chunks.
fn group_chunks(sorted: &[(u32, TileData)], max_items: usize) -> Vec<SliceChunk<(u32, TileData)>> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut id = 0u32;
    while start < sorted.len() {
        let mut end = (start + max_items).min(sorted.len());
        // Extend to the end of the current key-group.
        while end < sorted.len() && sorted[end].0 == sorted[end - 1].0 {
            end += 1;
        }
        chunks.push(SliceChunk::new(
            id,
            start as u64,
            sorted[start..end].to_vec(),
        ));
        id += 1;
        start = end;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_sim_gpu::GpuSpec;

    fn assert_matrix_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n, b.n);
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn tile_round_trip() {
        let m = Matrix::random(64, 1);
        let t = m.tile(2, 3);
        let mut m2 = Matrix::zeros(64);
        m2.set_tile(2, 3, &t);
        assert_eq!(m2.tile(2, 3), t);
    }

    #[test]
    fn reference_matches_naive_multiply() {
        let a = Matrix::random(32, 2);
        let b = Matrix::random(32, 3);
        let c = a.multiply_reference(&b);
        // Spot-check a few elements against the naive triple loop.
        for &(i, j) in &[(0usize, 0usize), (5, 17), (31, 31)] {
            let mut expect = 0.0f64;
            for k in 0..32 {
                expect += f64::from(a.data[i * 32 + k]) * f64::from(b.data[k * 32 + j]);
            }
            let got = f64::from(c.data[i * 32 + j]);
            assert!((got - expect).abs() < 1e-3, "({i},{j}): {got} vs {expect}");
        }
    }

    #[test]
    fn gpmr_mm_matches_reference_single_gpu() {
        let a = Matrix::random(128, 4);
        let b = Matrix::random(128, 5);
        let mut cluster = Cluster::accelerator(1, GpuSpec::gt200());
        let result = run_mm(&mut cluster, &a, &b, 4, 4, 4).unwrap();
        assert_matrix_close(&result.c, &a.multiply_reference(&b));
        assert!(result.total_time.as_secs() > 0.0);
    }

    #[test]
    fn gpmr_mm_matches_reference_multi_gpu() {
        let a = Matrix::random(256, 6);
        let b = Matrix::random(256, 7);
        let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
        let result = run_mm(&mut cluster, &a, &b, 4, 8, 8).unwrap();
        assert_matrix_close(&result.c, &a.multiply_reference(&b));
    }

    #[test]
    fn single_phase_when_k_fits() {
        // Full-k chunks mean phase 2 sees one partial per key.
        let a = Matrix::random(64, 8);
        let b = Matrix::random(64, 9);
        let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
        let result = run_mm(&mut cluster, &a, &b, 2, 4, 4).unwrap();
        assert_matrix_close(&result.c, &a.multiply_reference(&b));
    }

    #[test]
    fn mm_chunk_serialization_round_trips() {
        let a = Matrix::random(64, 10);
        let b = Matrix::random(64, 11);
        let chunks = mm_chunks(&a, &b, 2, 2, 2);
        let bytes = chunks[1].serialize();
        assert_eq!(MmChunk::deserialize(&bytes), chunks[1]);
        assert!(chunks[0].item_count() > 0);
    }

    #[test]
    fn key_packing_round_trips() {
        assert_eq!(tile_coords(tile_key(5, 9)), (5, 9));
        assert_eq!(tile_coords(tile_key(0, 0)), (0, 0));
        assert_eq!(tile_coords(tile_key(65535, 65535)), (65535, 65535));
    }

    #[test]
    fn group_chunks_never_split_groups() {
        let t = [0.0f32; TILE_ELEMS];
        let pairs: Vec<(u32, TileData)> = (0..100).map(|i| (i / 10, t)).collect();
        let chunks = group_chunks(&pairs, 15);
        for c in &chunks {
            // Each group (10 items) stays whole.
            let first = c.items.first().unwrap().0;
            let last = c.items.last().unwrap().0;
            assert!(c.items.len() >= 10 || first == last);
        }
        let total: usize = chunks.iter().map(|c| c.items.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn non_tile_order_rejected() {
        let _ = Matrix::zeros(100);
    }
}
