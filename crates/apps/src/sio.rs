//! Sparse Integer Occurrence (SIO): count occurrences of each integer in
//! a randomly-distributed sequence (paper §5.3.2).
//!
//! The stress benchmark for "many key-value pairs": every input element
//! emits a pair, nothing compacts the intermediate data (the paper found
//! Partial Reduction and Accumulation yield no speedup on sparse keys and
//! Combine causes slowdown), so the PCI-e bus, the network, and the Sort
//! stage all carry the full data volume. The mapper reads *two* integers
//! per thread for efficient memory access; the best reducer is one key
//! per thread with a serial value sum (block-per-key performed worse on
//! sparse data — most keys have fewer than five values).

use std::collections::HashMap;

use gpmr_core::{GpmrJob, KvSet, PipelineConfig, SliceChunk};
use gpmr_primitives::Segments;
use gpmr_sim_gpu::{Gpu, LaunchConfig, SimGpuResult, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Map-stage configuration for SIO ablations. The paper's final choice is
/// [`SioMode::Plain`]: "we forego Partial Reduction and Accumulation as
/// they yield no speedup with our intermediate data, and we skip Combine
/// as it causes slowdown". The other modes exist to measure exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SioMode {
    /// The paper's configuration: ship every emitted pair.
    #[default]
    Plain,
    /// GPU-side Partial Reduction after each map (sort + segmented fold of
    /// an almost-unique key set: pure overhead on sparse keys).
    PartialReduce,
    /// CPU-stored global Combine before partitioning (defers all binning
    /// until maps finish: slowdown).
    Combine,
}

/// The SIO job. Pipeline: plain map, round-robin partition, radix sort,
/// thread-per-key reduce.
#[derive(Clone, Debug, Default)]
pub struct SioJob {
    mode: SioMode,
    block_keyspace: Option<u64>,
    splitters: Option<Vec<u64>>,
    reduce_sets: Option<usize>,
    bitonic_sort: bool,
}

impl SioJob {
    /// The ablation constructor; `SioJob::default()` is the paper's
    /// configuration.
    pub fn with_mode(mode: SioMode) -> Self {
        SioJob {
            mode,
            ..SioJob::default()
        }
    }

    /// Use the comparator-network (bitonic) Sorter instead of the default
    /// radix sort — the fallback GPMR uses for non-integer keys, measured
    /// by the sorter ablation.
    pub fn with_bitonic_sort(mut self) -> Self {
        self.bitonic_sort = true;
        self
    }

    /// Use the consecutive-blocks partitioner over a known key space
    /// `[0, max_key]` instead of round-robin (the paper's §4.1
    /// alternative; the distribution ablation compares the two).
    pub fn with_block_partition(mut self, max_key: u64) -> Self {
        self.block_keyspace = Some(max_key);
        self
    }

    /// Cap the number of value sets per reduce kernel (the paper's §4.3
    /// reduce-chunking callback; GPMR keeps issuing it until the last
    /// sequence is processed). Default: all remaining sets in one kernel.
    pub fn with_reduce_chunk(mut self, sets: usize) -> Self {
        self.reduce_sets = Some(sets.max(1));
        self
    }

    /// Partition by key range using sampled `splitters` (ascending;
    /// reducer `r` owns keys in `[splitters[r-1], splitters[r])`) instead
    /// of round-robin. This is the skew-aware shuffle: under a Zipf key
    /// distribution round-robin lets hot keys collide on `k % R`, while
    /// sampled splitters equalize pair *mass* per reducer. Derive the
    /// splitters with [`gpmr_core::derive_splitters`] from a key sample.
    pub fn with_range_partition(mut self, splitters: Vec<u64>) -> Self {
        self.splitters = Some(splitters);
        self
    }
}

/// Items handled per map block (each thread reads two integers, 256
/// threads per block, 8 rounds).
const ITEMS_PER_MAP_BLOCK: usize = 4096;

impl GpmrJob for SioJob {
    type Chunk = SliceChunk<u32>;
    type Key = u32;
    type Value = u32;

    fn pipeline(&self) -> PipelineConfig {
        let mut cfg = match self.mode {
            SioMode::Plain => PipelineConfig::default(),
            SioMode::PartialReduce => PipelineConfig {
                map_mode: gpmr_core::MapMode::PartialReduce,
                ..PipelineConfig::default()
            },
            SioMode::Combine => PipelineConfig {
                combine: true,
                ..PipelineConfig::default()
            },
        };
        if self.block_keyspace.is_some() {
            cfg.partition = gpmr_core::PartitionMode::Custom;
        }
        if let Some(splitters) = &self.splitters {
            cfg.partition = gpmr_core::PartitionMode::Range {
                splitters: splitters.clone(),
            };
        }
        if self.bitonic_sort {
            cfg.sort = gpmr_core::SortMode::Bitonic;
        }
        cfg
    }

    fn partition(&self, key: &u32, ranks: u32) -> u32 {
        match self.block_keyspace {
            Some(max) => gpmr_core::block_partition(u64::from(*key), max, ranks),
            None => key % ranks.max(1),
        }
    }

    fn partial_reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        pairs: KvSet<u32, u32>,
    ) -> gpmr_sim_gpu::SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        gpmr_core::helpers::combine_pairs(gpu, at, pairs, |a, b| a + b)
    }

    fn combine_op(&self, a: u32, b: u32) -> u32 {
        a + b
    }

    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let n = chunk.items.len();
        let cfg = LaunchConfig::for_items(n, ITEMS_PER_MAP_BLOCK, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            // Two integers per thread: one fully-coalesced read of the
            // range, one coalesced write of each emitted (key, 1) pair.
            ctx.charge_read::<u32>(range.len());
            ctx.charge_write::<u32>(2 * range.len());
            ctx.charge_flops(range.len() as u64);
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for &x in &chunk.items[range] {
                out.push(x, 1);
            }
            out
        })?;
        let mut pairs = KvSet::with_capacity(n);
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    fn reduce_sets_per_chunk(&self, remaining: usize) -> usize {
        match self.reduce_sets {
            Some(cap) => cap.min(remaining),
            None => remaining,
        }
    }

    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        if segs.is_empty() {
            return Ok((KvSet::new(), at));
        }
        // One key per thread; each thread serially sums its values
        // (uncoalesced reads — the paper's final, fastest variant).
        let cfg = LaunchConfig::for_items(segs.len(), 2048, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(segs.len());
            let mut out: KvSet<u32, u32> = KvSet::with_capacity(range.len());
            for s in range {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<u32>(r.len());
                ctx.charge_flops(r.len() as u64);
                let sum = vals[r].iter().sum::<u32>();
                out.push(segs.keys[s], sum);
            }
            ctx.charge_write::<u32>(2 * out.len());
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

/// Generate `n` random integers over a sparse key space of `n` distinct
/// possible keys (most keys occur a handful of times, as in the paper).
pub fn generate_integers(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x53494f);
    let space = (n as u32).max(16);
    (0..n).map(|_| rng.gen_range(0..space)).collect()
}

/// Split input into chunks of `chunk_bytes` bytes each.
pub fn sio_chunks(data: &[u32], chunk_bytes: usize) -> Vec<SliceChunk<u32>> {
    SliceChunk::split(data, (chunk_bytes / 4).max(1))
}

/// Generate `n` Zipf(`s`)-distributed integers over `[0, space)`: rank-1
/// is the hottest key, rank-`space` the coldest — the skewed workload the
/// range partitioner exists for. Inverse-CDF sampling against the exact
/// (finite) harmonic normalizer, deterministic in `seed`.
pub fn generate_zipf_integers(n: usize, space: u32, s: f64, seed: u64) -> Vec<u32> {
    let space = space.max(2);
    // CDF over ranks 1..=space: cdf[k] = H_{k,s} / H_{space,s}.
    let mut cdf = Vec::with_capacity(space as usize);
    let mut acc = 0.0f64;
    for k in 1..=space {
        acc += 1.0 / f64::from(k).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a49_5046);
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            // First rank whose cumulative mass covers u; the rank (minus
            // one) is the emitted key, so key 0 is the hottest.
            cdf.partition_point(|&c| c < u) as u32
        })
        .collect()
}

/// Sequential reference: occurrence counts per integer.
pub fn cpu_reference(data: &[u32]) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for &x in data {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpmr_core::run_job;
    use gpmr_sim_gpu::GpuSpec;
    use gpmr_sim_net::Cluster;

    fn check_counts(result: &KvSet<u32, u32>, expect: &HashMap<u32, u32>) {
        let mut got: HashMap<u32, u32> = HashMap::new();
        for (k, v) in result.iter() {
            assert!(got.insert(*k, *v).is_none(), "duplicate key {k}");
        }
        assert_eq!(&got, expect);
    }

    #[test]
    fn sio_matches_reference_on_one_gpu() {
        let data = generate_integers(20_000, 1);
        let mut cluster = Cluster::accelerator(1, GpuSpec::gt200());
        let result = run_job(
            &mut cluster,
            &SioJob::default(),
            sio_chunks(&data, 16 * 1024),
        )
        .unwrap();
        check_counts(&result.merged_output(), &cpu_reference(&data));
    }

    #[test]
    fn sio_matches_reference_on_eight_gpus() {
        let data = generate_integers(50_000, 2);
        let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
        let result = run_job(
            &mut cluster,
            &SioJob::default(),
            sio_chunks(&data, 8 * 1024),
        )
        .unwrap();
        check_counts(&result.merged_output(), &cpu_reference(&data));
        // Round-robin partitioning: every rank holds only keys ≡ rank (mod 8).
        for (r, out) in result.outputs.iter().enumerate() {
            assert!(out.keys.iter().all(|k| k % 8 == r as u32));
        }
    }

    #[test]
    fn sio_total_count_equals_input_len() {
        let data = generate_integers(30_000, 3);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let result = run_job(
            &mut cluster,
            &SioJob::default(),
            sio_chunks(&data, 16 * 1024),
        )
        .unwrap();
        let total: u64 = result
            .merged_output()
            .vals
            .iter()
            .map(|&v| u64::from(v))
            .sum();
        assert_eq!(total, 30_000);
        assert_eq!(result.timings.pairs_emitted, 30_000);
    }

    #[test]
    fn ablation_modes_produce_identical_counts() {
        let data = generate_integers(30_000, 9);
        let expect = cpu_reference(&data);
        for mode in [SioMode::Plain, SioMode::PartialReduce, SioMode::Combine] {
            let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
            let job = SioJob::with_mode(mode);
            let result = run_job(&mut cluster, &job, sio_chunks(&data, 16 * 1024)).unwrap();
            check_counts(&result.merged_output(), &expect);
        }
    }

    #[test]
    fn partial_reduce_shrinks_the_shuffle_on_dense_keys() {
        // Dense keys (many duplicates per chunk) let partial reduction
        // compact pairs before the shuffle.
        let data: Vec<u32> = (0..40_000u32).map(|i| i % 64).collect();
        let mut c1 = Cluster::accelerator(2, GpuSpec::gt200());
        let plain = run_job(&mut c1, &SioJob::default(), sio_chunks(&data, 32 * 1024)).unwrap();
        let mut c2 = Cluster::accelerator(2, GpuSpec::gt200());
        let pr = run_job(
            &mut c2,
            &SioJob::with_mode(SioMode::PartialReduce),
            sio_chunks(&data, 32 * 1024),
        )
        .unwrap();
        assert!(pr.timings.pairs_shuffled < plain.timings.pairs_shuffled / 10);
        check_counts(&pr.merged_output(), &cpu_reference(&data));
    }

    #[test]
    fn bitonic_sorter_is_correct_but_slower() {
        let data = generate_integers(60_000, 13);
        let expect = cpu_reference(&data);
        let mut c1 = Cluster::accelerator(2, GpuSpec::gt200());
        let radix = run_job(&mut c1, &SioJob::default(), sio_chunks(&data, 32 * 1024)).unwrap();
        let mut c2 = Cluster::accelerator(2, GpuSpec::gt200());
        let bitonic = run_job(
            &mut c2,
            &SioJob::default().with_bitonic_sort(),
            sio_chunks(&data, 32 * 1024),
        )
        .unwrap();
        check_counts(&radix.merged_output(), &expect);
        check_counts(&bitonic.merged_output(), &expect);
        assert!(
            bitonic.total_time().as_secs() > radix.total_time().as_secs(),
            "bitonic {} should be slower than radix {}",
            bitonic.total_time(),
            radix.total_time()
        );
    }

    #[test]
    fn generator_is_deterministic_and_sparse() {
        let a = generate_integers(10_000, 7);
        assert_eq!(a, generate_integers(10_000, 7));
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        // Sparse: many distinct keys relative to input size.
        assert!(distinct.len() > 5_000);
    }
}
