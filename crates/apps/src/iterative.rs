//! Iterative MapReduce drivers.
//!
//! The paper's KMC benchmark runs a single iteration; a full K-Means is
//! "an iterative process; the MapReduce results are new cluster centers,
//! and a full implementation repeats a fixed number of times or until
//! convergence" (§5.3.4). [`KmcRounds`] expresses that loop as a
//! [`RoundJob`] for the core round driver: every iteration is a round
//! over the *same* input chunks ([`gpmr_core::rounds::RoundDecision::Again`]), and when a
//! round finishes quietly and the dataset fits, the driver keeps the
//! points device-resident and skips their re-upload — only the updated
//! centers cross back to the ranks, as a broadcast the clock charges
//! honestly.
//!
//! This replaces the old hand-rolled host loop, which re-charged the full
//! point upload every iteration (dishonest for a deployment that keeps
//! its input resident) and restarted the broadcast at `SimTime::ZERO`
//! instead of at the end of the round it follows.

use gpmr_core::rounds::{run_rounds, run_rounds_journaled, RoundJob, RoundStep, RoundsResult};
use gpmr_core::{journal::Fnv64, EngineResult, EngineTuning, Journal, KvSet, SliceChunk};
use gpmr_sim_gpu::SimDuration;
use gpmr_sim_net::Cluster;
use gpmr_telemetry::Telemetry;

use crate::kmc::{centers_from_sums, sums_from_output, KmcJob, Point, DIMS};

/// Result of an iterative K-Means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// Final cluster centers.
    pub centers: Vec<Point>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Total simulated time (jobs + inter-iteration center broadcasts),
    /// accumulated on one cross-round clock.
    pub total_time: SimDuration,
    /// Total center movement at each iteration (convergence history).
    pub movement: Vec<f64>,
    /// Iterations that ran with the points device-resident (no re-upload).
    pub resident_rounds: usize,
}

/// Euclidean movement between two center sets.
fn total_movement(a: &[Point], b: &[Point]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            (0..DIMS)
                .map(|d| (f64::from(x[d]) - f64::from(y[d])).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .sum()
}

/// Lloyd's iterations as a [`RoundJob`]: round k maps every point against
/// the current centers ([`KmcJob`]), [`KmcRounds::absorb`] folds the
/// per-center sums into updated centers and stops once total movement
/// drops below `tolerance`.
pub struct KmcRounds {
    centers: Vec<Point>,
    tolerance: f64,
    max_rounds: u32,
    /// Center movement per completed round.
    pub movement: Vec<f64>,
}

impl KmcRounds {
    /// Start from `initial_centers`, iterating until movement falls below
    /// `tolerance` or `max_rounds` rounds have run.
    pub fn new(initial_centers: Vec<Point>, max_rounds: u32, tolerance: f64) -> Self {
        KmcRounds {
            centers: initial_centers,
            tolerance,
            max_rounds,
            movement: Vec::new(),
        }
    }

    /// The current (after a run: final) centers.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }
}

impl RoundJob for KmcRounds {
    type Job = KmcJob;

    fn max_rounds(&self) -> u32 {
        self.max_rounds
    }

    fn job(&self, _round: u32) -> KmcJob {
        KmcJob::new(self.centers.clone())
    }

    fn control_hash(&self) -> u64 {
        // The centers ARE the control state: a resumed run that would
        // re-derive different centers must diverge at the round boundary.
        let mut h = Fnv64::new();
        for c in &self.centers {
            for x in c.iter().take(DIMS) {
                h.write_u64(u64::from(x.to_bits()));
            }
        }
        h.finish()
    }

    fn absorb(&mut self, _round: u32, outputs: &[KvSet<u32, f64>]) -> RoundStep {
        let mut merged: KvSet<u32, f64> = KvSet::new();
        for o in outputs {
            merged.append(o.clone());
        }
        let sums = sums_from_output(self.centers.len(), &merged);
        let updated = centers_from_sums(&self.centers, &sums);
        let moved = total_movement(&self.centers, &updated);
        self.movement.push(moved);
        self.centers = updated;
        if moved < self.tolerance {
            RoundStep::done()
        } else {
            // The next round's mappers everywhere need the full center
            // set; the update itself happens host-side from the reduce
            // output, so centers are all that crosses the wire.
            RoundStep::again((self.centers.len() * DIMS * 4) as u64)
        }
    }
}

fn assemble(driver: KmcRounds, res: RoundsResult<u32, f64>) -> KmeansResult {
    KmeansResult {
        centers: driver.centers,
        iterations: res.rounds as usize,
        total_time: res.total_time,
        movement: driver.movement,
        resident_rounds: res.per_round.iter().filter(|r| r.resident).count(),
    }
}

/// Run K-Means to convergence (center movement below `tolerance`) or for
/// `max_iterations`, whichever comes first, on the core round driver.
/// Chunks are built once; after the first quiet round that fits on one
/// device, the points stay GPU-resident and later rounds skip the upload.
pub fn run_kmeans(
    cluster: &mut Cluster,
    points: &[Point],
    initial_centers: Vec<Point>,
    chunk_points: usize,
    max_iterations: usize,
    tolerance: f64,
) -> EngineResult<KmeansResult> {
    let chunks = SliceChunk::split(points, chunk_points.max(1));
    let mut driver = KmcRounds::new(initial_centers, max_iterations as u32, tolerance);
    let res = run_rounds(
        cluster,
        &mut driver,
        chunks,
        &EngineTuning::default(),
        &Telemetry::disabled(),
    )?;
    Ok(assemble(driver, res))
}

/// [`run_kmeans`] with a write-ahead [`Journal`]: the driver brackets
/// every iteration with round records, so an interrupted run resumed
/// against the same journal replays completed rounds and finishes
/// bit-identically (centers, movement history, and the cross-round
/// clock).
pub fn run_kmeans_journaled(
    cluster: &mut Cluster,
    points: &[Point],
    initial_centers: Vec<Point>,
    chunk_points: usize,
    max_iterations: usize,
    tolerance: f64,
    journal: &mut Journal,
) -> EngineResult<KmeansResult> {
    let chunks = SliceChunk::split(points, chunk_points.max(1));
    let mut driver = KmcRounds::new(initial_centers, max_iterations as u32, tolerance);
    let res = run_rounds_journaled(
        cluster,
        &mut driver,
        chunks,
        &EngineTuning::default(),
        &Telemetry::disabled(),
        journal,
    )?;
    Ok(assemble(driver, res))
}

/// Sequential reference K-Means (same update rule) for verification.
pub fn reference_kmeans(
    points: &[Point],
    initial_centers: Vec<Point>,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<Point>, usize) {
    let mut centers = initial_centers;
    for iter in 0..max_iterations {
        let sums = crate::kmc::cpu_reference(&centers, points);
        let updated = centers_from_sums(&centers, &sums);
        let moved = total_movement(&centers, &updated);
        centers = updated;
        if moved < tolerance {
            return (centers, iter + 1);
        }
    }
    (centers, max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmc::{generate_points, initial_centers};
    use gpmr_sim_gpu::GpuSpec;

    #[test]
    fn iterative_kmeans_matches_sequential_reference() {
        let points = generate_points(20_000, 6, 31);
        let init = initial_centers(6, 32);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let gpu_result = run_kmeans(&mut cluster, &points, init.clone(), 4096, 10, 1e-6).unwrap();
        let (ref_centers, ref_iters) = reference_kmeans(&points, init, 10, 1e-6);

        assert_eq!(gpu_result.iterations, ref_iters);
        for (a, b) in gpu_result.centers.iter().zip(&ref_centers) {
            for d in 0..DIMS {
                assert!(
                    (f64::from(a[d]) - f64::from(b[d])).abs() < 1e-4,
                    "center mismatch"
                );
            }
        }
    }

    #[test]
    fn kmeans_converges_and_tracks_movement() {
        let points = generate_points(10_000, 4, 33);
        let init = initial_centers(4, 34);
        let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
        let result = run_kmeans(&mut cluster, &points, init, 2048, 20, 1e-4).unwrap();
        assert!(result.iterations < 20, "should converge quickly");
        assert_eq!(result.movement.len(), result.iterations);
        // Movement decreases (allowing small non-monotonic wiggles early).
        assert!(result.movement.last().unwrap() < &1e-4);
        assert!(result.total_time.as_secs() > 0.0);
    }

    #[test]
    fn resident_iterations_are_cheaper_than_uploading_ones() {
        // The old driver re-charged the full point upload every iteration.
        // Under the round driver, iterations after the first quiet fitting
        // round skip the upload, so iteration 2+ must cost less than
        // iteration 1 — while still costing more than zero (map, sort,
        // reduce, and the center broadcast are all still charged).
        // Chunks big enough that the upload is on the critical path (at
        // 2048-point chunks the transfer hides entirely behind compute
        // and the saving would be invisible).
        let points = generate_points(400_000, 4, 35);
        let init = initial_centers(4, 36);
        let mut c1 = Cluster::accelerator(2, GpuSpec::gt200());
        let one = run_kmeans(&mut c1, &points, init.clone(), 100_000, 1, 0.0).unwrap();
        let mut c2 = Cluster::accelerator(2, GpuSpec::gt200());
        let three = run_kmeans(&mut c2, &points, init, 100_000, 3, 0.0).unwrap();
        assert_eq!(one.iterations, 1);
        assert_eq!(three.iterations, 3);
        assert_eq!(one.resident_rounds, 0);
        assert_eq!(three.resident_rounds, 2);
        // Strictly more work than one round, strictly less than three
        // full-upload rounds.
        assert!(three.total_time.as_secs() > one.total_time.as_secs());
        assert!(three.total_time.as_secs() < 3.0 * one.total_time.as_secs());
    }

    #[test]
    fn resident_rounds_do_not_change_results() {
        // Residency is a performance property; the computed centers must
        // be identical to a run where every round re-uploads (tiny
        // chunks on a huge-memory device vs the same points flowing
        // through the reference loop).
        let points = generate_points(12_000, 5, 41);
        let init = initial_centers(5, 42);
        let mut cluster = Cluster::accelerator(4, GpuSpec::fermi());
        let result = run_kmeans(&mut cluster, &points, init.clone(), 1024, 8, 1e-6).unwrap();
        let (ref_centers, _) = reference_kmeans(&points, init, 8, 1e-6);
        for (a, b) in result.centers.iter().zip(&ref_centers) {
            for d in 0..DIMS {
                assert!((f64::from(a[d]) - f64::from(b[d])).abs() < 1e-4);
            }
        }
        assert!(result.resident_rounds > 0, "expected resident iterations");
    }
}
