//! Iterative MapReduce drivers.
//!
//! The paper's KMC benchmark runs a single iteration; a full K-Means is
//! "an iterative process; the MapReduce results are new cluster centers,
//! and a full implementation repeats a fixed number of times or until
//! convergence" (§5.3.4). This driver runs that loop — one GPMR job per
//! iteration, with the updated centers broadcast to every rank between
//! iterations (the i-MapReduce-style streaming composition the paper's
//! related-work section discusses).

use gpmr_core::{run_job, EngineResult, SliceChunk};
use gpmr_sim_gpu::{SimDuration, SimTime};
use gpmr_sim_net::{broadcast, Cluster};

use crate::kmc::{centers_from_sums, sums_from_output, KmcJob, Point, DIMS};

/// Result of an iterative K-Means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// Final cluster centers.
    pub centers: Vec<Point>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Total simulated time (jobs + inter-iteration center broadcasts).
    pub total_time: SimDuration,
    /// Total center movement at each iteration (convergence history).
    pub movement: Vec<f64>,
}

/// Euclidean movement between two center sets.
fn total_movement(a: &[Point], b: &[Point]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            (0..DIMS)
                .map(|d| (f64::from(x[d]) - f64::from(y[d])).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .sum()
}

/// Run K-Means to convergence (center movement below `tolerance`) or for
/// `max_iterations`, whichever comes first. Chunks are built once and
/// reused every iteration, as a real deployment would keep its input
/// resident in node memory.
pub fn run_kmeans(
    cluster: &mut Cluster,
    points: &[Point],
    initial_centers: Vec<Point>,
    chunk_points: usize,
    max_iterations: usize,
    tolerance: f64,
) -> EngineResult<KmeansResult> {
    let chunks = SliceChunk::split(points, chunk_points.max(1));
    let mut centers = initial_centers;
    let mut total_time = SimDuration::ZERO;
    let mut movement = Vec::new();

    for iter in 0..max_iterations {
        let job = KmcJob::new(centers.clone());
        let result = run_job(cluster, &job, chunks.clone())?;
        total_time += result.timings.total;

        let sums = sums_from_output(centers.len(), &result.into_merged_output());
        let updated = centers_from_sums(&centers, &sums);

        // Broadcast the updated centers to every rank for the next
        // iteration (the job result lands on the partition owners; the
        // mappers everywhere need the full center set).
        let center_bytes = (centers.len() * DIMS * 4) as u64;
        let ready = broadcast(cluster.fabric(), 0, SimTime::ZERO, center_bytes);
        let bcast_end = ready.into_iter().fold(SimTime::ZERO, SimTime::max);
        total_time += bcast_end.since(SimTime::ZERO);

        let moved = total_movement(&centers, &updated);
        movement.push(moved);
        centers = updated;
        if moved < tolerance {
            return Ok(KmeansResult {
                centers,
                iterations: iter + 1,
                total_time,
                movement,
            });
        }
    }
    Ok(KmeansResult {
        centers,
        iterations: max_iterations,
        total_time,
        movement,
    })
}

/// Sequential reference K-Means (same update rule) for verification.
pub fn reference_kmeans(
    points: &[Point],
    initial_centers: Vec<Point>,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<Point>, usize) {
    let mut centers = initial_centers;
    for iter in 0..max_iterations {
        let sums = crate::kmc::cpu_reference(&centers, points);
        let updated = centers_from_sums(&centers, &sums);
        let moved = total_movement(&centers, &updated);
        centers = updated;
        if moved < tolerance {
            return (centers, iter + 1);
        }
    }
    (centers, max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmc::{generate_points, initial_centers};
    use gpmr_sim_gpu::GpuSpec;

    #[test]
    fn iterative_kmeans_matches_sequential_reference() {
        let points = generate_points(20_000, 6, 31);
        let init = initial_centers(6, 32);
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let gpu_result = run_kmeans(&mut cluster, &points, init.clone(), 4096, 10, 1e-6).unwrap();
        let (ref_centers, ref_iters) = reference_kmeans(&points, init, 10, 1e-6);

        assert_eq!(gpu_result.iterations, ref_iters);
        for (a, b) in gpu_result.centers.iter().zip(&ref_centers) {
            for d in 0..DIMS {
                assert!(
                    (f64::from(a[d]) - f64::from(b[d])).abs() < 1e-4,
                    "center mismatch"
                );
            }
        }
    }

    #[test]
    fn kmeans_converges_and_tracks_movement() {
        let points = generate_points(10_000, 4, 33);
        let init = initial_centers(4, 34);
        let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
        let result = run_kmeans(&mut cluster, &points, init, 2048, 20, 1e-4).unwrap();
        assert!(result.iterations < 20, "should converge quickly");
        assert_eq!(result.movement.len(), result.iterations);
        // Movement decreases (allowing small non-monotonic wiggles early).
        assert!(result.movement.last().unwrap() < &1e-4);
        assert!(result.total_time.as_secs() > 0.0);
    }

    #[test]
    fn more_iterations_cost_more_time() {
        let points = generate_points(8_000, 4, 35);
        let init = initial_centers(4, 36);
        let mut c1 = Cluster::accelerator(2, GpuSpec::gt200());
        let one = run_kmeans(&mut c1, &points, init.clone(), 2048, 1, 0.0).unwrap();
        let mut c2 = Cluster::accelerator(2, GpuSpec::gt200());
        let three = run_kmeans(&mut c2, &points, init, 2048, 3, 0.0).unwrap();
        assert_eq!(one.iterations, 1);
        assert_eq!(three.iterations, 3);
        assert!(three.total_time.as_secs() > 2.0 * one.total_time.as_secs());
    }
}
