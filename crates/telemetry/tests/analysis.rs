//! Edge-case and property tests for the summary/analysis layer:
//! degenerate recordings (no spans, one track, zero-duration spans) must
//! produce well-formed reports, and the union-based per-track activity
//! accounting must never attribute more busy time than wall time.

use gpmr_telemetry::analyze::analyze;
use gpmr_telemetry::export::summary_report;
use gpmr_telemetry::metrics::MetricsSnapshot;
use gpmr_telemetry::span::{SpanRecord, SpanRecorder};
use gpmr_telemetry::TelemetrySnapshot;
use proptest::prelude::*;

fn span(track: u32, kind: &str, start: f64, end: f64) -> SpanRecord {
    SpanRecord {
        id: 0,
        parent: None,
        track,
        kind: kind.into(),
        name: kind.into(),
        start_s: start,
        end_s: end,
        attrs: vec![],
    }
}

fn snap_of(spans: Vec<SpanRecord>) -> TelemetrySnapshot {
    let rec = SpanRecorder::new(4096);
    for s in spans {
        rec.record(s);
    }
    rec.snapshot(MetricsSnapshot::default())
}

#[test]
fn zero_span_recorder_yields_empty_reports() {
    let snap = snap_of(vec![]);
    let report = summary_report(&snap, &["Chunk"]);
    assert_eq!(report.end_s, 0.0);
    assert!(report.tracks.is_empty());
    assert!(report.render_text().contains("span summary"));

    let a = analyze(&snap);
    assert_eq!(a.makespan_s, 0.0);
    assert!(a.critical_path.is_empty());
    assert!(a.ranks.is_empty());
    assert!(a.findings.is_empty());
    // Rendering a degenerate analysis must not panic or divide by zero.
    assert!(a.render_text().contains("makespan = 0.000000s"));
}

#[test]
fn single_track_job_summarizes_and_analyzes() {
    let snap = snap_of(vec![
        span(0, "Upload", 0.0, 1.0),
        span(0, "Map", 1.0, 3.0),
        span(0, "Sort", 3.0, 4.0),
    ]);
    let report = summary_report(&snap, &[]);
    assert_eq!(report.tracks.len(), 1);
    let t = &report.tracks[0];
    assert!((t.utilization - 1.0).abs() < 1e-12, "{}", t.utilization);
    assert_eq!(t.busy_by_kind.len(), 3);

    let a = analyze(&snap);
    assert_eq!(a.ranks.len(), 1);
    assert!((a.ranks[0].busy_s - 4.0).abs() < 1e-12);
    // One rank can never be a straggler relative to itself.
    assert!(a
        .findings
        .iter()
        .all(|f| !f.code().starts_with("Straggler")));
}

#[test]
fn identical_start_and_end_spans_are_harmless() {
    // Zero-duration spans (instant events) plus a real one.
    let snap = snap_of(vec![
        span(0, "Requeue", 1.0, 1.0),
        span(0, "Requeue", 1.0, 1.0),
        span(0, "Map", 0.0, 2.0),
    ]);
    let report = summary_report(&snap, &[]);
    assert!((report.tracks[0].utilization - 1.0).abs() < 1e-12);

    let a = analyze(&snap);
    assert_eq!(a.makespan_s, 2.0);
    assert!((a.ranks[0].busy_s - 2.0).abs() < 1e-12);
    assert_eq!(a.ranks[0].blocked_s, 0.0);
    let total: f64 = a.critical_path.iter().map(|s| s.contribution_s).sum();
    assert!((total - a.makespan_s).abs() < 1e-12);
}

#[test]
fn all_zero_duration_spans_do_not_blow_up() {
    let snap = snap_of(vec![span(0, "Map", 1.0, 1.0), span(1, "Sort", 1.0, 1.0)]);
    let report = summary_report(&snap, &[]);
    assert_eq!(report.end_s, 1.0);
    for t in &report.tracks {
        assert_eq!(t.utilization, 0.0);
    }
    let a = analyze(&snap);
    assert_eq!(a.makespan_s, 1.0);
    for r in &a.ranks {
        assert_eq!(r.busy_s, 0.0);
        assert!((r.idle_s - 1.0).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union-based activity accounting: per-track busy time never exceeds
    /// wall time, and busy + blocked + idle tiles the makespan exactly,
    /// for arbitrary (possibly overlapping, possibly zero-length) spans.
    #[test]
    fn per_track_busy_never_exceeds_wall_time(
        raw in prop::collection::vec(
            (0u32..4, 0usize..6, 0.0f64..10.0, 0.0f64..5.0),
            1..40,
        )
    ) {
        const KINDS: [&str; 6] = ["Upload", "Map", "Send", "Sort", "Reduce", "Stall"];
        let spans: Vec<SpanRecord> = raw
            .iter()
            .map(|&(track, kind, start, len)| span(track, KINDS[kind], start, start + len))
            .collect();
        let a = analyze(&snap_of(spans));
        prop_assert!(a.makespan_s >= 0.0);
        for r in &a.ranks {
            prop_assert!(
                r.busy_s <= a.makespan_s + 1e-9,
                "track {}: busy {} > makespan {}",
                r.track, r.busy_s, a.makespan_s
            );
            prop_assert!(r.busy_s >= 0.0 && r.blocked_s >= 0.0 && r.idle_s >= 0.0);
            let tiled = r.busy_s + r.blocked_s + r.idle_s;
            prop_assert!(
                (tiled - a.makespan_s).abs() < 1e-9,
                "track {}: busy+blocked+idle = {} != makespan {}",
                r.track, tiled, a.makespan_s
            );
        }
        // The critical path always tiles the makespan.
        let total: f64 = a.critical_path.iter().map(|s| s.contribution_s).sum();
        prop_assert!((total - a.makespan_s).abs() < 1e-9 * a.makespan_s.max(1.0));
    }
}
