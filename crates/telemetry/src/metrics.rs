//! A lock-cheap metrics registry: named counters, gauges, and fixed-bucket
//! histograms with typed handles.
//!
//! Registration (name lookup) takes a mutex; *updates* are plain atomic
//! operations on a shared cell, so callers cache handles once and update
//! them from hot paths. Disabled handles (`Counter::noop()` and friends)
//! are a single branch per update, which is what makes whole-subsystem
//! off-switching near-free.
//!
//! [`Registry::snapshot`] captures every metric into a [`MetricsSnapshot`]
//! that supports [`MetricsSnapshot::diff`] (per-interval deltas), a stable
//! text render, and a stable JSON render.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Value;

/// Atomically add `v` to an `f64` stored as bits in an [`AtomicU64`].
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Atomically raise an `f64` stored as bits to at least `v`.
fn f64_fetch_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing integer metric handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update (disabled telemetry).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (zero for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value (or high-water) floating-point metric handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update (disabled telemetry).
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the value to at least `v` (high-water tracking).
    pub fn set_max(&self, v: f64) {
        if let Some(c) = &self.0 {
            f64_fetch_max(c, v);
        }
    }

    /// Add `v` to the value.
    pub fn add(&self, v: f64) {
        if let Some(c) = &self.0 {
            f64_fetch_add(c, v);
        }
    }

    /// Current value (zero for no-op handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramState {
    /// Upper bucket bounds (inclusive), strictly increasing. A final
    /// implicit `+inf` bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits.
    sum: AtomicU64,
}

/// A fixed-bucket histogram metric handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramState>>);

impl Histogram {
    /// A handle that ignores every update (disabled telemetry).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|&b| b < v);
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            f64_fetch_add(&h.sum, v);
        }
    }

    /// Number of observations so far (zero for no-op handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct RegState {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramState>>,
}

/// A named collection of metrics. Cloning shares the underlying storage
/// (the registry is a handle).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    state: Arc<Mutex<RegState>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut st = self.state.lock().unwrap();
        let cell = st
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(cell.clone()))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut st = self.state.lock().unwrap();
        let cell = st
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())));
        Gauge(Some(cell.clone()))
    }

    /// Get or create the histogram named `name` with the given inclusive
    /// upper bucket `bounds` (an overflow bucket is added automatically).
    /// Bounds are fixed by the first registration; later callers receive
    /// the existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut st = self.state.lock().unwrap();
        let cell = st.histograms.entry(name.to_string()).or_insert_with(|| {
            Arc::new(HistogramState {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0.0f64.to_bits()),
            })
        });
        Histogram(Some(cell.clone()))
    }

    /// Capture the current value of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock().unwrap();
        MetricsSnapshot {
            counters: st
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: st
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: f64::from_bits(h.sum.load(Ordering::Relaxed)),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Point-in-time capture of one histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile with linear interpolation inside the bucket
    /// the target rank lands in (Prometheus convention: the first bucket
    /// interpolates up from zero, or from its bound when that is negative).
    ///
    /// Returns `None` for an empty histogram or a non-finite `q`; `q` is
    /// otherwise clamped to `[0, 1]`. A rank landing in the overflow
    /// bucket clamps to the last finite bound (there is no upper edge to
    /// interpolate toward); a histogram with no finite buckets at all
    /// falls back to the mean, which is exact when every observation is
    /// identical.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !q.is_finite() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0.0f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cum;
            cum += c as f64;
            if cum < target {
                continue;
            }
            if i == self.bounds.len() {
                // Overflow bucket: clamp rather than extrapolate.
                return Some(match self.bounds.last() {
                    Some(&b) => b,
                    None => self.mean(),
                });
            }
            let lo = if i == 0 {
                self.bounds[0].min(0.0)
            } else {
                self.bounds[i - 1]
            };
            let hi = self.bounds[i];
            let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
            return Some(lo + (hi - lo) * frac);
        }
        // Float rounding pushed `target` past the final cumulative count;
        // clamp to the top of the distribution.
        Some(match self.bounds.last() {
            Some(&b) => b,
            None => self.mean(),
        })
    }

    /// Fold another capture into this one (windowed time series merge
    /// bucket rings this way). An empty receiver adopts `other` wholesale;
    /// matching bounds add per-bucket counts; mismatched bounds (distinct
    /// series mixed by the caller) merge only the totals, keeping `mean`
    /// meaningful while dropping per-bucket resolution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 && self.bounds.is_empty() {
            *self = other.clone();
            return;
        }
        if self.bounds == other.bounds {
            for (c, &oc) in self.counts.iter_mut().zip(&other.counts) {
                *c += oc;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Point-in-time capture of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram captures by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, zero when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The change from `earlier` to `self`: counters and histogram counts
    /// are subtracted (saturating, so a restarted registry never yields
    /// negative deltas); gauges keep the later value.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Some(e) = earlier.histograms.get(k) {
                    if e.bounds == h.bounds {
                        for (c, &ec) in h.counts.iter_mut().zip(&e.counts) {
                            *c = c.saturating_sub(ec);
                        }
                        h.count = h.count.saturating_sub(e.count);
                        // Like the counts: a restarted registry (or a NaN
                        // that leaked into a sum) must not produce a
                        // nonsensical negative interval.
                        let d = h.sum - e.sum;
                        h.sum = if d.is_finite() { d.max(0.0) } else { 0.0 };
                    }
                }
                (k.clone(), h)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Stable, human-readable text render (one metric per line, sorted by
    /// name).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} = count {}, mean {:.3}, buckets {:?}\n",
                h.count,
                h.mean(),
                h.counts
            ));
        }
        out
    }

    /// Stable JSON render (object keys sorted by metric name).
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// The snapshot as a JSON [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Num(v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            (
                                "bounds".into(),
                                Value::Arr(h.bounds.iter().map(|&b| Value::Num(b)).collect()),
                            ),
                            (
                                "counts".into(),
                                Value::Arr(
                                    h.counts.iter().map(|&c| Value::Num(c as f64)).collect(),
                                ),
                            ),
                            ("count".into(), Value::Num(h.count as f64)),
                            ("sum".into(), Value::Num(h.sum)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_storage() {
        let reg = Registry::new();
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("jobs"), 5);
    }

    #[test]
    fn noop_handles_ignore_everything() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9.0);
        g.set_max(100.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let reg = Registry::new();
        let g = reg.gauge("peak");
        g.set_max(3.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 3.0);
        g.set_max(7.5);
        assert_eq!(g.get(), 7.5);
        g.add(0.5);
        assert_eq!(g.get(), 8.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("bytes", &[10.0, 100.0]);
        for v in [1.0, 10.0, 11.0, 99.0, 1000.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["bytes"];
        assert_eq!(hs.counts, vec![2, 2, 1]); // <=10, <=100, overflow
        assert_eq!(hs.count, 5);
        assert!((hs.mean() - 1121.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let reg = Registry::new();
        let c = reg.counter("sends");
        let h = reg.histogram("lat", &[1.0]);
        c.add(3);
        h.observe(0.5);
        let before = reg.snapshot();
        c.add(2);
        h.observe(2.0);
        let d = reg.snapshot().diff(&before);
        assert_eq!(d.counter("sends"), 2);
        assert_eq!(d.histograms["lat"].count, 1);
        assert_eq!(d.histograms["lat"].counts, vec![0, 1]);
    }

    #[test]
    fn diff_keeps_gauges_as_last_value_not_deltas() {
        // Regression: gauges are last-value, not monotonic. Diffing them
        // as deltas would report negative "drift" for any gauge that went
        // down between snapshots (queue depth, memory in use).
        let reg = Registry::new();
        let g = reg.gauge("service.queue_depth");
        g.set(7.0);
        let before = reg.snapshot();
        g.set(3.0);
        let d = reg.snapshot().diff(&before);
        assert_eq!(d.gauge("service.queue_depth"), 3.0, "last value, not -4");
        // A gauge that rose keeps its later value too.
        g.set(9.0);
        let d2 = reg.snapshot().diff(&before);
        assert_eq!(d2.gauge("service.queue_depth"), 9.0);
        // And the render never shows a negative delta for it.
        assert!(!d.render_text().contains("-4"));
    }

    #[test]
    fn diff_guards_histogram_sums_like_counts() {
        // A "later" snapshot from a restarted registry has smaller sums;
        // the interval must clamp to zero, not go negative.
        let old_reg = Registry::new();
        old_reg.histogram("lat", &[1.0]).observe(5.0);
        let earlier = old_reg.snapshot();
        let new_reg = Registry::new();
        new_reg.histogram("lat", &[1.0]).observe(0.5);
        let d = new_reg.snapshot().diff(&earlier);
        assert_eq!(d.histograms["lat"].count, 0);
        assert_eq!(d.histograms["lat"].sum, 0.0, "sum clamps like counts");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            h.observe(v);
        }
        let hs = reg.snapshot().histograms["lat"].clone();
        // Rank 2 of 4 lands at the top of the (1, 2] bucket's first half.
        let p50 = hs.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        let p100 = hs.quantile(1.0).unwrap();
        assert!((2.0..=4.0).contains(&p100), "p100 {p100}");
        // Quantiles are monotone in q.
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = hs.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: no quantile.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), None);

        // Non-finite q is guarded (the PR 9 span_ms NaN rule).
        let reg = Registry::new();
        let h = reg.histogram("one", &[10.0]);
        h.observe(5.0);
        let hs = reg.snapshot().histograms["one"].clone();
        assert_eq!(hs.quantile(f64::NAN), None);
        assert_eq!(hs.quantile(f64::INFINITY), None);
        // Out-of-range q clamps instead of failing.
        assert_eq!(hs.quantile(-3.0), hs.quantile(0.0));
        assert_eq!(hs.quantile(7.0), hs.quantile(1.0));

        // Single bucket: every quantile stays inside [0, bound].
        for q in [0.0, 0.5, 1.0] {
            let v = hs.quantile(q).unwrap();
            assert!((0.0..=10.0).contains(&v), "quantile({q}) = {v}");
        }

        // All values in the overflow bucket: clamp to the last bound.
        let reg2 = Registry::new();
        let h2 = reg2.histogram("over", &[1.0, 2.0]);
        h2.observe(100.0);
        h2.observe(200.0);
        let hs2 = reg2.snapshot().histograms["over"].clone();
        assert_eq!(hs2.quantile(0.5), Some(2.0));
        assert_eq!(hs2.quantile(1.0), Some(2.0));

        // No finite buckets at all: fall back to the mean (exact when all
        // observations are identical).
        let boundless = HistogramSnapshot {
            bounds: vec![],
            counts: vec![3],
            count: 3,
            sum: 21.0,
        };
        assert_eq!(boundless.quantile(0.5), Some(7.0));
    }

    #[test]
    fn merge_folds_counts_and_sums() {
        let reg = Registry::new();
        let h = reg.histogram("a", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let a = reg.snapshot().histograms["a"].clone();
        let reg2 = Registry::new();
        let h2 = reg2.histogram("a", &[1.0, 2.0]);
        h2.observe(1.5);
        h2.observe(5.0);
        let b = reg2.snapshot().histograms["a"].clone();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count, 4);
        assert_eq!(m.counts, vec![1, 2, 1]);
        assert!((m.sum - 8.5).abs() < 1e-12);
        // Merging into an empty snapshot adopts the other side.
        let mut fresh = HistogramSnapshot::default();
        fresh.merge(&b);
        assert_eq!(fresh, b);
        // Merging an empty snapshot is a no-op.
        let mut unchanged = a.clone();
        unchanged.merge(&HistogramSnapshot::default());
        assert_eq!(unchanged, a);
    }

    #[test]
    fn renders_are_stable_and_parseable() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(1.5);
        reg.histogram("h", &[1.0]).observe(0.5);
        let snap = reg.snapshot();
        let text = snap.render_text();
        // Sorted by name: "a" before "b".
        assert!(text.find("counter   a").unwrap() < text.find("counter   b").unwrap());
        let json = snap.to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(snap, snap.diff(&MetricsSnapshot::default()));
    }
}
