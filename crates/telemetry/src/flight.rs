//! Crash-scoped flight recorder: a small bounded ring of recent spans and
//! samples that is dumped as a Perfetto-valid postmortem trace when
//! something goes wrong (a missed deadline, a lost GPU, a cancel, an
//! alert firing).
//!
//! The recorder owns a bounded [`Telemetry`] ring; the host mirrors the
//! spans and samples it cares about into [`FlightRecorder::ring`] as it
//! emits them. On a trigger, [`FlightRecorder::dump`] snapshots the ring,
//! optionally splices in an engine-scoped snapshot of the triggering job
//! (offset onto the service clock and onto tracks past the service's
//! own), and renders a self-contained Perfetto JSON document. Dumps are
//! kept in firing order with stable sequence numbers so a run's
//! postmortem set is bit-identical across repeats.

use crate::export::to_perfetto_json;
use crate::span::TelemetrySnapshot;
use crate::Telemetry;

/// One postmortem dump: why it fired, what it covers, and the rendered
/// Perfetto document.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Dump sequence number within the recorder (starts at 1).
    pub seq: u64,
    /// Trigger, e.g. `"deadline-missed"`, `"gpu-lost"`, `"cancelled"`,
    /// `"alert:deep_queue"`.
    pub reason: String,
    /// The triggering subject — a job id like `"job3"` or an alert rule.
    pub subject: String,
    /// Virtual instant of the trigger.
    pub at_s: f64,
    /// The rendered Perfetto JSON trace.
    pub trace_json: String,
}

impl Postmortem {
    /// Stable on-disk file name, e.g.
    /// `postmortem-0001-deadline-missed-job3.json`.
    pub fn file_name(&self) -> String {
        format!(
            "postmortem-{:04}-{}-{}.json",
            self.seq,
            sanitize(&self.reason),
            sanitize(&self.subject)
        )
    }
}

fn sanitize(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('x');
    }
    out
}

/// Splice `extra` into `base`: span/sample times shift by
/// `time_offset_s`, tracks shift by `track_offset`, span ids are rebased
/// past `base`'s largest id (parents follow), and shifted track names are
/// prefixed with `label` so the merged trace reads unambiguously.
pub fn splice_snapshot(
    base: &mut TelemetrySnapshot,
    extra: &TelemetrySnapshot,
    time_offset_s: f64,
    track_offset: u32,
    label: &str,
) {
    let id_base = base.spans.iter().map(|s| s.id).max().unwrap_or(0);
    for s in &extra.spans {
        let mut s = s.clone();
        s.id += id_base;
        s.parent = s.parent.map(|p| p + id_base);
        s.track += track_offset;
        s.start_s += time_offset_s;
        s.end_s += time_offset_s;
        base.spans.push(s);
    }
    for c in &extra.samples {
        let mut c = c.clone();
        c.track += track_offset;
        c.ts_s += time_offset_s;
        base.samples.push(c);
    }
    for (&track, name) in &extra.tracks {
        let name = if label.is_empty() {
            name.clone()
        } else {
            format!("{label} {name}")
        };
        base.tracks.insert(track + track_offset, name);
    }
}

/// Bounded ring of recent telemetry plus the postmortems dumped from it.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Telemetry,
    dumps: Vec<Postmortem>,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder whose ring holds at most `capacity` spans (and as many
    /// samples).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Telemetry::with_capacity(capacity),
            dumps: Vec::new(),
            next_seq: 1,
        }
    }

    /// The ring to mirror spans and samples into. Cloning the handle is
    /// cheap and shares the same ring.
    pub fn ring(&self) -> &Telemetry {
        &self.ring
    }

    /// Postmortems dumped so far, in firing order.
    pub fn postmortems(&self) -> &[Postmortem] {
        &self.dumps
    }

    /// Snapshot the ring, optionally splice in an engine-scoped snapshot
    /// of the triggering job (`(snapshot, time_offset_s, track_offset)` —
    /// the engine records on its own zero-based clock and rank tracks),
    /// and keep the rendered Perfetto document as a [`Postmortem`].
    /// Every track used by a timed event is guaranteed a name, so the
    /// result always passes [`crate::export::validate_perfetto`].
    pub fn dump(
        &mut self,
        reason: &str,
        subject: &str,
        at_s: f64,
        engine: Option<(&TelemetrySnapshot, f64, u32)>,
    ) -> &Postmortem {
        let mut snap = self.ring.snapshot();
        if let Some((extra, time_offset_s, track_offset)) = engine {
            splice_snapshot(&mut snap, extra, time_offset_s, track_offset, subject);
        }
        // Name any track that carries events but was never named — the
        // validator (and Perfetto itself) wants a thread_name per tid.
        let used: Vec<u32> = snap
            .spans
            .iter()
            .map(|s| s.track)
            .chain(snap.samples.iter().map(|c| c.track))
            .collect();
        for track in used {
            snap.tracks
                .entry(track)
                .or_insert_with(|| format!("track {track}"));
        }
        let pm = Postmortem {
            seq: self.next_seq,
            reason: reason.to_string(),
            subject: subject.to_string(),
            at_s,
            trace_json: to_perfetto_json(&snap),
        };
        self.next_seq += 1;
        self.dumps.push(pm);
        self.dumps.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_perfetto;

    fn engine_snapshot() -> TelemetrySnapshot {
        let tel = Telemetry::enabled();
        tel.set_track_name(0, "rank 0");
        let parent = tel.reserve_span_id();
        tel.span(0, "Map", 0.0, 0.5).parent(parent).record();
        tel.span(0, "Chunk", 0.0, 0.5).id(parent).record();
        tel.sample(0, "queue_depth", 0.25, 2.0);
        tel.snapshot()
    }

    #[test]
    fn dump_is_perfetto_valid_and_contains_the_ring() {
        let mut fr = FlightRecorder::new(64);
        fr.ring().set_track_name(0, "tenant alice");
        fr.ring().span(0, "Job", 1.0, 2.0).name("job3 sio").record();
        let pm = fr.dump("deadline-missed", "job3", 2.0, None).clone();
        assert_eq!(pm.seq, 1);
        assert_eq!(pm.file_name(), "postmortem-0001-deadline-missed-job3.json");
        let stats = validate_perfetto(&pm.trace_json).expect("valid trace");
        assert_eq!(stats.complete_events, 1);
        assert!(pm.trace_json.contains("job3 sio"));
    }

    #[test]
    fn splice_offsets_time_tracks_and_ids() {
        let mut fr = FlightRecorder::new(64);
        fr.ring().set_track_name(0, "service");
        fr.ring().span(0, "QueueWait", 0.5, 1.5).record();
        let eng = engine_snapshot();
        let pm = fr
            .dump("gpu-lost", "job7", 1.5, Some((&eng, 1.5, 4)))
            .clone();
        let stats = validate_perfetto(&pm.trace_json).expect("valid trace");
        assert_eq!(stats.complete_events, 3);
        assert_eq!(stats.counter_events, 1);
        // Engine spans moved onto the service clock: 1.5 + 0.5 = 2.0s end.
        assert!((stats.end_ts_us - 2.0e6).abs() < 1e-6);
        assert!(pm.trace_json.contains("job7 rank 0"));
    }

    #[test]
    fn unnamed_tracks_are_named_before_render() {
        let mut fr = FlightRecorder::new(64);
        fr.ring().span(9, "Job", 0.0, 1.0).record();
        let pm = fr.dump("cancelled", "job1", 1.0, None).clone();
        validate_perfetto(&pm.trace_json).expect("auto-named track");
        assert!(pm.trace_json.contains("track 9"));
    }

    #[test]
    fn sequence_numbers_and_ring_bound() {
        let mut fr = FlightRecorder::new(2);
        fr.ring().set_track_name(0, "svc");
        for i in 0..5 {
            fr.ring().span(0, "Job", i as f64, i as f64 + 1.0).record();
        }
        let pm = fr.dump("alert:deep", "deep", 5.0, None).clone();
        assert_eq!(pm.seq, 1);
        let stats = validate_perfetto(&pm.trace_json).unwrap();
        assert_eq!(stats.complete_events, 2, "ring kept only the newest 2");
        fr.dump("cancelled", "job2", 6.0, None);
        assert_eq!(fr.postmortems().len(), 2);
        assert_eq!(fr.postmortems()[1].seq, 2);
        assert_eq!(sanitize("alert:deep queue!"), "alert-deep-queue-");
    }
}
