//! Structured spans: timed intervals on named tracks, with parents and
//! key=value attributes, recorded into a bounded ring buffer.
//!
//! A *track* is an integer lane spans are drawn on — one per GPU rank, one
//! per NIC, etc. Exporters map tracks to Perfetto threads. Span times are
//! simulated seconds (`f64`), matching the engine's `SimTime`, so traces
//! derived from spans are bit-identical to the values the engine computed.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use crate::metrics::MetricsSnapshot;

/// One recorded span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder (starts at 1; 0 means "no span").
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Track (lane) index — typically the GPU rank or a NIC lane.
    pub track: u32,
    /// Coarse category, e.g. `"Map"`, `"Upload"`, `"Chunk"`, `"NetSend"`.
    pub kind: String,
    /// Human-readable label (Perfetto slice name).
    pub name: String,
    /// Start time in simulated seconds.
    pub start_s: f64,
    /// End time in simulated seconds.
    pub end_s: f64,
    /// Additional key=value attributes.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Attribute value by key, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Span duration in simulated seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// One sample of a time-varying counter series (queue depth, occupancy...).
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSample {
    /// Track the sample belongs to.
    pub track: u32,
    /// Series name, e.g. `"queue_depth"`.
    pub series: String,
    /// Sample time in simulated seconds.
    pub ts_s: f64,
    /// Sample value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct RecorderState {
    spans: VecDeque<SpanRecord>,
    samples: VecDeque<CounterSample>,
    tracks: BTreeMap<u32, String>,
    next_id: u64,
    dropped_spans: u64,
    dropped_samples: u64,
}

/// Bounded ring-buffer recorder for spans and counter samples. When full,
/// the oldest records are dropped and counted, so a long run degrades to
/// "most recent window" rather than unbounded memory.
#[derive(Debug)]
pub struct SpanRecorder {
    state: Mutex<RecorderState>,
    capacity: usize,
}

impl SpanRecorder {
    /// A recorder holding at most `capacity` spans (and `capacity` samples).
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            state: Mutex::new(RecorderState {
                next_id: 1,
                ..RecorderState::default()
            }),
            capacity: capacity.max(1),
        }
    }

    /// Reserve a span id without recording anything yet (used for parents
    /// whose children are recorded first).
    pub fn reserve_id(&self) -> u64 {
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        id
    }

    /// Record a span with a fresh id; returns the id.
    pub fn record(&self, mut span: SpanRecord) -> u64 {
        let mut st = self.state.lock().unwrap();
        if span.id == 0 {
            span.id = st.next_id;
            st.next_id += 1;
        }
        let id = span.id;
        if st.spans.len() >= self.capacity {
            st.spans.pop_front();
            st.dropped_spans += 1;
        }
        st.spans.push_back(span);
        id
    }

    /// Record a counter sample.
    pub fn sample(&self, sample: CounterSample) {
        let mut st = self.state.lock().unwrap();
        if st.samples.len() >= self.capacity {
            st.samples.pop_front();
            st.dropped_samples += 1;
        }
        st.samples.push_back(sample);
    }

    /// Name a track (shown as the Perfetto thread name).
    pub fn set_track_name(&self, track: u32, name: &str) {
        let mut st = self.state.lock().unwrap();
        st.tracks.insert(track, name.to_string());
    }

    /// Copy out everything recorded so far, paired with `metrics`.
    pub fn snapshot(&self, metrics: MetricsSnapshot) -> TelemetrySnapshot {
        let st = self.state.lock().unwrap();
        TelemetrySnapshot {
            spans: st.spans.iter().cloned().collect(),
            samples: st.samples.iter().cloned().collect(),
            tracks: st.tracks.clone(),
            dropped_spans: st.dropped_spans,
            dropped_samples: st.dropped_samples,
            metrics,
        }
    }
}

/// A point-in-time copy of everything telemetry has recorded: spans,
/// counter samples, track names, drop counts, and a metrics snapshot.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Recorded spans, in record order.
    pub spans: Vec<SpanRecord>,
    /// Recorded counter samples, in record order.
    pub samples: Vec<CounterSample>,
    /// Track index → display name.
    pub tracks: BTreeMap<u32, String>,
    /// Spans evicted from the ring buffer before this snapshot.
    pub dropped_spans: u64,
    /// Samples evicted from the ring buffer before this snapshot.
    pub dropped_samples: u64,
    /// Metrics captured at the same moment.
    pub metrics: MetricsSnapshot,
}

impl TelemetrySnapshot {
    /// Spans on `track`, in record order.
    pub fn spans_on(&self, track: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Spans of the given kind, in record order.
    pub fn spans_of(&self, kind: &str) -> impl Iterator<Item = &SpanRecord> + '_ {
        let kind = kind.to_string();
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Latest end time across all spans and samples (simulated seconds).
    pub fn end_s(&self) -> f64 {
        let span_end = self.spans.iter().map(|s| s.end_s).fold(0.0, f64::max);
        let sample_end = self.samples.iter().map(|s| s.ts_s).fold(0.0, f64::max);
        span_end.max(sample_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u32, kind: &str, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            id: 0,
            parent: None,
            track,
            kind: kind.into(),
            name: kind.into(),
            start_s: start,
            end_s: end,
            attrs: vec![],
        }
    }

    #[test]
    fn ids_are_sequential_and_reservable() {
        let rec = SpanRecorder::new(16);
        let a = rec.record(span(0, "Map", 0.0, 1.0));
        let reserved = rec.reserve_id();
        let b = rec.record(span(0, "Sort", 1.0, 2.0));
        assert_eq!(a, 1);
        assert_eq!(reserved, 2);
        assert_eq!(b, 3);
        let mut parent = span(0, "Chunk", 0.0, 2.0);
        parent.id = reserved;
        rec.record(parent);
        let snap = rec.snapshot(MetricsSnapshot::default());
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[2].id, reserved);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let rec = SpanRecorder::new(2);
        for i in 0..5 {
            rec.record(span(0, "Map", i as f64, i as f64 + 1.0));
        }
        let snap = rec.snapshot(MetricsSnapshot::default());
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 3);
        assert_eq!(snap.spans[0].start_s, 3.0);
    }

    #[test]
    fn snapshot_filters_and_end_time() {
        let rec = SpanRecorder::new(16);
        rec.set_track_name(0, "rank 0");
        rec.set_track_name(1, "rank 1");
        rec.record(span(0, "Map", 0.0, 1.5));
        rec.record(span(1, "Map", 0.0, 2.5));
        rec.record(span(0, "Sort", 1.5, 2.0));
        rec.sample(CounterSample {
            track: 0,
            series: "queue_depth".into(),
            ts_s: 3.0,
            value: 4.0,
        });
        let snap = rec.snapshot(MetricsSnapshot::default());
        assert_eq!(snap.spans_on(0).count(), 2);
        assert_eq!(snap.spans_of("Map").count(), 2);
        assert_eq!(snap.end_s(), 3.0);
        assert_eq!(snap.tracks[&1], "rank 1");
    }

    #[test]
    fn attrs_lookup() {
        let mut s = span(0, "Upload", 0.0, 1.0);
        s.attrs.push(("chunk".into(), "7".into()));
        assert_eq!(s.attr("chunk"), Some("7"));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.duration_s(), 1.0);
    }
}
