//! Declarative alert rules over windowed time series, evaluated
//! deterministically at event boundaries.
//!
//! A rule names a quantity derived from a [`TimeSeriesStore`] — a
//! windowed rate, sum, last value, quantile, or the ratio of two
//! windowed sums (burn-rate rules are ratios: misses over finishes
//! against the error-budget allowance) — plus a comparison and an
//! optional hold time. The [`AlertEngine`] is fed the virtual clock at
//! every event boundary; a rule whose condition has held continuously
//! for `for_s` seconds fires exactly once per breach episode, emitting a
//! typed [`Alert`] that converts into the PR 4 findings vocabulary via
//! [`Alert::to_finding`].
//!
//! Rules have a compact text form for CLI flags and config files:
//!
//! ```text
//! deep_queue:  last(service.queue_depth) > 3
//! slow_p99:    p99(service.queue_wait_s) > 0.004 for 0.001
//! miss_burn:   ratio(service.deadline_missed, service.jobs_finished) > 0.05
//! stalled:     rate(service.jobs_completed) < 100
//! ```

use std::fmt;

use crate::analyze::Finding;
use crate::json::Value;
use crate::timeseries::TimeSeriesStore;

/// The windowed quantity a rule compares.
#[derive(Clone, Debug, PartialEq)]
pub enum Source {
    /// Windowed per-second rate of `series`.
    Rate(String),
    /// Windowed sum of `series`.
    Sum(String),
    /// Last recorded value of `series`.
    Last(String),
    /// Windowed `q`-quantile of histogram `series`.
    Quantile(String, f64),
    /// `window_sum(num) / window_sum(den)`; zero when the denominator is
    /// zero (no traffic burns no budget).
    Ratio(String, String),
}

impl Source {
    fn value(&self, ts: &TimeSeriesStore, t: f64) -> f64 {
        match self {
            Source::Rate(s) => ts.rate(s, t),
            Source::Sum(s) => ts.sum(s, t),
            Source::Last(s) => ts.last(s),
            Source::Quantile(s, q) => ts.quantile(s, *q, t).unwrap_or(0.0),
            Source::Ratio(num, den) => {
                let d = ts.sum(den, t);
                if d > 0.0 {
                    ts.sum(num, t) / d
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Rate(s) => write!(f, "rate({s})"),
            Source::Sum(s) => write!(f, "sum({s})"),
            Source::Last(s) => write!(f, "last({s})"),
            Source::Quantile(s, q) => write!(f, "p{}({s})", (q * 100.0).round() as u32),
            Source::Ratio(a, b) => write!(f, "ratio({a}, {b})"),
        }
    }
}

/// Which side of the threshold breaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Breach when the value exceeds the threshold.
    Above,
    /// Breach when the value drops below the threshold.
    Below,
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// Rule name (stable; keys the firing state and the emitted alerts).
    pub name: String,
    /// The quantity compared.
    pub source: Source,
    /// Breach direction.
    pub op: Op,
    /// The threshold compared against.
    pub threshold: f64,
    /// Seconds the breach must hold before the rule fires (0 = fire at
    /// the first breached evaluation).
    pub for_s: f64,
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Above => '>',
            Op::Below => '<',
        };
        write!(f, "{}: {} {op} {}", self.name, self.source, self.threshold)?;
        if self.for_s > 0.0 {
            write!(f, " for {}", self.for_s)?;
        }
        Ok(())
    }
}

impl AlertRule {
    /// Parse the compact text form:
    /// `name: fn(series[, series]) (>|<) threshold [for seconds]` where
    /// `fn` is `rate`, `sum`, `last`, `ratio`, or `pNN` (a percentile,
    /// e.g. `p99`).
    pub fn parse(text: &str) -> Result<AlertRule, String> {
        let (name, rest) = text
            .split_once(':')
            .ok_or_else(|| format!("alert rule needs 'name: expr', got {text:?}"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err("alert rule name is empty".into());
        }
        let rest = rest.trim();
        let open = rest
            .find('(')
            .ok_or_else(|| format!("expected fn(series) in {rest:?}"))?;
        let close = rest
            .find(')')
            .filter(|&c| c > open)
            .ok_or_else(|| format!("unclosed '(' in {rest:?}"))?;
        let func = rest[..open].trim();
        let args: Vec<&str> = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let one = |args: &[&str]| -> Result<String, String> {
            match args {
                [a] => Ok((*a).to_string()),
                _ => Err(format!("{func} takes exactly one series")),
            }
        };
        let source = match func {
            "rate" => Source::Rate(one(&args)?),
            "sum" => Source::Sum(one(&args)?),
            "last" => Source::Last(one(&args)?),
            "ratio" => match args.as_slice() {
                [a, b] => Source::Ratio((*a).to_string(), (*b).to_string()),
                _ => return Err("ratio takes two series".into()),
            },
            p if p.starts_with('p') => {
                let pct: f64 = p[1..]
                    .parse()
                    .map_err(|_| format!("bad percentile {p:?}"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("percentile {pct} outside 0..=100"));
                }
                Source::Quantile(one(&args)?, pct / 100.0)
            }
            other => return Err(format!("unknown alert fn {other:?}")),
        };
        let tail: Vec<&str> = rest[close + 1..].split_whitespace().collect();
        let (op, rest_tail) = match tail.split_first() {
            Some((&">", r)) => (Op::Above, r),
            Some((&"<", r)) => (Op::Below, r),
            _ => return Err(format!("expected '>' or '<' after the source in {text:?}")),
        };
        let (threshold, rest_tail) = match rest_tail.split_first() {
            Some((v, r)) => (
                v.parse::<f64>()
                    .map_err(|_| format!("bad threshold {v:?}"))?,
                r,
            ),
            None => return Err("missing threshold".into()),
        };
        let for_s = match rest_tail {
            [] => 0.0,
            ["for", v] => v.parse().map_err(|_| format!("bad hold time {v:?}"))?,
            other => return Err(format!("trailing tokens {other:?}")),
        };
        Ok(AlertRule {
            name: name.to_string(),
            source,
            op,
            threshold,
            for_s,
        })
    }

    /// Parse a `;`-separated list of rules (the CLI flag form). Empty
    /// segments are ignored.
    pub fn parse_list(text: &str) -> Result<Vec<AlertRule>, String> {
        text.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(AlertRule::parse)
            .collect()
    }
}

/// One fired alert: the rule, the instant it fired, and the evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Name of the rule that fired.
    pub rule: String,
    /// Virtual instant the rule fired.
    pub at_s: f64,
    /// The breaching value at that instant.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Rendered rule text (self-describing reports).
    pub detail: String,
}

impl Alert {
    /// Convert into the findings vocabulary of [`crate::analyze`].
    pub fn to_finding(&self) -> Finding {
        Finding::Alert {
            rule: self.rule.clone(),
            at_s: self.at_s,
            value: self.value,
            threshold: self.threshold,
        }
    }

    /// Stable JSON form.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("rule".into(), Value::str(self.rule.clone())),
            ("at_s".into(), Value::Num(self.at_s)),
            ("value".into(), Value::Num(self.value)),
            ("threshold".into(), Value::Num(self.threshold)),
            ("detail".into(), Value::str(self.detail.clone())),
        ])
    }
}

/// Evaluates a rule set against a [`TimeSeriesStore`] at event
/// boundaries, tracking per-rule breach episodes.
#[derive(Clone, Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Per-rule state, aligned with `rules`: when the current breach
    /// episode started (`None` when not breaching), and whether that
    /// episode already fired.
    state: Vec<(Option<f64>, bool)>,
    fired: Vec<Alert>,
}

impl AlertEngine {
    /// An engine evaluating `rules`.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let state = vec![(None, false); rules.len()];
        AlertEngine {
            rules,
            state,
            fired: Vec::new(),
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Every alert fired so far, in firing order.
    pub fn fired(&self) -> &[Alert] {
        &self.fired
    }

    /// Evaluate every rule at virtual instant `t`; returns the alerts
    /// newly fired by this evaluation. A rule fires once per breach
    /// episode, after the breach has held for its `for_s`.
    pub fn eval(&mut self, t: f64, ts: &TimeSeriesStore) -> Vec<Alert> {
        let mut new = Vec::new();
        for (rule, (since, episode_fired)) in self.rules.iter().zip(self.state.iter_mut()) {
            let value = rule.source.value(ts, t);
            let breached = match rule.op {
                Op::Above => value > rule.threshold,
                Op::Below => value < rule.threshold,
            };
            if !breached {
                *since = None;
                *episode_fired = false;
                continue;
            }
            let start = *since.get_or_insert(t);
            if !*episode_fired && t - start >= rule.for_s {
                *episode_fired = true;
                new.push(Alert {
                    rule: rule.name.clone(),
                    at_s: t,
                    value,
                    threshold: rule.threshold,
                    detail: rule.to_string(),
                });
            }
        }
        self.fired.extend(new.iter().cloned());
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_source_form() {
        let r = AlertRule::parse("deep: last(service.queue_depth) > 3").unwrap();
        assert_eq!(r.name, "deep");
        assert_eq!(r.source, Source::Last("service.queue_depth".into()));
        assert_eq!(r.op, Op::Above);
        assert_eq!(r.threshold, 3.0);
        assert_eq!(r.for_s, 0.0);

        let r = AlertRule::parse("slow: p99(wait) > 0.004 for 0.001").unwrap();
        assert_eq!(r.source, Source::Quantile("wait".into(), 0.99));
        assert_eq!(r.for_s, 0.001);

        let r = AlertRule::parse("burn: ratio(miss, done) > 0.05").unwrap();
        assert_eq!(r.source, Source::Ratio("miss".into(), "done".into()));

        let r = AlertRule::parse("idle: rate(service.jobs_completed) < 10").unwrap();
        assert_eq!(r.op, Op::Below);

        assert_eq!(AlertRule::parse("sumy: sum(x) > 1").unwrap().source, {
            Source::Sum("x".into())
        });

        // Round-trip through Display.
        let text = "slow: p99(wait) > 0.004 for 0.001";
        assert_eq!(AlertRule::parse(text).unwrap().to_string(), text);
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "no-colon-here",
            ": last(x) > 1",
            "a: nosuch(x) > 1",
            "a: last(x) >= 1",
            "a: last(x) > banana",
            "a: ratio(x) > 1",
            "a: p200(x) > 1",
            "a: last(x) > 1 for",
            "a: last(x > 1",
        ] {
            assert!(AlertRule::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(
            AlertRule::parse_list("a: last(x) > 1; ; b: sum(y) < 2")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn fires_once_per_breach_episode() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        let mut eng = AlertEngine::new(vec![AlertRule::parse("deep: last(q) > 2").unwrap()]);
        ts.record_gauge("q", 0.1, 1.0);
        assert!(eng.eval(0.1, &ts).is_empty());
        ts.record_gauge("q", 0.2, 5.0);
        let fired = eng.eval(0.2, &ts);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "deep");
        assert_eq!(fired[0].value, 5.0);
        // Still breached: no re-fire within the same episode.
        assert!(eng.eval(0.3, &ts).is_empty());
        // Clears, then breaches again: a new episode fires.
        ts.record_gauge("q", 0.4, 0.0);
        assert!(eng.eval(0.4, &ts).is_empty());
        ts.record_gauge("q", 0.5, 9.0);
        assert_eq!(eng.eval(0.5, &ts).len(), 1);
        assert_eq!(eng.fired().len(), 2);
    }

    #[test]
    fn hold_time_delays_firing() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        let mut eng =
            AlertEngine::new(vec![AlertRule::parse("deep: last(q) > 2 for 0.5").unwrap()]);
        ts.record_gauge("q", 0.0, 5.0);
        assert!(eng.eval(0.0, &ts).is_empty(), "breach just started");
        assert!(eng.eval(0.3, &ts).is_empty(), "held 0.3 < 0.5");
        let fired = eng.eval(0.6, &ts);
        assert_eq!(fired.len(), 1, "held 0.6 >= 0.5");
        // A dip resets the episode clock.
        ts.record_gauge("q", 0.7, 0.0);
        eng.eval(0.7, &ts);
        ts.record_gauge("q", 0.8, 5.0);
        assert!(eng.eval(0.8, &ts).is_empty());
        assert!(eng.eval(1.0, &ts).is_empty(), "only held 0.2");
    }

    #[test]
    fn ratio_with_zero_denominator_is_quiet() {
        let ts = TimeSeriesStore::new(1.0, 10);
        let mut eng = AlertEngine::new(vec![AlertRule::parse("burn: ratio(a, b) > 0.1").unwrap()]);
        assert!(eng.eval(0.1, &ts).is_empty(), "no traffic, no burn");
    }

    #[test]
    fn alerts_convert_to_findings() {
        let a = Alert {
            rule: "deep".into(),
            at_s: 0.25,
            value: 5.0,
            threshold: 2.0,
            detail: "deep: last(q) > 2".into(),
        };
        let f = a.to_finding();
        assert_eq!(f.code(), "Alert(deep)");
        assert!(f.describe().contains("5"));
        let v = a.to_value();
        assert_eq!(v.get("rule").and_then(Value::as_str), Some("deep"));
    }
}
