//! Observability for the GPMR simulator: a metrics registry, a structured
//! span recorder, exporters (Perfetto JSON, JSONL, utilization summaries),
//! and a performance-diagnosis layer ([`analyze`]: critical-path
//! extraction, straggler/imbalance findings; [`baseline`]: benchmark
//! baselines with a pass/warn/fail regression gate). On top of the
//! registry sit a continuous-observability layer ([`timeseries`]:
//! ring-buffered windowed aggregation over the virtual clock;
//! [`alerts`]: declarative threshold/burn-rate rules evaluated at event
//! boundaries) and a crash-scoped [`flight`] recorder that dumps
//! Perfetto-valid postmortem traces.
//!
//! The entry point is [`Telemetry`], a cheaply cloneable handle that is
//! either *enabled* (backed by a shared [`Registry`] and [`SpanRecorder`])
//! or *disabled* (every operation is a single `Option` branch, so leaving
//! instrumentation in hot paths costs almost nothing).
//!
//! ```
//! use gpmr_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! tel.set_track_name(0, "rank 0");
//! let chunks = tel.counter("engine.chunks_dispatched");
//! chunks.inc();
//! tel.span(0, "Map", 0.0, 1.5).attr("chunk", "0").record();
//! let snap = tel.snapshot();
//! assert_eq!(snap.metrics.counter("engine.chunks_dispatched"), 1);
//! assert_eq!(snap.spans.len(), 1);
//! let perfetto = gpmr_telemetry::export::to_perfetto_json(&snap);
//! gpmr_telemetry::export::validate_perfetto(&perfetto).unwrap();
//! ```

#![warn(missing_docs)]

pub mod alerts;
pub mod analyze;
pub mod baseline;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod span;
pub mod timeseries;

use std::sync::Arc;

pub use alerts::{Alert, AlertEngine, AlertRule};
pub use flight::{FlightRecorder, Postmortem};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{CounterSample, SpanRecord, SpanRecorder, TelemetrySnapshot};
pub use timeseries::TimeSeriesStore;

/// Default ring-buffer capacity for spans and counter samples.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Inner {
    metrics: Registry,
    spans: SpanRecorder,
}

/// Handle to the telemetry subsystem. `Default`/[`Telemetry::disabled`]
/// produces a no-op handle; [`Telemetry::enabled`] records everything.
/// Clones share the same underlying registry and recorder.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing and hands out no-op metric handles.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default span capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled handle whose ring buffers hold at most `capacity` spans
    /// (and as many counter samples).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: Registry::new(),
                spans: SpanRecorder::new(capacity),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Counter handle for `name` (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.metrics.counter(name),
            None => Counter::noop(),
        }
    }

    /// Gauge handle for `name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.metrics.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Histogram handle for `name` with the given bucket bounds (no-op when
    /// disabled).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            Some(i) => i.metrics.histogram(name, bounds),
            None => Histogram::noop(),
        }
    }

    /// Name a track (Perfetto thread name). No-op when disabled.
    pub fn set_track_name(&self, track: u32, name: &str) {
        if let Some(i) = &self.inner {
            i.spans.set_track_name(track, name);
        }
    }

    /// Reserve a span id for a parent recorded after its children.
    /// Returns 0 when disabled.
    pub fn reserve_span_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans.reserve_id())
    }

    /// Start building a span on `track` covering `[start_s, end_s]`
    /// simulated seconds. The span is written when [`SpanBuilder::record`]
    /// is called; when disabled the builder does nothing and costs nothing.
    pub fn span(&self, track: u32, kind: &str, start_s: f64, end_s: f64) -> SpanBuilder<'_> {
        SpanBuilder {
            tel: self,
            span: self.inner.as_ref().map(|_| SpanRecord {
                id: 0,
                parent: None,
                track,
                kind: kind.to_string(),
                name: kind.to_string(),
                start_s,
                end_s,
                attrs: Vec::new(),
            }),
        }
    }

    /// Record a counter sample (queue depth, occupancy, ...) at `ts_s`.
    pub fn sample(&self, track: u32, series: &str, ts_s: f64, value: f64) {
        if let Some(i) = &self.inner {
            i.spans.sample(CounterSample {
                track,
                series: series.to_string(),
                ts_s,
                value,
            });
        }
    }

    /// Snapshot all spans, samples, track names, and metrics. Disabled
    /// handles return an empty snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            Some(i) => i.spans.snapshot(i.metrics.snapshot()),
            None => TelemetrySnapshot::default(),
        }
    }
}

/// Builder returned by [`Telemetry::span`]. All methods are no-ops when
/// the owning handle is disabled.
#[derive(Debug)]
pub struct SpanBuilder<'a> {
    tel: &'a Telemetry,
    span: Option<SpanRecord>,
}

impl SpanBuilder<'_> {
    /// Use a pre-reserved id (see [`Telemetry::reserve_span_id`]).
    pub fn id(mut self, id: u64) -> Self {
        if let Some(s) = &mut self.span {
            s.id = id;
        }
        self
    }

    /// Set the enclosing span. Ignores the reserved "no span" id 0, so
    /// callers can pass a disabled handle's reservation straight through.
    pub fn parent(mut self, parent: u64) -> Self {
        if let Some(s) = &mut self.span {
            if parent != 0 {
                s.parent = Some(parent);
            }
        }
        self
    }

    /// Override the display name (defaults to the kind).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        if let Some(s) = &mut self.span {
            s.name = name.into();
        }
        self
    }

    /// Attach a key=value attribute.
    pub fn attr(mut self, key: &str, value: impl Into<String>) -> Self {
        if let Some(s) = &mut self.span {
            s.attrs.push((key.to_string(), value.into()));
        }
        self
    }

    /// Attach an attribute computed lazily — the closure only runs when
    /// telemetry is enabled, keeping `format!` off disabled hot paths.
    pub fn attr_with(mut self, key: &str, value: impl FnOnce() -> String) -> Self {
        if let Some(s) = &mut self.span {
            s.attrs.push((key.to_string(), value()));
        }
        self
    }

    /// Write the span; returns its id (0 when disabled).
    pub fn record(self) -> u64 {
        match (self.span, &self.tel.inner) {
            (Some(span), Some(i)) => i.spans.record(span),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(tel.registry().is_none());
        tel.counter("x").inc();
        tel.gauge("y").set(1.0);
        tel.histogram("z", &[1.0]).observe(0.5);
        tel.set_track_name(0, "rank 0");
        assert_eq!(tel.reserve_span_id(), 0);
        let id = tel
            .span(0, "Map", 0.0, 1.0)
            .attr("k", "v")
            .attr_with("lazy", || unreachable!("must not run when disabled"))
            .record();
        assert_eq!(id, 0);
        tel.sample(0, "queue_depth", 0.0, 1.0);
        let snap = tel.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.metrics.counters.is_empty());
    }

    #[test]
    fn enabled_handle_records_and_clones_share() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.counter("jobs").inc();
        tel.counter("jobs").inc();
        let parent = tel.reserve_span_id();
        let child = tel
            .span(0, "Upload", 0.0, 0.5)
            .parent(parent)
            .attr("chunk", "3")
            .record();
        tel.span(0, "Chunk", 0.0, 0.5)
            .id(parent)
            .name("chunk 3")
            .record();
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counter("jobs"), 2);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].id, child);
        assert_eq!(snap.spans[0].parent, Some(parent));
        assert_eq!(snap.spans[1].name, "chunk 3");
    }

    #[test]
    fn parent_zero_means_no_parent() {
        let tel = Telemetry::enabled();
        tel.span(0, "Map", 0.0, 1.0).parent(0).record();
        let snap = tel.snapshot();
        assert_eq!(snap.spans[0].parent, None);
    }
}
