//! Exporters: Chrome trace-event / Perfetto JSON, a JSONL event stream,
//! and a per-track utilization summary — plus a structural validator used
//! by tests and CI.
//!
//! ## Perfetto mapping
//!
//! Everything lives in process 0. Each telemetry track becomes one thread
//! (`tid` = track index) named via a `thread_name` metadata event. Spans
//! become complete events (`ph:"X"`) with `ts`/`dur` in microseconds of
//! simulated time; counter samples become counter events (`ph:"C"`).

use std::collections::BTreeMap;

use crate::json::{parse, Value};
use crate::span::{CounterSample, SpanRecord, TelemetrySnapshot};

const US_PER_S: f64 = 1e6;

/// Render a snapshot as a Chrome trace-event / Perfetto JSON document.
/// Open the result at <https://ui.perfetto.dev> (drag and drop the file).
pub fn to_perfetto_json(snap: &TelemetrySnapshot) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(meta_event(
        "process_name",
        0,
        vec![("name".into(), Value::str("gpmr"))],
    ));
    for (&track, name) in &snap.tracks {
        events.push(Value::Obj(vec![
            ("name".into(), Value::str("thread_name")),
            ("ph".into(), Value::str("M")),
            ("pid".into(), Value::Num(0.0)),
            ("tid".into(), Value::Num(track as f64)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::str(name.clone()))]),
            ),
        ]));
    }

    // Emit timed events sorted by timestamp (Perfetto requires no ordering,
    // but sorted output is stable, diffs cleanly, and lets the validator
    // assert monotonicity).
    let mut timed: Vec<(f64, Value)> = Vec::new();
    for s in &snap.spans {
        let mut args: Vec<(String, Value)> = vec![("kind".into(), Value::str(s.kind.clone()))];
        if let Some(p) = s.parent {
            args.push(("parent_span".into(), Value::Num(p as f64)));
        }
        for (k, v) in &s.attrs {
            args.push((k.clone(), Value::str(v.clone())));
        }
        timed.push((
            s.start_s,
            Value::Obj(vec![
                ("name".into(), Value::str(s.name.clone())),
                ("cat".into(), Value::str(s.kind.clone())),
                ("ph".into(), Value::str("X")),
                ("pid".into(), Value::Num(0.0)),
                ("tid".into(), Value::Num(s.track as f64)),
                ("ts".into(), Value::Num(s.start_s * US_PER_S)),
                ("dur".into(), Value::Num(s.duration_s() * US_PER_S)),
                ("id".into(), Value::Num(s.id as f64)),
                ("args".into(), Value::Obj(args)),
            ]),
        ));
    }
    for c in &snap.samples {
        timed.push((
            c.ts_s,
            Value::Obj(vec![
                ("name".into(), Value::str(c.series.clone())),
                ("ph".into(), Value::str("C")),
                ("pid".into(), Value::Num(0.0)),
                ("tid".into(), Value::Num(c.track as f64)),
                ("ts".into(), Value::Num(c.ts_s * US_PER_S)),
                (
                    "args".into(),
                    Value::Obj(vec![("value".into(), Value::Num(c.value))]),
                ),
            ]),
        ));
    }
    timed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    events.extend(timed.into_iter().map(|(_, v)| v));

    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(events)),
        ("displayTimeUnit".into(), Value::str("ms")),
    ])
    .render()
}

fn meta_event(name: &str, tid: u32, args: Vec<(String, Value)>) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(name)),
        ("ph".into(), Value::str("M")),
        ("pid".into(), Value::Num(0.0)),
        ("tid".into(), Value::Num(tid as f64)),
        ("args".into(), Value::Obj(args)),
    ])
}

/// Render a snapshot as a JSONL event stream: one `track`, `span`, or
/// `sample` object per line, ending with a `summary` line carrying drop
/// counts and the metrics snapshot.
pub fn to_jsonl(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (&track, name) in &snap.tracks {
        let line = Value::Obj(vec![
            ("type".into(), Value::str("track")),
            ("track".into(), Value::Num(track as f64)),
            ("name".into(), Value::str(name.clone())),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for s in &snap.spans {
        let mut fields = vec![
            ("type".into(), Value::str("span")),
            ("id".into(), Value::Num(s.id as f64)),
            ("track".into(), Value::Num(s.track as f64)),
            ("kind".into(), Value::str(s.kind.clone())),
            ("name".into(), Value::str(s.name.clone())),
            ("start_s".into(), Value::Num(s.start_s)),
            ("end_s".into(), Value::Num(s.end_s)),
        ];
        if let Some(p) = s.parent {
            fields.push(("parent".into(), Value::Num(p as f64)));
        }
        if !s.attrs.is_empty() {
            fields.push((
                "attrs".into(),
                Value::Obj(
                    s.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::str(v.clone())))
                        .collect(),
                ),
            ));
        }
        out.push_str(&Value::Obj(fields).render());
        out.push('\n');
    }
    for c in &snap.samples {
        let line = Value::Obj(vec![
            ("type".into(), Value::str("sample")),
            ("track".into(), Value::Num(c.track as f64)),
            ("series".into(), Value::str(c.series.clone())),
            ("ts_s".into(), Value::Num(c.ts_s)),
            ("value".into(), Value::Num(c.value)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    let summary = Value::Obj(vec![
        ("type".into(), Value::str("summary")),
        (
            "dropped_spans".into(),
            Value::Num(snap.dropped_spans as f64),
        ),
        (
            "dropped_samples".into(),
            Value::Num(snap.dropped_samples as f64),
        ),
        ("metrics".into(), snap.metrics.to_value()),
    ]);
    out.push_str(&summary.render());
    out.push('\n');
    out
}

/// Rebuild a [`TelemetrySnapshot`] from a JSONL event stream produced by
/// [`to_jsonl`]. Metrics inside the `summary` line are restored for
/// counters and gauges; histogram buckets are restored verbatim.
pub fn snapshot_from_jsonl(text: &str) -> Result<TelemetrySnapshot, String> {
    let mut snap = TelemetrySnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing type", lineno + 1))?;
        match ty {
            "track" => {
                let track = field_num(&v, "track", lineno)? as u32;
                let name = field_str(&v, "name", lineno)?;
                snap.tracks.insert(track, name);
            }
            "span" => {
                let attrs = match v.get("attrs") {
                    Some(Value::Obj(fields)) => fields
                        .iter()
                        .map(|(k, val)| (k.clone(), val.as_str().unwrap_or_default().to_string()))
                        .collect(),
                    _ => Vec::new(),
                };
                snap.spans.push(SpanRecord {
                    id: field_num(&v, "id", lineno)? as u64,
                    parent: v.get("parent").and_then(Value::as_f64).map(|p| p as u64),
                    track: field_num(&v, "track", lineno)? as u32,
                    kind: field_str(&v, "kind", lineno)?,
                    name: field_str(&v, "name", lineno)?,
                    start_s: field_num(&v, "start_s", lineno)?,
                    end_s: field_num(&v, "end_s", lineno)?,
                    attrs,
                });
            }
            "sample" => {
                snap.samples.push(CounterSample {
                    track: field_num(&v, "track", lineno)? as u32,
                    series: field_str(&v, "series", lineno)?,
                    ts_s: field_num(&v, "ts_s", lineno)?,
                    value: field_num(&v, "value", lineno)?,
                });
            }
            "summary" => {
                snap.dropped_spans = field_num(&v, "dropped_spans", lineno)? as u64;
                snap.dropped_samples = field_num(&v, "dropped_samples", lineno)? as u64;
                if let Some(metrics) = v.get("metrics") {
                    restore_metrics(metrics, &mut snap);
                }
            }
            other => return Err(format!("line {}: unknown type {other:?}", lineno + 1)),
        }
    }
    Ok(snap)
}

fn restore_metrics(metrics: &Value, snap: &mut TelemetrySnapshot) {
    if let Some(Value::Obj(fields)) = metrics.get("counters").cloned().as_ref() {
        for (k, v) in fields {
            if let Some(n) = v.as_f64() {
                snap.metrics.counters.insert(k.clone(), n as u64);
            }
        }
    }
    if let Some(Value::Obj(fields)) = metrics.get("gauges").cloned().as_ref() {
        for (k, v) in fields {
            if let Some(n) = v.as_f64() {
                snap.metrics.gauges.insert(k.clone(), n);
            }
        }
    }
    if let Some(Value::Obj(fields)) = metrics.get("histograms").cloned().as_ref() {
        for (k, h) in fields {
            let nums = |key: &str| -> Vec<f64> {
                h.get(key)
                    .and_then(Value::as_arr)
                    .map(|a| a.iter().filter_map(Value::as_f64).collect())
                    .unwrap_or_default()
            };
            snap.metrics.histograms.insert(
                k.clone(),
                crate::metrics::HistogramSnapshot {
                    bounds: nums("bounds"),
                    counts: nums("counts").into_iter().map(|c| c as u64).collect(),
                    count: h.get("count").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    sum: h.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
                },
            );
        }
    }
}

fn field_num(v: &Value, key: &str, lineno: usize) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {}: missing numeric field {key:?}", lineno + 1))
}

fn field_str(v: &Value, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: missing string field {key:?}", lineno + 1))
}

/// Per-track, per-kind busy-time summary derived from a snapshot.
#[derive(Clone, Debug, Default)]
pub struct SummaryReport {
    /// (track, display name, kind → busy seconds, utilization in `[0, 1]`).
    pub tracks: Vec<TrackSummary>,
    /// Latest span end time (simulated seconds).
    pub end_s: f64,
}

/// Summary for one track.
#[derive(Clone, Debug, Default)]
pub struct TrackSummary {
    /// Track index.
    pub track: u32,
    /// Display name (empty when unnamed).
    pub name: String,
    /// Busy seconds per span kind, sorted by kind.
    pub busy_by_kind: BTreeMap<String, f64>,
    /// Total busy seconds / snapshot end time. Overlapping spans (e.g. a
    /// parent "Chunk" wrapping its stages) can push this above 1.
    pub utilization: f64,
}

/// Compute a per-track utilization summary. Container kinds listed in
/// `exclude_kinds` (e.g. `"Chunk"`) are ignored so wrappers don't double
/// count their children.
pub fn summary_report(snap: &TelemetrySnapshot, exclude_kinds: &[&str]) -> SummaryReport {
    let end_s = snap.end_s();
    let mut by_track: BTreeMap<u32, BTreeMap<String, f64>> = BTreeMap::new();
    for &track in snap.tracks.keys() {
        by_track.entry(track).or_default();
    }
    for s in &snap.spans {
        if exclude_kinds.contains(&s.kind.as_str()) {
            continue;
        }
        *by_track
            .entry(s.track)
            .or_default()
            .entry(s.kind.clone())
            .or_insert(0.0) += s.duration_s();
    }
    let tracks = by_track
        .into_iter()
        .map(|(track, busy_by_kind)| {
            // fold from +0.0: `Iterator::sum` starts from -0.0, which an
            // empty track would render as "-0.0% busy".
            let busy: f64 = busy_by_kind.values().fold(0.0, |a, b| a + b);
            TrackSummary {
                track,
                name: snap.tracks.get(&track).cloned().unwrap_or_default(),
                busy_by_kind,
                utilization: if end_s > 0.0 { busy / end_s } else { 0.0 },
            }
        })
        .collect();
    SummaryReport { tracks, end_s }
}

impl SummaryReport {
    /// Stable text render, one track per line plus a header.
    pub fn render_text(&self) -> String {
        let mut out = format!("span summary (end = {:.6}s)\n", self.end_s);
        for t in &self.tracks {
            let label = if t.name.is_empty() {
                format!("track {}", t.track)
            } else {
                t.name.clone()
            };
            out.push_str(&format!("  {label}: {:5.1}% busy", t.utilization * 100.0));
            let mut kinds: Vec<String> = t
                .busy_by_kind
                .iter()
                .map(|(k, v)| format!("{k} {v:.6}s"))
                .collect();
            if kinds.is_empty() {
                kinds.push("idle".into());
            }
            out.push_str(&format!("  [{}]\n", kinds.join(", ")));
        }
        out
    }
}

/// Structural statistics from a validated Perfetto file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfettoStats {
    /// Number of complete (`ph:"X"`) events.
    pub complete_events: usize,
    /// Number of counter (`ph:"C"`) events.
    pub counter_events: usize,
    /// Distinct tids that have a `thread_name` metadata event.
    pub named_tracks: usize,
    /// Largest `ts + dur` seen, in microseconds.
    pub end_ts_us: f64,
}

/// Validate a Perfetto JSON document produced by [`to_perfetto_json`]:
/// well-formed JSON, a `traceEvents` array, every timed event carries
/// `pid`/`tid`/`ts >= 0` (and `dur >= 0`, and a `name` for `X` events),
/// timed events are sorted by non-decreasing `ts`, and every `tid` used by
/// a timed event has a `thread_name` metadata record.
pub fn validate_perfetto(text: &str) -> Result<PerfettoStats, String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = PerfettoStats::default();
    let mut named: Vec<f64> = Vec::new();
    let mut used: Vec<f64> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        ev.get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    named.push(tid);
                }
            }
            "X" | "C" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts {ts}"));
                }
                if ts < last_ts {
                    return Err(format!("event {i}: ts {ts} decreases (previous {last_ts})"));
                }
                last_ts = ts;
                used.push(tid);
                if ph == "X" {
                    let dur = ev
                        .get("dur")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                    if dur < 0.0 {
                        return Err(format!("event {i}: negative dur {dur}"));
                    }
                    if ev.get("name").and_then(Value::as_str).is_none() {
                        return Err(format!("event {i}: X event missing name"));
                    }
                    stats.complete_events += 1;
                    stats.end_ts_us = stats.end_ts_us.max(ts + dur);
                } else {
                    stats.counter_events += 1;
                    stats.end_ts_us = stats.end_ts_us.max(ts);
                }
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    sort_tids(&mut named);
    for tid in &used {
        if !named.contains(tid) {
            return Err(format!("tid {tid} has timed events but no thread_name"));
        }
    }
    stats.named_tracks = named.len();
    Ok(stats)
}

/// Sort-and-dedup a tid list. Uses [`f64::total_cmp`], not
/// `partial_cmp().unwrap()`: tids come from untrusted trace documents, and
/// a NaN must fail validation downstream (as an unmatched tid), not panic
/// the validator itself.
fn sort_tids(named: &mut Vec<f64>) {
    named.sort_by(f64::total_cmp);
    named.dedup_by(|a, b| a.total_cmp(b).is_eq());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::SpanRecorder;

    fn sample_snapshot() -> TelemetrySnapshot {
        let rec = SpanRecorder::new(64);
        rec.set_track_name(0, "rank 0");
        rec.set_track_name(1, "rank 1");
        rec.record(SpanRecord {
            id: 0,
            parent: None,
            track: 0,
            kind: "Upload".into(),
            name: "upload".into(),
            start_s: 0.0,
            end_s: 0.25,
            attrs: vec![("chunk".into(), "0".into())],
        });
        rec.record(SpanRecord {
            id: 0,
            parent: Some(1),
            track: 1,
            kind: "Map".into(),
            name: "map".into(),
            start_s: 0.25,
            end_s: 1.0,
            attrs: vec![],
        });
        rec.sample(CounterSample {
            track: 0,
            series: "queue_depth".into(),
            ts_s: 0.5,
            value: 3.0,
        });
        let reg = Registry::new();
        reg.counter("engine.chunks_dispatched").add(2);
        reg.gauge("gpu.rank0.mem_peak_bytes").set(4096.0);
        rec.snapshot(reg.snapshot())
    }

    #[test]
    fn perfetto_export_validates() {
        let text = to_perfetto_json(&sample_snapshot());
        let stats = validate_perfetto(&text).expect("valid Perfetto JSON");
        assert_eq!(stats.complete_events, 2);
        assert_eq!(stats.counter_events, 1);
        assert_eq!(stats.named_tracks, 2);
        assert!((stats.end_ts_us - 1e6).abs() < 1e-6);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_perfetto("not json").is_err());
        assert!(validate_perfetto("{}").is_err());
        // X event without a thread_name for its tid.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":9,"ts":0,"dur":1}]}"#;
        assert!(validate_perfetto(bad).unwrap_err().contains("thread_name"));
        // Decreasing timestamps.
        let bad = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"t"}},
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":5,"dur":1},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":4,"dur":1}]}"#;
        assert!(validate_perfetto(bad).unwrap_err().contains("decreases"));
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        let restored = snapshot_from_jsonl(&text).expect("JSONL parses");
        assert_eq!(restored.spans, snap.spans);
        assert_eq!(restored.samples, snap.samples);
        assert_eq!(restored.tracks, snap.tracks);
        assert_eq!(
            restored.metrics.counter("engine.chunks_dispatched"),
            snap.metrics.counter("engine.chunks_dispatched")
        );
        assert_eq!(
            restored.metrics.gauge("gpu.rank0.mem_peak_bytes"),
            snap.metrics.gauge("gpu.rank0.mem_peak_bytes")
        );
    }

    #[test]
    fn summary_report_excludes_container_kinds() {
        let mut snap = sample_snapshot();
        snap.spans.push(SpanRecord {
            id: 99,
            parent: None,
            track: 0,
            kind: "Chunk".into(),
            name: "chunk 0".into(),
            start_s: 0.0,
            end_s: 1.0,
            attrs: vec![],
        });
        let report = summary_report(&snap, &["Chunk"]);
        let t0 = report.tracks.iter().find(|t| t.track == 0).unwrap();
        assert!(!t0.busy_by_kind.contains_key("Chunk"));
        assert!((t0.busy_by_kind["Upload"] - 0.25).abs() < 1e-12);
        let text = report.render_text();
        assert!(text.contains("rank 0"));
        assert!(text.contains("Upload"));
    }

    #[test]
    fn tid_sort_survives_nan_and_non_finite() {
        // Regression: this used to be `partial_cmp().unwrap()`, which
        // panics the moment a NaN tid reaches the validator. NaN must be
        // kept (so an unmatched-tid check can reject it), sorted last,
        // and deduplicated like any other tid.
        let mut tids = vec![2.0, f64::NAN, 1.0, f64::NAN, f64::INFINITY, 1.0, -0.0];
        sort_tids(&mut tids);
        assert_eq!(tids.len(), 5);
        assert_eq!(&tids[..3], &[-0.0, 1.0, 2.0]);
        assert_eq!(tids[3], f64::INFINITY);
        assert!(tids[4].is_nan());

        // Non-finite tids still parse out of a real document (1e999
        // overflows to +inf) and validate without panicking.
        let doc = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":1e999,"args":{"name":"t"}},
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"u"}},
            {"name":"x","ph":"X","pid":0,"tid":0,"ts":0,"dur":1}
        ]}"#;
        let stats = validate_perfetto(doc).unwrap();
        assert_eq!(stats.named_tracks, 2);
    }
}
