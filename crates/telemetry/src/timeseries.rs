//! Windowed time series over the virtual clock: sliding-window counters,
//! gauges, and mergeable histograms with quantile estimation.
//!
//! The simulator's registry ([`crate::metrics`]) answers *lifetime*
//! questions ("how many pairs were shuffled?"); this module answers
//! *recent* ones ("what was the p99 queue wait over the last window?").
//! A [`TimeSeriesStore`] divides a sliding window of `window_s` simulated
//! seconds into a fixed ring of buckets; every observation lands in the
//! bucket covering its timestamp and ages out when the ring wraps past
//! it. All timestamps are virtual, so feeding the store at deterministic
//! event boundaries yields bit-identical windows on every run.
//!
//! The store is fed either directly ([`TimeSeriesStore::record_counter`]
//! and friends) or — the usual path — by [`TimeSeriesStore::collect`],
//! which diffs a fresh [`MetricsSnapshot`] against the previous collect
//! and routes counter/histogram deltas and gauge last-values into the
//! ring. Callers that keep the store behind an `Option` pay nothing when
//! observability is off: no store, no collect, no cost.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// How a series aggregates observations within a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone deltas; windowed queries sum them (and derive rates).
    Counter,
    /// Last-value samples; windowed queries track last/min/max.
    Gauge,
    /// Bucketed distributions; windowed queries merge the per-bucket
    /// histograms and estimate quantiles over the merge.
    Histogram,
}

impl SeriesKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// Sentinel epoch for a bucket that holds no data.
const EMPTY: u64 = u64::MAX;

/// One ring bucket: the aggregate of every observation whose timestamp
/// fell into this bucket's time slice.
#[derive(Clone, Debug)]
struct Bucket {
    /// `floor(t / bucket_width)` of the slice this bucket currently
    /// holds; [`EMPTY`] when unused or aged out and not yet reused.
    epoch: u64,
    /// Counter deltas summed into this slice.
    sum: f64,
    /// Gauge extremes and last value within this slice.
    min: f64,
    max: f64,
    last: f64,
    /// Observations in this slice.
    n: u64,
    /// Histogram mass observed in this slice.
    hist: HistogramSnapshot,
}

impl Bucket {
    fn empty() -> Bucket {
        Bucket {
            epoch: EMPTY,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            n: 0,
            hist: HistogramSnapshot::default(),
        }
    }
}

/// One named windowed series (a ring of `Bucket`s plus lifetime
/// aggregates that never age out).
#[derive(Clone, Debug)]
pub struct Series {
    kind: SeriesKind,
    bucket_w: f64,
    buckets: Vec<Bucket>,
    /// Lifetime total of counter deltas / observation count.
    total: f64,
    /// Most recent gauge value ever recorded (outlives the window).
    last_value: f64,
}

impl Series {
    fn new(kind: SeriesKind, window_s: f64, resolution: usize) -> Series {
        let resolution = resolution.max(1);
        Series {
            kind,
            bucket_w: (window_s / resolution as f64).max(f64::MIN_POSITIVE),
            buckets: vec![Bucket::empty(); resolution],
            total: 0.0,
            last_value: 0.0,
        }
    }

    /// What kind of series this is.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    fn epoch_of(&self, t: f64) -> u64 {
        (t.max(0.0) / self.bucket_w) as u64
    }

    /// The bucket covering `t`, reset if the ring has wrapped past its
    /// previous tenant.
    fn bucket_at(&mut self, t: f64) -> &mut Bucket {
        let epoch = self.epoch_of(t);
        let slot = (epoch % self.buckets.len() as u64) as usize;
        let b = &mut self.buckets[slot];
        if b.epoch != epoch {
            *b = Bucket::empty();
            b.epoch = epoch;
        }
        b
    }

    fn record(&mut self, t: f64, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.total += match self.kind {
            SeriesKind::Counter => v,
            _ => 1.0,
        };
        self.last_value = v;
        let b = self.bucket_at(t);
        b.sum += v;
        b.min = b.min.min(v);
        b.max = b.max.max(v);
        b.last = v;
        b.n += 1;
    }

    fn record_hist(&mut self, t: f64, delta: &HistogramSnapshot) {
        if delta.count == 0 {
            return;
        }
        self.total += delta.count as f64;
        let b = self.bucket_at(t);
        b.hist.merge(delta);
        b.sum += delta.sum;
        b.n += delta.count;
    }

    /// Buckets still inside the window ending at `t`: epochs in
    /// `(epoch(t) - resolution, epoch(t)]`.
    fn in_window(&self, t: f64) -> impl Iterator<Item = &Bucket> {
        let end = self.epoch_of(t);
        let len = self.buckets.len() as u64;
        let start = end.saturating_sub(len - 1);
        self.buckets
            .iter()
            .filter(move |b| b.epoch != EMPTY && b.epoch >= start && b.epoch <= end)
    }

    /// Sum of observations in the window ending at `t`.
    pub fn window_sum(&self, t: f64) -> f64 {
        self.in_window(t).map(|b| b.sum).sum()
    }

    /// Observation count in the window ending at `t`.
    pub fn window_count(&self, t: f64) -> u64 {
        self.in_window(t).map(|b| b.n).sum()
    }

    /// Windowed per-second rate (`window_sum / window_width`).
    pub fn rate(&self, t: f64) -> f64 {
        self.window_sum(t) / (self.bucket_w * self.buckets.len() as f64)
    }

    /// Smallest gauge sample in the window, `None` when no samples.
    pub fn window_min(&self, t: f64) -> Option<f64> {
        self.in_window(t)
            .filter(|b| b.n > 0)
            .map(|b| b.min)
            .fold(None, |a, v| Some(a.map_or(v, |a: f64| a.min(v))))
    }

    /// Largest gauge sample in the window, `None` when no samples.
    pub fn window_max(&self, t: f64) -> Option<f64> {
        self.in_window(t)
            .filter(|b| b.n > 0)
            .map(|b| b.max)
            .fold(None, |a, v| Some(a.map_or(v, |a: f64| a.max(v))))
    }

    /// Most recent value ever recorded (gauges; survives the window).
    pub fn last(&self) -> f64 {
        self.last_value
    }

    /// Lifetime total (counter deltas, or observation count otherwise).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Merge of the histogram mass in the window ending at `t`.
    pub fn window_histogram(&self, t: f64) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for b in self.in_window(t) {
            merged.merge(&b.hist);
        }
        merged
    }

    /// Estimated `q`-quantile of the windowed histogram mass
    /// ([`HistogramSnapshot::quantile`] semantics).
    pub fn quantile(&self, q: f64, t: f64) -> Option<f64> {
        self.window_histogram(t).quantile(q)
    }
}

/// A named collection of windowed series sharing one window geometry.
#[derive(Clone, Debug)]
pub struct TimeSeriesStore {
    window_s: f64,
    resolution: usize,
    prev: MetricsSnapshot,
    series: BTreeMap<String, Series>,
}

impl TimeSeriesStore {
    /// A store whose window spans `window_s` simulated seconds, divided
    /// into `resolution` ring buckets.
    pub fn new(window_s: f64, resolution: usize) -> TimeSeriesStore {
        TimeSeriesStore {
            window_s: window_s.max(f64::MIN_POSITIVE),
            resolution: resolution.max(1),
            prev: MetricsSnapshot::default(),
            series: BTreeMap::new(),
        }
    }

    /// The window width in simulated seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    fn series_mut(&mut self, name: &str, kind: SeriesKind) -> &mut Series {
        let (window_s, resolution) = (self.window_s, self.resolution);
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(kind, window_s, resolution))
    }

    /// Record a counter delta at `t`.
    pub fn record_counter(&mut self, name: &str, t: f64, delta: f64) {
        self.series_mut(name, SeriesKind::Counter).record(t, delta);
    }

    /// Record a gauge sample at `t`.
    pub fn record_gauge(&mut self, name: &str, t: f64, value: f64) {
        self.series_mut(name, SeriesKind::Gauge).record(t, value);
    }

    /// Record a histogram delta (new mass since the last record) at `t`.
    pub fn record_histogram(&mut self, name: &str, t: f64, delta: &HistogramSnapshot) {
        self.series_mut(name, SeriesKind::Histogram)
            .record_hist(t, delta);
    }

    /// Feed a registry snapshot taken at event boundary `t`: counters and
    /// histograms contribute their delta against the previous `collect`,
    /// gauges contribute their current value. Deterministic given a
    /// deterministic snapshot sequence.
    pub fn collect(&mut self, t: f64, snap: &MetricsSnapshot) {
        for (name, &v) in &snap.counters {
            let delta = v.saturating_sub(self.prev.counter(name));
            if delta > 0 || self.series.contains_key(name) {
                self.record_counter(name, t, delta as f64);
            }
        }
        for (name, &v) in &snap.gauges {
            self.record_gauge(name, t, v);
        }
        for (name, h) in &snap.histograms {
            let mut delta = h.clone();
            if let Some(e) = self.prev.histograms.get(name) {
                if e.bounds == delta.bounds {
                    for (c, &ec) in delta.counts.iter_mut().zip(&e.counts) {
                        *c = c.saturating_sub(ec);
                    }
                    delta.count = delta.count.saturating_sub(e.count);
                    let d = delta.sum - e.sum;
                    delta.sum = if d.is_finite() { d.max(0.0) } else { 0.0 };
                }
            }
            if delta.count > 0 || self.series.contains_key(name) {
                self.record_histogram(name, t, &delta);
            }
        }
        self.prev = snap.clone();
    }

    /// The series named `name`, if any observation created it.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Windowed sum for `name` at `t` (zero for unknown series).
    pub fn sum(&self, name: &str, t: f64) -> f64 {
        self.series.get(name).map_or(0.0, |s| s.window_sum(t))
    }

    /// Windowed per-second rate for `name` at `t` (zero for unknown
    /// series).
    pub fn rate(&self, name: &str, t: f64) -> f64 {
        self.series.get(name).map_or(0.0, |s| s.rate(t))
    }

    /// Last recorded value for `name` (zero for unknown series).
    pub fn last(&self, name: &str) -> f64 {
        self.series.get(name).map_or(0.0, Series::last)
    }

    /// Windowed `q`-quantile for histogram series `name` at `t`.
    pub fn quantile(&self, name: &str, q: f64, t: f64) -> Option<f64> {
        self.series.get(name).and_then(|s| s.quantile(q, t))
    }

    /// Series names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Stable JSON rendering of every series' windowed state at `t`.
    pub fn to_value(&self, t: f64) -> Value {
        let series = self
            .series
            .iter()
            .map(|(name, s)| {
                let mut fields = vec![
                    ("kind".into(), Value::str(s.kind().name())),
                    ("total".into(), Value::Num(s.total())),
                    ("window_sum".into(), Value::Num(s.window_sum(t))),
                    ("rate".into(), Value::Num(s.rate(t))),
                ];
                match s.kind() {
                    SeriesKind::Gauge => {
                        fields.push(("last".into(), Value::Num(s.last())));
                        if let (Some(lo), Some(hi)) = (s.window_min(t), s.window_max(t)) {
                            fields.push(("window_min".into(), Value::Num(lo)));
                            fields.push(("window_max".into(), Value::Num(hi)));
                        }
                    }
                    SeriesKind::Histogram => {
                        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                            if let Some(v) = s.quantile(q, t) {
                                fields.push((label.into(), Value::Num(v)));
                            }
                        }
                    }
                    SeriesKind::Counter => {}
                }
                (name.clone(), Value::Obj(fields))
            })
            .collect();
        Value::Obj(vec![
            ("at_s".into(), Value::Num(t)),
            ("window_s".into(), Value::Num(self.window_s)),
            ("series".into(), Value::Obj(series)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn counters_age_out_of_the_window() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        ts.record_counter("jobs", 0.05, 3.0);
        ts.record_counter("jobs", 0.55, 2.0);
        assert_eq!(ts.sum("jobs", 0.6), 5.0);
        assert!((ts.rate("jobs", 0.6) - 5.0).abs() < 1e-12);
        // A window ending past 1.05 no longer covers the first bucket.
        assert_eq!(ts.sum("jobs", 1.2), 2.0);
        // …and far enough out, nothing remains — but the lifetime total
        // survives.
        assert_eq!(ts.sum("jobs", 5.0), 0.0);
        assert_eq!(ts.series("jobs").unwrap().total(), 5.0);
    }

    #[test]
    fn ring_reuse_resets_stale_buckets() {
        let mut ts = TimeSeriesStore::new(1.0, 4);
        ts.record_counter("c", 0.1, 1.0);
        // 2.1 maps onto the same ring slot as 0.1 (epoch 0 vs epoch 8).
        ts.record_counter("c", 2.1, 10.0);
        assert_eq!(ts.sum("c", 2.1), 10.0, "stale bucket must not leak");
    }

    #[test]
    fn gauges_track_last_min_max() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        ts.record_gauge("depth", 0.1, 5.0);
        ts.record_gauge("depth", 0.2, 1.0);
        ts.record_gauge("depth", 0.3, 3.0);
        assert_eq!(ts.last("depth"), 3.0);
        let s = ts.series("depth").unwrap();
        assert_eq!(s.window_min(0.3), Some(1.0));
        assert_eq!(s.window_max(0.3), Some(5.0));
        // The last value survives past the window; the extremes do not.
        assert_eq!(ts.last("depth"), 3.0);
        assert_eq!(s.window_max(10.0), None);
    }

    #[test]
    fn histogram_windows_merge_and_estimate_quantiles() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        let mk = |vals: &[f64]| {
            let reg = Registry::new();
            let h = reg.histogram("w", &[1.0, 2.0, 4.0]);
            for &v in vals {
                h.observe(v);
            }
            reg.snapshot().histograms["w"].clone()
        };
        ts.record_histogram("wait", 0.1, &mk(&[0.5, 0.6]));
        ts.record_histogram("wait", 0.5, &mk(&[3.0, 3.5]));
        let merged = ts.series("wait").unwrap().window_histogram(0.6);
        assert_eq!(merged.count, 4);
        let p99 = ts.quantile("wait", 0.99, 0.6).unwrap();
        assert!((2.0..=4.0).contains(&p99), "p99 {p99}");
        // After the early mass ages out only the slow half remains.
        let p50_late = ts.quantile("wait", 0.5, 1.4).unwrap();
        assert!(p50_late > 2.0, "p50 {p50_late}");
    }

    #[test]
    fn collect_diffs_against_previous_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("service.jobs_completed");
        let g = reg.gauge("service.queue_depth");
        let h = reg.histogram("service.queue_wait_s", &[0.001, 0.01]);
        let mut ts = TimeSeriesStore::new(1.0, 10);

        c.add(2);
        g.set(3.0);
        h.observe(0.0005);
        ts.collect(0.1, &reg.snapshot());
        c.add(1);
        g.set(1.0);
        h.observe(0.005);
        ts.collect(0.2, &reg.snapshot());

        assert_eq!(ts.sum("service.jobs_completed", 0.2), 3.0);
        assert_eq!(ts.last("service.queue_depth"), 1.0);
        let w = ts.series("service.queue_wait_s").unwrap();
        assert_eq!(w.window_count(0.2), 2, "histogram deltas, not totals");
        // Re-collecting the same snapshot adds nothing.
        ts.collect(0.3, &reg.snapshot());
        assert_eq!(ts.sum("service.jobs_completed", 0.3), 3.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut ts = TimeSeriesStore::new(1.0, 4);
        ts.record_gauge("g", 0.1, f64::NAN);
        ts.record_counter("c", 0.1, f64::INFINITY);
        assert!(ts.series("g").is_none_or(|s| s.window_count(0.1) == 0));
        assert_eq!(ts.sum("c", 0.1), 0.0);
    }

    #[test]
    fn to_value_renders_stable_json() {
        let mut ts = TimeSeriesStore::new(1.0, 10);
        ts.record_counter("b", 0.1, 1.0);
        ts.record_gauge("a", 0.1, 2.0);
        let v = ts.to_value(0.2);
        let text = v.render();
        assert!(crate::json::parse(&text).is_ok());
        // BTreeMap ordering: "a" renders before "b".
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }
}
